#!/usr/bin/env python3
"""Wal-Mart sales scenario: multi-attribute embedding vs vertical partitioning.

The paper's motivating data-mining scenario (§1): a collector sells slices
of a sales database to analytics shops.  A buyer who re-sells a *vertical
slice* — say (Item_Nbr, Store_Nbr) without the scan id — defeats any mark
anchored on the primary key.  The §3.3 answer is to watermark every usable
attribute pair, so each surviving pair is an independent rights witness.

Run:  python examples/walmart_sales.py
"""

import random

from repro import MarkKey, Watermark
from repro.attacks import VerticalPartitionAttack
from repro.core import build_pair_closure, embed_pairs, verify_pairs
from repro.datagen import generate_sales
from repro.quality import measure_distortion


def main() -> None:
    table = generate_sales(30_000, item_count=300, seed=12)
    print(f"relation: {table.name}, {len(table)} tuples")
    print(f"schema  : {table.schema}")

    key = MarkKey.generate()
    watermark = Watermark.from_int(0b1011001110, 10)

    # -- plan the pair closure over the schema ------------------------------
    # max_carrier_share bounds the alteration cost: pairs keyed on a
    # low-cardinality place-holder (e.g. the 40-store Store_Nbr) would
    # rewrite a huge share of the relation and are excluded.
    plan = build_pair_closure(
        table, watermark_length=len(watermark), max_carrier_share=0.25
    )
    print("\npair closure (key-placeholder -> marked attribute):")
    for directive in plan:
        print(f"  mark({directive.key_attribute}, {directive.mark_attribute})")

    # -- embed every pair, interference-free ----------------------------------
    marked = table.clone()
    embedding = embed_pairs(marked, watermark, key, e=60, directives=plan)
    report = measure_distortion(table, marked)
    print(f"\ncarriers marked: {embedding.total_applied} "
          f"(cells rewritten: {report.cells_changed}, "
          f"{report.tuple_change_fraction:.2%} of tuples touched)")

    # -- the attack: drop the primary key entirely ------------------------------
    rng = random.Random(3)
    attack = VerticalPartitionAttack(["Item_Nbr", "Store_Nbr", "Dept"])
    sliced = attack.apply(marked, rng)
    print(f"\nattack: {attack.name}")
    print(f"surviving schema: {sliced.schema}")

    # -- verification: surviving pairs testify -----------------------------------
    verdict = verify_pairs(sliced, key, embedding, watermark)
    print("\nwitness report:")
    print(verdict.summary())
    assert verdict.detected

    # -- contrast: a single-pair mark dies with the key ---------------------------
    from repro import Watermarker
    from repro.core import DetectionError

    single = Watermarker(key, e=60)
    single_outcome = single.embed(table, watermark, "Item_Nbr")
    sliced_single = attack.apply(single_outcome.table, rng)
    try:
        single.verify(sliced_single, single_outcome.record)
        print("\nsingle-pair scheme unexpectedly survived?!")
    except DetectionError as exc:
        print(f"\nsingle-pair scheme fails as expected: {exc}")


if __name__ == "__main__":
    main()
