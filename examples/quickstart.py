#!/usr/bin/env python3
"""Quickstart: watermark a categorical relation and prove ownership.

The minimal owner workflow from the paper:

1. generate (or load) a relation with a categorical attribute;
2. embed a secret watermark into the (primary key <-> attribute)
   association under a data-quality budget;
3. simulate a pirate transforming the data;
4. blindly detect the mark in the suspect copy — no original data needed.

Run:  python examples/quickstart.py
"""

import random

from repro import MarkKey, Watermark, Watermarker
from repro.attacks import CompositeAttack, DataLossAttack, ShuffleAttack
from repro.datagen import generate_item_scan
from repro.quality import MaxAlterationFraction, measure_distortion


def main() -> None:
    # -- 1. the data: a Wal-Mart-shaped ItemScan relation -------------------
    table = generate_item_scan(20_000, item_count=500, seed=7)
    print(f"relation: {table.name}, {len(table)} tuples, "
          f"schema {table.schema}")

    # -- 2. embed ------------------------------------------------------------
    key = MarkKey.generate()          # escrow this (it is the secret)
    watermark = Watermark.from_text("(c) ACME")
    owner = Watermarker(key, e=60)    # ~1 tuple in 60 is a carrier

    outcome = owner.embed(
        table,
        watermark,
        mark_attribute="Item_Nbr",
        constraints=[MaxAlterationFraction(0.03)],  # quality budget: 3%
    )
    report = measure_distortion(table, outcome.table)
    print(f"embedded {len(watermark)} watermark bits into "
          f"{outcome.embedding.applied} of {len(table)} tuples "
          f"({report.tuple_change_fraction:.2%} altered)")

    # The record is the owner's escrow: watermark claim + parameters.
    # It contains no secrets and can be stored as JSON.
    escrow = outcome.record.to_json()
    print(f"escrowed mark record: {len(escrow)} bytes of JSON")

    # -- 3. the pirate -------------------------------------------------------
    pirate_rng = random.Random(1234)
    attack = CompositeAttack([DataLossAttack(0.5), ShuffleAttack()])
    stolen = attack.apply(outcome.table, pirate_rng)
    print(f"pirate applied: {attack.name} -> {len(stolen)} tuples remain")

    # -- 4. blind detection ---------------------------------------------------
    from repro.core import MarkRecord

    record = MarkRecord.from_json(escrow)   # restored from escrow
    verdict = owner.verify(stolen, record)
    print()
    print(verdict.summary())
    assert verdict.detected, "ownership should be provable here"


if __name__ == "__main__":
    main()
