#!/usr/bin/env python3
"""Airline B2B scenario: semantic constraints, remapping, and recovery.

The paper's interactive-use scenario (§1): an airline reservation portal
exposes bookings data to partners.  This example shows

* embedding under *semantic* quality constraints (§4.1): certain city
  substitutions are business-forbidden, and fare-class frequencies must
  stay stable;
* the A6 attack: a pirate bijectively re-maps city codes ("sells a secret
  reverse mapper"), plus re-sorting;
* §4.5 recovery: the detector aligns frequency profiles to invert the
  mapping, restoring both the association and frequency channels.

Run:  python examples/airline_portal.py
"""

import random

from repro import MarkKey, Watermark, Watermarker
from repro.attacks import BijectiveRemapAttack, ShuffleAttack
from repro.core import recovery_quality, recover_mapping
from repro.datagen import generate_bookings
from repro.quality import ForbiddenTransitions, MaxFrequencyDrift


def main() -> None:
    bookings = generate_bookings(40_000, seed=20)
    print(f"relation: {bookings.name}, {len(bookings)} tuples")
    print(f"schema  : {bookings.schema}")

    # -- business rules as constraints (§4.1) --------------------------------
    # A booking can be re-routed between major hubs without destroying its
    # analytical value, but never into the smallest regional airports.
    regional = {"SMF", "SJC", "AUS", "RDU", "MCI"}
    constraints = [
        ForbiddenTransitions(
            "Depart_City",
            predicate=lambda old, new: new in regional,
        ),
        MaxFrequencyDrift("Depart_City", 0.05),
    ]

    key = MarkKey.from_seed("a2")
    # 16 bits: the frequency channel spreads bits over the 30 city bins, so
    # a short payload keeps ~2 bins of evidence per bit.
    watermark = Watermark.from_hex("ACE5", 16)
    owner = Watermarker(key, e=45)
    outcome = owner.embed(
        bookings,
        watermark,
        mark_attribute="Depart_City",
        constraints=constraints,
        with_frequency_channel=True,
    )
    guard_report = outcome.embedding.guard_report
    print(f"\nembedded: {outcome.embedding.applied} alterations, "
          f"{outcome.embedding.vetoed} vetoed by constraints")
    if guard_report is not None and guard_report.vetoes_by_constraint:
        for name, count in guard_report.vetoes_by_constraint.items():
            print(f"  veto source: {name} x{count}")

    # -- the pirate: remap city codes + shuffle -------------------------------
    rng = random.Random(9)
    remap = BijectiveRemapAttack("Depart_City", label_prefix="CTY")
    stolen = ShuffleAttack().apply(remap.apply(outcome.table, rng), rng)
    sample = sorted(set(stolen.column("Depart_City")))[:3]
    print(f"\npirate re-mapped city codes, e.g. {sample} ...")

    # -- detection with §4.5 recovery -------------------------------------------
    recovered = recover_mapping(
        stolen, outcome.record.frequency_profile
    )
    quality = recovery_quality(remap.true_inverse, recovered)
    print(f"frequency-profile recovery reconstructed "
          f"{quality:.0%} of the inverse mapping")

    verdict = owner.verify(stolen, outcome.record, try_remap_recovery=True)
    print()
    print(verdict.summary())
    assert verdict.detected

    # -- contrast: detection without recovery fails ------------------------------
    naive = owner.verify(stolen, outcome.record)
    print(f"\nwithout recovery the same suspect yields: "
          f"{'DETECTED' if naive.detected else 'not detected'}")


if __name__ == "__main__":
    main()
