#!/usr/bin/env python3
"""Out-of-core watermarking: mark and detect a relation that never fits
in memory.

The scheme decides every embedding/detection action from a keyed hash of
the tuple's key value alone, so both directions chunk perfectly:

1. stream a synthetic million-row-class relation to a gzip CSV, marking
   chunk by chunk with a checkpoint file (kill the process mid-run and
   re-run with ``resume=True`` — the output is byte-identical);
2. blindly verify the marked file with O(chunk + channel) memory: each
   chunk contributes one vote tally to an accumulator, bit-identical to
   the in-memory detector on the same rows.

Run:  python examples/streaming_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import MarkKey, Watermark
from repro.core import EmbeddingSpec, default_channel_length
from repro.stream import (
    CSVChunkSink,
    CSVChunkSource,
    item_scan_source,
    stream_mark,
    stream_verify,
)

ROWS = 200_000          # raise to millions — memory stays O(CHUNK)
CHUNK = 16_384
E = 60


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-stream-"))
    marked_path = workdir / "marked.csv.gz"
    checkpoint = workdir / "mark.ckpt.json"

    # -- 1. the data: a lazy ItemScan stream (never whole in memory) --------
    source = item_scan_source(ROWS, chunk_size=CHUNK, item_count=500, seed=7)
    key = MarkKey.generate()
    watermark = Watermark.from_text("(c) ACME")
    spec = EmbeddingSpec(
        key_attribute="Visit_Nbr",
        mark_attribute="Item_Nbr",
        e=E,
        watermark_length=len(watermark),
        channel_length=default_channel_length(ROWS, E, len(watermark)),
    )

    # -- 2. streamed, checkpointed embed ------------------------------------
    result = stream_mark(
        source, watermark, key, spec, CSVChunkSink(marked_path),
        checkpoint_path=checkpoint,
    )
    print(
        f"marked {result.rows} rows in {result.chunks} chunks: "
        f"{result.applied} carriers rewritten, "
        f"{result.slot_coverage:.0%} of {spec.channel_length} slots covered"
    )
    print(f"marked file: {marked_path} "
          f"({marked_path.stat().st_size / 1e6:.1f} MB gzip)")

    # -- 3. streamed blind verification --------------------------------------
    suspect = CSVChunkSource(
        marked_path, source.schema, chunk_size=CHUNK, infer_domains=True
    )
    verdict = stream_verify(
        suspect, key, spec, watermark,
        domain=source.schema.attribute("Item_Nbr").domain,
    )
    print(f"verdict ({verdict.rows} rows, {verdict.chunks} chunks): "
          f"{verdict.summary()}")
    assert verdict.detected


if __name__ == "__main__":
    main()
