#!/usr/bin/env python3
"""Out-of-core watermarking: mark and detect a relation that never fits
in memory.

The scheme decides every embedding/detection action from a keyed hash of
the tuple's key value alone, so both directions chunk perfectly:

1. stream a synthetic million-row-class relation to a gzip CSV, marking
   chunk by chunk with a checkpoint file (kill the process mid-run and
   re-run with ``resume=True`` — the output is byte-identical);
2. blindly verify the marked file with O(chunk + channel) memory: each
   chunk contributes one vote tally to an accumulator, bit-identical to
   the in-memory detector on the same rows;
3. stall-safety: re-run the same embed under an impossibly tight
   wall-clock ``Deadline`` — the run stops *resumably* with
   ``DeadlineExceededError`` (the CLI's ``--deadline SECONDS`` / exit
   code 7), and a fresh-budget resume completes byte-identical to the
   uninterrupted output;
4. multicore detect: the same verification with ``workers="auto"`` — a
   read-ahead decoder ships raw chunk payloads to a process pool,
   kernels run worker-side, and tallies merge in chunk order, so the
   verdict is **bit-identical** to the single-process scan (the CLI's
   ``--workers N|auto``).

Run:  python examples/streaming_pipeline.py
"""

import tempfile
import time
from pathlib import Path

from repro import MarkKey, Watermark
from repro.core import EmbeddingSpec, default_channel_length
from repro.reliability import Deadline, DeadlineExceededError
from repro.stream import (
    CSVChunkSink,
    CSVChunkSource,
    item_scan_source,
    resolve_workers,
    shutdown_stream_pool,
    stream_mark,
    stream_verify,
)

ROWS = 200_000          # raise to millions — memory stays O(CHUNK)
CHUNK = 16_384
E = 60


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-stream-"))
    marked_path = workdir / "marked.csv.gz"
    checkpoint = workdir / "mark.ckpt.json"

    # -- 1. the data: a lazy ItemScan stream (never whole in memory) --------
    source = item_scan_source(ROWS, chunk_size=CHUNK, item_count=500, seed=7)
    key = MarkKey.generate()
    watermark = Watermark.from_text("(c) ACME")
    spec = EmbeddingSpec(
        key_attribute="Visit_Nbr",
        mark_attribute="Item_Nbr",
        e=E,
        watermark_length=len(watermark),
        channel_length=default_channel_length(ROWS, E, len(watermark)),
    )

    # -- 2. streamed, checkpointed embed ------------------------------------
    result = stream_mark(
        source, watermark, key, spec, CSVChunkSink(marked_path),
        checkpoint_path=checkpoint,
    )
    print(
        f"marked {result.rows} rows in {result.chunks} chunks: "
        f"{result.applied} carriers rewritten, "
        f"{result.slot_coverage:.0%} of {spec.channel_length} slots covered"
    )
    print(f"marked file: {marked_path} "
          f"({marked_path.stat().st_size / 1e6:.1f} MB gzip)")

    # -- 3. streamed blind verification --------------------------------------
    suspect = CSVChunkSource(
        marked_path, source.schema, chunk_size=CHUNK, infer_domains=True
    )
    verdict = stream_verify(
        suspect, key, spec, watermark,
        domain=source.schema.attribute("Item_Nbr").domain,
    )
    print(f"verdict ({verdict.rows} rows, {verdict.chunks} chunks): "
          f"{verdict.summary()}")
    assert verdict.detected

    # -- 4. stall-safety: deadline-bounded, resumable embed ------------------
    # The same embed under an impossibly tight wall-clock budget: each
    # attempt stops resumably at a chunk boundary (the CLI maps this to
    # --deadline SECONDS / exit code 7), and re-running with a fresh
    # budget picks up from the last durable chunk.  However many times
    # the deadline fires, the final bytes equal the uninterrupted run's.
    budgeted_path = workdir / "budgeted.csv.gz"
    budgeted_ckpt = workdir / "budgeted.ckpt.json"
    attempts = 0
    while True:
        attempts += 1
        try:
            stream_mark(
                item_scan_source(
                    ROWS, chunk_size=CHUNK, item_count=500, seed=7
                ),
                watermark, key, spec, CSVChunkSink(budgeted_path),
                checkpoint_path=budgeted_ckpt,
                resume=budgeted_ckpt.exists(),
                deadline=Deadline(0.5),  # far too tight on purpose
            )
            break
        except DeadlineExceededError as exc:
            print(f"  attempt {attempts}: deadline expired at "
                  f"{exc.label}[{exc.position}] — resuming")
            assert attempts < 100, "no forward progress under deadline"
    print(f"deadline-bounded embed finished after {attempts} attempt(s)")
    assert budgeted_path.read_bytes() == marked_path.read_bytes(), \
        "deadline-interrupted resume must be byte-identical"
    print("byte-identical to the uninterrupted output")

    # -- 5. multicore detect: same verdict, N cores --------------------------
    # ``workers="auto"`` sizes a persistent process pool from cpu_count
    # (1 on a single-core box — the exact serial path).  Workers parse
    # and tally chunks; the coordinator merges tallies in chunk order,
    # so the verdict below is pinned bit-identical to step 3's.
    workers = resolve_workers("auto")
    started = time.perf_counter()
    parallel = stream_verify(
        CSVChunkSource(
            marked_path, source.schema, chunk_size=CHUNK, infer_domains=True
        ),
        key, spec, watermark,
        domain=source.schema.attribute("Item_Nbr").domain,
        workers="auto",
    )
    elapsed = time.perf_counter() - started
    shutdown_stream_pool()
    assert parallel.detected
    assert parallel.votes.resolve() == verdict.votes.resolve(), \
        "parallel verdict must be bit-identical to the serial scan"
    print(
        f"parallel re-verify ({workers} worker(s)): "
        f"{parallel.rows / elapsed:,.0f} rows/s — bit-identical verdict"
    )


if __name__ == "__main__":
    main()
