#!/usr/bin/env python3
"""Parameter tuning: pick `e` and the payload length from first principles.

§4.4 derives the alteration/resilience trade-off; `repro.analysis` packages
it into a one-call advisor.  This example sizes parameters for three
different deployment profiles, then validates the middle one empirically
against the attack it was sized for.

Run:  python examples/parameter_tuning.py
"""

import random

from repro import MarkKey, Watermark, Watermarker
from repro.analysis import recommend_parameters
from repro.attacks import SubsetAlterationAttack
from repro.datagen import generate_item_scan


def main() -> None:
    profiles = [
        (
            "cautious data vendor (tiny alteration budget)",
            dict(
                tuple_count=50_000, domain_size=400, watermark_length=16,
                max_alteration=0.005, attack_fraction=0.10,
            ),
        ),
        (
            "paper's experimental setup",
            dict(
                tuple_count=6_000, domain_size=500, watermark_length=10,
                max_alteration=0.05, attack_fraction=0.10,
            ),
        ),
        (
            "paranoid owner (expects 30% alteration attacks)",
            dict(
                tuple_count=50_000, domain_size=400, watermark_length=16,
                max_alteration=0.05, attack_fraction=0.30,
            ),
        ),
    ]
    recommendations = {}
    for label, budgets in profiles:
        rec = recommend_parameters(**budgets)
        recommendations[label] = (budgets, rec)
        print(f"--- {label}")
        print(rec.summary())
        print()

    # -- validate the paper profile empirically ------------------------------
    label = "paper's experimental setup"
    budgets, rec = recommendations[label]
    print(f"validating {label!r} at e={rec.e} against the assumed attack "
          f"({budgets['attack_fraction']:.0%} random alterations)...")
    table = generate_item_scan(
        budgets["tuple_count"], item_count=budgets["domain_size"], seed=3
    )
    marker = Watermarker(MarkKey.from_seed("tuning-demo"), e=rec.e)
    watermark = Watermark.from_int(0x2AB, budgets["watermark_length"])
    outcome = marker.embed(table, watermark, "Item_Nbr")
    attack = SubsetAlterationAttack(
        "Item_Nbr", budgets["attack_fraction"], 0.7
    )
    alterations = []
    for trial in range(5):
        attacked = attack.apply(outcome.table, random.Random(trial))
        verdict = marker.verify(attacked, outcome.record)
        alterations.append(verdict.association.mark_alteration)
    mean = sum(alterations) / len(alterations)
    print(f"mean mark alteration over 5 trials: {mean:.1%} "
          f"(advisor promised vulnerability <= "
          f"{rec.attack_success:.2g} for one net bit)")
    assert mean <= 0.1


if __name__ == "__main__":
    main()
