#!/usr/bin/env python3
"""Attack-resilience survey: the full A1–A6 adversary model in one table.

Embeds a watermark once (association + frequency channels), runs every
attack class from §2.3 at a few intensities, and prints the detection
verdict and mark alteration for each — a compact reproduction of the
paper's evaluation narrative.

Run:  python examples/attack_resilience_demo.py
"""

import random

from repro import MarkKey, Watermark, Watermarker
from repro.attacks import (
    BijectiveRemapAttack,
    CompositeAttack,
    DataLossAttack,
    ShuffleAttack,
    SingleColumnAttack,
    SubsetAdditionAttack,
    SubsetAlterationAttack,
)
from repro.core import verify_frequency
from repro.datagen import generate_item_scan
from repro.experiments import format_table


def main() -> None:
    table = generate_item_scan(20_000, item_count=300, seed=77)
    key = MarkKey.from_seed("resilience-demo")
    watermark = Watermark.from_int(0x2AB, 10)
    owner = Watermarker(key, e=50)
    outcome = owner.embed(
        table, watermark, "Item_Nbr", with_frequency_channel=True
    )
    print(f"marked {len(table)} tuples; "
          f"{outcome.embedding.applied} alterations "
          f"({outcome.embedding.applied / len(table):.2%})\n")

    rng = random.Random(5)
    attacks = [
        DataLossAttack(0.3),
        DataLossAttack(0.8),
        SubsetAdditionAttack(0.5),
        SubsetAlterationAttack("Item_Nbr", 0.2, 0.7),
        SubsetAlterationAttack("Item_Nbr", 0.6, 0.7),
        ShuffleAttack(),
        BijectiveRemapAttack("Item_Nbr"),
        CompositeAttack(
            [DataLossAttack(0.4), SubsetAdditionAttack(0.3), ShuffleAttack()]
        ),
    ]

    rows = []
    for attack in attacks:
        suspect = attack.apply(outcome.table, rng)
        remap = isinstance(attack, BijectiveRemapAttack)
        verdict = owner.verify(
            suspect, outcome.record, try_remap_recovery=remap
        )
        association = verdict.association
        rows.append(
            (
                attack.name,
                "yes" if verdict.detected else "NO",
                f"{association.mark_alteration:.0%}"
                if association is not None else "-",
                f"{association.false_hit_probability:.2g}"
                if association is not None else "-",
            )
        )

    # The extreme A5 partition: only the frequency channel can answer.
    column_only = SingleColumnAttack("Item_Nbr").apply(outcome.table, rng)
    freq = verify_frequency(
        column_only, key, outcome.record.frequency_record,
        outcome.record.watermark,
    )
    rows.append(
        (
            "A5:single-column(Item_Nbr) [frequency channel]",
            "yes" if freq.detected else "NO",
            f"{freq.mark_alteration:.0%}",
            f"{freq.false_hit_probability:.2g}",
        )
    )

    print(
        format_table(
            ("attack", "detected", "mark alteration", "false-hit prob"),
            rows,
        )
    )


if __name__ == "__main__":
    main()
