#!/usr/bin/env python3
"""Incremental updates (§4.3): a live, evolving relation stays marked.

"Our method supports incremental updates naturally.  As updates occur to
the data, the resulting tuples can be evaluated on the fly for 'fitness'
and watermarked accordingly."

This example runs a simulated production workload — inserts, value
updates, re-keys and deletes — through :class:`IncrementalWatermarker`,
then shows (a) detection is still bit-exact, and (b) the audit/repair path
catching writes that bypassed the wrapper.

Run:  python examples/incremental_updates.py
"""

import random

from repro import MarkKey, Watermark, Watermarker
from repro.core import IncrementalWatermarker
from repro.datagen import generate_item_scan


def main() -> None:
    table = generate_item_scan(10_000, item_count=400, seed=33)
    key = MarkKey.from_seed("incremental-demo")
    watermark = Watermark.from_text("LIVE")
    owner = Watermarker(key, e=50)
    outcome = owner.embed(table, watermark, "Item_Nbr")
    print(f"initial marking: {outcome.embedding.applied} carriers "
          f"in {len(table)} tuples")

    live = IncrementalWatermarker(outcome.table, key, outcome.record)
    domain = live.table.schema.attribute("Item_Nbr").domain
    rng = random.Random(5)

    # -- a day of OLTP traffic -----------------------------------------------
    next_visit = 5_000_000
    for _ in range(2_000):                      # new sales come in
        next_visit += rng.randrange(1, 50)
        live.insert((next_visit, domain.value_at(rng.randrange(domain.size))))
    keys = list(live.table.keys())
    for visit in rng.sample(keys, 500):          # item corrections
        live.set_value(
            visit, "Item_Nbr", domain.value_at(rng.randrange(domain.size))
        )
    for visit in rng.sample(keys, 200):          # visits re-numbered
        if visit in live.table:
            live.change_key(visit, next_visit := next_visit + 1)
    for visit in rng.sample(keys, 300):          # returns processed
        if visit in live.table:
            live.delete(visit)

    stats = live.stats
    print(f"\nworkload: {stats.inserted} inserts "
          f"({stats.inserted_carriers} became carriers on the fly), "
          f"{stats.value_updates} value updates "
          f"({stats.value_updates_reverted} re-marked), "
          f"{stats.key_updates} re-keys "
          f"({stats.remarked_after_key_update} re-marked)")

    verdict = owner.verify(live.table, outcome.record)
    print(f"\nafter the workload: {verdict.association.summary()}")
    assert verdict.association.mark_alteration == 0.0

    # -- drift from writes that bypassed the wrapper ---------------------------
    for visit in rng.sample(list(live.table.keys()), 2000):
        expected = live.expected_value(visit)
        if expected is not None:
            wrong = next(v for v in domain.values if v != expected)
            live.table.set_value(visit, "Item_Nbr", wrong)  # raw write!
    drifted = live.audit()
    print(f"\nraw writes bypassed the wrapper: audit found "
          f"{drifted} drifted carriers")
    repaired = live.repair()
    print(f"repair() re-marked {repaired}; audit now {live.audit()}")
    final = owner.verify(live.table, outcome.record)
    print(final.summary())
    assert final.detected


if __name__ == "__main__":
    main()
