"""Tier-1 perf smoke: fail fast when the engine's caching regresses.

Full throughput numbers live in ``benchmarks/bench_throughput.py``; this
tiny (<2 s) check runs with the regular suite and asserts the *mechanism*
rather than fragile wall-clock ratios:

* a steady-state re-detection performs **zero** SHA-256 computations
  (the carrier-plan cache makes attack sweeps hash-free);
* embedding hashes each distinct key value at most once per secret key
  (no per-row or per-use re-hashing);
* the whole embed + verify + re-verify cycle stays under a generous
  absolute wall-clock budget, so a catastrophic slowdown still fails
  even if the cache accounting somehow lies.
"""

from __future__ import annotations

import time

import pytest

from repro.core import Watermark, Watermarker
from repro.crypto import HashEngine, MarkKey
from repro.datagen import generate_item_scan

ROWS = 4_000


@pytest.mark.perf_smoke
def test_engine_steady_state_is_hash_free():
    started = time.perf_counter()
    table = generate_item_scan(ROWS, item_count=120, seed=21)
    key = MarkKey.from_seed("perf-smoke")
    engine = HashEngine(key)
    marker = Watermarker(key, e=40, engine=engine)
    watermark = Watermark.from_int(0x2AB, 10)

    outcome = marker.embed(table, watermark, "Item_Nbr")
    # Embedding needs one k1 digest per distinct key value and one k2
    # digest per carrier -- never more (the satellite fix for the double
    # ``keyed_hash`` per carrier is what this bound enforces).
    assert engine.k1.computed <= ROWS
    assert engine.k2.computed <= outcome.embedding.fit_count

    verdict = marker.verify(outcome.table, outcome.record)
    assert verdict.association.detected
    after_first_verify = engine.computed_digests

    # Steady state: re-verification (the attack-sweep regime) re-hashes
    # nothing at all.
    for _ in range(3):
        assert marker.verify(outcome.table, outcome.record).association.detected
    assert engine.computed_digests == after_first_verify

    # Re-embedding the same relation is equally hash-free.
    marker.embed(table, watermark, "Item_Nbr")
    assert engine.computed_digests == after_first_verify

    elapsed = time.perf_counter() - started
    assert elapsed < 2.0, f"perf smoke took {elapsed:.2f}s (budget 2s)"
