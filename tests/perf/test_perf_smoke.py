"""Tier-1 perf smoke: fail fast when the engine's caching regresses.

Full throughput numbers live in ``benchmarks/bench_throughput.py``; this
tiny (<2 s) check runs with the regular suite and asserts the *mechanism*
rather than fragile wall-clock ratios:

* a steady-state re-detection performs **zero** SHA-256 computations
  (the carrier-plan cache makes attack sweeps hash-free);
* embedding hashes each distinct key value at most once per secret key
  (no per-row or per-use re-hashing);
* the whole embed + verify + re-verify cycle stays under a generous
  absolute wall-clock budget, so a catastrophic slowdown still fails
  even if the cache accounting somehow lies.
"""

from __future__ import annotations

import time

import pytest

from repro.attacks import SubsetAlterationAttack
from repro.core import Watermark, Watermarker
from repro.crypto import HashEngine, MarkKey, get_engine
from repro.datagen import generate_item_scan
from repro.experiments import MODE_HOISTED, SweepEngine, SweepProtocol

ROWS = 4_000


@pytest.mark.perf_smoke
def test_engine_steady_state_is_hash_free():
    started = time.perf_counter()
    table = generate_item_scan(ROWS, item_count=120, seed=21)
    key = MarkKey.from_seed("perf-smoke")
    engine = HashEngine(key)
    marker = Watermarker(key, e=40, engine=engine)
    watermark = Watermark.from_int(0x2AB, 10)

    outcome = marker.embed(table, watermark, "Item_Nbr")
    # Embedding needs one k1 digest per distinct key value and one k2
    # digest per carrier -- never more (the satellite fix for the double
    # ``keyed_hash`` per carrier is what this bound enforces).
    assert engine.k1.computed <= ROWS
    assert engine.k2.computed <= outcome.embedding.fit_count

    verdict = marker.verify(outcome.table, outcome.record)
    assert verdict.association.detected
    after_first_verify = engine.computed_digests

    # Steady state: re-verification (the attack-sweep regime) re-hashes
    # nothing at all.
    for _ in range(3):
        assert marker.verify(outcome.table, outcome.record).association.detected
    assert engine.computed_digests == after_first_verify

    # Re-embedding the same relation is equally hash-free.
    marker.embed(table, watermark, "Item_Nbr")
    assert engine.computed_digests == after_first_verify

    elapsed = time.perf_counter() - started
    assert elapsed < 2.0, f"perf smoke took {elapsed:.2f}s (budget 2s)"


@pytest.mark.perf_smoke
def test_sweep_second_point_is_embed_free_and_hash_free():
    """A second sweep point must cost zero embeds and zero SHA-256 calls.

    Exercises both layers of reuse at once: the sweep engine's embed
    hoisting (the embedded pass built for point one answers point two) and
    the carrier-plan caches underneath (re-detecting the attacked clones
    only reads warm fitness/slot entries — the attack rewrites mark
    values, which are never hashed).
    """
    started = time.perf_counter()
    table = generate_item_scan(2_000, item_count=100, seed=33)
    engine = SweepEngine(mode=MODE_HOISTED)
    protocol = SweepProtocol(mark_attribute="Item_Nbr", e=40)
    seeds = range(5)

    def digests():
        return sum(
            get_engine(MarkKey.from_seed(seed)).computed_digests
            for seed in seeds
        )

    first = engine.run(
        table,
        protocol,
        [(0.3, SubsetAlterationAttack("Item_Nbr", 0.3, 0.7))],
        seeds,
    )
    assert engine.embeds_performed == len(list(seeds))
    assert all(result.fit_count > 0 for result in first[0].passes)
    embeds_after_first = engine.embeds_performed
    digests_after_first = digests()

    second = engine.run(
        table,
        protocol,
        [(0.5, SubsetAlterationAttack("Item_Nbr", 0.5, 0.7))],
        seeds,
    )
    assert all(result.fit_count > 0 for result in second[0].passes)
    # Zero embeds: the point-one passes were reused verbatim.
    assert engine.embeds_performed == embeds_after_first
    # Zero hashing: every re-detection ran entirely from the plan caches.
    assert digests() == digests_after_first

    elapsed = time.perf_counter() - started
    assert elapsed < 2.0, f"sweep perf smoke took {elapsed:.2f}s (budget 2s)"


@pytest.mark.perf_smoke
def test_warm_sweep_cell_is_fused_and_code_level(monkeypatch):
    """A warm sweep cell: one fused kernel, zero row-tuple materialization.

    Asserts the PR-4 tentpole mechanism: once a point has warmed the
    stacked plan arrays, the next sweep point performs exactly **one**
    ``detect_multipass`` launch for all passes (zero per-pass ``detect``
    launches, zero embeds, zero SHA-256 calls, zero new plan stacks), and
    the code-level attacks never materialize a row tuple — ``Table``
    iteration is forbidden outright for the whole warm cell.
    """
    from repro.core import kernels
    from repro.crypto import VECTOR, stack_cache_info
    from repro.experiments import SweepProtocol, run_point
    from repro.relational import Table

    started = time.perf_counter()
    table = generate_item_scan(5_000, item_count=120, seed=51)
    engine = SweepEngine(mode=MODE_HOISTED)
    protocol = SweepProtocol(mark_attribute="Item_Nbr", e=40, backend=VECTOR)
    seeds = range(5)
    passes = [engine.embedded_pass(table, protocol, seed) for seed in seeds]

    def attack(x):
        return SubsetAlterationAttack("Item_Nbr", x, 0.7)

    run_point(passes, attack(0.3), 0.3)  # warm-up point: builds the stacks

    def digests():
        return sum(
            get_engine(MarkKey.from_seed(seed)).computed_digests
            for seed in seeds
        )

    kernels.reset_kernel_calls()
    stacks_before = stack_cache_info()["stacks_built"]
    digests_before = digests()
    embeds_before = engine.embeds_performed

    def forbidden_iter(self):
        raise AssertionError(
            "warm sweep cell materialized row tuples (Table.__iter__)"
        )

    with pytest.MonkeyPatch.context() as patch:
        patch.setattr(Table, "__iter__", forbidden_iter)
        results = run_point(passes, attack(0.5), 0.5)

    assert all(result.fit_count > 0 for result in results)
    assert kernels.KERNEL_CALLS["detect_multipass"] == 1
    assert kernels.KERNEL_CALLS["detect"] == 0
    assert kernels.KERNEL_CALLS["embed"] == 0
    assert engine.embeds_performed == embeds_before
    assert stack_cache_info()["stacks_built"] == stacks_before
    assert digests() == digests_before

    elapsed = time.perf_counter() - started
    assert elapsed < 2.0, f"fused perf smoke took {elapsed:.2f}s (budget 2s)"


@pytest.mark.perf_smoke
def test_vector_steady_redetect_is_pure_array_code(monkeypatch):
    """A warm vector re-detection runs on codes + plan arrays alone.

    Asserts the tentpole mechanism directly: after one warm-up detection,
    re-detecting the same relation performs zero SHA-256 computations and
    zero Python-level hash lookups — every per-row quantity comes from the
    cached column codes and the engine's cached plan arrays.  Enforced by
    making every dict-backed engine primitive raise.
    """
    from repro.crypto import (
        VECTOR,
        KeyedDigestCache,
        clear_engine_registry,
        get_engine,
    )

    started = time.perf_counter()
    table = generate_item_scan(6_000, item_count=150, seed=47)
    key = MarkKey.from_seed("perf-smoke-vector")
    clear_engine_registry()
    marker = Watermarker(key, e=40, engine=VECTOR)
    watermark = Watermark.from_int(0x2AB, 10)

    outcome = marker.embed(table, watermark, "Item_Nbr")
    assert marker.verify(outcome.table, outcome.record).association.detected

    engine = get_engine(key)
    digests_before = engine.computed_digests
    arrays_before = engine.plan_arrays_built
    spec = outcome.record.spec
    key_codes = outcome.table.column_codes(spec.key_attribute)
    mark_codes = outcome.table.column_codes(spec.mark_attribute)

    def forbidden(name):
        def _raise(*args, **kwargs):
            raise AssertionError(
                f"warm vector re-detection called {name} — a per-value "
                f"Python hash lookup on the steady-state path"
            )
        return _raise

    monkeypatch.setattr(HashEngine, "fitness_map", forbidden("fitness_map"))
    monkeypatch.setattr(HashEngine, "slot_map", forbidden("slot_map"))
    monkeypatch.setattr(HashEngine, "pair_map", forbidden("pair_map"))
    monkeypatch.setattr(KeyedDigestCache, "digest", forbidden("digest"))
    monkeypatch.setattr(
        KeyedDigestCache, "digest_many", forbidden("digest_many")
    )

    for _ in range(3):
        verdict = marker.verify(outcome.table, outcome.record)
        assert verdict.association.detected

    # No hashing, no new plan arrays, no re-factorization.
    assert engine.computed_digests == digests_before
    assert engine.plan_arrays_built == arrays_before
    assert outcome.table.column_codes(spec.key_attribute) is key_codes
    assert outcome.table.column_codes(spec.mark_attribute) is mark_codes

    elapsed = time.perf_counter() - started
    assert elapsed < 2.0, f"vector perf smoke took {elapsed:.2f}s (budget 2s)"


@pytest.mark.perf_smoke
def test_stream_second_chunk_is_hash_free():
    """Engine sharing across chunks: re-seen values re-hash nothing.

    Two layers of the streaming subsystem's cache story, asserted by
    digest accounting rather than wall clock: (1) a second chunk holding
    already-seen key values performs **zero** SHA-256 calls — the
    stream-scoped engine's memoization spans chunks; (2) a streamed
    verify right after a streamed mark on the same shared engine performs
    zero additional hashing — embedding already resolved every fitness
    and slot digest detection needs.
    """
    from repro.core import EmbeddingSpec
    from repro.stream import (
        TableChunkSink,
        TableChunkSource,
        stream_engine,
        stream_mark,
        stream_verify,
    )

    started = time.perf_counter()
    table = generate_item_scan(2_000, item_count=100, seed=63)
    key = MarkKey.from_seed("perf-smoke-stream")
    spec = EmbeddingSpec("Visit_Nbr", "Item_Nbr", 40, 10, 50)
    watermark = Watermark.from_int(0x2AB, 10)
    engine = stream_engine(key, chunk_size=500)

    # Streamed mark: one warm engine across all four chunks.
    sink = TableChunkSink()
    stream_mark(
        TableChunkSource(table, chunk_size=500), watermark, key, spec,
        sink, backend=engine,
    )
    digests_after_mark = engine.computed_digests
    assert digests_after_mark > 0

    # Streamed verify of the marked output on the same engine: zero new
    # hashing — detection only reads fitness/slot entries the mark pass
    # already resolved (mark values are never hashed).
    first = stream_verify(
        TableChunkSource(sink.table, chunk_size=500), key, spec, watermark,
        backend=engine,
    )
    assert first.detected and first.chunks == 4
    assert engine.computed_digests == digests_after_mark

    # A second chunk of already-seen values: zero SHA-256 calls.  The
    # suspect stream presents the same chunk twice (same key values); the
    # second pass must run entirely from the warm caches.
    chunk = next(iter(TableChunkSource(sink.table, chunk_size=500)))
    again = stream_verify([chunk, chunk], key, spec, watermark, backend=engine)
    assert again.chunks == 2
    assert engine.computed_digests == digests_after_mark

    elapsed = time.perf_counter() - started
    assert elapsed < 2.0, f"stream perf smoke took {elapsed:.2f}s (budget 2s)"


@pytest.mark.perf_smoke
def test_warm_parallel_verify_is_coordinator_hash_free_and_fused():
    """Parallel streaming's cache story, asserted by accounting.

    Three mechanisms at once: (1) a warm parallel verify performs **zero**
    SHA-256 computations in the coordinator — it only decodes payloads and
    merges vote tallies, so every dict-backed digest primitive is made to
    raise after the pool is warm (the workers forked *before* the patch
    and are unaffected); (2) each worker performs exactly one fused kernel
    launch per chunk (per-worker telemetry pins ``detect_votes`` calls ==
    chunks processed, cumulatively since the fork); (3) per-worker
    ``stream_engine`` caches warm once — no worker ever computes more
    digests than one full pass over the distinct values needs, no matter
    how many chunks it processes across repeated verifies.
    """
    from repro.core import EmbeddingSpec
    from repro.crypto import VECTOR, KeyedDigestCache
    from repro.stream import (
        TableChunkSource,
        shutdown_stream_pool,
        stream_engine,
        stream_verify,
        stream_verify_multipass,
    )

    started = time.perf_counter()
    shutdown_stream_pool()
    table = generate_item_scan(4_000, item_count=100, seed=77)
    key = MarkKey.from_seed("perf-smoke-parallel")
    spec = EmbeddingSpec("Visit_Nbr", "Item_Nbr", 40, 10, 50)
    watermark = Watermark.from_int(0x2AB, 10)

    # One warm serial pass fixes the digest budget: the number of
    # distinct-value hashes a single engine needs to tally the whole
    # table.  No pool worker may ever exceed it, however many chunks the
    # dynamic schedule hands it across repeated verifies.
    probe = stream_engine(key, chunk_size=500)
    stream_verify(
        TableChunkSource(table, chunk_size=500), key, spec, watermark,
        backend=probe,
    )
    full_pass_digests = probe.computed_digests

    def run():
        return stream_verify(
            TableChunkSource(table, chunk_size=500), key, spec, watermark,
            backend=VECTOR, workers=2,
        )

    def assert_fused(report):
        assert report.worker_stats, "no worker telemetry came back"
        for stats in report.worker_stats.values():
            assert stats["kernel_calls"]["detect_votes"] == stats["chunks"]

    try:
        # Warm-up BEFORE patching: the pool forks its workers here, so
        # they must inherit an unpatched engine.
        warm = run()
        assert warm.chunks == 8
        assert_fused(warm.parallel)

        def forbidden(name):
            def _raise(*args, **kwargs):
                raise AssertionError(
                    f"parallel verify called {name} in the coordinator — "
                    f"hashing belongs in the workers"
                )
            return _raise

        with pytest.MonkeyPatch.context() as patch:
            patch.setattr(KeyedDigestCache, "digest", forbidden("digest"))
            patch.setattr(
                KeyedDigestCache, "digest_many", forbidden("digest_many")
            )
            second = run()
            third = run()
        assert second.detected == warm.detected
        assert second.votes == warm.votes == third.votes
        assert_fused(second.parallel)
        assert_fused(third.parallel)
        # Warm engines: cumulative digests per worker stay within one
        # full-pass budget — values re-seen across runs are never
        # re-hashed.
        for report in (warm.parallel, second.parallel, third.parallel):
            for stats in report.worker_stats.values():
                assert stats["computed_digests"] <= full_pass_digests

        # The fused multi-pass tier: a fresh run state forks fresh
        # workers; the fused per-chunk tally stays bit-identical to the
        # single-process pass.
        keys = [MarkKey.from_seed(f"perf-smoke-mp:{p}") for p in range(3)]
        expecteds = [watermark] * 3
        results = stream_verify_multipass(
            TableChunkSource(table, chunk_size=500), keys, spec, expecteds,
            backend=VECTOR, workers=2,
        )
        serial = stream_verify_multipass(
            TableChunkSource(table, chunk_size=500), keys, spec, expecteds,
            backend=VECTOR,
        )
        assert len(results) == len(serial) == 3
        for got, want in zip(results, serial):
            assert got.matching_bits == want.matching_bits
            assert got.detection.watermark == want.detection.watermark
    finally:
        shutdown_stream_pool()

    elapsed = time.perf_counter() - started
    assert elapsed < 10.0, (
        f"parallel perf smoke took {elapsed:.2f}s (budget 10s)"
    )
