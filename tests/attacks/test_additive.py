"""Tests for the additive (re-watermarking) attack — the §6 open problem."""

import random

import pytest

from repro import Watermarker
from repro.attacks import AdditiveWatermarkAttack
from repro.core import verify


@pytest.fixture
def contested(item_scan, marker, watermark):
    """Owner marks; Mallory re-marks the stolen copy."""
    outcome = marker.embed(item_scan, watermark, "Item_Nbr")
    # Mallory picks e to fit the stolen relation's size (4k tuples): e=30
    # gives his keyed channel ~13 carriers per watermark bit.
    attack = AdditiveWatermarkAttack("Item_Nbr", e=30)
    stolen = attack.apply(outcome.table, random.Random(99))
    return outcome, attack, stolen


class TestAdditiveAttack:
    def test_owner_mark_survives_overwrite(self, contested, marker):
        outcome, attack, stolen = contested
        verdict = marker.verify(stolen, outcome.record)
        assert verdict.detected
        # damage is bounded by the carrier-overlap argument (~1/e_m of
        # owner carriers overwritten)
        assert verdict.association.mark_alteration <= 0.2

    def test_mallory_mark_also_detects(self, contested):
        _, attack, stolen = contested
        assert attack.mallory_key is not None
        mallory = Watermarker(attack.mallory_key, e=attack.e)
        verdict = mallory.verify(stolen, attack.mallory_record)
        assert verdict.detected

    def test_dispute_resolution_asymmetry(self, contested, marker, item_scan):
        """The classic tie-breaker: the owner's mark is in Mallory's copy,
        but Mallory's mark is NOT in the owner's original."""
        outcome, attack, stolen = contested
        mallory = Watermarker(attack.mallory_key, e=attack.e)
        # Mallory cannot show his mark in the owner's pre-theft data:
        against_original = mallory.verify(outcome.table, attack.mallory_record)
        assert not against_original.detected
        # while the owner can show hers in Mallory's published copy:
        assert marker.verify(stolen, outcome.record).detected

    def test_attack_preserves_relation_size(self, contested):
        outcome, _, stolen = contested
        assert len(stolen) == len(outcome.table)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdditiveWatermarkAttack("A", e=0)
        with pytest.raises(ValueError):
            AdditiveWatermarkAttack("A", watermark_length=0)

    def test_mallory_material_exposed_for_experiments(self, contested):
        _, attack, _ = contested
        assert attack.mallory_record is not None
        assert attack.mallory_record.spec.e == attack.e
