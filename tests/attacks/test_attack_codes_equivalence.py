"""Equivalence suite: code-level attack backend vs the row reference.

The ``codes`` attack backend (batched ``apply_codes`` / ``take`` /
``append_rows`` / ``with_mapped_column`` writes over ``int32`` column
codes) must be **bit-identical** to the historical per-row path for every
attack that implements it, under the exact same
``random.Random(f"attack:{seed}:{x}")`` draw sequence — including the
pk-collision and empty-subset edge cases — and the attacked relations
must then detect identically across all three execution backends.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.attacks import (
    ATTACK_CODES,
    ATTACK_ROWS,
    BijectiveRemapAttack,
    DataLossAttack,
    HorizontalPartitionAttack,
    PermutationRemapAttack,
    SubsetAdditionAttack,
    SubsetAlterationAttack,
)
from repro.core import Watermark, Watermarker
from repro.crypto import ENGINE, SCALAR, VECTOR, MarkKey
from repro.datagen import generate_item_scan
from repro.relational import (
    DuplicateKeyError,
    Table,
    make_categorical_attribute,
)
from repro.relational.schema import Attribute, Schema
from repro.relational.types import AttributeType


def _rng(x: float = 0.5, seed: int = 3) -> random.Random:
    return random.Random(f"attack:{seed}:{x}")


def _string_pk_table() -> Table:
    """String primary keys (exercises _fresh_keys' string branch) plus a
    non-key column with heavy duplication."""
    schema = Schema(
        (
            Attribute("tag", AttributeType.STRING),
            make_categorical_attribute("colour", ["red", "green", "blue"]),
        ),
        primary_key="tag",
    )
    rows = [
        (f"row-{i:03d}", ["red", "green", "blue", "green"][i % 4])
        for i in range(60)
    ]
    return Table(schema, rows, name="tags")


def _assert_same_relation(first: Table, second: Table) -> None:
    """Bit-identical: schema, name, physical order, every cell."""
    assert first.schema == second.schema
    assert first.name == second.name
    assert list(first) == list(second)


ATTACK_CASES = [
    ("alteration", lambda: SubsetAlterationAttack("Item_Nbr", 0.5, 0.7)),
    ("alteration-certain", lambda: SubsetAlterationAttack("Item_Nbr", 0.3, 1.0)),
    ("alteration-empty", lambda: SubsetAlterationAttack("Item_Nbr", 0.0, 0.7)),
    ("alteration-never-flips", lambda: SubsetAlterationAttack("Item_Nbr", 0.4, 0.0)),
    ("horizontal", lambda: HorizontalPartitionAttack(0.4)),
    ("horizontal-keep-all", lambda: HorizontalPartitionAttack(1.0)),
    ("loss", lambda: DataLossAttack(0.6)),
    ("loss-none", lambda: DataLossAttack(0.0)),
    ("addition", lambda: SubsetAdditionAttack(0.5)),
    ("addition-empty", lambda: SubsetAdditionAttack(0.0)),
    ("remap", lambda: BijectiveRemapAttack("Item_Nbr")),
    ("permute", lambda: PermutationRemapAttack("Item_Nbr")),
]


@pytest.fixture(scope="module")
def base_table() -> Table:
    return generate_item_scan(700, item_count=60, seed=11)


@pytest.fixture(scope="module")
def marked_table(base_table) -> Table:
    """A watermarked clone with warm codes — the sweep-cell input shape."""
    marker = Watermarker(MarkKey.from_seed("codes-eq"), e=20, engine=VECTOR)
    outcome = marker.embed(
        base_table, Watermark.from_int(0x2AB, 10), "Item_Nbr"
    )
    outcome.table.column_codes("Item_Nbr")
    return outcome.table


class TestRowsCodesEquivalence:
    @pytest.mark.parametrize(
        "label, factory", ATTACK_CASES, ids=[c[0] for c in ATTACK_CASES]
    )
    def test_bit_identical_on_warm_codes(self, marked_table, label, factory):
        attack = factory()
        attack.backend = ATTACK_ROWS
        via_rows = attack.apply(marked_table, _rng())
        attack.backend = ATTACK_CODES
        via_codes = attack.apply(marked_table, _rng())
        _assert_same_relation(via_rows, via_codes)

    @pytest.mark.parametrize(
        "label, factory", ATTACK_CASES, ids=[c[0] for c in ATTACK_CASES]
    )
    def test_bit_identical_on_cold_table(self, base_table, label, factory):
        """No cached factorization: the codes path factorizes itself."""
        attack = factory()
        cold = base_table.clone(name=base_table.name)  # cache-free twin
        attack.backend = ATTACK_ROWS
        via_rows = attack.apply(cold, _rng(0.7, seed=9))
        attack.backend = ATTACK_CODES
        via_codes = attack.apply(cold, _rng(0.7, seed=9))
        _assert_same_relation(via_rows, via_codes)

    def test_auto_backend_picks_codes_and_matches(self, marked_table):
        attack = SubsetAlterationAttack("Item_Nbr", 0.4, 0.7)
        assert attack.backend == "auto"
        auto = attack.apply(marked_table, _rng())
        attack.backend = ATTACK_ROWS
        rows = attack.apply(marked_table, _rng())
        _assert_same_relation(auto, rows)

    def test_string_pk_addition(self):
        """The pk-fresh-key string branch draws and lands identically."""
        table = _string_pk_table()
        attack = SubsetAdditionAttack(0.8)
        attack.backend = ATTACK_ROWS
        via_rows = attack.apply(table, _rng(1.0, seed=2))
        attack.backend = ATTACK_CODES
        via_codes = attack.apply(table, _rng(1.0, seed=2))
        _assert_same_relation(via_rows, via_codes)
        assert len(via_codes) == len(table) + round(0.8 * len(table))

    def test_codes_attack_keeps_factorizations_warm(self, marked_table):
        """The point of the fast path: the attacked clone re-detects on a
        *fresh* factorization without rebuilding it."""
        key_codes = marked_table.column_codes("Visit_Nbr")
        attack = SubsetAlterationAttack("Item_Nbr", 0.5, 0.7)
        attack.backend = ATTACK_CODES
        attacked = attack.apply(marked_table, _rng())
        # Key column untouched: the very same factorization object.
        assert attacked.column_codes("Visit_Nbr", build=False) is key_codes
        # Mark column rewritten: a fresh factorization was installed by
        # apply_codes (no rebuild needed), identical to a cold scan.
        installed = attacked.column_codes("Item_Nbr", build=False)
        assert installed is not None
        rebuilt = attacked.clone().column_codes("Item_Nbr")
        assert installed.uniques == rebuilt.uniques
        assert installed.codes.tolist() == rebuilt.codes.tolist()

    def test_take_keeps_subset_factorizations_canonical(self, marked_table):
        attack = DataLossAttack(0.5)
        attack.backend = ATTACK_CODES
        attacked = attack.apply(marked_table, _rng())
        for attribute in ("Visit_Nbr", "Item_Nbr"):
            installed = attacked.column_codes(attribute, build=False)
            assert installed is not None
            rebuilt = attacked.clone().column_codes(attribute)
            assert installed.uniques == rebuilt.uniques
            assert installed.codes.tolist() == rebuilt.codes.tolist()

    def test_append_rows_extends_factorizations(self, marked_table):
        attack = SubsetAdditionAttack(0.3)
        attack.backend = ATTACK_CODES
        attacked = attack.apply(marked_table, _rng())
        for attribute in ("Visit_Nbr", "Item_Nbr"):
            installed = attacked.column_codes(attribute, build=False)
            assert installed is not None
            rebuilt = attacked.clone().column_codes(attribute)
            assert installed.uniques == rebuilt.uniques
            assert installed.codes.tolist() == rebuilt.codes.tolist()

    def test_attacks_never_mutate_the_input(self, marked_table):
        snapshot = list(marked_table)
        for _, factory in ATTACK_CASES:
            attack = factory()
            attack.backend = ATTACK_CODES
            attack.apply(marked_table, _rng())
        assert list(marked_table) == snapshot


class TestDetectionBackendsOnAttacked:
    """Attacked relations verify identically on SCALAR / ENGINE / VECTOR,
    whichever attack backend produced them."""

    @pytest.mark.parametrize("attack_backend", [ATTACK_ROWS, ATTACK_CODES])
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: SubsetAlterationAttack("Item_Nbr", 0.5, 0.7),
            lambda: HorizontalPartitionAttack(0.5),
            lambda: SubsetAdditionAttack(0.4),
            lambda: PermutationRemapAttack("Item_Nbr"),
        ],
        ids=["alteration", "horizontal", "addition", "permute"],
    )
    def test_three_backend_verdicts_match(
        self, base_table, factory, attack_backend, monkeypatch
    ):
        from repro.core import kernels

        monkeypatch.setattr(kernels, "VECTOR_MIN_ROWS", 1)
        marker = Watermarker(MarkKey.from_seed("codes-eq-3b"), e=20)
        outcome = marker.embed(
            base_table, Watermark.from_int(0x155, 10), "Item_Nbr"
        )
        attack = factory()
        attack.backend = attack_backend
        attacked = attack.apply(outcome.table, _rng(0.5, seed=7))
        verdicts = []
        for backend in (SCALAR, ENGINE, VECTOR):
            checker = Watermarker(
                MarkKey.from_seed("codes-eq-3b"), e=20, engine=backend
            )
            result = checker.verify(attacked, outcome.record).association
            verdicts.append(
                (
                    result.matching_bits,
                    result.false_hit_probability,
                    result.detection.fit_count,
                    result.detection.slots_recovered,
                    result.detection.watermark.bits,
                )
            )
        assert verdicts[0] == verdicts[1] == verdicts[2]


class TestTableBatchPrimitives:
    def test_append_rows_rejects_pk_collision_atomically(self, base_table):
        table = base_table.clone()
        existing_key = next(iter(table.keys()))
        item = table.column_view("Item_Nbr")[0]
        version = table.version
        with pytest.raises(DuplicateKeyError):
            table.append_rows(
                [(existing_key + 10**9, item), (existing_key, item)]
            )
        assert table.version == version
        assert len(table) == len(base_table)

    def test_append_rows_rejects_in_batch_duplicates(self, base_table):
        table = base_table.clone()
        item = table.column_view("Item_Nbr")[0]
        version = table.version
        with pytest.raises(DuplicateKeyError):
            table.append_rows([(10**9 + 1, item), (10**9 + 1, item)])
        assert table.version == version

    def test_apply_codes_rejects_stale_base(self, marked_table):
        table = marked_table.clone()
        base = table.column_codes("Item_Nbr")
        table.set_value(next(iter(table.keys())), "Item_Nbr", base.uniques[0])
        with pytest.raises(ValueError):
            table.apply_codes("Item_Nbr", [0], [0], base)

    def test_apply_codes_rejects_primary_key(self, marked_table):
        table = marked_table.clone()
        from repro.relational import SchemaError

        with pytest.raises(SchemaError):
            table.apply_codes(
                "Visit_Nbr", [0], [0], table.column_codes("Visit_Nbr")
            )

    def test_with_mapped_column_non_injective_keeps_codes_sound(
        self, base_table
    ):
        """A merging (non-injective) mapping must not install codes with
        duplicate uniques — downstream codes consumers assume distinct."""
        table = base_table.clone()
        domain = table.schema.attribute("Item_Nbr").domain
        first, second = domain.values[0], domain.values[1]
        mapping = {value: value for value in domain.values}
        mapping[first] = second  # merge two values
        table.column_codes("Item_Nbr")
        mapped = table.with_mapped_column("Item_Nbr", mapping)
        installed = mapped.column_codes("Item_Nbr", build=False)
        if installed is not None:
            assert len(set(installed.uniques)) == len(installed.uniques)
        rebuilt = mapped.clone().column_codes("Item_Nbr")
        assert len(set(rebuilt.uniques)) == len(rebuilt.uniques)
        assert mapped.column_view("Item_Nbr").count(first) == 0

    def test_take_rejects_out_of_range(self, marked_table):
        with pytest.raises(IndexError):
            marked_table.take([0, len(marked_table)])

    def test_take_is_copy_on_write(self, base_table):
        table = base_table.clone()
        subset = table.take([0, 1, 2])
        key = next(iter(subset.keys()))
        original = table.value(key, "Item_Nbr")
        replacement = next(
            value
            for value in table.schema.attribute("Item_Nbr").domain.values
            if value != original
        )
        subset.set_value(key, "Item_Nbr", replacement)
        # the parent cell is untouched by the subset's write
        assert subset.value(key, "Item_Nbr") == replacement
        assert table.value(key, "Item_Nbr") == original


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    x=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    kind=st.sampled_from(
        ["alteration", "horizontal", "loss", "addition", "remap", "permute"]
    ),
    size=st.integers(min_value=0, max_value=80),
)
def test_property_rows_codes_bit_identical(seed, x, kind, size):
    """All four attack families, arbitrary strengths and table sizes."""
    table = generate_item_scan(size, item_count=12, seed=seed % 17)
    if kind == "alteration":
        attack = SubsetAlterationAttack("Item_Nbr", x, 0.7)
    elif kind == "horizontal":
        attack = HorizontalPartitionAttack(max(x, 1e-9))
    elif kind == "loss":
        attack = DataLossAttack(min(x, 1.0 - 1e-9))
    elif kind == "addition":
        attack = SubsetAdditionAttack(x)
    elif kind == "remap":
        attack = BijectiveRemapAttack("Item_Nbr")
    else:
        attack = PermutationRemapAttack("Item_Nbr")
    attack.backend = ATTACK_ROWS
    via_rows = attack.apply(table, _rng(x, seed))
    attack.backend = ATTACK_CODES
    via_codes = attack.apply(table, _rng(x, seed))
    _assert_same_relation(via_rows, via_codes)
