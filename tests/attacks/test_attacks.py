"""Tests for repro.attacks — the A1–A6 adversary toolkit."""

import random

import pytest

from repro.attacks import (
    BijectiveRemapAttack,
    CompositeAttack,
    DataLossAttack,
    HorizontalPartitionAttack,
    IdentityAttack,
    KeyRangePartitionAttack,
    PermutationRemapAttack,
    ShuffleAttack,
    SingleColumnAttack,
    SortAttack,
    SubsetAdditionAttack,
    SubsetAlterationAttack,
    TargetedValueAttack,
    VerticalPartitionAttack,
)


@pytest.fixture
def rng():
    return random.Random(99)


class TestIdentity:
    def test_copy_equals_input(self, tiny_table, rng):
        copy = IdentityAttack().apply(tiny_table, rng)
        assert copy == tiny_table
        assert copy is not tiny_table


class TestA1Horizontal:
    def test_keep_fraction(self, item_scan, rng):
        attacked = HorizontalPartitionAttack(0.4).apply(item_scan, rng)
        assert len(attacked) == round(0.4 * len(item_scan))

    def test_rows_are_subset(self, tiny_table, rng):
        attacked = HorizontalPartitionAttack(0.5).apply(tiny_table, rng)
        original = set(tiny_table)
        assert all(row in original for row in attacked)

    def test_data_loss_complements(self, item_scan, rng):
        attacked = DataLossAttack(0.25).apply(item_scan, rng)
        assert len(attacked) == round(0.75 * len(item_scan))

    def test_zero_loss_keeps_all(self, item_scan, rng):
        attacked = DataLossAttack(0.0).apply(item_scan, rng)
        assert len(attacked) == len(item_scan)

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            HorizontalPartitionAttack(0.0)
        with pytest.raises(ValueError):
            DataLossAttack(1.0)

    def test_key_range_is_contiguous(self, item_scan, rng):
        attacked = KeyRangePartitionAttack(0.3).apply(item_scan, rng)
        kept = sorted(attacked.keys())
        all_keys = sorted(item_scan.keys())
        start = all_keys.index(kept[0])
        assert all_keys[start:start + len(kept)] == kept

    def test_input_never_mutated(self, item_scan, rng):
        before = len(item_scan)
        HorizontalPartitionAttack(0.5).apply(item_scan, rng)
        assert len(item_scan) == before


class TestA2Addition:
    def test_adds_requested_fraction(self, item_scan, rng):
        attacked = SubsetAdditionAttack(0.2).apply(item_scan, rng)
        assert len(attacked) == len(item_scan) + round(0.2 * len(item_scan))

    def test_original_tuples_preserved(self, tiny_table, rng):
        attacked = SubsetAdditionAttack(0.5).apply(tiny_table, rng)
        for row in tiny_table:
            assert attacked.get(row[0]) == row

    def test_added_values_follow_domain(self, item_scan, rng):
        attacked = SubsetAdditionAttack(0.1).apply(item_scan, rng)
        domain = item_scan.schema.attribute("Item_Nbr").domain
        assert all(row[1] in domain for row in attacked)

    def test_string_key_tables_supported(self, rng):
        from repro.relational import (
            Attribute,
            AttributeType,
            CategoricalDomain,
            Schema,
            Table,
        )

        schema = Schema(
            (
                Attribute("K", AttributeType.STRING),
                Attribute(
                    "A", AttributeType.CATEGORICAL, CategoricalDomain(["p", "q"])
                ),
            ),
            primary_key="K",
        )
        table = Table(schema, [("a", "p"), ("b", "q")])
        attacked = SubsetAdditionAttack(1.0).apply(table, rng)
        assert len(attacked) == 4

    def test_zero_addition(self, tiny_table, rng):
        assert len(SubsetAdditionAttack(0.0).apply(tiny_table, rng)) == len(
            tiny_table
        )


class TestA3Alteration:
    def test_alters_about_the_requested_fraction(self, item_scan, rng):
        attacked = SubsetAlterationAttack("Item_Nbr", 0.5, 1.0).apply(
            item_scan, rng
        )
        changed = sum(
            attacked.get(key)[1] != row[1]
            for key, row in zip(item_scan.keys(), item_scan)
        )
        assert round(0.4 * len(item_scan)) < changed <= round(
            0.5 * len(item_scan)
        )

    def test_flip_probability_scales_damage(self, item_scan, rng):
        gentle = SubsetAlterationAttack("Item_Nbr", 0.5, 0.2).apply(
            item_scan, random.Random(1)
        )
        harsh = SubsetAlterationAttack("Item_Nbr", 0.5, 1.0).apply(
            item_scan, random.Random(1)
        )
        def damage(attacked):
            return sum(
                attacked.get(row[0])[1] != row[1] for row in item_scan
            )
        assert damage(gentle) < damage(harsh)

    def test_replacement_always_differs(self, tiny_table, rng):
        attacked = SubsetAlterationAttack("A", 1.0, 1.0).apply(tiny_table, rng)
        for row in tiny_table:
            assert attacked.get(row[0])[1] != row[1]

    def test_keys_unchanged(self, item_scan, rng):
        attacked = SubsetAlterationAttack("Item_Nbr", 0.3).apply(item_scan, rng)
        assert sorted(attacked.keys()) == sorted(item_scan.keys())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SubsetAlterationAttack("A", 1.5)
        with pytest.raises(ValueError):
            SubsetAlterationAttack("A", 0.5, -0.1)

    def test_targeted_merge(self, tiny_table, rng):
        attacked = TargetedValueAttack("A", {"red": "blue"}).apply(
            tiny_table, rng
        )
        assert "red" not in attacked.column("A")
        assert attacked.column("A").count("blue") == 3

    def test_targeted_merge_outside_domain_rejected(self, tiny_table, rng):
        with pytest.raises(ValueError):
            TargetedValueAttack("A", {"red": "plaid"}).apply(tiny_table, rng)


class TestA4Sorting:
    def test_shuffle_preserves_content(self, item_scan, rng):
        attacked = ShuffleAttack().apply(item_scan, rng)
        assert attacked == item_scan

    def test_sort_preserves_content(self, item_scan, rng):
        attacked = SortAttack("Item_Nbr").apply(item_scan, rng)
        assert attacked == item_scan
        column = attacked.column("Item_Nbr")
        assert column == sorted(column)


class TestA5Vertical:
    def test_projection_drops_attributes(self, sales, rng):
        attacked = VerticalPartitionAttack(["Item_Nbr", "Store_Nbr"]).apply(
            sales, rng
        )
        assert attacked.schema.names == ("Item_Nbr", "Store_Nbr")

    def test_single_column_keeps_multiset(self, sales, rng):
        attacked = SingleColumnAttack("Dept").apply(sales, rng)
        assert sorted(attacked.column("Dept")) == sorted(sales.column("Dept"))

    def test_single_column_synthetic_key(self, sales, rng):
        attacked = SingleColumnAttack("Dept").apply(sales, rng)
        assert attacked.primary_key == "_row"

    def test_empty_projection_rejected(self):
        with pytest.raises(ValueError):
            VerticalPartitionAttack([])


class TestA6Remap:
    def test_remap_is_bijective(self, bookings, rng):
        attack = BijectiveRemapAttack("Airline")
        attack.apply(bookings, rng)
        assert len(set(attack.mapping.values())) == len(attack.mapping)

    def test_remap_changes_every_value(self, bookings, rng):
        attack = BijectiveRemapAttack("Airline")
        attacked = attack.apply(bookings, rng)
        original_values = set(bookings.column("Airline"))
        attacked_values = set(attacked.column("Airline"))
        assert original_values.isdisjoint(attacked_values)

    def test_true_inverse_is_inverse(self, bookings, rng):
        attack = BijectiveRemapAttack("Airline")
        attack.apply(bookings, rng)
        for original, label in attack.mapping.items():
            assert attack.true_inverse[label] == original

    def test_remap_preserves_tuple_count(self, bookings, rng):
        attack = BijectiveRemapAttack("Airline")
        assert len(attack.apply(bookings, rng)) == len(bookings)

    def test_permutation_stays_in_domain(self, bookings, rng):
        attack = PermutationRemapAttack("Airline")
        attacked = attack.apply(bookings, rng)
        domain = bookings.schema.attribute("Airline").domain
        assert all(value in domain for value in attacked.column("Airline"))

    def test_permutation_moves_something(self, bookings, rng):
        attack = PermutationRemapAttack("Airline")
        attacked = attack.apply(bookings, rng)
        assert attacked.column("Airline") != bookings.column("Airline")

    def test_non_categorical_rejected(self, bookings, rng):
        with pytest.raises(ValueError):
            BijectiveRemapAttack("Ticket_Id").apply(bookings, rng)


class TestComposite:
    def test_stages_apply_in_order(self, item_scan, rng):
        composite = CompositeAttack(
            [DataLossAttack(0.5), SubsetAdditionAttack(0.1)]
        )
        attacked = composite.apply(item_scan, rng)
        survivors = round(0.5 * len(item_scan))
        assert len(attacked) == survivors + round(0.1 * survivors)

    def test_name_concatenates(self):
        composite = CompositeAttack([ShuffleAttack(), DataLossAttack(0.1)])
        assert "A4:shuffle" in composite.name
        assert "A1:data-loss" in composite.name

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeAttack([])
