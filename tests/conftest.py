"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro import MarkKey, Watermark, Watermarker
from repro.datagen import generate_bookings, generate_item_scan, generate_sales
from repro.relational import (
    Attribute,
    AttributeType,
    CategoricalDomain,
    Schema,
    Table,
)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def mark_key() -> MarkKey:
    return MarkKey.from_seed("test-key")


@pytest.fixture
def watermark() -> Watermark:
    return Watermark.from_int(0b1011001110, 10)


@pytest.fixture
def tiny_schema() -> Schema:
    """A minimal (K, A, B) schema matching the paper's model."""
    return Schema(
        (
            Attribute("K", AttributeType.INTEGER),
            Attribute(
                "A",
                AttributeType.CATEGORICAL,
                CategoricalDomain(["red", "green", "blue", "cyan"]),
            ),
            Attribute(
                "B",
                AttributeType.CATEGORICAL,
                CategoricalDomain(["x", "y", "z", "w"]),
            ),
        ),
        primary_key="K",
    )


@pytest.fixture
def tiny_table(tiny_schema: Schema) -> Table:
    rows = [
        (1, "red", "x"),
        (2, "green", "y"),
        (3, "blue", "z"),
        (4, "red", "x"),
        (5, "cyan", "w"),
        (6, "green", "x"),
    ]
    return Table(tiny_schema, rows, name="tiny")


@pytest.fixture(scope="session")
def item_scan():
    """A paper-shaped ItemScan relation, shared read-only across tests."""
    return generate_item_scan(4000, item_count=200, seed=99)


@pytest.fixture(scope="session")
def sales():
    return generate_sales(3000, item_count=150, seed=77)


@pytest.fixture(scope="session")
def bookings():
    return generate_bookings(8000, seed=55)


@pytest.fixture
def marker(mark_key: MarkKey) -> Watermarker:
    return Watermarker(mark_key, e=40)


@pytest.fixture
def marked_item_scan(item_scan, marker: Watermarker, watermark: Watermark):
    """(outcome, marker, watermark) for detection-oriented tests."""
    outcome = marker.embed(item_scan, watermark, "Item_Nbr")
    return outcome
