"""Tests for repro.numericwm — the [10] numeric-set watermark substrate."""

import random

import pytest

from repro.numericwm import (
    NumericSetError,
    detect_numeric_set,
    embed_numeric_set,
)

KEY = b"numeric-test-key"


class TestEmbed:
    def test_round_trip(self):
        values = [random.Random(1).uniform(0, 1) for _ in range(200)]
        bits = (1, 0, 1, 1, 0)
        embedding = embed_numeric_set(values, bits, KEY, quantum=0.01)
        detection = detect_numeric_set(embedding.values, 5, KEY, quantum=0.01)
        assert detection.bits == bits

    def test_distortion_bounded_by_quantum(self):
        values = [v / 100 for v in range(100)]
        embedding = embed_numeric_set(values, (1, 0), KEY, quantum=0.01)
        assert embedding.max_change <= 1.5 * 0.01 + 1e-12

    def test_values_land_on_cell_centres(self):
        values = [0.123, 0.456, 0.789]
        quantum = 0.01
        embedding = embed_numeric_set(values, (1,), KEY, quantum=quantum)
        for value in embedding.values:
            offset = (value / quantum) % 1.0
            assert offset == pytest.approx(0.5, abs=1e-9)

    def test_every_bit_gets_carriers(self):
        values = [v / 50 for v in range(50)]
        embedding = embed_numeric_set(values, (1, 0, 1), KEY, quantum=0.01)
        assert set(embedding.bit_assignment) == {0, 1, 2}

    def test_too_few_values_rejected(self):
        with pytest.raises(NumericSetError):
            embed_numeric_set([0.1], (1, 0), KEY, quantum=0.01)

    def test_invalid_quantum(self):
        with pytest.raises(NumericSetError):
            embed_numeric_set([0.1, 0.2], (1,), KEY, quantum=0.0)

    def test_invalid_bits(self):
        with pytest.raises(NumericSetError):
            embed_numeric_set([0.1, 0.2], (2,), KEY, quantum=0.01)

    def test_empty_bits_rejected(self):
        with pytest.raises(NumericSetError):
            embed_numeric_set([0.1, 0.2], (), KEY, quantum=0.01)

    def test_negative_values_never_produced_for_positive_input(self):
        values = [0.001, 0.002, 0.003]
        embedding = embed_numeric_set(values, (0, 1), KEY, quantum=0.01)
        assert all(value >= 0 for value in embedding.values)


class TestDetect:
    def test_survives_sub_half_quantum_noise(self):
        rng = random.Random(4)
        values = [rng.uniform(0, 1) for _ in range(300)]
        bits = (1, 0, 0, 1)
        quantum = 0.01
        embedding = embed_numeric_set(values, bits, KEY, quantum=quantum)
        noisy = [
            value + rng.uniform(-0.49 * quantum, 0.49 * quantum)
            for value in embedding.values
        ]
        assert detect_numeric_set(noisy, 4, KEY, quantum).bits == bits

    def test_majority_survives_partial_large_noise(self):
        rng = random.Random(4)
        values = [rng.uniform(0, 1) for _ in range(400)]
        bits = (1, 0, 0, 1)
        quantum = 0.01
        embedding = embed_numeric_set(values, bits, KEY, quantum=quantum)
        noisy = list(embedding.values)
        for index in rng.sample(range(len(noisy)), 100):  # 25% hit hard
            noisy[index] += rng.uniform(-5 * quantum, 5 * quantum)
        assert detect_numeric_set(noisy, 4, KEY, quantum).bits == bits

    def test_votes_reported(self):
        values = [v / 20 for v in range(20)]
        embedding = embed_numeric_set(values, (1, 0), KEY, quantum=0.01)
        detection = detect_numeric_set(embedding.values, 2, KEY, 0.01)
        assert sum(detection.votes_per_bit) == 20

    def test_label_separates_channels(self):
        values = [v / 50 for v in range(50)]
        bits = (1, 0, 1)
        embedding = embed_numeric_set(
            values, bits, KEY, quantum=0.01, label="alpha"
        )
        same = detect_numeric_set(
            embedding.values, 3, KEY, 0.01, label="alpha"
        )
        other = detect_numeric_set(
            embedding.values, 3, KEY, 0.01, label="beta"
        )
        assert same.bits == bits
        # different label shuffles the bit assignment; recovery unreliable
        assert same.bits != other.bits or same.confidence != other.confidence

    def test_invalid_watermark_length(self):
        with pytest.raises(NumericSetError):
            detect_numeric_set([0.1], 0, KEY, 0.01)
