"""Tests for repro.core.pipeline — the Watermarker facade + MarkRecord."""

import random

import pytest

from repro import MarkKey, Watermark, Watermarker
from repro.core import DetectionError, MarkRecord, SpecError
from repro.attacks import (
    BijectiveRemapAttack,
    DataLossAttack,
    ShuffleAttack,
    VerticalPartitionAttack,
)
from repro.quality import MaxAlterationFraction


class TestEmbed:
    def test_input_never_mutated(self, item_scan, marker, watermark):
        snapshot = item_scan.clone()
        marker.embed(item_scan, watermark, "Item_Nbr")
        assert item_scan == snapshot

    def test_outcome_carries_record_and_stats(self, marked_item_scan):
        outcome = marked_item_scan
        assert outcome.record.spec.mark_attribute == "Item_Nbr"
        assert outcome.embedding.fit_count > 0
        assert outcome.record.domain_values is not None

    def test_constraints_forwarded(self, item_scan, marker, watermark):
        outcome = marker.embed(
            item_scan,
            watermark,
            "Item_Nbr",
            constraints=[MaxAlterationFraction(0.001)],
        )
        assert outcome.embedding.applied <= round(0.001 * len(item_scan)) + 1

    def test_p_add_grows_relation(self, item_scan, marker, watermark):
        outcome = marker.embed(item_scan, watermark, "Item_Nbr", p_add=0.03)
        assert outcome.addition is not None
        assert len(outcome.table) == len(item_scan) + outcome.addition.added

    def test_frequency_channel_optional(self, item_scan, marker, watermark):
        plain = marker.embed(item_scan, watermark, "Item_Nbr")
        assert plain.record.frequency_record is None
        rich = marker.embed(
            item_scan, watermark, "Item_Nbr", with_frequency_channel=True
        )
        assert rich.record.frequency_record is not None

    def test_invalid_e_rejected(self, mark_key):
        with pytest.raises(SpecError):
            Watermarker(mark_key, e=0)


class TestVerify:
    def test_clean_verify_detects(self, marked_item_scan, marker):
        verdict = marker.verify(marked_item_scan.table, marked_item_scan.record)
        assert verdict.detected
        assert verdict.association is not None
        assert verdict.association.mark_alteration == 0.0

    def test_verify_after_shuffle(self, marked_item_scan, marker):
        attacked = ShuffleAttack().apply(
            marked_item_scan.table, random.Random(4)
        )
        assert marker.verify(attacked, marked_item_scan.record).detected

    def test_verify_after_moderate_loss(self, marked_item_scan, marker):
        attacked = DataLossAttack(0.3).apply(
            marked_item_scan.table, random.Random(4)
        )
        verdict = marker.verify(attacked, marked_item_scan.record)
        assert verdict.association.mark_alteration <= 0.2

    def test_unrelated_key_fails_detection(self, marked_item_scan):
        impostor = Watermarker(MarkKey.from_seed("impostor"), e=40)
        verdict = impostor.verify(
            marked_item_scan.table, marked_item_scan.record
        )
        assert not verdict.detected

    def test_no_surviving_channel_raises(self, marked_item_scan, marker):
        attacked = VerticalPartitionAttack(["Visit_Nbr"]).apply(
            marked_item_scan.table, random.Random(4)
        )
        with pytest.raises(DetectionError):
            marker.verify(attacked, marked_item_scan.record)

    def test_remap_recovery_requires_profile(self, marked_item_scan, marker):
        record = marked_item_scan.record
        stripped = MarkRecord(
            watermark=record.watermark,
            spec=record.spec,
            domain_values=record.domain_values,
        )
        with pytest.raises(DetectionError):
            marker.verify(
                marked_item_scan.table, stripped, try_remap_recovery=True
            )

    def test_summary_text(self, marked_item_scan, marker):
        verdict = marker.verify(marked_item_scan.table, marked_item_scan.record)
        assert "DETECTED" in verdict.summary()


class TestRemapScenario:
    def test_remap_recovered_on_skewed_domain(self, mark_key):
        from repro.datagen import generate_bookings

        bookings = generate_bookings(20000, seed=11)
        marker = Watermarker(mark_key, e=40)
        watermark = Watermark.from_int(0x2AB, 10)
        outcome = marker.embed(
            bookings, watermark, "Depart_City", with_frequency_channel=True
        )
        attack = BijectiveRemapAttack("Depart_City")
        attacked = attack.apply(outcome.table, random.Random(5))
        verdict = marker.verify(attacked, outcome.record, try_remap_recovery=True)
        assert verdict.detected
        assert verdict.association.detected  # recovered association channel

    def test_remap_without_recovery_fails_association(
        self, bookings, mark_key
    ):
        marker = Watermarker(mark_key, e=40)
        watermark = Watermark.from_int(0x2AB, 10)
        outcome = marker.embed(bookings, watermark, "Depart_City")
        attack = BijectiveRemapAttack("Depart_City")
        attacked = attack.apply(outcome.table, random.Random(5))
        verdict = marker.verify(attacked, outcome.record)
        assert not verdict.detected


class TestMarkRecord:
    def test_json_round_trip_minimal(self, marked_item_scan):
        record = marked_item_scan.record
        restored = MarkRecord.from_json(record.to_json())
        assert restored.watermark == record.watermark
        assert restored.spec == record.spec
        assert restored.domain_values == record.domain_values

    def test_json_round_trip_with_frequency(
        self, item_scan, marker, watermark
    ):
        outcome = marker.embed(
            item_scan, watermark, "Item_Nbr", with_frequency_channel=True
        )
        restored = MarkRecord.from_json(outcome.record.to_json())
        assert restored.frequency_record == outcome.record.frequency_record
        assert restored.frequency_profile == outcome.record.frequency_profile

    def test_json_round_trip_with_map_variant(
        self, item_scan, mark_key, watermark
    ):
        marker = Watermarker(mark_key, e=40, variant="map")
        outcome = marker.embed(item_scan, watermark, "Item_Nbr")
        restored = MarkRecord.from_json(outcome.record.to_json())
        assert restored.embedding_map == outcome.record.embedding_map

    def test_record_contains_no_key_material(self, marked_item_scan, mark_key):
        payload = marked_item_scan.record.to_json()
        assert mark_key.k1.hex() not in payload
        assert mark_key.k2.hex() not in payload

    def test_malformed_json_raises(self):
        with pytest.raises(SpecError):
            MarkRecord.from_json('{"watermark": "10"}')

    def test_detached_verification_from_record_json(
        self, marked_item_scan, mark_key
    ):
        """The escrow workflow: a fresh Watermarker + deserialised record
        must verify without any state from embedding time."""
        record = MarkRecord.from_json(marked_item_scan.record.to_json())
        fresh = Watermarker(mark_key, e=record.spec.e)
        verdict = fresh.verify(marked_item_scan.table, record)
        assert verdict.detected
