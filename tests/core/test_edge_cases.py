"""Edge cases across the embedding/detection core.

Unusual-but-legal inputs: string and composite keys, Unicode categorical
values, minimum-size domains, extreme ``e`` values, empty and tiny
relations.
"""

import pytest

from repro import MarkKey, Watermark, Watermarker
from repro.core import (
    BandwidthError,
    detect,
    embed,
    make_spec,
)
from repro.relational import (
    Attribute,
    AttributeType,
    CategoricalDomain,
    Schema,
    Table,
)


def make_table(values, keys, key_type=AttributeType.STRING):
    schema = Schema(
        (
            Attribute("K", key_type),
            Attribute(
                "A", AttributeType.CATEGORICAL, CategoricalDomain(values)
            ),
        ),
        primary_key="K",
    )
    rows = [(key, values[i % len(values)]) for i, key in enumerate(keys)]
    return Table(schema, rows)


class TestKeyTypes:
    def test_string_primary_keys(self, mark_key):
        table = make_table(
            [f"v{i}" for i in range(16)],
            [f"order-{i:05d}" for i in range(2000)],
        )
        watermark = Watermark.from_int(0b101101, 6)
        spec = make_spec(table, watermark, "A", e=20)
        embed(table, watermark, mark_key, spec)
        assert detect(table, mark_key, spec).watermark == watermark

    def test_unicode_values_and_keys(self, mark_key):
        cities = ["Zürich", "北京", "São Paulo", "Кыив", "Ōsaka", "Ålesund",
                  "Łódź", "İstanbul"]
        table = make_table(
            cities, [f"билет-{i}" for i in range(1500)]
        )
        watermark = Watermark.from_int(0b1011, 4)
        spec = make_spec(table, watermark, "A", e=15)
        embed(table, watermark, mark_key, spec)
        assert detect(table, mark_key, spec).watermark == watermark

    def test_unicode_survives_csv_round_trip(self, mark_key, tmp_path):
        from repro.relational import read_csv, write_csv

        cities = ["Zürich", "北京", "São Paulo", "Ōsaka"]
        table = make_table(cities, [f"k{i}" for i in range(800)])
        watermark = Watermark.from_int(0b10, 2)
        spec = make_spec(table, watermark, "A", e=10)
        embed(table, watermark, mark_key, spec)
        path = tmp_path / "unicode.csv"
        write_csv(table, path)
        restored = read_csv(path, table.schema)
        assert detect(restored, mark_key, spec).watermark == watermark


class TestDomainSizes:
    def test_two_value_domain_carries_bits(self, mark_key):
        table = make_table(["no", "yes"], [f"k{i}" for i in range(3000)])
        watermark = Watermark.from_int(0b101, 3)
        spec = make_spec(table, watermark, "A", e=10)
        embed(table, watermark, mark_key, spec)
        assert detect(table, mark_key, spec).watermark == watermark

    def test_three_value_domain_uses_one_pair(self, mark_key):
        # floor(3/2) = 1 pair: only values a_0/a_1 are ever written
        table = make_table(["a", "b", "c"], [f"k{i}" for i in range(2000)])
        watermark = Watermark.from_int(0b11, 2)
        spec = make_spec(table, watermark, "A", e=10)
        embed(table, watermark, mark_key, spec)
        domain = table.schema.attribute("A").domain
        from repro.core import fit_keys

        for key in fit_keys(table, "K", mark_key.k1, 10):
            value = table.value(key, "A")
            assert domain.index_of(value) < 2
        assert detect(table, mark_key, spec).watermark == watermark

    def test_single_value_domain_rejected(self, mark_key):
        table = make_table(["only"], [f"k{i}" for i in range(100)])
        watermark = Watermark.from_int(0b1, 1)
        with pytest.raises(BandwidthError):
            make_spec(table, watermark, "A", e=5)


class TestExtremeE:
    def test_e_equals_one_marks_everything(self, mark_key):
        table = make_table(
            [f"v{i}" for i in range(8)], [f"k{i}" for i in range(500)]
        )
        watermark = Watermark.from_int(0b10, 2)
        spec = make_spec(table, watermark, "A", e=1)
        result = embed(table, watermark, mark_key, spec)
        assert result.fit_count == len(table)
        assert detect(table, mark_key, spec).watermark == watermark

    def test_huge_e_tiny_channel(self, mark_key):
        table = make_table(
            [f"v{i}" for i in range(8)], [f"k{i}" for i in range(500)]
        )
        watermark = Watermark.from_int(0b1, 1)
        spec = make_spec(table, watermark, "A", e=100)
        result = embed(table, watermark, mark_key, spec)
        # ~5 carriers; a 1-bit payload still detects
        if result.fit_count > 0:
            assert detect(table, mark_key, spec).watermark == watermark


class TestDegenerateRelations:
    def test_empty_table_detection_yields_nothing(self, mark_key):
        table = make_table(["a", "b"], [])
        watermark = Watermark.from_int(0b1, 1)
        spec = make_spec(table, watermark, "A", e=5)
        result = detect(table, mark_key, spec)
        assert result.fit_count == 0
        assert result.slots_recovered == 0
        assert result.mean_confidence == 0.0

    def test_facade_on_tiny_relation(self, mark_key):
        table = make_table(["a", "b", "c", "d"],
                           [f"k{i}" for i in range(120)])
        marker = Watermarker(mark_key, e=4)
        watermark = Watermark.from_int(0b101, 3)
        outcome = marker.embed(table, watermark, "A")
        verdict = marker.verify(outcome.table, outcome.record)
        assert verdict.association.matching_bits == 3

    def test_composite_tuple_values(self, mark_key):
        # hashable tuple values are legal categorical members
        values = [("US", "NY"), ("US", "CA"), ("DE", "BE"), ("FR", "75")]
        table = make_table(values, [f"k{i}" for i in range(1000)])
        watermark = Watermark.from_int(0b01, 2)
        spec = make_spec(table, watermark, "A", e=8)
        embed(table, watermark, mark_key, spec)
        assert detect(table, mark_key, spec).watermark == watermark
