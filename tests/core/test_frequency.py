"""Tests for repro.core.frequency — the §4.2 histogram channel."""

import random

import pytest

from repro.core import (
    BandwidthError,
    FrequencyMarkRecord,
    SpecError,
    Watermark,
    default_quantum,
    detect_frequency,
    embed_frequency,
    verify_frequency,
)
from repro.attacks import DataLossAttack, SingleColumnAttack
from repro.datagen import generate_item_scan


@pytest.fixture
def short_mark():
    return Watermark.from_int(0b1100101, 7)


@pytest.fixture
def freq_marked(short_mark, mark_key):
    table = generate_item_scan(15000, item_count=120, seed=31)
    marked = table.clone()
    result = embed_frequency(marked, short_mark, mark_key, "Item_Nbr")
    return table, marked, result


class TestEmbed:
    def test_relation_size_preserved(self, freq_marked):
        original, marked, _ = freq_marked
        assert len(marked) == len(original)

    def test_target_counts_realised(self, freq_marked, mark_key):
        _, marked, result = freq_marked
        from repro.relational import count_vector

        assert tuple(count_vector(marked, "Item_Nbr")) == result.target_counts

    def test_relabel_count_matches_half_l1(self, freq_marked):
        _, _, result = freq_marked
        moved = sum(
            max(0, target - original)
            for target, original in zip(
                result.target_counts, result.original_counts
            )
        )
        assert result.relabelled == moved

    def test_distortion_is_moderate(self, freq_marked):
        _, _, result = freq_marked
        assert result.relabelled_fraction < 0.25

    def test_non_categorical_attribute_rejected(self, short_mark, mark_key):
        table = generate_item_scan(500, item_count=30, seed=1)
        with pytest.raises(SpecError):
            embed_frequency(table.clone(), short_mark, mark_key, "Visit_Nbr")

    def test_empty_relation_rejected(self, short_mark, mark_key, tiny_schema):
        from repro.relational import Table

        with pytest.raises(BandwidthError):
            embed_frequency(Table(tiny_schema), short_mark, mark_key, "A")

    def test_invalid_quantum_rejected(self, short_mark, mark_key):
        table = generate_item_scan(500, item_count=30, seed=1)
        with pytest.raises(SpecError):
            embed_frequency(
                table.clone(), short_mark, mark_key, "Item_Nbr", quantum=1.5
            )

    def test_default_quantum(self):
        # ~1/(4*nA), with a half-integer reciprocal (see docstring)
        assert default_quantum(100) == pytest.approx(2 / 801)
        assert (1 / default_quantum(100)) % 1 == pytest.approx(0.5)
        with pytest.raises(SpecError):
            default_quantum(0)


class TestDetect:
    def test_clean_round_trip(self, freq_marked, mark_key, short_mark):
        _, marked, result = freq_marked
        assert detect_frequency(marked, mark_key, result.record) == short_mark

    def test_survives_single_column_partition(
        self, freq_marked, mark_key, short_mark
    ):
        _, marked, result = freq_marked
        attacked = SingleColumnAttack("Item_Nbr").apply(marked, random.Random(2))
        verdict = verify_frequency(attacked, mark_key, result.record, short_mark)
        assert verdict.detected

    def test_survives_majority_data_loss(self, freq_marked, mark_key, short_mark):
        """Frequencies are scale-free: uniform row loss preserves them in
        expectation, so the channel rides out even 60% loss."""
        _, marked, result = freq_marked
        attacked = DataLossAttack(0.6).apply(marked, random.Random(2))
        verdict = verify_frequency(attacked, mark_key, result.record, short_mark)
        assert verdict.matching_bits >= len(short_mark) - 1

    def test_unmarked_data_random_match(self, mark_key, short_mark):
        table = generate_item_scan(15000, item_count=120, seed=32)
        record = FrequencyMarkRecord(
            attribute="Item_Nbr",
            watermark_length=len(short_mark),
            quantum=default_quantum(120),
            domain_values=table.schema.attribute("Item_Nbr").domain.values,
        )
        verdict = verify_frequency(table, mark_key, record, short_mark)
        assert verdict.matching_bits < len(short_mark)

    def test_missing_attribute_raises(self, freq_marked, mark_key, short_mark):
        _, marked, result = freq_marked
        from repro.relational import project

        suspect = project(marked, ["Visit_Nbr"])
        with pytest.raises(Exception):
            detect_frequency(suspect, mark_key, result.record)

    def test_record_round_trip(self, freq_marked):
        _, _, result = freq_marked
        restored = FrequencyMarkRecord.from_dict(result.record.to_dict())
        assert restored == result.record

    def test_wrong_expected_length_rejected(
        self, freq_marked, mark_key
    ):
        _, marked, result = freq_marked
        with pytest.raises(Exception):
            verify_frequency(marked, mark_key, result.record, Watermark((1,)))
