"""Tests for repro.core.detection — blind decoding (§3.2.2) and verdicts."""

import random

import pytest

from repro.core import (
    DetectionError,
    Watermark,
    detect,
    embed,
    extract_slots,
    false_hit_probability,
    make_spec,
    verify,
)
from repro.crypto import MarkKey
from repro.datagen import generate_item_scan
from repro.relational import shuffle


@pytest.fixture
def marked(item_scan, mark_key, watermark):
    table = item_scan.clone()
    spec = make_spec(table, watermark, "Item_Nbr", e=40)
    embed(table, watermark, mark_key, spec)
    return table, spec


class TestDetect:
    def test_clean_detection_recovers_watermark(
        self, marked, mark_key, watermark
    ):
        table, spec = marked
        result = detect(table, mark_key, spec)
        assert result.watermark == watermark

    def test_detection_is_blind(self, marked, mark_key, watermark):
        """Only the suspect table, keys and spec are needed — detection
        never sees the original relation."""
        table, spec = marked
        standalone = table.clone()
        assert detect(standalone, mark_key, spec).watermark == watermark

    def test_detection_survives_reordering(self, marked, mark_key, watermark):
        table, spec = marked
        reordered = shuffle(table, random.Random(3))
        assert detect(reordered, mark_key, spec).watermark == watermark

    def test_wrong_key_fails(self, marked, watermark):
        table, spec = marked
        wrong = MarkKey.from_seed("totally-different")
        detected = detect(table, wrong, spec).watermark
        # random agreement only: not a full match
        assert detected.matching_bits(watermark) < len(watermark)

    def test_unmarked_data_gives_random_bits(self, mark_key, watermark):
        table = generate_item_scan(3000, item_count=100, seed=5)
        spec = make_spec(table, watermark, "Item_Nbr", e=30)
        detected = detect(table, mark_key, spec).watermark
        assert detected.matching_bits(watermark) < len(watermark)

    def test_map_variant_requires_map(self, item_scan, mark_key, watermark):
        table = item_scan.clone()
        spec = make_spec(table, watermark, "Item_Nbr", e=40, variant="map")
        result = embed(table, watermark, mark_key, spec)
        with pytest.raises(DetectionError):
            detect(table, mark_key, spec)
        detected = detect(
            table, mark_key, spec, embedding_map=result.embedding_map
        )
        assert detected.watermark == watermark

    def test_out_of_domain_values_skipped(self, marked, mark_key, watermark):
        table, spec = marked
        from repro.relational import CategoricalDomain

        # restrict the decode domain to half the catalogue: foreign values
        # must be skipped, not crash detection
        domain = table.schema.attribute("Item_Nbr").domain
        half = CategoricalDomain(domain.values[: domain.size // 2])
        result = detect(table, mark_key, spec, domain=half)
        assert result.slots_recovered <= spec.channel_length

    def test_slot_coverage_reported(self, marked, mark_key):
        table, spec = marked
        result = detect(table, mark_key, spec)
        assert 0.0 < result.slot_coverage <= 1.0
        assert result.fit_count > 0


class TestExtractSlots:
    def test_slots_have_channel_length(self, marked, mark_key):
        table, spec = marked
        slots, fit_count = extract_slots(table, mark_key, spec)
        assert len(slots) == spec.channel_length
        assert fit_count > 0

    def test_value_mapping_applied(self, marked, mark_key, watermark):
        table, spec = marked
        # fake remap: shift every item code by +1, then map back
        from repro.relational import Table

        domain = table.schema.attribute("Item_Nbr").domain
        forward = {value: ("x", value) for value in domain.values}
        inverse = {("x", value): value for value in domain.values}
        from repro.relational import (
            Attribute,
            AttributeType,
            CategoricalDomain,
        )

        remapped_schema = table.schema.replace_attribute(
            Attribute(
                "Item_Nbr",
                AttributeType.CATEGORICAL,
                CategoricalDomain(forward.values()),
            )
        )
        remapped = Table(
            remapped_schema,
            (
                (row[0], forward[row[1]])
                for row in table
            ),
        )
        result = detect(
            remapped, mark_key, spec, domain=domain, value_mapping=inverse
        )
        assert result.watermark == watermark


class TestFalseHitProbability:
    def test_full_match_is_half_power_length(self):
        assert false_hit_probability(10, 10) == pytest.approx(0.5 ** 10)

    def test_zero_matches_is_one(self):
        assert false_hit_probability(0, 10) == pytest.approx(1.0)

    def test_monotone_decreasing_in_matches(self):
        values = [false_hit_probability(m, 20) for m in range(21)]
        assert values == sorted(values, reverse=True)

    def test_out_of_range_rejected(self):
        with pytest.raises(DetectionError):
            false_hit_probability(11, 10)


class TestVerify:
    def test_clean_verification_detects(self, marked, mark_key, watermark):
        table, spec = marked
        verdict = verify(table, mark_key, spec, watermark)
        assert verdict.detected
        assert verdict.mark_alteration == 0.0
        assert verdict.matching_bits == len(watermark)

    def test_wrong_claim_not_detected(self, marked, mark_key, watermark):
        table, spec = marked
        wrong_claim = Watermark(tuple(1 - bit for bit in watermark.bits))
        verdict = verify(table, mark_key, spec, wrong_claim)
        assert not verdict.detected
        assert verdict.mark_alteration == 1.0

    def test_expected_length_mismatch_rejected(self, marked, mark_key):
        table, spec = marked
        with pytest.raises(DetectionError):
            verify(table, mark_key, spec, Watermark((1, 0)))

    def test_summary_mentions_verdict(self, marked, mark_key, watermark):
        table, spec = marked
        verdict = verify(table, mark_key, spec, watermark)
        assert "DETECTED" in verdict.summary()

    def test_significance_controls_verdict(self, marked, mark_key, watermark):
        table, spec = marked
        strict = verify(
            table, mark_key, spec, watermark, significance=1e-6
        )
        # 10-bit full match has p = 2^-10 ~ 1e-3: fails a 1e-6 bar
        assert not strict.detected
        lax = verify(table, mark_key, spec, watermark, significance=1e-2)
        assert lax.detected


class TestExactBinomialTail:
    """false_hit_probability is now exact math.comb arithmetic — §4.4's
    binomial tail with no scipy import at module load (sweep-pool workers
    start without it).  Cross-check the full grid against scipy."""

    def test_matches_scipy_to_1e_12(self):
        from scipy import stats

        for length in (1, 2, 5, 10, 16, 24, 37, 64, 100):
            for matches in range(length + 1):
                exact = false_hit_probability(matches, length)
                reference = float(stats.binom.sf(matches - 1, length, 0.5))
                assert exact == pytest.approx(reference, abs=1e-12), (
                    matches,
                    length,
                )

    def test_edge_values(self):
        assert false_hit_probability(0, 10) == 1.0
        assert false_hit_probability(10, 10) == pytest.approx(0.5**10)

    def test_detection_module_does_not_import_scipy(self):
        """The worker-startup win: importing the detection module (and the
        whole core package) must not pull scipy in."""
        import subprocess
        import sys

        import os

        probe = (
            "import sys; import repro.core.detection; "
            "sys.exit(1 if 'scipy' in sys.modules else 0)"
        )
        result = subprocess.run(
            [sys.executable, "-c", probe],
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=__file__.rsplit("/tests/", 1)[0],
        )
        assert result.returncode == 0, "repro.core.detection imported scipy"
