"""Tests for repro.core.incremental — §4.3 on-the-fly updates."""

import pytest

from repro.core import (
    IncrementalWatermarker,
    SpecError,
    verify_watermark_consistency,
)


@pytest.fixture
def live(item_scan, marker, watermark):
    outcome = marker.embed(item_scan, watermark, "Item_Nbr")
    wrapper = IncrementalWatermarker(
        outcome.table, marker.key, outcome.record
    )
    return wrapper, outcome, marker


class TestConstruction:
    def test_map_variant_rejected(self, item_scan, mark_key, watermark):
        from repro import Watermarker

        marker = Watermarker(mark_key, e=40, variant="map")
        outcome = marker.embed(item_scan, watermark, "Item_Nbr")
        with pytest.raises(SpecError):
            IncrementalWatermarker(outcome.table, mark_key, outcome.record)

    def test_freshly_marked_table_audits_clean(self, live):
        wrapper, _, _ = live
        assert wrapper.audit() == 0

    def test_consistency_helper(self, live):
        wrapper, outcome, marker = live
        assert verify_watermark_consistency(
            wrapper.table, marker.key, outcome.record.watermark,
            outcome.record.spec,
        )


class TestInsert:
    def test_inserted_carriers_marked_on_the_fly(self, live):
        wrapper, outcome, marker = live
        domain = wrapper.table.schema.attribute("Item_Nbr").domain
        carriers = 0
        for offset in range(400):
            key_value = 90_000_000 + offset
            carriers += wrapper.insert((key_value, domain.value_at(0)))
        # ~1/e of inserts are carriers
        assert 1 <= carriers <= 400 / marker.e * 3
        assert wrapper.audit() == 0

    def test_inserts_keep_detection_exact(self, live):
        wrapper, outcome, marker = live
        domain = wrapper.table.schema.attribute("Item_Nbr").domain
        for offset in range(500):
            wrapper.insert((91_000_000 + offset, domain.value_at(offset % 5)))
        verdict = marker.verify(wrapper.table, outcome.record)
        assert verdict.association.mark_alteration == 0.0

    def test_stats_counters(self, live):
        wrapper, _, _ = live
        domain = wrapper.table.schema.attribute("Item_Nbr").domain
        for offset in range(100):
            wrapper.insert((92_000_000 + offset, domain.value_at(0)))
        assert wrapper.stats.inserted == 100
        assert wrapper.stats.inserted_carriers >= 0


class TestValueUpdates:
    def test_carrier_value_update_is_remarked(self, live):
        wrapper, outcome, marker = live
        # find a carrier
        carrier = next(
            key for key in wrapper.table.keys()
            if wrapper.expected_value(key) is not None
        )
        domain = wrapper.table.schema.attribute("Item_Nbr").domain
        expected = wrapper.expected_value(carrier)
        wrong = next(v for v in domain.values if v != expected)
        wrapper.set_value(carrier, "Item_Nbr", wrong)
        assert wrapper.table.value(carrier, "Item_Nbr") == expected
        assert wrapper.stats.value_updates_reverted == 1
        assert wrapper.audit() == 0

    def test_non_carrier_update_untouched(self, live):
        wrapper, _, _ = live
        non_carrier = next(
            key for key in wrapper.table.keys()
            if wrapper.expected_value(key) is None
        )
        domain = wrapper.table.schema.attribute("Item_Nbr").domain
        wrapper.set_value(non_carrier, "Item_Nbr", domain.value_at(1))
        assert wrapper.table.value(non_carrier, "Item_Nbr") == \
            domain.value_at(1)


class TestKeyUpdates:
    def test_rekeyed_tuple_reevaluated(self, live):
        wrapper, outcome, marker = live
        some_key = next(iter(wrapper.table.keys()))
        wrapper.change_key(some_key, 95_000_001)
        assert wrapper.audit() == 0

    def test_many_rekeys_keep_detection(self, live):
        wrapper, outcome, marker = live
        keys = list(wrapper.table.keys())[:300]
        for index, key in enumerate(keys):
            wrapper.change_key(key, 96_000_000 + index)
        verdict = marker.verify(wrapper.table, outcome.record)
        assert verdict.association.mark_alteration == 0.0


class TestDriftRepair:
    def test_bypassing_writes_detected_and_repaired(self, live):
        wrapper, _, _ = live
        domain = wrapper.table.schema.attribute("Item_Nbr").domain
        drifted = 0
        for key in list(wrapper.table.keys()):
            expected = wrapper.expected_value(key)
            if expected is None:
                continue
            wrong = next(v for v in domain.values if v != expected)
            wrapper.table.set_value(key, "Item_Nbr", wrong)  # bypass!
            drifted += 1
            if drifted == 10:
                break
        assert wrapper.audit() == 10
        assert wrapper.repair() == 10
        assert wrapper.audit() == 0

    def test_delete_carrier_tolerated(self, live):
        wrapper, outcome, marker = live
        carrier = next(
            key for key in wrapper.table.keys()
            if wrapper.expected_value(key) is not None
        )
        wrapper.delete(carrier)
        verdict = marker.verify(wrapper.table, outcome.record)
        assert verdict.detected
