"""Tests for repro.core.watermark — the payload bit string."""

import random

import pytest

from repro.core import Watermark, WatermarkingError


class TestConstruction:
    def test_bits_stored(self):
        assert Watermark((1, 0, 1)).bits == (1, 0, 1)

    def test_empty_rejected(self):
        with pytest.raises(WatermarkingError):
            Watermark(())

    def test_non_bits_rejected(self):
        with pytest.raises(WatermarkingError):
            Watermark((1, 2))

    def test_from_text_round_trip(self):
        mark = Watermark.from_text("(c) ACME 2004")
        assert mark.to_text() == "(c) ACME 2004"
        assert len(mark) == 8 * len("(c) ACME 2004")

    def test_from_text_empty_rejected(self):
        with pytest.raises(WatermarkingError):
            Watermark.from_text("")

    def test_from_int_round_trip(self):
        mark = Watermark.from_int(0b1011001110, 10)
        assert mark.to_int() == 0b1011001110
        assert len(mark) == 10

    def test_from_int_leading_zeroes_preserved(self):
        mark = Watermark.from_int(1, 8)
        assert mark.to_bitstring() == "00000001"

    def test_from_int_overflow_rejected(self):
        with pytest.raises(WatermarkingError):
            Watermark.from_int(16, 4)

    def test_from_hex(self):
        mark = Watermark.from_hex("ff")
        assert mark.to_bitstring() == "11111111"

    def test_from_hex_with_length(self):
        mark = Watermark.from_hex("3", 4)
        assert mark.to_bitstring() == "0011"

    def test_random_length_and_determinism(self):
        first = Watermark.random(16, random.Random(5))
        second = Watermark.random(16, random.Random(5))
        assert len(first) == 16
        assert first == second

    def test_to_text_requires_whole_bytes(self):
        with pytest.raises(WatermarkingError):
            Watermark((1, 0, 1)).to_text()


class TestComparison:
    def test_matching_bits_identity(self):
        mark = Watermark((1, 0, 1, 1))
        assert mark.matching_bits(mark) == 4

    def test_hamming_distance(self):
        assert Watermark((1, 0, 1)).hamming_distance((1, 1, 1)) == 1

    def test_alteration_fraction(self):
        assert Watermark((1, 0, 1, 0)).alteration((1, 0, 0, 1)) == pytest.approx(0.5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(WatermarkingError):
            Watermark((1, 0)).matching_bits((1, 0, 1))

    def test_comparison_accepts_plain_sequences(self):
        assert Watermark((1, 0)).matching_bits([1, 1]) == 1

    def test_equality_and_hash(self):
        assert Watermark((1, 0)) == Watermark((1, 0))
        assert hash(Watermark((1, 0))) == hash(Watermark((1, 0)))
        assert Watermark((1, 0)) != Watermark((0, 1))

    def test_indexing_and_iteration(self):
        mark = Watermark((1, 0, 1))
        assert mark[0] == 1
        assert list(mark) == [1, 0, 1]
