"""Tests for repro.core.remapping — §4.5 bijective remap recovery."""

import random

import pytest

from repro.core import (
    FrequencyProfile,
    apply_mapping,
    estimate_profile,
    recover_mapping,
    recovery_quality,
)
from repro.core.remapping import UNRECOVERED
from repro.attacks import BijectiveRemapAttack, PermutationRemapAttack
from repro.datagen import generate_bookings, generate_item_scan


class TestProfile:
    def test_capture_sorted_descending(self, bookings):
        profile = FrequencyProfile.capture(bookings, "Depart_City")
        frequencies = [freq for _, freq in profile.frequencies]
        assert frequencies == sorted(frequencies, reverse=True)

    def test_frequencies_sum_to_one(self, bookings):
        profile = FrequencyProfile.capture(bookings, "Depart_City")
        assert sum(freq for _, freq in profile.frequencies) == pytest.approx(1.0)

    def test_dict_round_trip(self, bookings):
        profile = FrequencyProfile.capture(bookings, "Depart_City")
        assert FrequencyProfile.from_dict(profile.to_dict()) == profile

    def test_empty_relation_rejected(self, tiny_schema):
        from repro.relational import Table

        with pytest.raises(Exception):
            FrequencyProfile.capture(Table(tiny_schema), "A")

    def test_estimate_equals_capture(self, bookings):
        assert estimate_profile(bookings, "Depart_City") == \
            FrequencyProfile.capture(bookings, "Depart_City")


class TestRecovery:
    def test_recovers_skewed_mapping_fully(self):
        """With many samples per value ("over large data sets", §4.5) the
        frequency fingerprint pins down the whole mapping."""
        table = generate_bookings(50000, seed=11)
        profile = FrequencyProfile.capture(table, "Depart_City")
        attack = BijectiveRemapAttack("Depart_City")
        attacked = attack.apply(table, random.Random(3))
        recovered = recover_mapping(attacked, profile)
        assert recovery_quality(attack.true_inverse, recovered) == 1.0

    def test_recovery_mostly_correct_at_moderate_size(self, bookings):
        profile = FrequencyProfile.capture(bookings, "Depart_City")
        attack = BijectiveRemapAttack("Depart_City")
        attacked = attack.apply(bookings, random.Random(3))
        recovered = recover_mapping(attacked, profile)
        assert recovery_quality(attack.true_inverse, recovered) >= 0.85

    def test_recovers_permutation(self, bookings):
        profile = FrequencyProfile.capture(bookings, "Depart_City")
        attack = PermutationRemapAttack("Depart_City")
        attacked = attack.apply(bookings, random.Random(3))
        recovered = recover_mapping(attacked, profile)
        assert recovery_quality(attack.true_inverse, recovered) >= 0.9

    def test_uniform_distribution_defeats_recovery(self):
        """The paper's negative case: uniformly distributed values carry no
        distinguishing frequency property.  A verbatim relabeled copy still
        preserves exact count ranks, so the realistic suspect — remapped
        *and* subsampled — is what defeats rank alignment."""
        from repro.attacks import DataLossAttack

        table = generate_item_scan(
            20000, item_count=50, zipf_exponent=0.0, seed=8
        )
        profile = FrequencyProfile.capture(table, "Item_Nbr")
        attack = BijectiveRemapAttack("Item_Nbr")
        rng = random.Random(3)
        attacked = DataLossAttack(0.4).apply(attack.apply(table, rng), rng)
        recovered = recover_mapping(attacked, profile)
        assert recovery_quality(attack.true_inverse, recovered) < 0.5

    def test_drop_ambiguous_marks_uncertain_values(self):
        table = generate_item_scan(
            20000, item_count=50, zipf_exponent=0.0, seed=8
        )
        profile = FrequencyProfile.capture(table, "Item_Nbr")
        attack = BijectiveRemapAttack("Item_Nbr")
        attacked = attack.apply(table, random.Random(3))
        strict = recover_mapping(attacked, profile, drop_ambiguous=True)
        # near-uniform: most of the mapping must be flagged unrecoverable
        dropped = sum(1 for value in strict.values() if value is UNRECOVERED)
        assert dropped > len(strict) // 2

    def test_strict_mode_keeps_confident_head(self, bookings):
        profile = FrequencyProfile.capture(bookings, "Depart_City")
        attack = BijectiveRemapAttack("Depart_City")
        attacked = attack.apply(bookings, random.Random(3))
        strict = recover_mapping(attacked, profile, drop_ambiguous=True)
        kept = {
            suspect: original
            for suspect, original in strict.items()
            if original is not UNRECOVERED
        }
        assert kept  # hub cities are unambiguous
        for suspect, original in kept.items():
            assert attack.true_inverse[suspect] == original

    def test_missing_attribute_raises(self, bookings):
        profile = FrequencyProfile.capture(bookings, "Depart_City")
        from repro.relational import project

        suspect = project(bookings, ["Ticket_Id", "Airline"])
        with pytest.raises(Exception):
            recover_mapping(suspect, profile)


class TestApplyMapping:
    def test_translates_values(self, bookings):
        attack = PermutationRemapAttack("Airline")
        attacked = attack.apply(bookings, random.Random(3))
        restored = apply_mapping(attacked, "Airline", attack.true_inverse)
        assert sorted(restored.column("Airline")) == sorted(
            bookings.column("Airline")
        )

    def test_quality_of_empty_inverse(self):
        assert recovery_quality({}, {}) == 1.0

    def test_quality_counts_correct_entries(self):
        truth = {"x": "a", "y": "b"}
        assert recovery_quality(truth, {"x": "a", "y": "wrong"}) == 0.5
