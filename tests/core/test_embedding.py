"""Tests for repro.core.embedding — the §3.2.1 encoder."""

import pytest

from repro.core import (
    BandwidthError,
    EmbeddingSpec,
    SpecError,
    Watermark,
    embed,
    embedded_value_index,
    make_spec,
    slot_index,
    value_pair_count,
)
from repro.core.embedding import carrier_population
from repro.crypto import MarkKey
from repro.quality import MaxAlterationFraction, QualityGuard
from repro.relational import CategoricalDomain


class TestSpec:
    def test_make_spec_defaults(self, item_scan, watermark):
        spec = make_spec(item_scan, watermark, "Item_Nbr", e=40)
        assert spec.key_attribute == "Visit_Nbr"
        assert spec.channel_length == max(10, round(len(item_scan) / 40))
        assert spec.ecc_name == "majority"

    def test_spec_dict_round_trip(self, item_scan, watermark):
        spec = make_spec(item_scan, watermark, "Item_Nbr", e=40)
        assert EmbeddingSpec.from_dict(spec.to_dict()) == spec

    def test_invalid_e(self):
        with pytest.raises(SpecError):
            EmbeddingSpec("K", "A", 0, 10, 100)

    def test_channel_shorter_than_watermark_rejected(self):
        with pytest.raises(SpecError):
            EmbeddingSpec("K", "A", 10, 10, 5)

    def test_same_key_and_mark_attribute_rejected(self):
        with pytest.raises(SpecError):
            EmbeddingSpec("A", "A", 10, 10, 100)

    def test_unknown_variant_rejected(self):
        with pytest.raises(SpecError):
            EmbeddingSpec("K", "A", 10, 10, 100, variant="quantum")

    def test_non_categorical_mark_attribute_rejected(
        self, item_scan, watermark
    ):
        with pytest.raises(SpecError):
            make_spec(item_scan, watermark, "Visit_Nbr", e=40,
                      key_attribute="Item_Nbr")

    def test_channel_sized_by_distinct_values_for_non_pk_key(
        self, sales, watermark
    ):
        spec = make_spec(
            sales, watermark, "Store_Nbr", e=2, key_attribute="Item_Nbr"
        )
        distinct_items = carrier_population(sales, "Item_Nbr")
        assert spec.channel_length == max(10, round(distinct_items / 2))


class TestPrimitives:
    def test_slot_index_in_range(self, mark_key):
        for value in range(200):
            assert 0 <= slot_index(value, mark_key.k2, 37) < 37

    def test_slot_index_deterministic(self, mark_key):
        assert slot_index(5, mark_key.k2, 100) == slot_index(5, mark_key.k2, 100)

    def test_slot_index_invalid_length(self, mark_key):
        with pytest.raises(SpecError):
            slot_index(5, mark_key.k2, 0)

    def test_value_pair_count(self):
        assert value_pair_count(CategoricalDomain(["a", "b", "c"])) == 1
        assert value_pair_count(CategoricalDomain(["a", "b", "c", "d"])) == 2
        assert value_pair_count(CategoricalDomain(["a"])) == 0

    def test_embedded_value_index_parity_carries_bit(self, mark_key):
        domain = CategoricalDomain(list("abcdefgh"))
        for value in range(100):
            for bit in (0, 1):
                index = embedded_value_index(value, mark_key.k1, bit, domain)
                assert index & 1 == bit
                assert 0 <= index < domain.size

    def test_embedded_value_index_single_value_domain_raises(self, mark_key):
        with pytest.raises(BandwidthError):
            embedded_value_index(1, mark_key.k1, 0, CategoricalDomain(["solo"]))

    def test_embedded_value_index_key_dependence(self, mark_key):
        domain = CategoricalDomain([f"v{i}" for i in range(64)])
        indices = {
            embedded_value_index(value, mark_key.k1, 0, domain)
            for value in range(100)
        }
        assert len(indices) > 5  # values spread over many pairs


class TestEmbed:
    def test_embeds_roughly_one_in_e(self, item_scan, mark_key, watermark):
        table = item_scan.clone()
        spec = make_spec(table, watermark, "Item_Nbr", e=40)
        result = embed(table, watermark, mark_key, spec)
        expected = len(table) / 40
        assert expected * 0.6 < result.fit_count < expected * 1.4

    def test_only_mark_attribute_touched(self, item_scan, mark_key, watermark):
        table = item_scan.clone()
        spec = make_spec(table, watermark, "Item_Nbr", e=40)
        embed(table, watermark, mark_key, spec)
        assert sorted(table.keys()) == sorted(item_scan.keys())
        assert len(table) == len(item_scan)

    def test_marked_carriers_hold_expected_parity(
        self, item_scan, mark_key, watermark
    ):
        table = item_scan.clone()
        spec = make_spec(table, watermark, "Item_Nbr", e=40)
        embed(table, watermark, mark_key, spec)
        domain = table.schema.attribute("Item_Nbr").domain
        wm_data = spec.ecc().encode(watermark.bits, spec.channel_length)
        from repro.core import fit_keys

        for key_value in fit_keys(table, "Visit_Nbr", mark_key.k1, 40):
            value = table.value(key_value, "Item_Nbr")
            slot = slot_index(key_value, mark_key.k2, spec.channel_length)
            assert domain.index_of(value) & 1 == wm_data[slot]

    def test_watermark_length_mismatch_rejected(
        self, item_scan, mark_key, watermark
    ):
        table = item_scan.clone()
        spec = make_spec(table, watermark, "Item_Nbr", e=40)
        with pytest.raises(SpecError):
            embed(table, Watermark((1, 0)), mark_key, spec)

    def test_map_variant_returns_embedding_map(
        self, item_scan, mark_key, watermark
    ):
        table = item_scan.clone()
        spec = make_spec(table, watermark, "Item_Nbr", e=40, variant="map")
        result = embed(table, watermark, mark_key, spec)
        assert result.embedding_map is not None
        assert len(result.embedding_map) == result.fit_count
        assert all(
            0 <= slot < spec.channel_length
            for slot in result.embedding_map.values()
        )

    def test_map_variant_covers_slots_sequentially(
        self, item_scan, mark_key, watermark
    ):
        table = item_scan.clone()
        spec = make_spec(table, watermark, "Item_Nbr", e=40, variant="map")
        result = embed(table, watermark, mark_key, spec)
        slots = sorted(result.embedding_map.values())
        # sequential assignment: first fit_count slots (mod L) are covered
        expected = sorted(
            index % spec.channel_length for index in range(result.fit_count)
        )
        assert slots == expected

    def test_guard_veto_counts(self, item_scan, mark_key, watermark):
        table = item_scan.clone()
        spec = make_spec(table, watermark, "Item_Nbr", e=20)
        guard = QualityGuard([MaxAlterationFraction(0.005)])
        guard.bind(table)
        result = embed(table, watermark, mark_key, spec, guard=guard)
        assert result.vetoed > 0
        assert result.applied <= round(0.005 * len(table)) + 1

    def test_guard_bound_to_other_table_rejected(
        self, item_scan, mark_key, watermark
    ):
        table = item_scan.clone()
        other = item_scan.clone()
        spec = make_spec(table, watermark, "Item_Nbr", e=40)
        guard = QualityGuard([])
        guard.bind(other)
        with pytest.raises(SpecError):
            embed(table, watermark, mark_key, spec, guard=guard)

    def test_non_pk_key_rewrites_all_sharing_tuples(
        self, sales, mark_key, watermark
    ):
        table = sales.clone()
        spec = make_spec(
            table, watermark, "Store_Nbr", e=5, key_attribute="Item_Nbr"
        )
        embed(table, watermark, mark_key, spec)
        # every fit item value maps to exactly one store value
        from repro.core import is_fit

        item_position = table.schema.position("Item_Nbr")
        store_position = table.schema.position("Store_Nbr")
        association: dict = {}
        for row in table:
            if not is_fit(row[item_position], mark_key.k1, 5):
                continue
            item = row[item_position]
            store = row[store_position]
            association.setdefault(item, store)
            assert association[item] == store

    def test_deterministic_under_same_key(self, item_scan, mark_key, watermark):
        first = item_scan.clone()
        second = item_scan.clone()
        spec = make_spec(first, watermark, "Item_Nbr", e=40)
        embed(first, watermark, mark_key, spec)
        embed(second, watermark, mark_key, spec)
        assert first == second

    def test_different_keys_mark_different_tuples(self, item_scan, watermark):
        first = item_scan.clone()
        second = item_scan.clone()
        key_a = MarkKey.from_seed("a")
        key_b = MarkKey.from_seed("b")
        spec = make_spec(first, watermark, "Item_Nbr", e=40)
        embed(first, watermark, key_a, spec)
        embed(second, watermark, key_b, spec)
        assert first != second
