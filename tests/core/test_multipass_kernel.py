"""Fused multi-pass detection vs per-pass reference — bit-identical.

``detect_multipass`` tallies all P keyed passes of a sweep cell with one
carrier gather and one ``bincount``; these tests pin it (through
``verify_multipass``/``extract_slots_multipass``) against loops of the
single-pass detector on every backend, including tie resolution, the map
variant, value mappings, and the fall-back routes when passes do not
share a key-column factorization.
"""

from __future__ import annotations

import random

import pytest

from repro.attacks import (
    ATTACK_CODES,
    DataLossAttack,
    SubsetAlterationAttack,
)
from repro.core import (
    Watermark,
    Watermarker,
    extract_slots,
    extract_slots_multipass,
    kernels,
    make_spec,
    verify,
    verify_multipass,
)
from repro.core.embedding import embed
from repro.crypto import (
    ENGINE,
    SCALAR,
    VECTOR,
    HashEngine,
    MarkKey,
    get_engine,
    stack_cache_info,
)
from repro.datagen import generate_item_scan
from repro.experiments import (
    MODE_HOISTED,
    MODE_SERIAL,
    SweepEngine,
    SweepProtocol,
)
from repro.relational import Table, make_categorical_attribute
from repro.relational.schema import Attribute, Schema
from repro.relational.types import AttributeType

PASSES = 6


@pytest.fixture(scope="module")
def base_table() -> Table:
    return generate_item_scan(900, item_count=70, seed=23)


def _embed_passes(base_table, e=25, variant="keyed"):
    """P keyed passes over one base, attacked clones sharing key codes."""
    kernels.warm_codes(base_table, base_table.primary_key, "Item_Nbr")
    passes = []
    for seed in range(PASSES):
        key = MarkKey.from_seed(f"mp-{seed}")
        watermark = Watermark.random(10, random.Random(f"wm:{seed}"))
        marker = Watermarker(key, e=e, variant=variant, engine=VECTOR)
        outcome = marker.embed(base_table, watermark, "Item_Nbr")
        kernels.warm_codes(outcome.table, "Item_Nbr")
        attack = SubsetAlterationAttack("Item_Nbr", 0.4, 0.7)
        attack.backend = ATTACK_CODES
        attacked = attack.apply(
            outcome.table, random.Random(f"attack:{seed}")
        )
        passes.append((key, watermark, outcome.record, attacked))
    return passes


def _verdict_tuple(result):
    return (
        result.matching_bits,
        result.false_hit_probability,
        result.detection.fit_count,
        result.detection.slots_recovered,
        result.detection.watermark.bits,
        tuple(result.detection.decode.confidence),
    )


class TestFusedEquivalence:
    def test_fused_matches_per_pass_on_every_backend(self, base_table):
        passes = _embed_passes(base_table)
        tables = [attacked for _, _, _, attacked in passes]
        keys = [key for key, _, _, _ in passes]
        spec = passes[0][2].spec
        expecteds = [watermark for _, watermark, _, _ in passes]

        assert kernels.shared_key_codes(tables, spec.key_attribute) is not None
        kernels.reset_kernel_calls()
        fused = verify_multipass(tables, keys, spec, expecteds, engine=VECTOR)
        assert kernels.KERNEL_CALLS["detect_multipass"] == 1
        assert kernels.KERNEL_CALLS["detect"] == 0

        for backend in (SCALAR, ENGINE, VECTOR):
            reference = [
                verify(table, key, spec, expected, engine=backend)
                for table, key, expected in zip(tables, keys, expecteds)
            ]
            assert [_verdict_tuple(r) for r in reference] == [
                _verdict_tuple(r) for r in fused
            ]

    def test_extract_slots_multipass_matches_slots_exactly(self, base_table):
        passes = _embed_passes(base_table, e=15)
        tables = [attacked for _, _, _, attacked in passes]
        keys = [key for key, _, _, _ in passes]
        spec = passes[0][2].spec
        fused = extract_slots_multipass(tables, keys, spec, engine=VECTOR)
        for (slots, fit_count), table, key in zip(fused, tables, keys):
            ref_slots, ref_fit = extract_slots(
                table, key, spec, engine=SCALAR
            )
            assert slots == ref_slots
            assert fit_count == ref_fit

    def test_fused_map_variant_matches(self, base_table):
        passes = _embed_passes(base_table, variant="map")
        tables = [attacked for _, _, _, attacked in passes]
        keys = [key for key, _, _, _ in passes]
        spec = passes[0][2].spec
        expecteds = [watermark for _, watermark, _, _ in passes]
        maps = [record.embedding_map for _, _, record, _ in passes]
        fused = verify_multipass(
            tables, keys, spec, expecteds, embedding_maps=maps, engine=VECTOR
        )
        reference = [
            verify(
                table, key, spec, expected,
                embedding_map=embedding_map, engine=ENGINE,
            )
            for table, key, expected, embedding_map in zip(
                tables, keys, expecteds, maps
            )
        ]
        assert [_verdict_tuple(r) for r in reference] == [
            _verdict_tuple(r) for r in fused
        ]

    def test_unshared_codes_fall_back_and_still_match(self, base_table):
        """Data-loss clones do not share key codes — fused must decline."""
        kernels.warm_codes(base_table, base_table.primary_key, "Item_Nbr")
        tables, keys, expecteds = [], [], []
        spec = None
        for seed in range(3):
            key = MarkKey.from_seed(f"mp-loss-{seed}")
            watermark = Watermark.random(10, random.Random(f"wm:{seed}"))
            marker = Watermarker(key, e=20, engine=VECTOR)
            outcome = marker.embed(base_table, watermark, "Item_Nbr")
            attack = DataLossAttack(0.5)
            attack.backend = ATTACK_CODES
            tables.append(
                attack.apply(outcome.table, random.Random(f"attack:{seed}"))
            )
            keys.append(key)
            expecteds.append(watermark)
            spec = outcome.record.spec
        assert kernels.shared_key_codes(tables, spec.key_attribute) is None
        kernels.reset_kernel_calls()
        fused = verify_multipass(tables, keys, spec, expecteds, engine=VECTOR)
        assert kernels.KERNEL_CALLS["detect_multipass"] == 0
        reference = [
            verify(table, key, spec, expected, engine=SCALAR)
            for table, key, expected in zip(tables, keys, expecteds)
        ]
        assert [_verdict_tuple(r) for r in reference] == [
            _verdict_tuple(r) for r in fused
        ]

    def test_stack_plans_are_cached_across_points(self, base_table):
        passes = _embed_passes(base_table, e=30)
        tables = [attacked for _, _, _, attacked in passes]
        keys = [key for key, _, _, _ in passes]
        spec = passes[0][2].spec
        expecteds = [watermark for _, watermark, _, _ in passes]
        verify_multipass(tables, keys, spec, expecteds, engine=VECTOR)
        built_once = stack_cache_info()["stacks_built"]
        verify_multipass(tables, keys, spec, expecteds, engine=VECTOR)
        info = stack_cache_info()
        assert info["stacks_built"] == built_once
        assert info["stack_hits"] >= 2


class TestTieResolution:
    def _tie_table(self):
        """Two carrier key values voting 1 then 0 into one slot — an exact
        tie that must resolve to the first vote in physical row order."""
        schema = Schema(
            (
                Attribute("K", AttributeType.INTEGER),
                make_categorical_attribute("A", ["a0", "a1", "b0", "b1"]),
            ),
            primary_key="K",
        )
        return schema

    def test_fused_tie_breaks_match_scalar(self):
        schema = self._tie_table()
        key = MarkKey.from_seed("tie")
        engine = get_engine(key)
        # find two fit key values under e=2 (plenty among small ints)
        fit_values = [
            value for value in range(200) if engine.is_fit(value, 2)
        ][:8]
        domain = ["a0", "a1", "b0", "b1"]
        rows = []
        # alternate bit parities so several slots collect tied votes
        for index, value in enumerate(fit_values):
            rows.append((value, domain[index % 4]))
        table = Table(schema, rows, name="ties")
        spec = make_spec(
            table,
            Watermark.from_int(0b10, 2),
            mark_attribute="A",
            e=2,
            channel_length=2,
        )
        keys = [key, MarkKey.from_seed("tie-2")]
        tables = [table, table]
        fused = extract_slots_multipass(
            tables, keys, spec, engine=VECTOR
        )
        for (slots, fit_count), pass_key in zip(fused, keys):
            ref_slots, ref_fit = extract_slots(
                table, pass_key, spec, engine=SCALAR
            )
            assert slots == ref_slots
            assert fit_count == ref_fit

    def test_map_variant_tie_first_vote_wins(self):
        schema = self._tie_table()
        key = MarkKey.from_seed("tie-map")
        # Two keys mapped to the same slot with opposite bits: exact tie,
        # first physical vote (bit 1) must win in every backend.
        table = Table(
            schema, [(1, "a1"), (2, "a0"), (3, "b1")], name="map-ties"
        )
        spec = make_spec(
            table,
            Watermark.from_int(0b1, 1),
            mark_attribute="A",
            e=1,
            channel_length=1,
            variant="map",
        )
        embedding_map = {1: 0, 2: 0, 3: 0}
        fused = extract_slots_multipass(
            [table, table],
            [key, key],
            spec,
            embedding_maps=[embedding_map, embedding_map],
            engine=VECTOR,
        )
        reference = extract_slots(
            table, key, spec, embedding_map=embedding_map, engine=SCALAR
        )
        assert fused[0] == fused[1] == reference


class TestSweepEngineFusion:
    def test_fused_and_unfused_hoisted_match_serial(self, base_table):
        protocol = SweepProtocol(
            mark_attribute="Item_Nbr", e=25, backend=VECTOR
        )
        attacks = [
            (x, SubsetAlterationAttack("Item_Nbr", x, 0.7))
            for x in (0.3, 0.6)
        ]
        seeds = range(4)

        def flatten(points):
            return [(p.x, r) for p in points for r in p.passes]

        serial = SweepEngine(mode=MODE_SERIAL).run(
            base_table, protocol, attacks, seeds
        )
        fused = SweepEngine(mode=MODE_HOISTED, fused=True).run(
            base_table, protocol, attacks, seeds
        )
        unfused = SweepEngine(mode=MODE_HOISTED, fused=False).run(
            base_table, protocol, attacks, seeds
        )
        assert flatten(serial) == flatten(fused) == flatten(unfused)

    def test_warm_point_runs_one_fused_kernel(self, base_table):
        protocol = SweepProtocol(
            mark_attribute="Item_Nbr", e=25, backend=VECTOR
        )
        engine = SweepEngine(mode=MODE_HOISTED)
        attacks = [(0.4, SubsetAlterationAttack("Item_Nbr", 0.4, 0.7))]
        engine.run(base_table, protocol, attacks, range(5))
        kernels.reset_kernel_calls()
        engine.run(
            base_table,
            protocol,
            [(0.6, SubsetAlterationAttack("Item_Nbr", 0.6, 0.7))],
            range(5),
        )
        assert kernels.KERNEL_CALLS["detect_multipass"] == 1
        assert kernels.KERNEL_CALLS["detect"] == 0
        assert kernels.KERNEL_CALLS["embed"] == 0


class TestVerifyPairsRouting:
    def test_verify_pairs_matches_per_pair_loop(self, base_table):
        from repro.core import embed_pairs, verify_pairs
        from repro.core.multiattribute import build_pair_closure

        table = generate_item_scan(400, item_count=50, seed=31)
        master = MarkKey.from_seed("pairs")
        watermark = Watermark.from_int(0x15, 5)
        working = table.clone()
        embedding = embed_pairs(working, watermark, master, e=10)
        grouped = verify_pairs(working, master, embedding, watermark)
        # the old per-pair loop, inlined
        reference = {
            label: verify(
                working,
                master.derive(label),
                spec,
                watermark,
                embedding_map=embedding.embedding_maps.get(label),
            )
            for label, spec in embedding.specs.items()
        }
        assert set(grouped.per_pair) == set(reference)
        for label, result in reference.items():
            assert _verdict_tuple(grouped.per_pair[label]) == _verdict_tuple(
                result
            )

    def test_verify_pairs_fuses_homogeneous_specs(self):
        """Synthetic same-spec witnesses run as one fused kernel."""
        from repro.core.multiattribute import (
            MultiEmbeddingResult,
            verify_pairs,
        )

        table = generate_item_scan(5000, item_count=60, seed=37)
        master = MarkKey.from_seed("pairs-fused")
        watermark = Watermark.from_int(0x2A, 6)
        working = table.clone()
        embedding = MultiEmbeddingResult()
        for label in ("w1", "w2", "w3"):
            spec = make_spec(
                working, watermark, mark_attribute="Item_Nbr", e=12
            )
            outcome = embed(working, watermark, master.derive(label), spec)
            embedding.passes[label] = outcome
            embedding.specs[label] = spec
        kernels.reset_kernel_calls()
        grouped = verify_pairs(working, master, embedding, watermark)
        assert kernels.KERNEL_CALLS["detect_multipass"] == 1
        for label in ("w1", "w2", "w3"):
            reference = verify(
                working, master.derive(label),
                embedding.specs[label], watermark, engine=SCALAR,
            )
            assert _verdict_tuple(grouped.per_pair[label]) == _verdict_tuple(
                reference
            )
