"""Tests for repro.core.fitness — secret fit-tuple selection (§3.2.1)."""

import pytest

from repro.core import (
    SpecError,
    count_fit,
    expected_bandwidth,
    fit_keys,
    fit_rows,
    is_fit,
)
from repro.crypto import MarkKey, keyed_hash


class TestIsFit:
    def test_matches_hash_criterion(self, mark_key):
        for value in range(50):
            expected = keyed_hash(value, mark_key.k1) % 7 == 0
            assert is_fit(value, mark_key.k1, 7) == expected

    def test_e_one_selects_everything(self, mark_key):
        assert all(is_fit(value, mark_key.k1, 1) for value in range(20))

    def test_invalid_e(self, mark_key):
        with pytest.raises(SpecError):
            is_fit(1, mark_key.k1, 0)

    def test_key_sensitivity(self):
        first = MarkKey.from_seed(1)
        second = MarkKey.from_seed(2)
        values = range(2000)
        fits_first = {v for v in values if is_fit(v, first.k1, 10)}
        fits_second = {v for v in values if is_fit(v, second.k1, 10)}
        assert fits_first != fits_second


class TestFitIteration:
    def test_fit_keys_subset_of_keys(self, tiny_table, mark_key):
        keys = set(fit_keys(tiny_table, "K", mark_key.k1, 2))
        assert keys <= set(tiny_table.keys())

    def test_fit_rows_match_fit_keys(self, tiny_table, mark_key):
        keys = list(fit_keys(tiny_table, "K", mark_key.k1, 2))
        rows = list(fit_rows(tiny_table, "K", mark_key.k1, 2))
        assert [row[0] for row in rows] == keys

    def test_count_fit_close_to_n_over_e(self, item_scan, mark_key):
        e = 20
        count = count_fit(item_scan, "Visit_Nbr", mark_key.k1, e)
        expected = len(item_scan) / e
        assert expected * 0.6 < count < expected * 1.4

    def test_non_key_attribute_yields_per_tuple(self, tiny_table, mark_key):
        # 'A' has duplicated values; every backing tuple is yielded
        keys = list(fit_keys(tiny_table, "A", mark_key.k1, 1))
        assert len(keys) == len(tiny_table)

    def test_fitness_independent_of_order(self, tiny_table, mark_key):
        import random

        from repro.relational import shuffle

        shuffled = shuffle(tiny_table, random.Random(3))
        original = sorted(
            map(repr, fit_keys(tiny_table, "K", mark_key.k1, 2))
        )
        reordered = sorted(
            map(repr, fit_keys(shuffled, "K", mark_key.k1, 2))
        )
        assert original == reordered


class TestBandwidth:
    def test_expected_bandwidth(self):
        assert expected_bandwidth(6000, 60) == 100

    def test_expected_bandwidth_minimum_one(self):
        assert expected_bandwidth(5, 100) == 1

    def test_invalid_e(self):
        with pytest.raises(SpecError):
            expected_bandwidth(100, 0)
