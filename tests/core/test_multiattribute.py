"""Tests for repro.core.multiattribute — §3.3 pair embeddings."""

import random

import pytest

from repro.core import (
    LedgerConstraint,
    PairDirective,
    SpecError,
    build_pair_closure,
    embed_pairs,
    verify_pairs,
)
from repro.attacks import VerticalPartitionAttack
from repro.quality import QualityGuard


class TestPairClosure:
    def test_pk_anchored_pairs_come_first(self, sales):
        plan = build_pair_closure(sales)
        pk_pairs = [d for d in plan if d.key_attribute == "Scan_Id"]
        assert plan[: len(pk_pairs)] == pk_pairs

    def test_primary_key_never_marked(self, sales):
        plan = build_pair_closure(sales)
        assert all(d.mark_attribute != "Scan_Id" for d in plan)

    def test_only_categorical_attributes_marked(self, sales):
        plan = build_pair_closure(sales)
        for directive in plan:
            assert sales.schema.attribute(directive.mark_attribute).is_categorical

    def test_low_cardinality_keys_rejected(self, sales):
        plan = build_pair_closure(sales, watermark_length=10)
        # Quantity has ~6 distinct values and Dept has 12: neither may act
        # as a key place-holder for a 10-bit watermark at 2 carriers/bit.
        assert all(d.key_attribute not in ("Quantity", "Dept") for d in plan)

    def test_labels_unique(self, sales):
        plan = build_pair_closure(sales)
        labels = [d.label for d in plan]
        assert len(labels) == len(set(labels))

    def test_unknown_attribute_rejected(self, sales):
        with pytest.raises(Exception):
            build_pair_closure(sales, attributes=["Nope"])

    def test_no_markable_pairs_raises(self, item_scan):
        # ItemScan restricted to the PK alone has nothing to mark
        with pytest.raises(SpecError):
            build_pair_closure(item_scan, attributes=["Visit_Nbr"])


class TestLedger:
    def test_ledger_vetoes_frozen_cells(self, tiny_table):
        guard = QualityGuard([LedgerConstraint({(1, "A")})])
        guard.bind(tiny_table)
        assert not guard.apply(1, "A", "blue")
        assert tiny_table.value(1, "A") == "red"  # rolled back

    def test_ledger_allows_untouched_cells(self, tiny_table):
        guard = QualityGuard([LedgerConstraint({(1, "A")})])
        guard.bind(tiny_table)
        assert guard.apply(2, "A", "blue")


class TestEmbedPairs:
    def test_every_pass_reported(self, sales, mark_key, watermark):
        table = sales.clone()
        result = embed_pairs(table, watermark, mark_key, e=40)
        assert set(result.passes) == set(result.specs)
        assert result.total_applied > 0

    def test_interference_no_cell_marked_twice(self, sales, mark_key, watermark):
        """§3.3: the ledger must prevent a later pass from overwriting an
        earlier pass's cells.  We check by re-running pass-by-pass and
        verifying earlier passes still decode perfectly afterwards."""
        from repro.core import verify

        table = sales.clone()
        result = embed_pairs(table, watermark, mark_key, e=40)
        for label, spec in result.specs.items():
            verdict = verify(
                table,
                mark_key.derive(label),
                spec,
                watermark,
                embedding_map=result.embedding_maps.get(label),
            )
            assert verdict.matching_bits >= len(watermark) - 1, label

    def test_duplicate_directives_rejected(self, sales, mark_key, watermark):
        table = sales.clone()
        directive = PairDirective("Scan_Id", "Item_Nbr")
        with pytest.raises(SpecError):
            embed_pairs(
                table, watermark, mark_key, e=40,
                directives=[directive, directive],
            )

    def test_pair_e_scaled_down_for_sparse_keys(self, sales, mark_key, watermark):
        table = sales.clone()
        result = embed_pairs(
            table,
            watermark,
            mark_key,
            e=500,
            directives=[PairDirective("Item_Nbr", "Store_Nbr")],
        )
        spec = result.specs["Item_Nbr->Store_Nbr"]
        assert spec.e < 500  # auto-scaled to keep carriers per bit


class TestVerifyPairs:
    def test_full_relation_all_witnesses_detect(self, sales, mark_key, watermark):
        table = sales.clone()
        embedding = embed_pairs(table, watermark, mark_key, e=40)
        verdict = verify_pairs(table, mark_key, embedding, watermark)
        assert verdict.detected
        assert len(verdict.detected_pairs) == len(embedding.specs)

    def test_vertical_partition_survivors_testify(
        self, sales, mark_key, watermark
    ):
        table = sales.clone()
        embedding = embed_pairs(table, watermark, mark_key, e=40)
        attacked = VerticalPartitionAttack(["Item_Nbr", "Store_Nbr"]).apply(
            table, random.Random(5)
        )
        verdict = verify_pairs(attacked, mark_key, embedding, watermark)
        assert verdict.detected
        assert "Item_Nbr->Store_Nbr" in verdict.detected_pairs

    def test_no_surviving_pair_raises(self, sales, mark_key, watermark):
        table = sales.clone()
        embedding = embed_pairs(table, watermark, mark_key, e=40)
        attacked = VerticalPartitionAttack(["Quantity"]).apply(
            table, random.Random(5)
        )
        with pytest.raises(SpecError):
            verify_pairs(attacked, mark_key, embedding, watermark)

    def test_best_witness_exposed(self, sales, mark_key, watermark):
        table = sales.clone()
        embedding = embed_pairs(table, watermark, mark_key, e=40)
        verdict = verify_pairs(table, mark_key, embedding, watermark)
        assert verdict.best.false_hit_probability == min(
            r.false_hit_probability for r in verdict.per_pair.values()
        )

    def test_summary_lists_every_witness(self, sales, mark_key, watermark):
        table = sales.clone()
        embedding = embed_pairs(table, watermark, mark_key, e=40)
        verdict = verify_pairs(table, mark_key, embedding, watermark)
        text = verdict.summary()
        for label in embedding.specs:
            assert label in text

    def test_combined_evidence_stronger_than_any_witness(
        self, sales, mark_key, watermark
    ):
        table = sales.clone()
        embedding = embed_pairs(table, watermark, mark_key, e=40)
        verdict = verify_pairs(table, mark_key, embedding, watermark)
        best_single = min(
            r.false_hit_probability for r in verdict.per_pair.values()
        )
        assert verdict.combined_false_hit_probability <= best_single

    def test_combined_evidence_on_unmarked_data_not_significant(
        self, sales, mark_key, watermark
    ):
        table = sales.clone()
        embedding = embed_pairs(table, watermark, mark_key, e=40)
        from repro.datagen import generate_sales

        unrelated = generate_sales(3000, item_count=150, seed=9999)
        verdict = verify_pairs(unrelated, mark_key, embedding, watermark)
        assert not verdict.detected
        assert verdict.combined_false_hit_probability > 0.01

    def test_jointly_significant_weak_witnesses_detect(
        self, sales, mark_key, watermark
    ):
        """Three 9-of-10 witnesses (each p=0.0107 > 0.01) must combine to a
        detection via Fisher's method."""
        from repro.core.detection import (
            DetectionResult,
            VerificationResult,
            false_hit_probability,
        )
        from repro.core.multiattribute import MultiVerificationResult
        from repro.core import Watermark as WM
        from repro.ecc import DecodeResult

        def weak_witness() -> VerificationResult:
            bits = (1,) * 10
            detection = DetectionResult(
                watermark=WM(bits),
                decode=DecodeResult(bits, (1.0,) * 10),
                fit_count=10,
                slots_recovered=10,
                channel_length=10,
            )
            return VerificationResult(
                detection=detection,
                expected=WM(bits),
                matching_bits=9,
                false_hit_probability=false_hit_probability(9, 10),
                significance=0.01,
            )

        combined = MultiVerificationResult(
            {f"w{i}": weak_witness() for i in range(3)}
        )
        assert all(not w.detected for w in combined.per_pair.values())
        assert combined.combined_false_hit_probability < 0.01
        assert combined.detected
