"""Three-backend bit-identity: VECTOR vs ENGINE vs SCALAR.

The vector kernels (column codes + plan arrays + bincount tallies) must
produce exactly the same marked relation, embedding statistics, guard
state, recovered slots and verdicts as the engine and scalar paths — for
both Figure 1 variants, §3.3 place-holder keys with duplicates, §4.5
remapping recovery inputs, constrained guards, the frequency channel and
the multi-attribute closure.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    Watermark,
    Watermarker,
    embed_pairs,
    make_spec,
    verify_pairs,
)
from repro.core import kernels
from repro.core.detection import extract_slots
from repro.core.embedding import embed
from repro.core.frequency import detect_frequency, embed_frequency
from repro.crypto import (
    ENGINE,
    SCALAR,
    VECTOR,
    MarkKey,
    clear_engine_registry,
)
from repro.datagen import generate_item_scan
from repro.quality import Constraint, QualityGuard
from repro.relational import (
    Attribute,
    AttributeType,
    CategoricalDomain,
    Schema,
    Table,
)

BACKENDS = (SCALAR, ENGINE, VECTOR)


@pytest.fixture(autouse=True)
def force_vector_eligibility(monkeypatch):
    """Let the AUTO heuristic and VECTOR path run on small test tables."""
    monkeypatch.setattr(kernels, "VECTOR_MIN_ROWS", 1)


@pytest.fixture
def key() -> MarkKey:
    return MarkKey.from_seed("vector-equivalence")


@pytest.fixture
def watermark() -> Watermark:
    return Watermark.from_int(0b1011001110, 10)


@pytest.fixture
def relation() -> Table:
    return generate_item_scan(1500, item_count=40, seed=11)


@pytest.fixture
def placeholder_table() -> Table:
    schema = Schema(
        (
            Attribute("K", AttributeType.INTEGER),
            Attribute(
                "A",
                AttributeType.CATEGORICAL,
                CategoricalDomain([f"a{i}" for i in range(12)]),
            ),
            Attribute(
                "B",
                AttributeType.CATEGORICAL,
                CategoricalDomain([f"b{i}" for i in range(8)]),
            ),
        ),
        primary_key="K",
    )
    rng = random.Random(7)
    rows = [
        (i, f"a{rng.randrange(12)}", f"b{rng.randrange(8)}")
        for i in range(900)
    ]
    return Table(schema, rows, name="placeholder")


def _embed_stats(result):
    return (
        result.fit_count,
        result.applied,
        result.vetoed,
        result.unchanged,
        result.slots_written,
        result.embedding_map,
    )


@pytest.mark.parametrize("variant", ["keyed", "map"])
def test_embed_and_extract_bit_identical(relation, watermark, key, variant):
    spec = make_spec(relation, watermark, "Item_Nbr", e=20, variant=variant)
    tables, stats, slot_sets = [], [], []
    for backend in BACKENDS:
        table = relation.clone()
        result = embed(table, watermark, key, spec, engine=backend)
        kwargs = {"embedding_map": result.embedding_map}
        slot_sets.append(
            extract_slots(table, key, spec, engine=backend, **kwargs)
        )
        tables.append(list(table))
        stats.append(_embed_stats(result))
    assert tables[0] == tables[1] == tables[2]
    assert stats[0] == stats[1] == stats[2]
    assert slot_sets[0] == slot_sets[1] == slot_sets[2]


@pytest.mark.parametrize("variant", ["keyed", "map"])
def test_placeholder_duplicates_bit_identical(
    placeholder_table, watermark, key, variant
):
    """§3.3 place-holder keys: grouped carriers, per-group noops, and the
    batched write-back must agree with the per-cell reference."""
    spec = make_spec(
        placeholder_table, watermark, mark_attribute="B", e=2,
        key_attribute="A", variant=variant,
    )
    tables, stats, guards = [], [], []
    for backend in BACKENDS:
        table = placeholder_table.clone()
        guard = QualityGuard([])
        guard.bind(table)
        result = embed(
            table, watermark, key, spec, guard=guard, engine=backend
        )
        tables.append(list(table))
        stats.append(_embed_stats(result))
        guards.append(guard)
    assert tables[0] == tables[1] == tables[2]
    assert stats[0] == stats[1] == stats[2]
    # The fast-path batched write-back must leave the guard's log, report
    # and incremental statistics exactly as the per-cell path does.
    reference = guards[0]
    for guard in guards[1:]:
        assert guard.log.entries == reference.log.entries
        assert guard.report.applied == reference.report.applied
        assert guard.report.noop == reference.report.noop
        assert guard.context.change_count == reference.context.change_count
        assert guard.context.count_deltas == reference.context.count_deltas


def test_constrained_guard_vetoes_identically(
    placeholder_table, watermark, key
):
    class VetoEveryThird(Constraint):
        name = "veto-3rd"

        def __init__(self):
            self.proposals = 0

        def violated(self, context):
            self.proposals += 1
            return "every third" if self.proposals % 3 == 0 else None

    spec = make_spec(
        placeholder_table, watermark, mark_attribute="B", e=1,
        key_attribute="A", variant="map",
    )
    outcomes = []
    for backend in BACKENDS:
        table = placeholder_table.clone()
        guard = QualityGuard([VetoEveryThird()])
        guard.bind(table)
        result = embed(
            table, watermark, key, spec, guard=guard, engine=backend
        )
        assert guard.report.vetoed > 0  # the constraint actually fired
        outcomes.append(
            (list(table), _embed_stats(result), guard.log.entries,
             guard.report.vetoed)
        )
    assert outcomes[0] == outcomes[1] == outcomes[2]


def test_remap_recovery_inputs_identical(placeholder_table, watermark, key):
    """Domain overrides + partial value_mapping (the §4.5 recovery path)
    decode identically, including out-of-domain skips."""
    spec = make_spec(
        placeholder_table, watermark, mark_attribute="B", e=2,
        key_attribute="A", variant="keyed",
    )
    marked = placeholder_table.clone()
    embed(marked, watermark, key, spec, engine=SCALAR)
    forward = {f"b{i}": f"z{i}" for i in range(8)}
    inverse = {f"z{i}": f"b{i}" for i in range(0, 8, 2)}  # partial
    remapped_schema = Schema(
        (
            Attribute("K", AttributeType.INTEGER),
            Attribute(
                "A",
                AttributeType.CATEGORICAL,
                CategoricalDomain([f"a{i}" for i in range(12)]),
            ),
            Attribute(
                "B",
                AttributeType.CATEGORICAL,
                CategoricalDomain([f"z{i}" for i in range(8)]),
            ),
        ),
        primary_key="K",
    )
    remapped = Table(
        remapped_schema,
        [(k, a, forward[b]) for k, a, b in marked],
        name="remapped",
    )
    domain = CategoricalDomain([f"b{i}" for i in range(8)])
    recovered = [
        extract_slots(
            remapped, key, spec, domain=domain, value_mapping=inverse,
            engine=backend,
        )
        for backend in BACKENDS
    ]
    assert recovered[0] == recovered[1] == recovered[2]


def test_watermarker_verdicts_identical(relation, watermark, key):
    verdicts = []
    for backend in BACKENDS:
        clear_engine_registry()
        marker = Watermarker(key, e=25, engine=backend)
        outcome = marker.embed(relation, watermark, "Item_Nbr")
        verdict = marker.verify(outcome.table, outcome.record)
        verdicts.append(
            (
                list(outcome.table),
                verdict.association.matching_bits,
                verdict.association.false_hit_probability,
                verdict.association.detected,
            )
        )
    assert verdicts[0] == verdicts[1] == verdicts[2]
    assert verdicts[0][3] is True


def test_detection_after_attack_identical(relation, watermark, key):
    from repro.attacks import SubsetAlterationAttack

    spec = make_spec(relation, watermark, "Item_Nbr", e=20)
    marked = relation.clone()
    embed(marked, watermark, key, spec, engine=SCALAR)
    attacked = SubsetAlterationAttack("Item_Nbr", 0.25).apply(
        marked, random.Random(3)
    )
    reference = extract_slots(attacked, key, spec, engine=SCALAR)
    for _ in range(3):  # warm re-detections stay identical
        assert extract_slots(
            attacked, key, spec, engine=VECTOR
        ) == reference


def test_frequency_channel_identical(relation, watermark, key):
    """The bincount-over-codes histogram path (taken when a fresh
    factorization is cached) is bit-identical to the Counter pass."""
    results = []
    for warm_codes in (False, True):
        table = relation.clone()
        if warm_codes:
            table.column_codes("Item_Nbr")  # embed reads counts pre-write
        outcome = embed_frequency(table, watermark, key, "Item_Nbr")
        if warm_codes:
            table.column_codes("Item_Nbr")  # re-factorize post-relabelling
        detected = detect_frequency(table, key, outcome.record)
        results.append(
            (
                list(table),
                outcome.target_counts,
                outcome.relabelled,
                detected.bits,
            )
        )
    assert results[0] == results[1]


def test_multiattribute_identical(relation, watermark, key):
    outcomes = []
    for backend in BACKENDS:
        clear_engine_registry()
        table = relation.clone()
        embedding = embed_pairs(table, watermark, key, e=10, backend=backend)
        verification = verify_pairs(
            table, key, embedding, watermark, backend=backend
        )
        outcomes.append(
            (
                list(table),
                {
                    label: _embed_stats(result)
                    for label, result in embedding.passes.items()
                },
                {
                    label: result.matching_bits
                    for label, result in verification.per_pair.items()
                },
            )
        )
    assert outcomes[0] == outcomes[1] == outcomes[2]


def test_auto_heuristic(monkeypatch):
    monkeypatch.setattr(kernels, "VECTOR_MIN_ROWS", 4096)
    assert kernels.auto_backend(4096) == VECTOR
    assert kernels.auto_backend(4095) == ENGINE
    assert kernels.auto_backend(0) == ENGINE
