"""Tests for repro.core.addition — §4.6 data-addition reinforcement."""

import pytest

from repro.core import (
    SpecError,
    add_watermarked_tuples,
    detect,
    embed,
    integer_key_generator,
    is_fit,
    make_spec,
)


@pytest.fixture
def marked(item_scan, mark_key, watermark):
    table = item_scan.clone()
    spec = make_spec(table, watermark, "Item_Nbr", e=40)
    embed(table, watermark, mark_key, spec)
    return table, spec


class TestAddition:
    def test_adds_requested_fraction(self, marked, mark_key, watermark):
        table, spec = marked
        before = len(table)
        result = add_watermarked_tuples(
            table, watermark, mark_key, spec, p_add=0.05
        )
        assert result.added == round(0.05 * before)
        assert len(table) == before + result.added

    def test_added_tuples_are_fit(self, marked, mark_key, watermark):
        table, spec = marked
        result = add_watermarked_tuples(
            table, watermark, mark_key, spec, p_add=0.02
        )
        for key in result.added_keys:
            assert is_fit(key, mark_key.k1, spec.e)

    def test_acceptance_rate_near_one_in_e(self, marked, mark_key, watermark):
        table, spec = marked
        result = add_watermarked_tuples(
            table, watermark, mark_key, spec, p_add=0.05
        )
        assert result.acceptance_rate == pytest.approx(1 / spec.e, rel=0.5)

    def test_added_tuples_carry_correct_bits(self, marked, mark_key, watermark):
        table, spec = marked
        add_watermarked_tuples(table, watermark, mark_key, spec, p_add=0.05)
        assert detect(table, mark_key, spec).watermark == watermark

    def test_zero_p_add_is_noop(self, marked, mark_key, watermark):
        table, spec = marked
        before = len(table)
        result = add_watermarked_tuples(
            table, watermark, mark_key, spec, p_add=0.0
        )
        assert result.added == 0
        assert len(table) == before

    def test_invalid_p_add_rejected(self, marked, mark_key, watermark):
        table, spec = marked
        with pytest.raises(SpecError):
            add_watermarked_tuples(
                table, watermark, mark_key, spec, p_add=1.5
            )

    def test_map_variant_rejected(self, item_scan, mark_key, watermark):
        table = item_scan.clone()
        spec = make_spec(table, watermark, "Item_Nbr", e=40, variant="map")
        embed(table, watermark, mark_key, spec)
        with pytest.raises(SpecError):
            add_watermarked_tuples(
                table, watermark, mark_key, spec, p_add=0.01
            )

    def test_deterministic_given_key(self, item_scan, mark_key, watermark):
        first = item_scan.clone()
        second = item_scan.clone()
        spec = make_spec(first, watermark, "Item_Nbr", e=40)
        embed(first, watermark, mark_key, spec)
        embed(second, watermark, mark_key, spec)
        r1 = add_watermarked_tuples(first, watermark, mark_key, spec, 0.02)
        r2 = add_watermarked_tuples(second, watermark, mark_key, spec, 0.02)
        assert r1.added_keys == r2.added_keys

    def test_added_values_within_domain(self, marked, mark_key, watermark):
        table, spec = marked
        result = add_watermarked_tuples(
            table, watermark, mark_key, spec, p_add=0.02
        )
        domain = table.schema.attribute("Item_Nbr").domain
        for key in result.added_keys:
            assert table.value(key, "Item_Nbr") in domain


class TestKeyGenerator:
    def test_integer_generator_avoids_existing(self, item_scan, rng):
        generate = integer_key_generator(item_scan)
        existing = set(item_scan.keys())
        for _ in range(50):
            candidate = generate(rng)
            assert candidate not in existing

    def test_non_integer_keys_rejected(self, tiny_schema):
        from repro.relational import (
            Attribute,
            AttributeType,
            Schema,
            Table,
        )

        schema = Schema(
            (
                Attribute("K", AttributeType.STRING),
                Attribute("note", AttributeType.STRING),
            ),
            primary_key="K",
        )
        table = Table(schema, [("a", "x")])
        with pytest.raises(SpecError):
            integer_key_generator(table)
