"""End-to-end bit-identity: engine-backed embed/detect vs scalar reference.

The batched columnar fast path must produce *exactly* the same marked
relation, the same embedding statistics, and the same recovered slots as
the row-at-a-time scalar implementation — for both Figure 1 variants and
for §3.3 place-holder keys with duplicate values.
"""

from __future__ import annotations

import random

import pytest

from repro.core import Watermark, Watermarker, make_spec
from repro.core.detection import extract_slots
from repro.core.embedding import embed
from repro.crypto import SCALAR, HashEngine, MarkKey, clear_engine_registry
from repro.datagen import generate_item_scan
from repro.relational import (
    Attribute,
    AttributeType,
    CategoricalDomain,
    Schema,
    Table,
)


@pytest.fixture
def key() -> MarkKey:
    return MarkKey.from_seed("equivalence")


@pytest.fixture
def watermark() -> Watermark:
    return Watermark.from_int(0b1011001110, 10)


@pytest.fixture
def relation() -> Table:
    return generate_item_scan(1500, item_count=40, seed=11)


def _embed_both(table, watermark, key, spec):
    scalar_table = table.clone()
    engine_table = table.clone()
    scalar_result = embed(scalar_table, watermark, key, spec, engine=SCALAR)
    engine_result = embed(
        engine_table, watermark, key, spec, engine=HashEngine(key)
    )
    return scalar_table, scalar_result, engine_table, engine_result


@pytest.mark.parametrize("variant", ["keyed", "map"])
def test_embed_is_bit_identical(relation, watermark, key, variant):
    spec = make_spec(
        relation, watermark, "Item_Nbr", e=20, variant=variant
    )
    scalar_table, scalar_result, engine_table, engine_result = _embed_both(
        relation, watermark, key, spec
    )
    assert list(scalar_table) == list(engine_table)
    assert scalar_result.fit_count == engine_result.fit_count
    assert scalar_result.applied == engine_result.applied
    assert scalar_result.vetoed == engine_result.vetoed
    assert scalar_result.unchanged == engine_result.unchanged
    assert scalar_result.slots_written == engine_result.slots_written
    assert scalar_result.embedding_map == engine_result.embedding_map


@pytest.mark.parametrize("variant", ["keyed", "map"])
def test_extract_slots_is_bit_identical(relation, watermark, key, variant):
    spec = make_spec(
        relation, watermark, "Item_Nbr", e=20, variant=variant
    )
    marked = relation.clone()
    result = embed(marked, watermark, key, spec, engine=SCALAR)
    kwargs = {"embedding_map": result.embedding_map}
    scalar_slots = extract_slots(marked, key, spec, engine=SCALAR, **kwargs)
    engine_slots = extract_slots(
        marked, key, spec, engine=HashEngine(key), **kwargs
    )
    assert scalar_slots == engine_slots


def test_placeholder_key_with_duplicates_is_bit_identical(watermark, key):
    """§3.3 place-holder keys: many rows share a key value; grouping order
    and per-distinct-value hashing must agree across back ends."""
    schema = Schema(
        (
            Attribute("K", AttributeType.INTEGER),
            Attribute(
                "A",
                AttributeType.CATEGORICAL,
                CategoricalDomain([f"a{i}" for i in range(12)]),
            ),
            Attribute(
                "B",
                AttributeType.CATEGORICAL,
                CategoricalDomain([f"b{i}" for i in range(8)]),
            ),
        ),
        primary_key="K",
    )
    rng = random.Random(7)
    rows = [
        (i, f"a{rng.randrange(12)}", f"b{rng.randrange(8)}")
        for i in range(800)
    ]
    table = Table(schema, rows, name="placeholder")
    spec = make_spec(
        table, watermark, mark_attribute="B", e=2, key_attribute="A",
        variant="map",
    )
    scalar_table, scalar_result, engine_table, engine_result = _embed_both(
        table, watermark, key, spec
    )
    assert list(scalar_table) == list(engine_table)
    assert scalar_result.embedding_map == engine_result.embedding_map
    kwargs = {"embedding_map": scalar_result.embedding_map}
    assert extract_slots(
        scalar_table, key, spec, engine=SCALAR, **kwargs
    ) == extract_slots(
        engine_table, key, spec, engine=HashEngine(key), **kwargs
    )


def test_full_pipeline_verdicts_agree(relation, watermark, key):
    clear_engine_registry()
    scalar_marker = Watermarker(key, e=25, engine=SCALAR)
    engine_marker = Watermarker(key, e=25)
    scalar_outcome = scalar_marker.embed(relation, watermark, "Item_Nbr")
    engine_outcome = engine_marker.embed(relation, watermark, "Item_Nbr")
    assert list(scalar_outcome.table) == list(engine_outcome.table)
    cross_a = scalar_marker.verify(engine_outcome.table, scalar_outcome.record)
    cross_b = engine_marker.verify(scalar_outcome.table, engine_outcome.record)
    assert cross_a.association.matching_bits == \
        cross_b.association.matching_bits
    assert cross_a.association.detected and cross_b.association.detected


def test_detection_after_attack_agrees(relation, watermark, key):
    from repro.attacks import SubsetAlterationAttack

    spec = make_spec(relation, watermark, "Item_Nbr", e=20)
    marked = relation.clone()
    embed(marked, watermark, key, spec, engine=SCALAR)
    attacked = SubsetAlterationAttack("Item_Nbr", 0.25).apply(
        marked, random.Random(3)
    )
    engine = HashEngine(key)
    # repeated warm detections stay identical to the scalar reference
    reference = extract_slots(attacked, key, spec, engine=SCALAR)
    for _ in range(3):
        assert extract_slots(attacked, key, spec, engine=engine) == reference
