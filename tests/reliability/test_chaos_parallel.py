"""Chaos suite for the multicore streaming path.

Faults aimed at the worker pool (SIGKILL, hard hangs, breaker trips)
must never change a verdict or a byte of marked output: the ordered
merge re-dispatches or degrades, and the result stays bit-identical to
the serial path.  The torn-commit matrix SIGKILLs a *parallel* embed
coordinator in a real subprocess and resumes it with workers on — the
resumed file must equal an uninterrupted serial run byte for byte.

Run with ``pytest -m chaos``; ``REPRO_CHAOS_REDUCED=1`` shrinks the
kill matrix to one boundary (the CI smoke job does).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro import MarkKey, Watermark
from repro.core import EmbeddingSpec
from repro.datagen import generate_item_scan
from repro.reliability import (
    HANG,
    KILL,
    CircuitBreaker,
    FaultPlan,
    RetryPolicy,
    Watchdog,
)
from repro.stream import (
    TableChunkSource,
    open_sink,
    shutdown_stream_pool,
    stream_detect,
    stream_mark,
)

pytestmark = pytest.mark.chaos

ROWS = 1200
CHUNK = 150
N_CHUNKS = ROWS // CHUNK
REDUCED = bool(os.environ.get("REPRO_CHAOS_REDUCED"))

BOUNDARIES = [1] if REDUCED else [0, 1, N_CHUNKS // 2, N_CHUNKS - 1]

_WORKER = textwrap.dedent("""
    import sys
    from repro import MarkKey, Watermark
    from repro.core import EmbeddingSpec
    from repro.datagen import generate_item_scan
    from repro.reliability import KILL, FaultPlan
    from repro.stream import TableChunkSource, open_sink, stream_mark

    at, out, ckpt = sys.argv[1:4]
    base = generate_item_scan({rows}, item_count=80, seed=19)
    plan = FaultPlan().add("pipeline.chunk", KILL, at=int(at))
    with plan.armed():
        stream_mark(
            TableChunkSource(base, chunk_size={chunk}),
            Watermark.from_int(0x2AB, 10),
            MarkKey.from_seed("chaos-parallel"),
            EmbeddingSpec("Visit_Nbr", "Item_Nbr", 40, 10, 120),
            open_sink(out),
            checkpoint_path=ckpt,
            workers=2,
        )
    raise SystemExit("unreachable: the injected kill never fired")
""").format(rows=ROWS, chunk=CHUNK)


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_stream_pool()


@pytest.fixture(scope="module")
def base():
    return generate_item_scan(ROWS, item_count=80, seed=19)


@pytest.fixture(scope="module")
def key():
    return MarkKey.from_seed("chaos-parallel")


@pytest.fixture(scope="module")
def wm():
    return Watermark.from_int(0x2AB, 10)


@pytest.fixture(scope="module")
def spec():
    return EmbeddingSpec("Visit_Nbr", "Item_Nbr", 40, 10, 120)


@pytest.fixture(scope="module")
def serial_verdict(base, key, spec):
    return stream_detect(TableChunkSource(base, chunk_size=CHUNK), key, spec)


def _assert_same_detection(parallel, serial):
    assert parallel.votes == serial.votes
    assert parallel.detection.watermark == serial.detection.watermark
    assert parallel.detection.fit_count == serial.detection.fit_count
    assert parallel.rows == serial.rows


class TestParallelDetectChaos:
    def test_worker_sigkill_redispatches_bit_identical(
        self, base, key, spec, serial_verdict, chaos_report
    ):
        shutdown_stream_pool()
        plan = FaultPlan().add("pool.worker", KILL, at=1)
        with plan.armed():
            verdict = stream_detect(
                TableChunkSource(base, chunk_size=CHUNK), key, spec,
                workers=2, retry=RetryPolicy(max_attempts=4, base_delay=0.0),
            )
        _assert_same_detection(verdict, serial_verdict)
        assert verdict.reliability.pool_respawns >= 1
        assert verdict.parallel.redispatches >= 1
        chaos_report(verdict.reliability)

    def test_hung_worker_is_watchdogged_and_redispatched(
        self, base, key, spec, serial_verdict, chaos_report
    ):
        shutdown_stream_pool()
        plan = FaultPlan(hang_seconds=60.0).add("pool.worker", HANG, at=2)
        started = time.monotonic()
        with plan.armed():
            verdict = stream_detect(
                TableChunkSource(base, chunk_size=CHUNK), key, spec,
                workers=2, retry=RetryPolicy(max_attempts=4, base_delay=0.0),
                watchdog=Watchdog(budget=1.0, poll=0.2),
            )
        wall = time.monotonic() - started
        _assert_same_detection(verdict, serial_verdict)
        assert verdict.reliability.watchdog_kills >= 1
        assert wall < 30.0, f"watchdog recovery took {wall:.1f}s"
        chaos_report(verdict.reliability)

    def test_breaker_degrades_to_serial_bit_identical(
        self, base, key, spec, serial_verdict, chaos_report
    ):
        shutdown_stream_pool()
        plan = FaultPlan().add("pool.worker", KILL, at=0)
        breaker = CircuitBreaker(threshold=1, cooldown=300.0)
        with plan.armed():
            verdict = stream_detect(
                TableChunkSource(base, chunk_size=CHUNK), key, spec,
                workers=2, retry=RetryPolicy(max_attempts=2, base_delay=0.0),
                breaker=breaker,
            )
        _assert_same_detection(verdict, serial_verdict)
        assert verdict.reliability.pool_fallbacks >= 1
        assert verdict.reliability.breaker_trips
        assert verdict.parallel.chunks_serial > 0
        # an already-open breaker starts the next run serial outright
        with plan.armed():
            again = stream_detect(
                TableChunkSource(base, chunk_size=CHUNK), key, spec,
                workers=2, retry=RetryPolicy(max_attempts=2, base_delay=0.0),
                breaker=breaker,
            )
        _assert_same_detection(again, serial_verdict)
        assert again.parallel.chunks_parallel == 0
        chaos_report(verdict.reliability)


class TestParallelTornCommit:
    @pytest.fixture(scope="class")
    def reference(self, base, key, wm, spec, tmp_path_factory):
        path = tmp_path_factory.mktemp("uninterrupted") / "ref.csv.gz"
        stream_mark(
            TableChunkSource(base, chunk_size=CHUNK), wm, key, spec,
            open_sink(path),
        )
        return path.read_bytes()

    @pytest.mark.parametrize("boundary", BOUNDARIES)
    def test_sigkill_mid_parallel_embed_resumes_byte_identical(
        self, base, key, wm, spec, reference, tmp_path, chaos_report,
        boundary,
    ):
        out, ckpt = tmp_path / "out.csv.gz", tmp_path / "run.ckpt"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        # No pipes: the coordinator's orphaned pool workers inherit
        # stdout/stderr, so captured pipes would never reach EOF after
        # the SIGKILL.  A fresh session lets us reap those orphans.
        errlog = tmp_path / "crash.stderr"
        with open(errlog, "wb") as stderr:
            proc = subprocess.Popen(
                [sys.executable, "-c", _WORKER, str(boundary), str(out),
                 str(ckpt)],
                env=env, stdout=subprocess.DEVNULL, stderr=stderr,
                start_new_session=True,
            )
            try:
                rc = proc.wait(timeout=120)
            finally:
                try:
                    os.killpg(proc.pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass
        assert rc == -signal.SIGKILL, (
            f"expected SIGKILL at pipeline.chunk[{boundary}], "
            f"got rc={rc}\nstderr: {errlog.read_text()}"
        )
        result = stream_mark(
            TableChunkSource(base, chunk_size=CHUNK), wm, key, spec,
            open_sink(out), checkpoint_path=ckpt, resume=True, workers=2,
        )
        assert result.resumed_at_chunk == boundary + 1
        assert result.resumed_at_chunk + result.chunks == N_CHUNKS
        assert out.read_bytes() == reference
        chaos_report(result.reliability)
