"""Quarantine sidecars x interrupted runs: the exactly-once contract.

A lossy bad-row policy must interact safely with every recovery path:
whether a run is interrupted and resumed from its checkpoint, or a
transient read fault re-opens the source mid-run, the final bad-row
counts, the quarantine sidecar bytes and the marked output bytes must
all equal an uninterrupted run's — bad rows are counted and quarantined
exactly once, never lost and never doubled.
"""

from __future__ import annotations

import pytest

from repro import MarkKey, Watermark
from repro.core import EmbeddingSpec
from repro.datagen import generate_item_scan
from repro.relational import write_csv
from repro.reliability import FaultPlan, IO_ERROR, RetryPolicy
from repro.stream import CSVChunkSource, open_sink, stream_mark

ROWS = 600
CHUNK = 150
N_CHUNKS = ROWS // CHUNK
#: surviving-row positions after which a torn line is spliced in —
#: one bad row inside every chunk
BAD_AFTER = (50, 200, 350, 500)

FAST = RetryPolicy(max_attempts=4, base_delay=0.0)


@pytest.fixture(scope="module")
def key():
    return MarkKey.from_seed("quarantine")


@pytest.fixture(scope="module")
def wm():
    return Watermark.from_int(0x2AB, 10)


@pytest.fixture(scope="module")
def spec():
    return EmbeddingSpec("Visit_Nbr", "Item_Nbr", 40, 10, 120)


@pytest.fixture(scope="module")
def base():
    return generate_item_scan(ROWS, item_count=80, seed=13)


@pytest.fixture(scope="module")
def dirty_bytes(base, tmp_path_factory):
    """A CSV of ``base`` with a torn line spliced into every chunk."""
    clean = tmp_path_factory.mktemp("dirty") / "clean.csv"
    write_csv(base, clean)
    lines = clean.read_bytes().splitlines(keepends=True)
    # lines[0] is the header; data line i is lines[i]
    for position in sorted(BAD_AFTER, reverse=True):
        lines.insert(position + 1, b"torn,line\r\n")
    return b"".join(lines)


def _source(path, base):
    return CSVChunkSource(
        path, base.schema, chunk_size=CHUNK, on_bad_rows="quarantine"
    )


def _mark(source, wm, key, spec, out, **kwargs):
    return stream_mark(source, wm, key, spec, open_sink(out), **kwargs)


@pytest.fixture(scope="module")
def reference(base, key, wm, spec, dirty_bytes, tmp_path_factory):
    """Uninterrupted quarantined run: output + sidecar ground truth."""
    root = tmp_path_factory.mktemp("reference")
    data = root / "dirty.csv"
    data.write_bytes(dirty_bytes)
    source = _source(data, base)
    result = _mark(source, wm, key, spec, root / "out.csv")
    assert result.rows == ROWS
    assert result.reliability.bad_rows == len(BAD_AFTER)
    assert result.reliability.quarantined_rows == len(BAD_AFTER)
    return {
        "out": (root / "out.csv").read_bytes(),
        "sidecar": source.quarantine_path.read_bytes(),
    }


class TestQuarantineResume:
    def test_interrupted_run_resumes_exactly_once(
        self, base, key, wm, spec, dirty_bytes, reference, tmp_path
    ):
        data = tmp_path / "dirty.csv"
        data.write_bytes(dirty_bytes)
        out, ckpt = tmp_path / "out.csv", tmp_path / "run.ckpt"
        # Fail fast-fail (no retry policy) while writing chunk 2: chunks
        # 0-1 are durable, the interrupted source quarantined two rows.
        plan = FaultPlan().add("sink.write", IO_ERROR, at=2)
        with plan.armed():
            with pytest.raises(OSError):
                _mark(
                    _source(data, base), wm, key, spec, out,
                    checkpoint_path=ckpt,
                )
        resumed_source = _source(data, base)
        result = _mark(
            resumed_source, wm, key, spec, out,
            checkpoint_path=ckpt, resume=True,
        )
        assert result.resumed_at_chunk == 2
        assert result.resumed_at_chunk + result.chunks == N_CHUNKS
        # Exactly-once: the resumed run's totals equal the uninterrupted
        # run's — the fast-forward re-counted (not double-counted) the
        # prefix rows the interrupted run had already quarantined.
        assert result.reliability.bad_rows == len(BAD_AFTER)
        assert result.reliability.quarantined_rows == len(BAD_AFTER)
        assert resumed_source.fastforward_bad_rows == 2  # rows 50, 200
        assert out.read_bytes() == reference["out"]
        assert resumed_source.quarantine_path.read_bytes() == \
            reference["sidecar"]

    def test_boundaries_count_surviving_rows_through_resume(
        self, base, key, wm, spec, dirty_bytes, reference, tmp_path
    ):
        # Resume from every chunk boundary: whatever the interruption
        # point, boundaries are counted in surviving rows, so the resumed
        # output and sidecar stay byte-identical.
        for boundary in range(1, N_CHUNKS):
            data = tmp_path / f"dirty{boundary}.csv"
            data.write_bytes(dirty_bytes)
            out = tmp_path / f"out{boundary}.csv"
            ckpt = tmp_path / f"run{boundary}.ckpt"
            plan = FaultPlan().add("sink.write", IO_ERROR, at=boundary)
            with plan.armed():
                with pytest.raises(OSError):
                    _mark(
                        _source(data, base), wm, key, spec, out,
                        checkpoint_path=ckpt,
                    )
            source = _source(data, base)
            result = _mark(
                source, wm, key, spec, out,
                checkpoint_path=ckpt, resume=True,
            )
            assert result.resumed_at_chunk == boundary
            assert result.rows == ROWS
            assert result.reliability.bad_rows == len(BAD_AFTER)
            assert source.fastforward_bad_rows == boundary  # one per chunk
            assert out.read_bytes() == reference["out"]
            assert source.quarantine_path.read_bytes() == \
                reference["sidecar"]

    def test_retry_reopen_does_not_double_count(
        self, base, key, wm, spec, dirty_bytes, reference, tmp_path
    ):
        data = tmp_path / "dirty.csv"
        data.write_bytes(dirty_bytes)
        out = tmp_path / "out.csv"
        # A transient read fault re-opens the source mid-run: the reopen
        # resets the counters and re-applies the policy from the top, so
        # the final totals match one uninterrupted pass.
        plan = FaultPlan().add("source.read", IO_ERROR, at=2)
        source = _source(data, base)
        with plan.armed():
            result = _mark(
                source, wm, key, spec, out, retry=FAST,
            )
        assert plan.pending() == 0
        assert result.reliability.source_reopens == 1
        assert result.reliability.bad_rows == len(BAD_AFTER)
        assert result.reliability.quarantined_rows == len(BAD_AFTER)
        assert out.read_bytes() == reference["out"]
        assert source.quarantine_path.read_bytes() == reference["sidecar"]

    def test_uninterrupted_runs_report_no_fastforward(
        self, base, key, wm, spec, dirty_bytes, tmp_path
    ):
        data = tmp_path / "dirty.csv"
        data.write_bytes(dirty_bytes)
        source = _source(data, base)
        _mark(source, wm, key, spec, tmp_path / "out.csv")
        assert source.fastforward_bad_rows == 0
        assert source.bad_row_count == len(BAD_AFTER)
