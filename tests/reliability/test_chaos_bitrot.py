"""Chaos suite: silent bit rot, full disks, and lease races.

The kill-matrix covers *loud* crashes; this matrix covers the failures
that make no sound.  A bit flips in a chunk that was already fsynced —
the run completes "successfully" and only the journalled manifest can
tell.  A disk fills mid-write — the run must stop at a durable boundary
and resume byte-identically after space is freed.  Two resumes race —
exactly one may touch the output.

Run with ``pytest -m chaos``; ``REPRO_CHAOS_REDUCED=1`` shrinks the
matrices (the CI smoke job does).
"""

from __future__ import annotations

import errno
import os
import signal
import sqlite3
import subprocess
import sys
import textwrap
import time

import pytest

from repro import MarkKey, Watermark
from repro.core import EmbeddingSpec
from repro.datagen import generate_item_scan
from repro.reliability import (
    BITFLIP,
    DISK_FULL,
    FaultPlan,
    KILL,
    RetryPolicy,
    RunLockedError,
    audit_stream,
    journal_path,
)
from repro.stream import TableChunkSource, open_sink, stream_mark

pytestmark = pytest.mark.chaos

ROWS = 1200
CHUNK = 300
N_CHUNKS = ROWS // CHUNK
REDUCED = bool(os.environ.get("REPRO_CHAOS_REDUCED"))

ROT_CHUNKS = [1] if REDUCED else list(range(N_CHUNKS))
FORMATS = ["csv"] if REDUCED else ["csv", "csv.gz", "sqlite"]

FAST = RetryPolicy(max_attempts=4, base_delay=0.0)


@pytest.fixture(scope="module")
def base():
    return generate_item_scan(ROWS, item_count=80, seed=13)


@pytest.fixture(scope="module")
def key():
    return MarkKey.from_seed("chaos")


@pytest.fixture(scope="module")
def wm():
    return Watermark.from_int(0x2AB, 10)


@pytest.fixture(scope="module")
def spec():
    return EmbeddingSpec("Visit_Nbr", "Item_Nbr", 40, 10, 120)


def _sqlite_rows(path):
    with sqlite3.connect(path) as connection:
        return connection.execute(
            "SELECT * FROM relation ORDER BY rowid"
        ).fetchall()


def _payload(path, fmt):
    return _sqlite_rows(path) if fmt == "sqlite" else path.read_bytes()


@pytest.fixture(scope="module")
def reference(base, key, wm, spec, tmp_path_factory):
    root = tmp_path_factory.mktemp("uninterrupted")
    truth = {}
    for fmt in FORMATS:
        path = root / f"ref.{fmt}"
        stream_mark(
            TableChunkSource(base, chunk_size=CHUNK), wm, key, spec,
            open_sink(path),
        )
        truth[fmt] = _payload(path, fmt)
    return truth


def _mark(base, wm, key, spec, out, **kwargs):
    return stream_mark(
        TableChunkSource(base, chunk_size=CHUNK), wm, key, spec,
        open_sink(out), **kwargs
    )


class TestBitRotMatrix:
    @pytest.mark.parametrize("chunk", ROT_CHUNKS)
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_audit_localizes_and_verified_resume_repairs(
        self, base, key, wm, spec, reference, tmp_path, chaos_report,
        fmt, chunk,
    ):
        out, ckpt = tmp_path / f"out.{fmt}", tmp_path / "run.ckpt"
        plan = FaultPlan().add("sink.bitflip", BITFLIP, at=chunk)
        with plan.armed():
            _mark(base, wm, key, spec, out, checkpoint_path=ckpt)
        assert plan.pending() == 0
        # the run itself saw nothing — only the audit can
        assert _payload(out, fmt) != reference[fmt]
        report = audit_stream(
            out, journal=journal_path(ckpt), table="relation"
        )
        assert not report.ok
        assert report.first_corrupt == chunk
        assert report.verified_chunks == chunk
        # verified resume rewinds past the damage and re-marks
        result = _mark(
            base, wm, key, spec, out, checkpoint_path=ckpt,
            resume=True, verify_resume=True,
        )
        assert result.resumed_at_chunk == chunk
        assert result.reliability.integrity_rewinds == N_CHUNKS - chunk
        assert _payload(out, fmt) == reference[fmt]
        assert audit_stream(
            out, journal=journal_path(ckpt), table="relation"
        ).ok
        chaos_report(result.reliability)

    def test_plain_resume_would_keep_the_damage(
        self, base, key, wm, spec, reference, tmp_path
    ):
        """The control: without verify_resume the rot survives — the
        whole reason the verified path exists."""
        out, ckpt = tmp_path / "out.csv", tmp_path / "run.ckpt"
        plan = FaultPlan().add("sink.bitflip", BITFLIP, at=1)
        with plan.armed():
            _mark(base, wm, key, spec, out, checkpoint_path=ckpt)
        rotted = out.read_bytes()
        assert rotted != reference["csv"]
        # nothing left to do, so a plain resume changes nothing
        _mark(base, wm, key, spec, out, checkpoint_path=ckpt, resume=True)
        assert out.read_bytes() == rotted

    def test_rotted_final_checkpoint_falls_back_to_prev(
        self, base, key, wm, spec, reference, tmp_path, chaos_report
    ):
        out, ckpt = tmp_path / "out.csv", tmp_path / "run.ckpt"
        # rot the *last* checkpoint record (chunks_done == N) after it
        # lands; resume must roll back to .prev and re-mark one chunk
        plan = FaultPlan().add("checkpoint.save", BITFLIP, at=N_CHUNKS)
        with plan.armed():
            _mark(base, wm, key, spec, out, checkpoint_path=ckpt)
        result = _mark(
            base, wm, key, spec, out, checkpoint_path=ckpt, resume=True,
        )
        assert result.resumed_at_chunk == N_CHUNKS - 1
        assert result.reliability.checkpoint_rollbacks == 1
        assert out.read_bytes() == reference["csv"]
        chaos_report(result.reliability)

    def test_rotted_journal_line_drops_tail_verified_resume_rebuilds(
        self, base, key, wm, spec, reference, tmp_path, chaos_report
    ):
        out, ckpt = tmp_path / "out.csv", tmp_path / "run.ckpt"
        plan = FaultPlan().add("journal.append", BITFLIP, at=2)
        with plan.armed():
            _mark(base, wm, key, spec, out, checkpoint_path=ckpt)
        # the CRC kills record 2, so the trusted journal prefix is [0, 1]
        # and the bytes past it read as unrecorded trailing data
        report = audit_stream(out, journal=journal_path(ckpt))
        assert not report.ok
        assert report.chunks == 2 and report.corrupt == []
        assert report.trailing > 0
        result = _mark(
            base, wm, key, spec, out, checkpoint_path=ckpt,
            resume=True, verify_resume=True,
        )
        assert result.resumed_at_chunk == 2
        assert out.read_bytes() == reference["csv"]
        assert audit_stream(out, journal=journal_path(ckpt)).ok
        chaos_report(result.reliability)


class TestDiskFull:
    @pytest.mark.parametrize(
        "label,at",
        [("sink.write", 2), ("sink.flush", 2), ("checkpoint.save", 2)],
    )
    def test_enospc_stops_at_durable_boundary_resume_heals(
        self, base, key, wm, spec, reference, tmp_path, chaos_report,
        label, at,
    ):
        out, ckpt = tmp_path / "out.csv", tmp_path / "run.ckpt"
        plan = FaultPlan().add(label, DISK_FULL, at=at)
        with plan.armed():
            with pytest.raises(OSError) as excinfo:
                _mark(
                    base, wm, key, spec, out,
                    checkpoint_path=ckpt, retry=FAST,
                )
        # ENOSPC is permanent: no retry budget may be burned waiting for
        # a disk to heal itself
        assert excinfo.value.errno == errno.ENOSPC
        result = _mark(
            base, wm, key, spec, out, checkpoint_path=ckpt, resume=True,
        )
        assert out.read_bytes() == reference["csv"]
        assert audit_stream(out, journal=journal_path(ckpt)).ok
        chaos_report(result.reliability)


_RESUME_WORKER = textwrap.dedent("""
    import sys
    from repro import MarkKey, Watermark
    from repro.core import EmbeddingSpec
    from repro.datagen import generate_item_scan
    from repro.reliability import RunLockedError
    from repro.stream import TableChunkSource, open_sink, stream_mark

    out, ckpt = sys.argv[1:3]
    base = generate_item_scan({rows}, item_count=80, seed=13)
    try:
        stream_mark(
            TableChunkSource(base, chunk_size={chunk}),
            Watermark.from_int(0x2AB, 10),
            MarkKey.from_seed("chaos"),
            EmbeddingSpec("Visit_Nbr", "Item_Nbr", 40, 10, 120),
            open_sink(out),
            checkpoint_path=ckpt, resume=True, lock=True,
        )
    except RunLockedError:
        raise SystemExit(8)
""").format(rows=ROWS, chunk=CHUNK)

_KILL_WORKER = textwrap.dedent("""
    import sys
    from repro import MarkKey, Watermark
    from repro.core import EmbeddingSpec
    from repro.datagen import generate_item_scan
    from repro.reliability import KILL, FaultPlan
    from repro.stream import TableChunkSource, open_sink, stream_mark

    at, out, ckpt = sys.argv[1:4]
    base = generate_item_scan({rows}, item_count=80, seed=13)
    plan = FaultPlan().add("pipeline.chunk", KILL, at=int(at))
    with plan.armed():
        stream_mark(
            TableChunkSource(base, chunk_size={chunk}),
            Watermark.from_int(0x2AB, 10),
            MarkKey.from_seed("chaos"),
            EmbeddingSpec("Visit_Nbr", "Item_Nbr", 40, 10, 120),
            open_sink(out),
            checkpoint_path=ckpt,
        )
""").format(rows=ROWS, chunk=CHUNK)


def _src_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return env


class TestLeaseRace:
    def _interrupted_run(self, out, ckpt):
        proc = subprocess.run(
            [sys.executable, "-c", _KILL_WORKER, "1", str(out), str(ckpt)],
            env=_src_env(), capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr

    def test_concurrent_resumes_never_interleave(
        self, base, key, wm, spec, reference, tmp_path
    ):
        out, ckpt = tmp_path / "out.csv", tmp_path / "run.ckpt"
        self._interrupted_run(out, ckpt)
        racers = [
            subprocess.Popen(
                [sys.executable, "-c", _RESUME_WORKER, str(out), str(ckpt)],
                env=_src_env(), stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )
            for _ in range(2)
        ]
        codes = sorted(proc.wait(timeout=120) for proc in racers)
        # one winner always; the loser either lost the lease (8) or ran
        # after the winner had already finished (0, a no-op resume) —
        # never a third state, and never interleaved writes
        assert codes in ([0, 0], [0, 8]), [
            proc.stderr.read().decode() for proc in racers
        ]
        assert out.read_bytes() == reference["csv"]
        assert audit_stream(out, journal=journal_path(ckpt)).ok

    def test_resume_refused_while_lease_held(
        self, base, key, wm, spec, tmp_path
    ):
        out, ckpt = tmp_path / "out.csv", tmp_path / "run.ckpt"
        self._interrupted_run(out, ckpt)
        holder = subprocess.Popen(
            [sys.executable, "-c", textwrap.dedent("""
                import sys, time
                from repro.reliability import RunLock
                lock = RunLock(sys.argv[1], fingerprint="holder")
                lock.acquire()
                print("held", flush=True)
                time.sleep(60)
            """), str(ckpt) + ".lock"],
            env=_src_env(), stdout=subprocess.PIPE, text=True,
        )
        try:
            assert holder.stdout.readline().strip() == "held"
            with pytest.raises(RunLockedError) as excinfo:
                _mark(
                    base, wm, key, spec, out, checkpoint_path=ckpt,
                    resume=True, lock=True,
                )
            assert excinfo.value.holder_pid == holder.pid
        finally:
            holder.kill()
            holder.wait()

    def test_dead_holders_lease_is_taken_over(
        self, base, key, wm, spec, reference, tmp_path, chaos_report
    ):
        out, ckpt = tmp_path / "out.csv", tmp_path / "run.ckpt"
        self._interrupted_run(out, ckpt)
        # the killed run never released its lease? simulate exactly that:
        # a lease whose pid is gone must not wedge recovery forever
        dead = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True, check=True,
        )
        import json as _json
        (tmp_path / "run.ckpt.lock").write_text(_json.dumps(
            {"pid": int(dead.stdout), "fingerprint": "x",
             "acquired": time.time()}
        ))
        result = _mark(
            base, wm, key, spec, out, checkpoint_path=ckpt,
            resume=True, lock=True,
        )
        assert result.reliability.lease_takeovers == 1
        assert out.read_bytes() == reference["csv"]
        chaos_report(result.reliability)
