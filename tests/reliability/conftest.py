"""Fixtures for the reliability/chaos suite.

Every test leaves the process disarmed (an armed plan leaking across
tests would inject faults into unrelated suites), and chaos tests can
record their :class:`~repro.reliability.ReliabilityReport` snapshots into
a session-level collection; when ``REPRO_CHAOS_REPORT`` names a path the
collection is written there as JSON (the CI chaos-smoke job uploads it as
an artifact).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.reliability.faults import disarm

_REPORTS: list[dict] = []


@pytest.fixture(autouse=True)
def _always_disarmed():
    yield
    disarm()


@pytest.fixture
def chaos_report(request):
    """Callable recording one reliability report for the session artifact."""

    def record(report) -> None:
        payload = report.to_dict() if hasattr(report, "to_dict") else dict(report)
        _REPORTS.append({"test": request.node.nodeid, **payload})

    return record


def pytest_sessionfinish(session, exitstatus):
    path = os.environ.get("REPRO_CHAOS_REPORT")
    if path and _REPORTS:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(_REPORTS, handle, indent=2)
            handle.write("\n")
