"""Tests for repro.reliability.faults — the injection harness itself."""

import random

import pytest

from repro.reliability import (
    CORRUPT_JSON,
    FaultPlan,
    IO_ERROR,
    InjectedFaultError,
    KINDS,
    TORN_WRITE,
    active_plan,
    arm,
    disarm,
    fault_point,
    injection_armed,
)


class TestFaultPlan:
    def test_add_chains_and_validates(self):
        plan = FaultPlan().add("a", IO_ERROR).add("b", TORN_WRITE, at=3)
        assert plan.scheduled("a", 0)
        assert plan.scheduled("b", 3)
        assert not plan.scheduled("b", 0)
        with pytest.raises(ValueError, match="fault kind"):
            plan.add("a", "meteor-strike")
        with pytest.raises(ValueError, match="times"):
            plan.add("a", IO_ERROR, times=0)

    def test_draw_consumes_bounded_triggers(self):
        plan = FaultPlan().add("sink.write", IO_ERROR, at=2, times=2)
        assert plan.pending() == 2
        assert plan.draw("sink.write", 2) == IO_ERROR
        assert plan.draw("sink.write", 2) == IO_ERROR
        assert plan.draw("sink.write", 2) is None  # exhausted: retry runs clean
        assert plan.pending() == 0
        assert plan.fired == [
            ("sink.write", 2, IO_ERROR),
            ("sink.write", 2, IO_ERROR),
        ]

    def test_rng_follows_literal_label_contract(self):
        plan = FaultPlan(seed=7)
        expected = random.Random("fault:7:sink.write:3").random()
        assert plan.rng("sink.write", 3).random() == expected
        # fresh generator per call — no shared mutable state
        assert plan.rng("sink.write", 3).random() == expected


class TestArming:
    def test_disarmed_fault_point_is_inert(self):
        disarm()
        assert not injection_armed()
        assert active_plan() is None
        assert fault_point("anything", 0) is None

    def test_armed_context_restores_previous_plan(self):
        outer = FaultPlan()
        previous = arm(outer)
        try:
            inner = FaultPlan()
            with inner.armed():
                assert active_plan() is inner
            assert active_plan() is outer
        finally:
            arm(previous)

    def test_io_error_raises_oserror_at_the_address(self):
        plan = FaultPlan().add("source.read", IO_ERROR, at=1)
        with plan.armed():
            assert fault_point("source.read", 0) is None
            with pytest.raises(InjectedFaultError) as excinfo:
                fault_point("source.read", 1)
        assert isinstance(excinfo.value, OSError)
        assert excinfo.value.label == "source.read"
        assert excinfo.value.index == 1
        assert "injected io-error fault at source.read[1]" in str(excinfo.value)

    def test_cooperative_kinds_are_returned_not_raised(self):
        plan = (
            FaultPlan()
            .add("sink.write.mid", TORN_WRITE, at=0)
            .add("checkpoint.save", CORRUPT_JSON, at=2)
        )
        with plan.armed():
            assert fault_point("sink.write.mid", 0) == TORN_WRITE
            assert fault_point("checkpoint.save", 2) == CORRUPT_JSON
            assert fault_point("sink.write.mid", 0) is None  # consumed

    def test_all_kinds_enumerated(self):
        assert set(KINDS) == {
            "io-error", "torn-write", "truncated-gzip", "corrupt-json", "kill",
            "hang", "slow", "memory", "bitflip", "disk-full",
        }
