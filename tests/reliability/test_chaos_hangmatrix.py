"""Chaos suite: hang/slow/memory stall-matrix over stream and pool paths.

The kill-matrix proves crash-safety; this matrix proves *stall*-safety.
Each cell arms a :class:`~repro.reliability.FaultPlan` with a stall kind
(``hang`` sleeps and continues, ``slow`` throttles, ``memory`` raises
``MemoryError``) at one labeled injection point and asserts the run
recovers — within its :class:`~repro.reliability.Deadline`, through the
:class:`~repro.reliability.MemoryBudget` shrink/replay, via the worker
watchdog, or down a circuit-breaker degradation ladder — with output
**byte-identical** to an undisturbed run.

Run with ``pytest -m chaos``; ``REPRO_CHAOS_REDUCED=1`` shrinks the
matrix (the CI smoke job does).  All injected sleeps are tens of
milliseconds: stall-safety is about *detecting* silence, not waiting
long.
"""

from __future__ import annotations

import os

import pytest

from repro import MarkKey, Watermark
from repro.core import EmbeddingSpec, kernels
from repro.crypto import VECTOR
from repro.datagen import generate_item_scan
from repro.experiments import (
    MODE_POOLED,
    MODE_SERIAL,
    SweepEngine,
    SweepProtocol,
    shutdown_sweep_pool,
)
from repro.attacks import SubsetAlterationAttack
from repro.reliability import (
    HANG,
    IO_ERROR,
    MEMORY,
    SLOW,
    CircuitBreaker,
    Deadline,
    DeadlineExceededError,
    FaultPlan,
    MemoryBudget,
    RetryPolicy,
    Watchdog,
)
from repro.stream import (
    TableChunkSource,
    open_sink,
    stream_mark,
    stream_verify,
    stream_verify_multipass,
)

pytestmark = pytest.mark.chaos

ROWS = 600
CHUNK = 150
N_CHUNKS = ROWS // CHUNK
REDUCED = bool(os.environ.get("REPRO_CHAOS_REDUCED"))

FAST = RetryPolicy(max_attempts=4, base_delay=0.0)

#: one representative index per label — chosen mid-run so recovery has
#: durable chunks both behind and ahead of the stall
STALL_AT = {
    "source.read": 2,
    "sink.write": 2,
    "sink.flush": 2,       # fires inside the retry-wrapped write+flush
    "checkpoint.save": 2,  # chunks_done is 1-based at save time
    "pipeline.embed": 1,   # inside the adaptive embed loop
    "pipeline.chunk": 1,   # after the chunk is durable (crash-equivalent)
}
STALL_LABELS = (
    ["source.read", "pipeline.embed"] if REDUCED else list(STALL_AT)
)
STALL_KINDS = [HANG, MEMORY] if REDUCED else [HANG, SLOW, MEMORY]


@pytest.fixture(scope="module")
def base():
    return generate_item_scan(ROWS, item_count=80, seed=13)


@pytest.fixture(scope="module")
def key():
    return MarkKey.from_seed("stall")


@pytest.fixture(scope="module")
def wm():
    return Watermark.from_int(0x2AB, 10)


@pytest.fixture(scope="module")
def spec():
    return EmbeddingSpec("Visit_Nbr", "Item_Nbr", 40, 10, 120)


@pytest.fixture(scope="module")
def reference(base, key, wm, spec, tmp_path_factory):
    """Undisturbed streamed outputs: the per-format ground truth."""
    root = tmp_path_factory.mktemp("undisturbed")
    truth = {}
    for fmt in ("csv", "csv.gz"):
        path = root / f"ref.{fmt}"
        stream_mark(
            TableChunkSource(base, chunk_size=CHUNK), wm, key, spec,
            open_sink(path),
        )
        truth[fmt] = path.read_bytes()
    return truth


def _stalled_mark(base, wm, key, spec, out, ckpt, plan, *, resume=False,
                  deadline_s=30.0, **kwargs):
    with plan.armed():
        return stream_mark(
            TableChunkSource(base, chunk_size=CHUNK), wm, key, spec,
            open_sink(out), checkpoint_path=ckpt, resume=resume,
            retry=FAST, deadline=Deadline(deadline_s),
            memory_budget=kwargs.pop("memory_budget", MemoryBudget()),
            **kwargs,
        )


class TestStreamStallMatrix:
    @pytest.mark.parametrize("kind", STALL_KINDS)
    @pytest.mark.parametrize("label", STALL_LABELS)
    def test_stall_recovers_within_deadline_byte_identical(
        self, base, key, wm, spec, reference, tmp_path, chaos_report,
        label, kind,
    ):
        out, ckpt = tmp_path / "out.csv", tmp_path / "run.ckpt"
        plan = FaultPlan(hang_seconds=0.05, slow_seconds=0.02).add(
            label, kind, at=STALL_AT[label]
        )
        if (label, kind) == ("pipeline.chunk", MEMORY):
            # The one post-durability point with no in-process handler:
            # exhaustion there is crash-equivalent, and recovery is the
            # checkpoint's job — resume with a fresh budget.
            with pytest.raises(MemoryError):
                _stalled_mark(base, wm, key, spec, out, ckpt, plan)
            result = _stalled_mark(
                base, wm, key, spec, out, ckpt, FaultPlan(), resume=True
            )
            assert result.resumed_at_chunk == STALL_AT[label] + 1
        else:
            result = _stalled_mark(base, wm, key, spec, out, ckpt, plan)
            assert result.chunks == N_CHUNKS
        assert plan.pending() == 0
        assert out.read_bytes() == reference["csv"]
        if kind == MEMORY and label != "pipeline.chunk":
            # (the pipeline.chunk cell's recovery evidence is the resume
            # offset asserted above — its second run is clean by design)
            assert result.reliability.any_recovery
        chaos_report(result.reliability)

    def test_hang_past_deadline_stops_resumably(
        self, base, key, wm, spec, reference, tmp_path, chaos_report
    ):
        out, ckpt = tmp_path / "out.csv", tmp_path / "run.ckpt"
        # The hang outlives the whole budget: the next chunk boundary
        # must raise with chunk 0 already durable — not block forever,
        # not corrupt the output.
        plan = FaultPlan(hang_seconds=0.4).add("source.read", HANG, at=1)
        with pytest.raises(DeadlineExceededError) as excinfo:
            _stalled_mark(
                base, wm, key, spec, out, ckpt, plan, deadline_s=0.2
            )
        assert excinfo.value.label == "pipeline.chunk"
        assert excinfo.value.position >= 1
        result = _stalled_mark(
            base, wm, key, spec, out, ckpt, FaultPlan(), resume=True
        )
        assert result.resumed_at_chunk >= 1
        assert result.resumed_at_chunk + result.chunks == N_CHUNKS
        assert out.read_bytes() == reference["csv"]
        chaos_report(result.reliability)

    def test_memory_budget_shrinks_replays_and_regrows(
        self, base, key, wm, spec, reference, tmp_path, chaos_report
    ):
        # gzip output pins the framing contract: the shrunk chunk is
        # embedded in slices but written as ONE member, so the bytes
        # (member boundaries included) match the undisturbed run.
        out, ckpt = tmp_path / "out.csv.gz", tmp_path / "run.ckpt"
        budget = MemoryBudget(regrow_after=2)
        plan = FaultPlan().add("pipeline.embed", MEMORY, at=1)
        result = _stalled_mark(
            base, wm, key, spec, out, ckpt, plan, memory_budget=budget
        )
        assert out.read_bytes() == reference["csv.gz"]
        assert result.reliability.chunk_shrinks == 1
        assert result.reliability.chunk_regrows == 1  # chunks 2+3 healthy
        assert budget.factor == 1
        assert [event[0] for event in budget.events] == ["shrink", "regrow"]
        chaos_report(result.reliability)

    def test_guarded_embed_refuses_to_slice(self, base, key, wm, spec, tmp_path):
        # Guard budgets are chunk-scoped: slicing would change which
        # alterations they admit, so the guarded path must propagate.
        plan = FaultPlan().add("pipeline.embed", MEMORY, at=0)
        with pytest.raises(MemoryError):
            _stalled_mark(
                base, wm, key, spec, tmp_path / "out.csv",
                tmp_path / "run.ckpt", plan,
                constraints_factory=list,
            )

    def test_breaker_degrades_vector_to_engine_bit_identical(
        self, base, key, wm, spec, reference, tmp_path, chaos_report
    ):
        if not kernels.numpy_available():
            pytest.skip("the VECTOR backend requires numpy")
        out, ckpt = tmp_path / "out.csv", tmp_path / "run.ckpt"
        breaker = CircuitBreaker(threshold=2, cooldown=60.0)
        # Two consecutive exhaustions on the vector path, with the budget
        # already at its floor after the first: the breaker opens and the
        # run degrades down the bit-identical VECTOR -> ENGINE ladder.
        plan = FaultPlan().add("pipeline.embed", MEMORY, at=1, times=2)
        with plan.armed():
            result = stream_mark(
                TableChunkSource(base, chunk_size=CHUNK), wm, key, spec,
                open_sink(out), checkpoint_path=ckpt, retry=FAST,
                backend=VECTOR, breaker=breaker,
                memory_budget=MemoryBudget(max_factor=2),
            )
        assert plan.pending() == 0
        assert out.read_bytes() == reference["csv"]
        assert result.reliability.chunk_shrinks == 1
        assert result.reliability.backend_fallbacks == 1
        assert result.reliability.breaker_trips["stream.vector"] == 1
        assert breaker.is_open("stream.vector")
        chaos_report(result.reliability)


class TestStreamStallDetection:
    @pytest.fixture(scope="class")
    def marked(self, base, key, wm, spec, tmp_path_factory):
        root = tmp_path_factory.mktemp("marked")
        out = root / "marked.csv"
        stream_mark(
            TableChunkSource(base, chunk_size=CHUNK), wm, key, spec,
            open_sink(out),
        )
        from repro.stream import CSVChunkSource

        return lambda: CSVChunkSource(out, base.schema, chunk_size=CHUNK)

    def test_budget_sliced_detection_is_vote_identical(
        self, marked, key, wm, spec
    ):
        clean = stream_verify(marked(), key, spec, wm)
        budget = MemoryBudget()
        budget.shrink("pre-shrunk for the test")
        budget.shrink("pre-shrunk for the test")
        sliced = stream_verify(
            marked(), key, spec, wm, memory_budget=budget,
            deadline=Deadline(30.0),
        )
        assert sliced.detected == clean.detected
        assert sliced.votes == clean.votes
        assert sliced.verification.matching_bits == \
            clean.verification.matching_bits
        assert sliced.chunks == clean.chunks  # splits are not new chunks

    def test_memory_fault_on_read_recovers(self, marked, key, wm, spec):
        clean = stream_verify(marked(), key, spec, wm)
        plan = FaultPlan().add("source.read", MEMORY, at=1)
        with plan.armed():
            recovered = stream_verify(
                marked(), key, spec, wm, retry=FAST,
                deadline=Deadline(30.0),
            )
        assert recovered.votes == clean.votes
        assert recovered.reliability.source_reopens == 1

    def test_expired_deadline_raises_before_scanning(
        self, marked, key, wm, spec
    ):
        deadline = Deadline(1e-9)
        with pytest.raises(DeadlineExceededError):
            stream_verify(marked(), key, spec, wm, deadline=deadline)

    def test_multipass_honors_the_deadline(self, marked, key, wm, spec):
        with pytest.raises(DeadlineExceededError):
            stream_verify_multipass(
                marked(), [key, MarkKey.from_seed("other")], spec,
                [wm, wm], deadline=Deadline(1e-9),
            )


class TestPoolStallChaos:
    PROTOCOL = SweepProtocol(mark_attribute="Item_Nbr", e=40)
    SEEDS = range(3)

    @pytest.fixture(autouse=True)
    def _pool_cleanup(self):
        yield
        shutdown_sweep_pool()

    def _attacks(self):
        return [
            (x, SubsetAlterationAttack("Item_Nbr", x, 0.7))
            for x in (0.2, 0.5)
        ]

    def _flatten(self, points):
        return [
            (point.x, result)
            for point in points
            for result in point.passes
        ]

    def test_watchdog_kills_hung_worker_and_respawns_bit_identical(
        self, base, chaos_report
    ):
        serial = SweepEngine(mode=MODE_SERIAL).run(
            base, self.PROTOCOL, self._attacks(), self.SEEDS
        )
        engine = SweepEngine(
            mode=MODE_POOLED, max_workers=2,
            retry=RetryPolicy(max_attempts=4, base_delay=0.0),
            watchdog=Watchdog(budget=0.4, poll=0.05),
        )
        # The worker sleeps 60 s mid-task — only the watchdog's SIGKILL
        # (after 0.4 s of heartbeat silence) can get the seed back.
        plan = FaultPlan(hang_seconds=60.0).add("pool.worker", HANG, at=1)
        with plan.armed():
            pooled = engine.run(
                base, self.PROTOCOL, self._attacks(), self.SEEDS
            )
        assert self._flatten(pooled) == self._flatten(serial)
        report = engine.reliability_report()
        assert report.watchdog_kills >= 1
        assert report.pool_respawns >= 1
        assert report.pool_fallbacks == 0
        chaos_report(report)

    def test_slow_worker_is_not_killed(self, base, chaos_report):
        serial = SweepEngine(mode=MODE_SERIAL).run(
            base, self.PROTOCOL, self._attacks(), self.SEEDS
        )
        engine = SweepEngine(
            mode=MODE_POOLED, max_workers=2,
            retry=RetryPolicy(max_attempts=4, base_delay=0.0),
            watchdog=Watchdog(budget=0.5, poll=0.05),
        )
        # Slow is not hung: the worker keeps beating between cells and
        # finishes; a watchdog that killed it would be a false positive.
        plan = FaultPlan(slow_seconds=0.1).add("pool.worker", SLOW, at=1)
        with plan.armed():
            pooled = engine.run(
                base, self.PROTOCOL, self._attacks(), self.SEEDS
            )
        assert self._flatten(pooled) == self._flatten(serial)
        report = engine.reliability_report()
        assert report.watchdog_kills == 0
        assert report.cell_retries == 0
        chaos_report(report)

    def test_worker_memory_fault_retries_without_respawn(
        self, base, chaos_report
    ):
        serial = SweepEngine(mode=MODE_SERIAL).run(
            base, self.PROTOCOL, self._attacks(), self.SEEDS
        )
        engine = SweepEngine(
            mode=MODE_POOLED, max_workers=2,
            retry=RetryPolicy(max_attempts=4, base_delay=0.0),
        )
        plan = FaultPlan().add("pool.worker", MEMORY, at=2)
        with plan.armed():
            pooled = engine.run(
                base, self.PROTOCOL, self._attacks(), self.SEEDS
            )
        assert self._flatten(pooled) == self._flatten(serial)
        report = engine.reliability_report()
        assert report.cell_retries > 0
        assert report.pool_respawns == 0
        assert report.watchdog_kills == 0
        chaos_report(report)

    def test_pooled_deadline_expiry_raises_not_hangs(self, base):
        engine = SweepEngine(mode=MODE_POOLED, max_workers=2, watchdog=False)
        plan = FaultPlan(hang_seconds=60.0).add("pool.worker", HANG, at=0)
        # No watchdog: the deadline alone must turn a 60 s worker hang
        # into a prompt DeadlineExceededError (killing the hung workers
        # on the way out), never an unbounded future.result() wait.
        with plan.armed():
            with pytest.raises(DeadlineExceededError) as excinfo:
                engine.run(
                    base, self.PROTOCOL, self._attacks(), self.SEEDS,
                    deadline=Deadline(0.4),
                )
        assert excinfo.value.label == "pool.worker"

    def test_breaker_opens_after_consecutive_rounds_and_degrades(
        self, base, chaos_report
    ):
        serial = SweepEngine(mode=MODE_SERIAL).run(
            base, self.PROTOCOL, self._attacks(), self.SEEDS
        )
        engine = SweepEngine(
            mode=MODE_POOLED, max_workers=2,
            retry=RetryPolicy(max_attempts=10, base_delay=0.0),
            breaker=CircuitBreaker(threshold=2, cooldown=60.0),
        )
        # Seed 0 fails every round: after two consecutive failed rounds
        # the breaker opens and the run degrades to the hoisted ladder
        # instead of burning all ten retry attempts.
        plan = FaultPlan().add("pool.worker", IO_ERROR, at=0, times=8)
        with plan.armed():
            first = engine.run(
                base, self.PROTOCOL, self._attacks(), self.SEEDS
            )
        assert self._flatten(first) == self._flatten(serial)
        report = engine.reliability_report()
        assert report.breaker_trips["pool.worker"] == 1
        assert report.pool_fallbacks == 1
        assert engine.breaker.is_open("pool.worker")
        # While cooling down, the next run skips the pool entirely.
        second = engine.run(base, self.PROTOCOL, self._attacks(), self.SEEDS)
        assert self._flatten(second) == self._flatten(serial)
        assert engine.reliability_report().pool_fallbacks == 2
        chaos_report(engine.reliability_report())
