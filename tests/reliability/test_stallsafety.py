"""Unit tests for the stall-safety primitives.

Deadlines, memory budgets, circuit breakers and the worker watchdog are
small state machines; these tests pin their contracts (what counts as
expired / stale / open, what the disarmed fast paths cost nothing for)
before the chaos hang-matrix exercises them end to end.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
import tracemalloc

import pytest

from repro.reliability import (
    HANG,
    MEMORY,
    SLOW,
    CircuitBreaker,
    Deadline,
    DeadlineExceededError,
    FaultPlan,
    MemoryBudget,
    PERMANENT,
    ReliabilityReport,
    TRANSIENT,
    Watchdog,
    beat,
    check_deadline,
    classify,
    fault_point,
    rss_bytes,
)
from repro.reliability.watchdog import BUSY, IDLE


class TestDeadline:
    def test_budget_must_be_positive(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError, match="positive"):
                Deadline(bad)

    def test_fresh_deadline_has_headroom(self):
        deadline = Deadline(60.0)
        assert not deadline.expired()
        assert 0.0 <= deadline.elapsed() < 1.0
        assert 59.0 < deadline.remaining() <= 60.0
        deadline.check("pipeline.chunk", 3)  # no raise

    def test_expiry_raises_with_resumable_position(self):
        deadline = Deadline(1e-9)
        time.sleep(0.002)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("pipeline.chunk", 7)
        err = excinfo.value
        assert err.label == "pipeline.chunk"
        assert err.position == 7
        assert err.budget == 1e-9
        assert err.elapsed >= 0.002
        assert "exceeded at pipeline.chunk[7]" in str(err)

    def test_expiry_is_permanent_for_the_retry_taxonomy(self):
        # Retrying a run that ran out of wall-clock inside the same
        # budget would loop; the taxonomy must not classify it transient.
        err = DeadlineExceededError("pipeline.chunk", 0, 1.0, 2.0)
        assert classify(err) == PERMANENT

    def test_timeout_caps_blocking_waits(self):
        deadline = Deadline(60.0)
        assert deadline.timeout(0.25) == 0.25
        assert 59.0 < deadline.timeout() <= 60.0
        expired = Deadline(1e-9)
        time.sleep(0.002)
        assert expired.timeout(5.0) == 0.0  # immediate-timeout poll

    def test_after_reads_like_the_call_site(self):
        deadline = Deadline.after(30.0)
        assert deadline.budget == 30.0

    def test_check_deadline_disarmed_is_a_noop(self):
        check_deadline(None, "anything", 99)  # must not raise
        armed = Deadline(1e-9)
        time.sleep(0.002)
        with pytest.raises(DeadlineExceededError):
            check_deadline(armed, "sweep.cell", 2)


class TestMemoryBudget:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="limit_bytes"):
            MemoryBudget(limit_bytes=0)
        with pytest.raises(ValueError, match="regrow_after"):
            MemoryBudget(regrow_after=0)
        with pytest.raises(ValueError, match="max_factor"):
            MemoryBudget(max_factor=0)

    def test_shrink_halves_until_the_floor(self):
        budget = MemoryBudget(max_factor=4)
        assert budget.factor == 1
        assert budget.shrink("test") and budget.factor == 2
        assert budget.shrink("test") and budget.factor == 4
        # at the floor: the caller must let the failure propagate
        assert not budget.shrink("test")
        assert budget.factor == 4
        assert [event[0] for event in budget.events] == ["shrink", "shrink"]

    def test_regrow_needs_a_sustained_healthy_streak(self):
        budget = MemoryBudget(regrow_after=2)
        budget.shrink("pressure")
        budget.shrink("pressure")
        assert budget.factor == 4
        assert not budget.note_healthy()   # streak 1
        assert budget.note_healthy()       # streak 2 -> regrow
        assert budget.factor == 2
        assert not budget.note_healthy()
        assert budget.note_healthy()
        assert budget.factor == 1
        # healthy at factor 1 is the steady state, not an event
        assert not budget.note_healthy()
        assert [event[0] for event in budget.events] == [
            "shrink", "shrink", "regrow", "regrow",
        ]

    def test_shrink_resets_the_healthy_streak(self):
        budget = MemoryBudget(regrow_after=2)
        budget.shrink("a")
        budget.note_healthy()
        budget.shrink("b")       # streak back to zero
        assert not budget.note_healthy()
        assert budget.factor == 4

    def test_slices_bounded_by_rows(self):
        budget = MemoryBudget()
        assert budget.slices(1000) == 1
        budget.shrink("x")
        budget.shrink("x")
        assert budget.slices(1000) == 4
        assert budget.slices(3) == 3    # never more slices than rows
        assert budget.slices(0) == 1

    def test_over_budget_without_limit_is_false(self):
        assert not MemoryBudget().over_budget()

    def test_over_budget_compares_against_sample(self):
        # A 1-byte limit is always breached by a live interpreter.
        budget = MemoryBudget(limit_bytes=1)
        if budget.sample() == 0:
            pytest.skip("no memory sampling source on this platform")
        assert budget.over_budget()

    def test_sample_prefers_tracemalloc_when_tracing(self):
        was_tracing = tracemalloc.is_tracing()
        tracemalloc.start()
        try:
            ballast = ["x" * 64 for _ in range(1000)]
            sampled = MemoryBudget().sample()
            assert 0 < sampled <= tracemalloc.get_traced_memory()[1]
            del ballast
        finally:
            if not was_tracing:
                tracemalloc.stop()

    def test_rss_bytes_reads_proc(self):
        if not os.path.exists("/proc/self/statm"):
            pytest.skip("/proc is unavailable")
        assert rss_bytes() > 0


class TestCircuitBreaker:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown=-1.0)

    def test_opens_on_kth_consecutive_failure(self):
        breaker = CircuitBreaker(threshold=3)
        assert not breaker.record_failure("pool.worker")
        assert not breaker.record_failure("pool.worker")
        assert breaker.record_failure("pool.worker", cause="boom")
        assert breaker.is_open("pool.worker")
        assert breaker.trips("pool.worker") == 1
        assert ("pool.worker", "open", "boom") in breaker.transitions

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("a")
        breaker.record_success("a")
        assert not breaker.record_failure("a")  # streak restarted
        assert not breaker.is_open("a")

    def test_labels_are_independent(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("a")
        breaker.record_failure("b")
        assert not breaker.is_open("a") and not breaker.is_open("b")
        breaker.record_failure("a")
        assert breaker.is_open("a") and not breaker.is_open("b")
        assert breaker.allow("b")

    def test_open_circuit_blocks_until_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure("a")
        assert not breaker.allow("a")
        clock.advance(9.0)
        assert not breaker.allow("a")
        clock.advance(1.5)
        assert breaker.allow("a")  # half-open: one trial admitted

    def test_half_open_failure_reopens_for_a_fresh_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure("a")
        clock.advance(11.0)
        assert breaker.allow("a")
        # The trial fails: no new open transition, but the cooldown
        # restarts from now.
        assert not breaker.record_failure("a")
        assert breaker.trips("a") == 1
        assert not breaker.allow("a")
        clock.advance(11.0)
        assert breaker.allow("a")

    def test_half_open_success_closes_with_a_transition(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=0.0, clock=clock)
        breaker.record_failure("a")
        assert breaker.allow("a")  # zero cooldown: immediately half-open
        breaker.record_success("a")
        assert not breaker.is_open("a")
        assert ("a", "close", "successful call") in breaker.transitions
        assert breaker.trips() == 1


class FakeClock:
    """Deterministic monotonic clock for breaker cooldown tests."""

    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestWatchdog:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="budget"):
            Watchdog(budget=0.0)
        with pytest.raises(ValueError, match="poll"):
            Watchdog(poll=0.0)

    def _beat_at(self, hb_dir, pid, state, age):
        beat(str(hb_dir), pid=pid, state=state)
        stamp = time.time() - age
        os.utime(os.path.join(str(hb_dir), str(pid)), (stamp, stamp))

    def test_busy_and_silent_past_budget_is_stale(self, tmp_path):
        dog = Watchdog(budget=5.0, poll=0.1)
        self._beat_at(tmp_path, 111, BUSY, age=10.0)
        self._beat_at(tmp_path, 222, BUSY, age=1.0)
        assert dog.stale_pids(str(tmp_path), [111, 222]) == [111]

    def test_idle_workers_are_never_stale(self, tmp_path):
        # A worker that finished early and is waiting for the slow one
        # must not be killed — that would break the executor for nothing.
        dog = Watchdog(budget=5.0, poll=0.1)
        self._beat_at(tmp_path, 111, IDLE, age=60.0)
        assert dog.stale_pids(str(tmp_path), [111]) == []

    def test_never_beat_is_not_stale(self, tmp_path):
        # A spare worker the executor never fed has no heartbeat file;
        # a hang before the first beat is the deadline's problem.
        dog = Watchdog(budget=5.0, poll=0.1)
        assert dog.stale_pids(str(tmp_path), [12345]) == []
        assert dog.last_beat(str(tmp_path), 12345) == (0.0, IDLE)

    def test_torn_read_defaults_to_busy(self, tmp_path):
        # An empty file (caught mid-rewrite) reads as BUSY — harmless,
        # because its fresh mtime keeps the worker under budget.
        path = tmp_path / "333"
        path.write_text("")
        dog = Watchdog(budget=5.0, poll=0.1)
        _, state = dog.last_beat(str(tmp_path), 333)
        assert state == BUSY
        assert dog.stale_pids(str(tmp_path), [333]) == []

    def test_beat_without_directory_is_a_noop(self):
        beat(None)  # production default: no heartbeat dir, no I/O

    def test_kill_stale_sigkills_the_hung_process(self, tmp_path):
        victim = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"]
        )
        try:
            dog = Watchdog(budget=0.5, poll=0.1)
            self._beat_at(tmp_path, victim.pid, BUSY, age=5.0)
            killed = dog.kill_stale(str(tmp_path), [victim.pid])
            assert killed == [victim.pid]
            assert victim.wait(timeout=10) == -9
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait()

    def test_kill_ignores_already_dead_pids(self, tmp_path):
        victim = subprocess.Popen([sys.executable, "-c", "pass"])
        victim.wait()
        dog = Watchdog(budget=0.5, poll=0.1)
        assert dog.kill([victim.pid]) == []


class TestStallFaultKinds:
    def test_memory_fault_raises_memory_error(self):
        plan = FaultPlan().add("pipeline.embed", MEMORY, at=1)
        with plan.armed():
            assert fault_point("pipeline.embed", 0) is None
            with pytest.raises(MemoryError, match=r"pipeline\.embed\[1\]"):
                fault_point("pipeline.embed", 1)
        assert plan.pending() == 0

    def test_memory_error_is_transient(self):
        # MemoryError must route through retry/shrink, not abort: chunk
        # replay at a smaller granularity is exactly how it is survived.
        assert classify(MemoryError()) == TRANSIENT

    def test_hang_sleeps_then_continues(self):
        plan = FaultPlan(hang_seconds=0.05).add("source.read", HANG, at=0)
        with plan.armed():
            started = time.monotonic()
            assert fault_point("source.read", 0) is None
            assert time.monotonic() - started >= 0.04
        assert plan.fired == [("source.read", 0, HANG)]

    def test_slow_sleeps_its_own_knob(self):
        plan = FaultPlan(slow_seconds=0.03).add("sink.write", SLOW, at=0)
        with plan.armed():
            started = time.monotonic()
            assert fault_point("sink.write", 0) is None
            assert time.monotonic() - started >= 0.02
        assert plan.pending() == 0


class TestReportStallFields:
    def test_new_counters_round_trip_and_merge(self):
        first = ReliabilityReport(
            watchdog_kills=1, chunk_shrinks=2, chunk_regrows=1,
            backend_fallbacks=1,
        )
        first.breaker_trips["stream.vector"] = 1
        second = ReliabilityReport(watchdog_kills=2)
        second.breaker_trips["pool.worker"] = 1
        first.merge(second)
        payload = first.to_dict()
        assert payload["watchdog_kills"] == 3
        assert payload["chunk_shrinks"] == 2
        assert payload["chunk_regrows"] == 1
        assert payload["backend_fallbacks"] == 1
        assert payload["breaker_trips"] == {
            "stream.vector": 1, "pool.worker": 1,
        }

    def test_stall_recovery_counts_as_recovery(self):
        assert ReliabilityReport(watchdog_kills=1).any_recovery
        assert ReliabilityReport(chunk_shrinks=1).any_recovery
        assert ReliabilityReport(backend_fallbacks=1).any_recovery
        tripped = ReliabilityReport()
        tripped.breaker_trips["pool.worker"] = 1
        assert tripped.any_recovery
        assert not ReliabilityReport().any_recovery

    def test_summary_names_the_stall_recoveries(self):
        report = ReliabilityReport(
            watchdog_kills=1, chunk_shrinks=2, chunk_regrows=1,
            backend_fallbacks=1,
        )
        report.breaker_trips["stream.vector"] = 1
        text = report.summary()
        assert "1 watchdog kills" in text
        assert "2 chunk shrinks" in text
        assert "1 backend fallbacks" in text
        assert "stream.vector x1" in text
