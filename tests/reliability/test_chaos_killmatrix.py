"""Chaos suite: SIGKILL kill-matrix over the streaming and pool paths.

Each matrix cell launches a real subprocess that arms a
:class:`~repro.reliability.FaultPlan` with a ``kill`` fault and runs a
checkpointed streamed embed; the process dies mid-run with
``SIGKILL`` — no ``atexit``, no ``finally``, exactly the crash the
recovery layer claims to survive.  The parent then resumes from the
on-disk checkpoint and asserts the recovered output is **byte-identical**
to an uninterrupted run (row-identical for SQLite, whose file layout is
not canonical).

Run with ``pytest -m chaos``; set ``REPRO_CHAOS_REDUCED=1`` to shrink
the matrix to one kill point per path (the CI smoke job does).
"""

from __future__ import annotations

import os
import signal
import sqlite3
import subprocess
import sys
import textwrap

import pytest

from repro import MarkKey, Watermark
from repro.core import EmbeddingSpec
from repro.datagen import generate_item_scan
from repro.experiments import (
    MODE_POOLED,
    MODE_SERIAL,
    SweepEngine,
    SweepProtocol,
    shutdown_sweep_pool,
)
from repro.attacks import SubsetAlterationAttack
from repro.reliability import IO_ERROR, KILL, FaultPlan, RetryPolicy
from repro.stream import TableChunkSource, open_sink, stream_mark

pytestmark = pytest.mark.chaos

ROWS = 1200
CHUNK = 300
N_CHUNKS = ROWS // CHUNK
REDUCED = bool(os.environ.get("REPRO_CHAOS_REDUCED"))

BOUNDARIES = [1] if REDUCED else list(range(N_CHUNKS))
FORMATS = ["csv"] if REDUCED else ["csv", "csv.gz", "sqlite"]

_WORKER = textwrap.dedent("""
    import sys
    from repro import MarkKey, Watermark
    from repro.core import EmbeddingSpec
    from repro.datagen import generate_item_scan
    from repro.reliability import KILL, FaultPlan
    from repro.stream import TableChunkSource, open_sink, stream_mark

    label, at, out, ckpt = sys.argv[1:5]
    base = generate_item_scan({rows}, item_count=80, seed=13)
    plan = FaultPlan().add(label, KILL, at=int(at))
    with plan.armed():
        stream_mark(
            TableChunkSource(base, chunk_size={chunk}),
            Watermark.from_int(0x2AB, 10),
            MarkKey.from_seed("chaos"),
            EmbeddingSpec("Visit_Nbr", "Item_Nbr", 40, 10, 120),
            open_sink(out),
            checkpoint_path=ckpt,
        )
    raise SystemExit("unreachable: the injected kill never fired")
""").format(rows=ROWS, chunk=CHUNK)


def _crash_run(label: str, at: int, out, ckpt) -> None:
    """Run a streamed embed in a subprocess and let the fault SIGKILL it."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", _WORKER, label, str(at), str(out), str(ckpt)],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, (
        f"expected SIGKILL at {label}[{at}], got rc={proc.returncode}\n"
        f"stderr: {proc.stderr}"
    )


@pytest.fixture(scope="module")
def base():
    return generate_item_scan(ROWS, item_count=80, seed=13)


@pytest.fixture(scope="module")
def key():
    return MarkKey.from_seed("chaos")


@pytest.fixture(scope="module")
def wm():
    return Watermark.from_int(0x2AB, 10)


@pytest.fixture(scope="module")
def spec():
    return EmbeddingSpec("Visit_Nbr", "Item_Nbr", 40, 10, 120)


def _sqlite_rows(path):
    with sqlite3.connect(path) as connection:
        return connection.execute(
            "SELECT * FROM relation ORDER BY rowid"
        ).fetchall()


@pytest.fixture(scope="module")
def reference(base, key, wm, spec, tmp_path_factory):
    """Uninterrupted in-process runs: the ground truth per format."""
    root = tmp_path_factory.mktemp("uninterrupted")
    truth = {}
    for fmt in FORMATS:
        path = root / f"ref.{fmt}"
        stream_mark(
            TableChunkSource(base, chunk_size=CHUNK), wm, key, spec,
            open_sink(path),
        )
        truth[fmt] = (
            _sqlite_rows(path) if fmt == "sqlite" else path.read_bytes()
        )
    return truth


def _resume_and_compare(base, key, wm, spec, reference, out, ckpt, fmt,
                        chaos_report):
    result = stream_mark(
        TableChunkSource(base, chunk_size=CHUNK), wm, key, spec,
        open_sink(out), checkpoint_path=ckpt, resume=True,
    )
    # `chunks` counts this run's work; resumed offset + work = whole table
    assert result.resumed_at_chunk + result.chunks == N_CHUNKS
    if fmt == "sqlite":
        assert _sqlite_rows(out) == reference[fmt]
    else:
        assert out.read_bytes() == reference[fmt]
    chaos_report(result.reliability)
    return result


class TestStreamKillMatrix:
    @pytest.mark.parametrize("boundary", BOUNDARIES)
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_kill_at_chunk_boundary_resumes_byte_identical(
        self, base, key, wm, spec, reference, tmp_path, chaos_report,
        fmt, boundary,
    ):
        out, ckpt = tmp_path / f"out.{fmt}", tmp_path / "run.ckpt"
        # pipeline.chunk fires after the chunk is durable and its
        # checkpoint is written — the canonical crash boundary.
        _crash_run("pipeline.chunk", boundary, out, ckpt)
        result = _resume_and_compare(
            base, key, wm, spec, reference, out, ckpt, fmt, chaos_report
        )
        assert result.resumed_at_chunk == boundary + 1

    @pytest.mark.parametrize("fmt", ["csv"] if REDUCED else ["csv", "csv.gz"])
    def test_kill_mid_sink_write_leaves_torn_bytes_resume_heals(
        self, base, key, wm, spec, reference, tmp_path, chaos_report, fmt
    ):
        out, ckpt = tmp_path / f"out.{fmt}", tmp_path / "run.ckpt"
        # sink.write.mid fsyncs a *partial* chunk (for gzip: a member with
        # no trailer — a genuinely truncated stream) before dying.
        _crash_run("sink.write.mid", 2, out, ckpt)
        result = _resume_and_compare(
            base, key, wm, spec, reference, out, ckpt, fmt, chaos_report
        )
        assert result.resumed_at_chunk == 2

    def test_kill_during_checkpoint_save_rolls_back_to_prev(
        self, base, key, wm, spec, reference, tmp_path, chaos_report
    ):
        out, ckpt = tmp_path / "out.csv", tmp_path / "run.ckpt"
        # checkpoint.save indexes by chunks_done (1-based): dying while
        # recording chunk 2 leaves chunk 1's record as the last verified.
        _crash_run("checkpoint.save", 2, out, ckpt)
        result = _resume_and_compare(
            base, key, wm, spec, reference, out, ckpt, fmt="csv",
            chaos_report=chaos_report,
        )
        assert result.resumed_at_chunk in (1, 2)

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_kill_at_final_flush_resumes_byte_identical(
        self, base, key, wm, spec, reference, tmp_path, chaos_report, fmt
    ):
        out, ckpt = tmp_path / f"out.{fmt}", tmp_path / "run.ckpt"
        # the narrowest window of all: the last chunk's bytes are written
        # but its flush (index == N_CHUNKS) never completes, so neither
        # the final checkpoint nor sink.close() run.  Resume must rewind
        # to chunk N-1's durable marker and re-mark exactly one chunk.
        _crash_run("sink.flush", N_CHUNKS, out, ckpt)
        result = _resume_and_compare(
            base, key, wm, spec, reference, out, ckpt, fmt, chaos_report
        )
        assert result.resumed_at_chunk == N_CHUNKS - 1

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_kill_at_final_checkpoint_resumes_byte_identical(
        self, base, key, wm, spec, reference, tmp_path, chaos_report, fmt
    ):
        out, ckpt = tmp_path / f"out.{fmt}", tmp_path / "run.ckpt"
        # one step later: the last chunk is flushed and durable, but the
        # run dies recording the final checkpoint (chunks_done == N),
        # before sink.close().  Resume lands on N-1's record, re-marks
        # the last chunk, and the bytes still come out identical.
        _crash_run("checkpoint.save", N_CHUNKS, out, ckpt)
        result = _resume_and_compare(
            base, key, wm, spec, reference, out, ckpt, fmt, chaos_report
        )
        assert result.resumed_at_chunk == N_CHUNKS - 1


class TestPoolChaos:
    PROTOCOL = SweepProtocol(mark_attribute="Item_Nbr", e=40)
    SEEDS = range(3)

    @pytest.fixture(autouse=True)
    def _pool_cleanup(self):
        yield
        shutdown_sweep_pool()

    def _attacks(self):
        return [
            (x, SubsetAlterationAttack("Item_Nbr", x, 0.7))
            for x in (0.2, 0.5)
        ]

    def _flatten(self, points):
        return [
            (point.x, result)
            for point in points
            for result in point.passes
        ]

    def test_worker_sigkill_respawns_bit_identical(self, base, chaos_report):
        serial = SweepEngine(mode=MODE_SERIAL).run(
            base, self.PROTOCOL, self._attacks(), self.SEEDS
        )
        engine = SweepEngine(
            mode=MODE_POOLED, max_workers=2,
            retry=RetryPolicy(max_attempts=4, base_delay=0.0),
        )
        plan = FaultPlan().add("pool.worker", KILL, at=1)
        with plan.armed():
            pooled = engine.run(base, self.PROTOCOL, self._attacks(), self.SEEDS)
        assert self._flatten(pooled) == self._flatten(serial)
        report = engine.reliability_report()
        assert report.pool_respawns > 0
        assert report.cell_retries > 0
        assert engine.cache_info()["pool_fallbacks"] == 0
        chaos_report(report)

    def test_worker_io_error_retries_without_respawn(self, base, chaos_report):
        serial = SweepEngine(mode=MODE_SERIAL).run(
            base, self.PROTOCOL, self._attacks(), self.SEEDS
        )
        engine = SweepEngine(
            mode=MODE_POOLED, max_workers=2,
            retry=RetryPolicy(max_attempts=4, base_delay=0.0),
        )
        plan = FaultPlan().add("pool.worker", IO_ERROR, at=2)
        with plan.armed():
            pooled = engine.run(base, self.PROTOCOL, self._attacks(), self.SEEDS)
        assert self._flatten(pooled) == self._flatten(serial)
        report = engine.reliability_report()
        assert report.cell_retries > 0
        assert report.pool_respawns == 0
        chaos_report(report)
