"""Tests for repro.reliability.retry — classification and backoff."""

import sqlite3
import zlib

import pytest

from repro.core.errors import BandwidthError, PermanentError, WatermarkingError
from repro.relational.errors import RelationalError
from repro.reliability import (
    NO_RETRY,
    PERMANENT,
    RetryError,
    RetryPolicy,
    TRANSIENT,
    call_with_retry,
    classify,
)


class TestClassify:
    @pytest.mark.parametrize("exc", [
        OSError("disk"),
        IOError("disk"),
        EOFError(),
        zlib.error("truncated"),
        sqlite3.OperationalError("locked"),
    ])
    def test_io_failures_are_transient(self, exc):
        assert classify(exc) == TRANSIENT

    @pytest.mark.parametrize("exc", [
        WatermarkingError("logic"),
        BandwidthError("too small"),
        PermanentError("bad config"),
        RelationalError("schema"),
        KeyError("unknown"),     # unknown types default to permanent
        ValueError("bad row"),
    ])
    def test_logic_and_unknown_failures_are_permanent(self, exc):
        assert classify(exc) == PERMANENT


class TestRetryPolicy:
    def test_delay_is_deterministic_under_fixed_seed(self):
        a = RetryPolicy(seed=11)
        b = RetryPolicy(seed=11)
        schedule = [a.delay("sink.write", n) for n in (1, 2, 3)]
        assert schedule == [b.delay("sink.write", n) for n in (1, 2, 3)]
        # a different seed or label yields a different jitter draw
        assert schedule != [
            RetryPolicy(seed=12).delay("sink.write", n) for n in (1, 2, 3)
        ]
        assert schedule != [a.delay("source.read", n) for n in (1, 2, 3)]

    def test_backoff_grows_exponentially_within_jitter_bounds(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.25
        )
        for attempt, raw in ((1, 0.1), (2, 0.2), (3, 0.4), (4, 0.8)):
            delay = policy.delay("x", attempt)
            assert raw * 0.75 <= delay <= raw * 1.25

    def test_max_delay_caps_growth(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=2.0)
        assert policy.delay("x", 5) <= 2.0 * 1.25

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(base_delay=0.5, multiplier=2.0, jitter=0.0)
        assert policy.delay("x", 2) == pytest.approx(1.0)

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)


class TestCallWithRetry:
    def _flaky(self, failures, exc_factory=lambda: OSError("flaky")):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise exc_factory()
            return calls["n"]

        return fn, calls

    def test_succeeds_after_transient_failures(self):
        fn, calls = self._flaky(2)
        sleeps: list[float] = []
        retries: list[tuple] = []
        policy = RetryPolicy(max_attempts=3, seed=5)
        result = call_with_retry(
            fn, "op", policy,
            on_retry=lambda *args: retries.append(args),
            sleep=sleeps.append,
        )
        assert result == 3 and calls["n"] == 3
        assert [label for label, _, _ in retries] == ["op", "op"]
        # the sleeps are exactly the policy's deterministic schedule
        assert sleeps == [policy.delay("op", 1), policy.delay("op", 2)]

    def test_recover_runs_between_attempts(self):
        fn, _ = self._flaky(1)
        events: list[str] = []
        call_with_retry(
            fn, "op", RetryPolicy(max_attempts=2),
            recover=lambda: events.append("recover"),
            on_retry=lambda *_: events.append("notify"),
            sleep=lambda _: events.append("sleep"),
        )
        assert events == ["notify", "sleep", "recover"]

    def test_permanent_failure_propagates_untouched(self):
        def fn():
            raise PermanentError("never retry me")

        with pytest.raises(PermanentError):
            call_with_retry(fn, "op", RetryPolicy(max_attempts=5),
                            sleep=lambda _: None)

    def test_exhaustion_raises_retry_error_from_last_cause(self):
        fn, calls = self._flaky(10)
        with pytest.raises(RetryError) as excinfo:
            call_with_retry(fn, "op", RetryPolicy(max_attempts=3),
                            sleep=lambda _: None)
        assert calls["n"] == 3
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_no_retry_sentinel_fails_on_first_transient(self):
        fn, calls = self._flaky(1)
        with pytest.raises(RetryError):
            call_with_retry(fn, "op", NO_RETRY, sleep=lambda _: None)
        assert calls["n"] == 1
