"""End-to-end recovery tests: injected faults -> byte-identical output.

Every scenario asserts two things at once: the run *survives* the
injected fault (bounded retry, rollback, reopen) and the recovered
output is identical to a fault-free run — recovery that changes the
result is corruption with extra steps.
"""

import csv

import pytest

from repro import MarkKey, Watermark, cli
from repro.core import EmbeddingSpec
from repro.datagen import generate_item_scan
from repro.relational import write_csv
from repro.reliability import (
    CORRUPT_JSON,
    FaultPlan,
    IO_ERROR,
    RetryError,
    RetryPolicy,
    TORN_WRITE,
)
from repro.stream import (
    BadRowError,
    CSVChunkSource,
    CheckpointCorruptError,
    TableChunkSource,
    load_checkpoint,
    load_verified_checkpoint,
    open_sink,
    stream_mark,
    stream_verify,
)

E = 40
CHANNEL = 120
CHUNK = 300
ROWS = 1200

FAST = RetryPolicy(max_attempts=4, base_delay=0.0)


@pytest.fixture(scope="module")
def base():
    return generate_item_scan(ROWS, item_count=80, seed=13)


@pytest.fixture(scope="module")
def key():
    return MarkKey.from_seed("recovery")


@pytest.fixture(scope="module")
def wm():
    return Watermark.from_int(0x2AB, 10)


@pytest.fixture(scope="module")
def spec():
    return EmbeddingSpec("Visit_Nbr", "Item_Nbr", E, 10, CHANNEL)


def _mark(base, wm, key, spec, out, *, plan=None, retry=None,
          checkpoint=None, resume=False):
    source = TableChunkSource(base, chunk_size=CHUNK)
    sink = open_sink(out)
    if plan is not None:
        with plan.armed():
            return stream_mark(
                source, wm, key, spec, sink, retry=retry,
                checkpoint_path=checkpoint, resume=resume,
            )
    return stream_mark(
        source, wm, key, spec, sink, retry=retry,
        checkpoint_path=checkpoint, resume=resume,
    )


@pytest.fixture(scope="module")
def reference_bytes(base, key, wm, spec, tmp_path_factory):
    """Fault-free streamed outputs to pin every recovery against."""
    root = tmp_path_factory.mktemp("reference")
    payload = {}
    for name in ("ref.csv", "ref.csv.gz"):
        path = root / name
        _mark(base, wm, key, spec, path)
        payload[name.split(".", 1)[1]] = path.read_bytes()
    return payload


class TestSinkRecovery:
    @pytest.mark.parametrize("suffix", ["csv", "csv.gz"])
    def test_torn_write_rolled_back_and_rewritten(
        self, base, key, wm, spec, reference_bytes, tmp_path, suffix
    ):
        out = tmp_path / f"out.{suffix}"
        plan = FaultPlan().add("sink.write.mid", TORN_WRITE, at=1)
        result = _mark(base, wm, key, spec, out, plan=plan, retry=FAST)
        assert plan.pending() == 0
        assert out.read_bytes() == reference_bytes[suffix]
        assert result.reliability.retries["sink.write"] == 1
        assert result.reliability.sink_rollbacks == 1

    def test_boundary_io_error_retried(
        self, base, key, wm, spec, reference_bytes, tmp_path
    ):
        out = tmp_path / "out.csv"
        plan = FaultPlan().add("sink.write", IO_ERROR, at=2)
        result = _mark(base, wm, key, spec, out, plan=plan, retry=FAST)
        assert out.read_bytes() == reference_bytes["csv"]
        assert result.reliability.total_retries == 1

    def test_exhausted_retries_raise_retry_error(
        self, base, key, wm, spec, tmp_path
    ):
        out = tmp_path / "out.csv"
        plan = FaultPlan().add("sink.write", IO_ERROR, at=0, times=10)
        with pytest.raises(RetryError) as excinfo:
            _mark(base, wm, key, spec, out, plan=plan, retry=FAST)
        assert excinfo.value.label == "sink.write"
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_without_policy_faults_propagate(self, base, key, wm, spec, tmp_path):
        plan = FaultPlan().add("sink.write", IO_ERROR, at=0)
        with pytest.raises(OSError):
            _mark(base, wm, key, spec, tmp_path / "out.csv", plan=plan)


class TestSourceRecovery:
    def test_read_failure_reopens_at_failed_chunk(
        self, base, key, wm, spec, reference_bytes, tmp_path
    ):
        csv_in = tmp_path / "in.csv"
        write_csv(base, csv_in)
        source = CSVChunkSource(csv_in, base.schema, chunk_size=CHUNK)
        out = tmp_path / "out.csv"
        plan = FaultPlan().add("source.read", IO_ERROR, at=2)
        with plan.armed():
            result = stream_mark(
                source, wm, key, spec, open_sink(out), retry=FAST
            )
        assert out.read_bytes() == reference_bytes["csv"]
        assert result.reliability.source_reopens == 1
        assert result.reliability.retries["source.read"] == 1

    def test_streamed_detection_survives_read_faults(
        self, base, key, wm, spec, tmp_path
    ):
        out = tmp_path / "marked.csv"
        _mark(base, wm, key, spec, out)
        clean = stream_verify(
            CSVChunkSource(out, base.schema, chunk_size=CHUNK), key, spec, wm
        )
        plan = FaultPlan().add("source.read", IO_ERROR, at=1, times=2)
        with plan.armed():
            recovered = stream_verify(
                CSVChunkSource(out, base.schema, chunk_size=CHUNK),
                key, spec, wm, retry=FAST,
            )
        assert recovered.detected and clean.detected
        assert recovered.verification.matching_bits == \
            clean.verification.matching_bits
        assert recovered.votes == clean.votes
        assert recovered.reliability.source_reopens == 2


class TestCheckpointRecovery:
    def test_corrupt_json_fault_is_caught_by_crc(
        self, base, key, wm, spec, tmp_path
    ):
        out, ckpt = tmp_path / "out.csv", tmp_path / "run.ckpt"
        plan = FaultPlan().add("checkpoint.save", CORRUPT_JSON, at=4)
        _mark(base, wm, key, spec, out, plan=plan, checkpoint=ckpt)
        with pytest.raises(CheckpointCorruptError, match="crc mismatch"):
            load_checkpoint(ckpt)

    def test_resume_rolls_back_to_verified_prev(
        self, base, key, wm, spec, reference_bytes, tmp_path
    ):
        out, ckpt = tmp_path / "out.csv", tmp_path / "run.ckpt"
        # The *final* checkpoint lands bit-rotted; the .prev record (3
        # chunks done) passes verification.
        plan = FaultPlan().add("checkpoint.save", CORRUPT_JSON, at=4)
        _mark(base, wm, key, spec, out, plan=plan, checkpoint=ckpt)
        loaded, rolled_back = load_verified_checkpoint(ckpt)
        assert rolled_back and loaded.chunks_done == 3
        result = _mark(
            base, wm, key, spec, out, checkpoint=ckpt, resume=True
        )
        assert result.resumed_at_chunk == 3
        assert result.reliability.checkpoint_rollbacks == 1
        assert out.read_bytes() == reference_bytes["csv"]

    def test_torn_checkpoint_write_also_rolls_back(
        self, base, key, wm, spec, reference_bytes, tmp_path
    ):
        out, ckpt = tmp_path / "out.csv", tmp_path / "run.ckpt"
        plan = FaultPlan().add("checkpoint.save", TORN_WRITE, at=4)
        _mark(base, wm, key, spec, out, plan=plan, checkpoint=ckpt)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(ckpt)
        result = _mark(base, wm, key, spec, out, checkpoint=ckpt, resume=True)
        assert result.reliability.checkpoint_rollbacks == 1
        assert out.read_bytes() == reference_bytes["csv"]

    def test_corruption_with_no_fallback_raises(self, tmp_path):
        ckpt = tmp_path / "run.ckpt"
        ckpt.write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointCorruptError) as excinfo:
            load_verified_checkpoint(ckpt)
        assert excinfo.value.path == str(ckpt)

    def test_save_retry_under_io_error(
        self, base, key, wm, spec, reference_bytes, tmp_path
    ):
        out, ckpt = tmp_path / "out.csv", tmp_path / "run.ckpt"
        plan = FaultPlan().add("checkpoint.save", IO_ERROR, at=2)
        result = _mark(
            base, wm, key, spec, out, plan=plan, retry=FAST, checkpoint=ckpt
        )
        assert result.reliability.retries["checkpoint.save"] == 1
        assert out.read_bytes() == reference_bytes["csv"]
        assert load_checkpoint(ckpt).chunks_done == 4


class TestBadRowPolicies:
    @pytest.fixture
    def dirty_csv(self, tiny_schema, tmp_path):
        path = tmp_path / "dirty.csv"
        rows = [
            ["K", "A", "B"],
            ["1", "red", "x"],
            ["2", "green"],            # arity: torn line
            ["3", "blue", "z"],
            ["oops", "red", "x"],      # typed: non-integer key
            ["5", "cyan", "w"],
        ]
        with open(path, "w", newline="", encoding="utf-8") as handle:
            csv.writer(handle).writerows(rows)
        return path

    def test_raise_is_the_default_and_names_the_row(
        self, dirty_csv, tiny_schema
    ):
        source = CSVChunkSource(dirty_csv, tiny_schema, chunk_size=2)
        with pytest.raises(BadRowError, match="bad CSV row 2") as excinfo:
            list(source.chunks())
        assert excinfo.value.number == 2
        # stays a ValueError for the historical parse_row contract
        assert isinstance(excinfo.value, ValueError)

    def test_skip_drops_and_counts(self, dirty_csv, tiny_schema):
        source = CSVChunkSource(
            dirty_csv, tiny_schema, chunk_size=2, on_bad_rows="skip"
        )
        rows = [row for chunk in source.chunks() for row in chunk]
        assert [row[0] for row in rows] == [1, 3, 5]
        assert source.bad_row_count == 2
        assert source.quarantined_rows == 0
        assert not source.quarantine_path.exists()

    def test_quarantine_writes_sidecar_with_row_numbers(
        self, dirty_csv, tiny_schema
    ):
        source = CSVChunkSource(
            dirty_csv, tiny_schema, chunk_size=2, on_bad_rows="quarantine"
        )
        rows = [row for chunk in source.chunks() for row in chunk]
        assert [row[0] for row in rows] == [1, 3, 5]
        assert source.quarantined_rows == 2
        sidecar = source.quarantine_path
        assert sidecar == dirty_csv.with_name("dirty.csv.quarantine.csv")
        with open(sidecar, newline="", encoding="utf-8") as handle:
            records = list(csv.reader(handle))
        assert records[0][:2] == ["row_number", "error"]
        assert [record[0] for record in records[1:]] == ["2", "4"]
        assert records[2][2:] == ["oops", "red", "x"]

    def test_resume_boundaries_count_surviving_rows(
        self, dirty_csv, tiny_schema
    ):
        full = [
            row for chunk in CSVChunkSource(
                dirty_csv, tiny_schema, chunk_size=2, on_bad_rows="skip"
            ).chunks()
            for row in chunk
        ]
        resumed = [
            row for chunk in CSVChunkSource(
                dirty_csv, tiny_schema, chunk_size=2, on_bad_rows="skip"
            ).chunks(start=1)
            for row in chunk
        ]
        assert resumed == full[2:]

    def test_bad_policy_rejected(self, dirty_csv, tiny_schema):
        with pytest.raises(Exception, match="on_bad_rows"):
            CSVChunkSource(dirty_csv, tiny_schema, on_bad_rows="ignore")


class TestCliExitCodes:
    def _embed_args(self, tmp_path, base, extra=()):
        from repro.relational import schema_to_json

        data = tmp_path / "in.csv"
        write_csv(base, data)
        schema = tmp_path / "schema.json"
        schema.write_text(schema_to_json(base.schema), encoding="utf-8")
        keyfile = tmp_path / "key.json"
        assert cli.main(["genkey", "--out", str(keyfile), "--seed", "s"]) == 0
        return [
            "embed", "--input", str(data), "--output",
            str(tmp_path / "marked.csv"), "--schema", str(schema),
            "--key", str(keyfile), "--attribute", "Item_Nbr",
            "--watermark", "bits:1010101011", "--e", str(E),
            "--chunk-size", str(CHUNK),
            "--record", str(tmp_path / "record.json"),
            *extra,
        ]

    def test_corrupt_checkpoint_exits_4(self, base, tmp_path, capsys):
        ckpt = tmp_path / "run.ckpt"
        args = self._embed_args(
            tmp_path, base, ("--checkpoint", str(ckpt)),
        )
        assert cli.main(args) == 0
        ckpt.write_text('{"zapped": true}', encoding="utf-8")
        prev = ckpt.with_name(ckpt.name + ".prev")
        prev.unlink()
        assert cli.main(args + ["--resume"]) == cli.EXIT_CHECKPOINT_CORRUPT
        assert "corrupt checkpoint" in capsys.readouterr().err

    def test_retry_exhaustion_exits_5(self, base, tmp_path, capsys):
        args = self._embed_args(tmp_path, base, ("--retries", "1"))
        plan = FaultPlan().add("source.read", IO_ERROR, at=0, times=10)
        with plan.armed():
            assert cli.main(args) == cli.EXIT_RETRY_EXHAUSTED
        assert "still failing" in capsys.readouterr().err

    def test_bad_rows_exit_6_and_skip_policy_continues(
        self, base, tmp_path, capsys
    ):
        args = self._embed_args(tmp_path, base)
        data = tmp_path / "in.csv"
        with open(data, "a", newline="", encoding="utf-8") as handle:
            handle.write("torn,line\n")
        assert cli.main(args) == cli.EXIT_BAD_ROWS
        assert "--on-bad-rows" in capsys.readouterr().err
        assert cli.main(args + ["--on-bad-rows", "skip"]) == 0
        out = capsys.readouterr().out
        assert "1 bad rows" in out

    def test_recovered_run_prints_reliability_summary(
        self, base, tmp_path, capsys
    ):
        args = self._embed_args(tmp_path, base, ("--retries", "3"))
        plan = FaultPlan().add("source.read", IO_ERROR, at=1)
        with plan.armed():
            assert cli.main(args) == 0
        assert "source reopens" in capsys.readouterr().out
