"""Unit + in-process integration tests for the integrity layer.

Manifest/journal plumbing, audit localization, the run lease, and the
verified-read source policies — every quiet-corruption mechanism the
chaos suite later exercises with real subprocesses is pinned here first
with fast deterministic cases.
"""

import hashlib
import json
import os
import sqlite3
import subprocess
import sys
import time

import pytest

from repro import MarkKey, Watermark
from repro.core import EmbeddingSpec
from repro.datagen import generate_item_scan
from repro.relational import write_csv
from repro.reliability import (
    BITFLIP,
    DISK_FULL,
    FaultPlan,
    IntegrityError,
    PERMANENT,
    RunLock,
    RunLockedError,
    audit_stream,
    classify,
    digest_rows,
    journal_path,
)
from repro.reliability.integrity import (
    ChunkDigest,
    ChunkManifest,
    append_journal_chunk,
    load_journal,
    manifest_from_journal,
    truncate_journal,
    write_journal_header,
)
from repro.stream import (
    CSVChunkSource,
    SQLiteChunkSource,
    TableChunkSource,
    open_sink,
    stream_mark,
)

E = 40
CHANNEL = 120
CHUNK = 300
ROWS = 1200


@pytest.fixture(scope="module")
def base():
    return generate_item_scan(ROWS, item_count=80, seed=13)


@pytest.fixture(scope="module")
def key():
    return MarkKey.from_seed("integrity")


@pytest.fixture(scope="module")
def wm():
    return Watermark.from_int(0x2AB, 10)


@pytest.fixture(scope="module")
def spec():
    return EmbeddingSpec("Visit_Nbr", "Item_Nbr", E, 10, CHANNEL)


def _mark(base, wm, key, spec, out, **kwargs):
    return stream_mark(
        TableChunkSource(base, chunk_size=CHUNK), wm, key, spec,
        open_sink(out), **kwargs
    )


# -- digests and manifests ----------------------------------------------------

class TestDigests:
    def test_digest_rows_is_container_independent(self):
        lists = [[1, "a"], [2, "b"]]
        tuples = [(1, "a"), (2, "b")]
        assert digest_rows(lists) == digest_rows(tuples)

    def test_digest_rows_is_order_and_type_sensitive(self):
        assert digest_rows([[1, "a"], [2, "b"]]) != digest_rows(
            [[2, "b"], [1, "a"]]
        )
        assert digest_rows([[1]]) != digest_rows([["1"]])

    def test_chunk_digest_roundtrip(self):
        entry = ChunkDigest(3, 100, 200, "d" * 64, rows_digest="r" * 64)
        assert ChunkDigest.from_dict(entry.to_dict()) == entry

    def test_manifest_roundtrip_and_truncate(self):
        manifest = ChunkManifest(
            kind="bytes",
            header=ChunkDigest(-1, 0, 10, "h" * 64),
            entries=[
                ChunkDigest(i, i * 10, i * 10 + 10, f"{i}" * 64)
                for i in range(4)
            ],
        )
        again = ChunkManifest.from_dict(manifest.to_dict())
        assert again == manifest
        manifest.truncate(2)
        assert [entry.index for entry in manifest.entries] == [0, 1]


# -- the journal --------------------------------------------------------------

def _write_journal(path, chunks=3):
    write_journal_header(
        path, fingerprint="fp", kind="bytes",
        header_entry=ChunkDigest(-1, 0, 10, "h" * 64),
        open_state={"position": 10},
    )
    for index in range(chunks):
        append_journal_chunk(
            path, index=index,
            entry=ChunkDigest(index, 10 + index * 5, 15 + index * 5, "d" * 64),
            delta={"rows": 5}, sink_state={"position": 15 + index * 5},
        )


class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.ckpt.journal"
        _write_journal(path, chunks=3)
        header, records = load_journal(path)
        assert header["fingerprint"] == "fp"
        assert [r["chunk"] for r in records] == [0, 1, 2]
        manifest = manifest_from_journal(header, records)
        assert manifest.kind == "bytes"
        assert manifest.header.index == -1
        assert len(manifest.entries) == 3

    def test_torn_tail_dropped_prefix_preserved(self, tmp_path):
        path = tmp_path / "run.ckpt.journal"
        _write_journal(path, chunks=3)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        header, records = load_journal(path)
        assert header is not None
        assert [r["chunk"] for r in records] == [0, 1]

    def test_rotted_middle_line_ends_trusted_prefix(self, tmp_path):
        path = tmp_path / "run.ckpt.journal"
        _write_journal(path, chunks=3)
        lines = path.read_bytes().splitlines(keepends=True)
        rotted = lines[2].replace(b'"rows": 5', b'"rows": 6')
        assert rotted != lines[2]
        path.write_bytes(b"".join([lines[0], lines[1], rotted, lines[3]]))
        header, records = load_journal(path)
        # chunk 1's record fails CRC; chunk 2 after it is unreachable even
        # though its own line is intact (records must stay consecutive)
        assert [r["chunk"] for r in records] == [0]

    def test_rotted_header_means_no_journal(self, tmp_path):
        path = tmp_path / "run.ckpt.journal"
        _write_journal(path, chunks=2)
        blob = path.read_bytes()
        path.write_bytes(blob.replace(b'"fp"', b'"xp"', 1))
        assert load_journal(path) == (None, [])

    def test_truncate_keeps_exact_prefix(self, tmp_path):
        path = tmp_path / "run.ckpt.journal"
        _write_journal(path, chunks=4)
        truncate_journal(path, 2)
        header, records = load_journal(path)
        assert header is not None
        assert [r["chunk"] for r in records] == [0, 1]

    def test_missing_file_loads_empty(self, tmp_path):
        assert load_journal(tmp_path / "absent.journal") == (None, [])

    def test_journal_path_rides_along(self):
        assert str(journal_path("run.ckpt")).endswith("run.ckpt.journal")


# -- audit --------------------------------------------------------------------

def _bytes_manifest(path):
    """A 2-chunk byte manifest over an arbitrary small file."""
    blob = path.read_bytes()
    cut = len(blob) // 2
    def _sha(lo, hi):
        return hashlib.sha256(blob[lo:hi]).hexdigest()
    return ChunkManifest(
        kind="bytes",
        header=ChunkDigest(-1, 0, 4, _sha(0, 4)),
        entries=[
            ChunkDigest(0, 4, cut, _sha(4, cut)),
            ChunkDigest(1, cut, len(blob), _sha(cut, len(blob))),
        ],
    )


class TestAuditBytes:
    def test_clean_file_passes(self, tmp_path):
        path = tmp_path / "out.bin"
        path.write_bytes(bytes(range(200)))
        report = audit_stream(path, manifest=_bytes_manifest(path))
        assert report.ok and report.chunks == 2 and report.corrupt == []
        assert report.verified_chunks == 2

    def test_flipped_byte_localized(self, tmp_path):
        path = tmp_path / "out.bin"
        path.write_bytes(bytes(range(200)))
        manifest = _bytes_manifest(path)
        blob = bytearray(path.read_bytes())
        blob[150] ^= 0x40
        path.write_bytes(bytes(blob))
        report = audit_stream(path, manifest=manifest)
        assert not report.ok
        assert report.corrupt == [1] and report.first_corrupt == 1
        assert report.verified_chunks == 1

    def test_truncated_file_reports_missing_range(self, tmp_path):
        path = tmp_path / "out.bin"
        path.write_bytes(bytes(range(200)))
        manifest = _bytes_manifest(path)
        path.write_bytes(path.read_bytes()[:120])
        report = audit_stream(path, manifest=manifest)
        assert not report.ok and 1 in report.corrupt

    def test_trailing_garbage_detected(self, tmp_path):
        path = tmp_path / "out.bin"
        path.write_bytes(bytes(range(200)))
        manifest = _bytes_manifest(path)
        path.write_bytes(path.read_bytes() + b"extra")
        report = audit_stream(path, manifest=manifest)
        assert not report.ok and report.trailing == 5 and not report.corrupt

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(IntegrityError):
            audit_stream(tmp_path / "out.csv", journal=tmp_path / "absent")


class TestAuditRows:
    @pytest.fixture()
    def marked_db(self, tmp_path):
        path = tmp_path / "out.sqlite"
        conn = sqlite3.connect(path)
        conn.execute('CREATE TABLE "relation" (pk INTEGER, item TEXT)')
        rows = [(i, f"item{i % 7}") for i in range(20)]
        conn.executemany('INSERT INTO "relation" VALUES (?, ?)', rows)
        conn.commit()
        conn.close()
        manifest = ChunkManifest(kind="rows", entries=[
            ChunkDigest(0, 0, 10, digest_rows(rows[:10]),
                        rows_digest=digest_rows(rows[:10])),
            ChunkDigest(1, 10, 20, digest_rows(rows[10:]),
                        rows_digest=digest_rows(rows[10:])),
        ])
        return path, manifest

    def test_clean_table_passes(self, marked_db):
        path, manifest = marked_db
        report = audit_stream(path, manifest=manifest)
        assert report.ok and report.chunks == 2

    def test_updated_row_localized(self, marked_db):
        path, manifest = marked_db
        conn = sqlite3.connect(path)
        conn.execute('UPDATE "relation" SET item = ? WHERE rowid = 15', ("rot",))
        conn.commit()
        conn.close()
        report = audit_stream(path, manifest=manifest)
        assert report.corrupt == [1]

    def test_trailing_rows_detected(self, marked_db):
        path, manifest = marked_db
        conn = sqlite3.connect(path)
        conn.execute('INSERT INTO "relation" VALUES (99, ?)', ("late",))
        conn.commit()
        conn.close()
        report = audit_stream(path, manifest=manifest)
        assert not report.ok and report.trailing == 1


# -- the run lease ------------------------------------------------------------

class TestRunLock:
    def test_second_acquire_refused_with_holder_pid(self, tmp_path):
        path = tmp_path / "run.ckpt.lock"
        lock = RunLock(path, fingerprint="fp")
        assert lock.acquire() is False
        with pytest.raises(RunLockedError) as excinfo:
            RunLock(path, fingerprint="fp").acquire()
        assert excinfo.value.holder_pid == os.getpid()
        lock.release()
        assert not path.exists()

    def test_release_allows_reacquire(self, tmp_path):
        path = tmp_path / "run.ckpt.lock"
        with RunLock(path):
            assert path.exists()
        assert RunLock(path).acquire() is False

    def test_dead_holder_taken_over(self, tmp_path):
        path = tmp_path / "run.ckpt.lock"
        proc = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True, check=True,
        )
        dead_pid = int(proc.stdout)
        path.write_bytes(json.dumps(
            {"pid": dead_pid, "fingerprint": "fp", "acquired": 0}
        ).encode())
        lock = RunLock(path, fingerprint="fp")
        assert lock.acquire() is True
        lock.release()

    def test_silent_live_holder_taken_over_after_stale_age(self, tmp_path):
        path = tmp_path / "run.ckpt.lock"
        first = RunLock(path)
        first.acquire()
        old = time.time() - 3600
        os.utime(path, (old, old))
        lock = RunLock(path, stale_after=60.0)
        assert lock.acquire() is True
        lock.release()

    def test_heartbeat_refreshes_mtime(self, tmp_path):
        path = tmp_path / "run.ckpt.lock"
        lock = RunLock(path)
        lock.acquire()
        old = time.time() - 3600
        os.utime(path, (old, old))
        lock.heartbeat()
        assert time.time() - os.path.getmtime(path) < 60
        lock.release()

    def test_unreadable_lease_still_blocks_until_stale(self, tmp_path):
        path = tmp_path / "run.ckpt.lock"
        path.write_bytes(b"\xff not json")
        with pytest.raises(RunLockedError):
            RunLock(path, stale_after=3600.0).acquire()


# -- fault taxonomy -----------------------------------------------------------

class TestDiskFullTaxonomy:
    def test_enospc_is_permanent(self):
        import errno
        assert classify(OSError(errno.ENOSPC, "No space left")) is PERMANENT
        assert classify(OSError(errno.EIO, "I/O error")) != PERMANENT

    def test_disk_full_fault_carries_enospc(self):
        import errno
        from repro.reliability.faults import fault_point
        plan = FaultPlan().add("sink.write", DISK_FULL, at=0)
        with plan.armed():
            with pytest.raises(OSError) as excinfo:
                fault_point("sink.write", 0)
        assert excinfo.value.errno == errno.ENOSPC


# -- end-to-end: manifest recording, audit, verified resume -------------------

class TestStreamIntegration:
    def test_checkpointed_mark_journals_a_manifest(
        self, base, key, wm, spec, tmp_path
    ):
        out = tmp_path / "out.csv"
        ckpt = tmp_path / "run.ckpt"
        result = _mark(base, wm, key, spec, out, checkpoint_path=ckpt)
        assert result.manifest is not None
        assert len(result.manifest.entries) == ROWS // CHUNK
        report = audit_stream(out, journal=journal_path(ckpt))
        assert report.ok and report.chunks == ROWS // CHUNK

    @pytest.mark.parametrize("suffix", ["csv", "csv.gz", "sqlite"])
    def test_manifest_recording_does_not_change_output(
        self, base, key, wm, spec, tmp_path, suffix
    ):
        plain = tmp_path / f"plain.{suffix}"
        armed = tmp_path / f"armed.{suffix}"
        _mark(base, wm, key, spec, plain)
        _mark(base, wm, key, spec, armed, checkpoint_path=tmp_path / "c.ckpt")
        if suffix == "sqlite":
            rows = lambda p: sqlite3.connect(p).execute(
                'SELECT * FROM "relation" ORDER BY rowid'
            ).fetchall()
            assert rows(armed) == rows(plain)
        else:
            assert armed.read_bytes() == plain.read_bytes()

    def test_silent_bitflip_survives_run_but_audit_localizes(
        self, base, key, wm, spec, tmp_path
    ):
        out = tmp_path / "out.csv"
        ckpt = tmp_path / "run.ckpt"
        plan = FaultPlan().add("sink.bitflip", BITFLIP, at=2)
        with plan.armed():
            _mark(base, wm, key, spec, out, checkpoint_path=ckpt)
        report = audit_stream(out, journal=journal_path(ckpt))
        assert not report.ok and report.first_corrupt == 2

    def test_verified_resume_repairs_bitrot_byte_identically(
        self, base, key, wm, spec, tmp_path
    ):
        reference = tmp_path / "ref.csv"
        _mark(base, wm, key, spec, reference)
        out = tmp_path / "out.csv"
        ckpt = tmp_path / "run.ckpt"
        plan = FaultPlan().add("sink.bitflip", BITFLIP, at=1)
        with plan.armed():
            _mark(base, wm, key, spec, out, checkpoint_path=ckpt)
        assert out.read_bytes() != reference.read_bytes()
        result = _mark(
            base, wm, key, spec, out, checkpoint_path=ckpt,
            resume=True, verify_resume=True,
        )
        assert out.read_bytes() == reference.read_bytes()
        assert result.resumed_at_chunk == 1
        assert result.reliability.integrity_rewinds >= 1
        assert audit_stream(out, journal=journal_path(ckpt)).ok

    def test_locked_run_refuses_concurrent_mark(
        self, base, key, wm, spec, tmp_path
    ):
        out = tmp_path / "out.csv"
        ckpt = tmp_path / "run.ckpt"
        holder = RunLock(str(ckpt) + ".lock", fingerprint="other")
        holder.acquire()
        try:
            with pytest.raises(RunLockedError):
                _mark(
                    base, wm, key, spec, out,
                    checkpoint_path=ckpt, lock=True,
                )
        finally:
            holder.release()
        # lease gone: the same run now proceeds and cleans up after itself
        _mark(base, wm, key, spec, out, checkpoint_path=ckpt, lock=True)
        assert not (tmp_path / "run.ckpt.lock").exists()


# -- verified read ------------------------------------------------------------

class TestVerifiedRead:
    @pytest.fixture()
    def marked_csv(self, base, key, wm, spec, tmp_path):
        out = tmp_path / "marked.csv"
        ckpt = tmp_path / "run.ckpt"
        result = _mark(base, wm, key, spec, out, checkpoint_path=ckpt)
        return out, result.manifest

    def test_clean_chunks_admitted(self, base, marked_csv):
        out, manifest = marked_csv
        source = CSVChunkSource(
            out, base.schema, chunk_size=CHUNK, verify_manifest=manifest
        )
        chunks = list(source.chunks())
        assert len(chunks) == ROWS // CHUNK
        assert source.corrupt_chunks == 0

    def test_rotted_chunk_raises_with_index(self, base, marked_csv):
        out, manifest = marked_csv
        blob = bytearray(out.read_bytes())
        # land inside chunk 1's byte range
        blob[manifest.entries[1].start + 20] ^= 0x01
        out.write_bytes(bytes(blob))
        source = CSVChunkSource(
            out, base.schema, chunk_size=CHUNK, verify_manifest=manifest
        )
        with pytest.raises(IntegrityError) as excinfo:
            list(source.chunks())
        assert excinfo.value.chunk == 1

    def test_skip_policy_quarantines_rotted_chunk(self, base, marked_csv):
        out, manifest = marked_csv
        blob = bytearray(out.read_bytes())
        blob[manifest.entries[1].start + 20] ^= 0x01
        out.write_bytes(bytes(blob))
        source = CSVChunkSource(
            out, base.schema, chunk_size=CHUNK,
            verify_manifest=manifest, on_corrupt_chunks="skip",
        )
        chunks = list(source.chunks())
        assert len(chunks) == ROWS // CHUNK - 1
        assert source.corrupt_chunks == 1

    def test_sqlite_verified_read(self, base, key, wm, spec, tmp_path):
        out = tmp_path / "marked.sqlite"
        ckpt = tmp_path / "run.ckpt"
        result = _mark(base, wm, key, spec, out, checkpoint_path=ckpt)
        source = SQLiteChunkSource(
            out, base.schema, chunk_size=CHUNK,
            verify_manifest=result.manifest,
        )
        assert len(list(source.chunks())) == ROWS // CHUNK
        conn = sqlite3.connect(out)
        # silent rot must stay inside the categorical domain (a foreign
        # value would be caught by schema validation, not the digest)
        legal = [
            value for (value,) in conn.execute(
                'SELECT DISTINCT "Item_Nbr" FROM "relation" LIMIT 2'
            )
        ]
        current = conn.execute(
            'SELECT "Item_Nbr" FROM "relation" WHERE rowid = ?', (CHUNK + 5,)
        ).fetchone()[0]
        swapped = legal[0] if legal[0] != current else legal[1]
        conn.execute(
            'UPDATE "relation" SET "Item_Nbr" = ? WHERE rowid = ?',
            (swapped, CHUNK + 5),
        )
        conn.commit()
        conn.close()
        with pytest.raises(IntegrityError) as excinfo:
            list(source.chunks())
        assert excinfo.value.chunk == 1
