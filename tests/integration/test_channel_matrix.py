"""Systematic attack × channel survival matrix.

One table, every attack class from §2.3, three protection configurations
(single pair, multi-attribute closure, association+frequency), each cell
asserting the survival expectation the paper's design implies.  This is
the "does the whole system hang together" test.
"""

import random

import pytest

from repro import MarkKey, Watermark, Watermarker
from repro.attacks import (
    BijectiveRemapAttack,
    CompositeAttack,
    DataLossAttack,
    ShuffleAttack,
    SingleColumnAttack,
    SortAttack,
    SubsetAdditionAttack,
    SubsetAlterationAttack,
    VerticalPartitionAttack,
)
from repro.core import embed_pairs, verify_frequency, verify_pairs
from repro.datagen import generate_sales


@pytest.fixture(scope="module")
def base():
    return generate_sales(12_000, item_count=200, seed=314)


@pytest.fixture(scope="module")
def key():
    return MarkKey.from_seed("matrix")


@pytest.fixture(scope="module")
def payload():
    return Watermark.from_int(0x2AB, 10)


@pytest.fixture(scope="module")
def single_channel(base, key, payload):
    marker = Watermarker(key, e=50)
    outcome = marker.embed(
        base, payload, "Item_Nbr", with_frequency_channel=True
    )
    return marker, outcome


@pytest.fixture(scope="module")
def multi_channel(base, key, payload):
    table = base.clone()
    embedding = embed_pairs(table, payload, key, e=50)
    return table, embedding


RNG_SEED = 2718


class TestSingleChannelMatrix:
    @pytest.mark.parametrize(
        "attack",
        [
            DataLossAttack(0.5),
            SubsetAdditionAttack(0.5),
            SubsetAlterationAttack("Item_Nbr", 0.25, 0.7),
            ShuffleAttack(),
            SortAttack("Item_Nbr"),
            CompositeAttack(
                [
                    DataLossAttack(0.3),
                    SubsetAdditionAttack(0.2),
                    SubsetAlterationAttack("Item_Nbr", 0.05),
                    ShuffleAttack(),
                ]
            ),
        ],
        ids=lambda attack: attack.name,
    )
    def test_association_channel_survives(self, single_channel, attack):
        marker, outcome = single_channel
        attacked = attack.apply(outcome.table, random.Random(RNG_SEED))
        verdict = marker.verify(attacked, outcome.record)
        assert verdict.detected, attack.name

    def test_remap_needs_recovery(self, single_channel):
        marker, outcome = single_channel
        attack = BijectiveRemapAttack("Item_Nbr")
        attacked = attack.apply(outcome.table, random.Random(RNG_SEED))
        naive = marker.verify(attacked, outcome.record)
        recovered = marker.verify(
            attacked, outcome.record, try_remap_recovery=True
        )
        # the frequency channel inside the record carries recovery
        assert recovered.detected
        assert not naive.association.detected

    def test_single_column_only_frequency_survives(
        self, single_channel, key, payload
    ):
        marker, outcome = single_channel
        attacked = SingleColumnAttack("Item_Nbr").apply(
            outcome.table, random.Random(RNG_SEED)
        )
        freq = verify_frequency(
            attacked, key, outcome.record.frequency_record, payload
        )
        assert freq.detected


class TestMultiChannelMatrix:
    @pytest.mark.parametrize(
        "kept",
        [
            ["Scan_Id", "Item_Nbr"],
            ["Scan_Id", "Store_Nbr", "Dept"],
            ["Item_Nbr", "Store_Nbr"],
            ["Item_Nbr", "Dept", "Quantity"],
        ],
        ids=lambda kept: "+".join(kept),
    )
    def test_partitions_keep_a_witness(
        self, multi_channel, key, payload, kept
    ):
        table, embedding = multi_channel
        attacked = VerticalPartitionAttack(kept).apply(
            table, random.Random(RNG_SEED)
        )
        verdict = verify_pairs(attacked, key, embedding, payload)
        assert verdict.detected, kept

    def test_partition_plus_loss(self, multi_channel, key, payload):
        table, embedding = multi_channel
        attack = CompositeAttack(
            [
                VerticalPartitionAttack(["Scan_Id", "Item_Nbr", "Store_Nbr"]),
                DataLossAttack(0.4),
                ShuffleAttack(),
            ]
        )
        attacked = attack.apply(table, random.Random(RNG_SEED))
        verdict = verify_pairs(attacked, key, embedding, payload)
        assert verdict.detected

    def test_wrong_key_never_detects_anywhere(
        self, multi_channel, payload
    ):
        table, embedding = multi_channel
        impostor = MarkKey.from_seed("impostor-matrix")
        verdict = verify_pairs(table, impostor, embedding, payload)
        assert not verdict.detected
        assert verdict.combined_false_hit_probability > 0.001
