"""End-to-end integration: the full owner workflow over every channel."""

import random

import pytest

from repro import MarkKey, Watermark, Watermarker
from repro.attacks import (
    CompositeAttack,
    DataLossAttack,
    ShuffleAttack,
    SubsetAdditionAttack,
    SubsetAlterationAttack,
)
from repro.core import MarkRecord
from repro.datagen import generate_item_scan
from repro.quality import (
    MaxAlterationFraction,
    MaxFrequencyDrift,
    measure_distortion,
)


@pytest.fixture(scope="module")
def workload():
    return generate_item_scan(10_000, item_count=400, seed=2024)


@pytest.fixture(scope="module")
def owner():
    return Watermarker(MarkKey.from_seed("acme-owner"), e=50)


@pytest.fixture(scope="module")
def published(workload, owner):
    watermark = Watermark.from_text("AB")  # 16 bits
    return owner.embed(
        workload,
        watermark,
        "Item_Nbr",
        constraints=[
            MaxAlterationFraction(0.08),
            MaxFrequencyDrift("Item_Nbr", 0.25),
        ],
        p_add=0.02,
        with_frequency_channel=True,
    )


class TestOwnerWorkflow:
    def test_distortion_within_constraints(self, workload, published):
        report = measure_distortion(
            workload, published.table, frequency_attributes=("Item_Nbr",)
        )
        assert report.tuple_change_fraction <= 0.09
        assert report.frequency_drift["Item_Nbr"] <= 0.26

    def test_clean_copy_verifies_on_both_channels(self, owner, published):
        verdict = owner.verify(published.table, published.record)
        assert verdict.association.detected
        assert verdict.frequency.detected

    def test_record_survives_escrow_round_trip(self, owner, published):
        escrowed = published.record.to_json()
        restored = MarkRecord.from_json(escrowed)
        verdict = owner.verify(published.table, restored)
        assert verdict.detected

    def test_kitchen_sink_attack(self, owner, published):
        """A realistic pirate: keep 60%, dilute 20%, tweak 5%, shuffle."""
        attack = CompositeAttack(
            [
                DataLossAttack(0.4),
                SubsetAdditionAttack(0.2),
                SubsetAlterationAttack("Item_Nbr", 0.05),
                ShuffleAttack(),
            ]
        )
        attacked = attack.apply(published.table, random.Random(17))
        verdict = owner.verify(attacked, published.record)
        assert verdict.detected
        assert verdict.association.mark_alteration <= 0.2

    def test_innocent_bystander_not_accused(self, owner, published):
        """A different owner's unmarked data of the same shape must not
        trigger detection under our keys/record (false-positive control)."""
        bystander = generate_item_scan(10_000, item_count=400, seed=999)
        verdict = owner.verify(bystander, published.record)
        assert not verdict.detected


class TestCsvPublicationCycle:
    def test_blind_detection_from_csv(self, owner, published, tmp_path):
        """Publish as CSV, reload with only schema knowledge, verify."""
        from repro.relational import read_csv, write_csv

        path = tmp_path / "published.csv"
        write_csv(published.table, path)
        suspect = read_csv(path, published.table.schema)
        verdict = owner.verify(suspect, published.record)
        assert verdict.detected

    def test_blind_detection_from_csv_after_loss(
        self, owner, published, tmp_path
    ):
        from repro.relational import read_csv, write_csv

        attacked = DataLossAttack(0.5).apply(
            published.table, random.Random(3)
        )
        path = tmp_path / "leaked.csv"
        write_csv(attacked, path)
        suspect = read_csv(path, published.table.schema)
        verdict = owner.verify(suspect, published.record)
        assert verdict.detected
