"""Integration: resilience claims of the paper checked per attack class.

These tests assert the *shape* results of §5 at reduced scale: graceful
degradation, the e-resilience trade-off, and the headline data-loss claim.
"""

import random

import pytest

from repro import MarkKey, Watermark, Watermarker
from repro.attacks import (
    DataLossAttack,
    ShuffleAttack,
    SortAttack,
    SubsetAdditionAttack,
    SubsetAlterationAttack,
)
from repro.datagen import generate_item_scan
from repro.experiments import run_attack_experiment


@pytest.fixture(scope="module")
def table():
    return generate_item_scan(6000, item_count=300, seed=42)


def mean_alteration(table, e, attack, passes=4):
    results = run_attack_experiment(
        table, "Item_Nbr", e, attack, passes=passes
    )
    return sum(result.mark_alteration for result in results) / len(results)


class TestA1DataLoss:
    def test_headline_claim_80_percent_loss(self, table):
        """Paper headline: up to 80% data loss -> only ~25% mark alteration."""
        alteration = mean_alteration(table, 65, DataLossAttack(0.8), passes=6)
        assert alteration <= 0.25

    def test_degradation_roughly_monotone(self, table):
        low = mean_alteration(table, 65, DataLossAttack(0.2), passes=4)
        high = mean_alteration(table, 65, DataLossAttack(0.8), passes=4)
        assert low <= high + 0.05

    def test_moderate_loss_nearly_harmless(self, table):
        assert mean_alteration(table, 65, DataLossAttack(0.3), passes=4) <= 0.05


class TestA2Addition:
    def test_dilution_is_nearly_harmless(self, table):
        """Added tuples vote randomly at rate 1/e: majority absorbs them."""
        alteration = mean_alteration(
            table, 65, SubsetAdditionAttack(0.5), passes=4
        )
        assert alteration <= 0.05

    def test_extreme_dilution_still_detected(self, table):
        results = run_attack_experiment(
            table, "Item_Nbr", 65, SubsetAdditionAttack(1.0), passes=4
        )
        assert all(result.mark_alteration <= 0.2 for result in results)


class TestA3Alteration:
    def test_graceful_degradation(self, table):
        small = mean_alteration(
            table, 65, SubsetAlterationAttack("Item_Nbr", 0.2, 0.7), passes=4
        )
        large = mean_alteration(
            table, 65, SubsetAlterationAttack("Item_Nbr", 0.8, 0.7), passes=4
        )
        assert small <= large + 0.05
        assert small <= 0.25

    def test_more_bandwidth_more_resilience(self, table):
        """Figure 5's claim: decreasing e raises resilience."""
        attack = SubsetAlterationAttack("Item_Nbr", 0.55, 0.7)
        strong = mean_alteration(table, 15, attack, passes=4)
        weak = mean_alteration(table, 150, attack, passes=4)
        assert strong <= weak + 0.05


class TestA4Resorting:
    def test_shuffle_changes_nothing(self, table):
        assert mean_alteration(table, 65, ShuffleAttack(), passes=3) == 0.0

    def test_sort_changes_nothing(self, table):
        assert mean_alteration(
            table, 65, SortAttack("Item_Nbr"), passes=3
        ) == 0.0

    def test_detection_bit_identical_under_reorder(self, table):
        key = MarkKey.from_seed("order-test")
        watermark = Watermark.from_int(0x155, 10)
        marker = Watermarker(key, e=50)
        outcome = marker.embed(table, watermark, "Item_Nbr")
        shuffled = ShuffleAttack().apply(outcome.table, random.Random(1))
        original = marker.verify(outcome.table, outcome.record)
        reordered = marker.verify(shuffled, outcome.record)
        assert (
            original.association.detection.watermark
            == reordered.association.detection.watermark
        )
