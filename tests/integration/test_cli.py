"""Integration tests for the repro-wm command-line interface."""

import json
import random

import pytest

from repro.cli import EXIT_NOT_DETECTED, main
from repro.datagen import generate_item_scan
from repro.relational import (
    drop_fraction,
    read_csv,
    schema_from_json,
    schema_to_json,
    write_csv,
)


@pytest.fixture
def workspace(tmp_path):
    """data.csv + schema.json + key.json ready for CLI use."""
    table = generate_item_scan(5000, item_count=200, seed=8)
    data = tmp_path / "data.csv"
    schema = tmp_path / "schema.json"
    key = tmp_path / "key.json"
    write_csv(table, data)
    schema.write_text(schema_to_json(table.schema), encoding="utf-8")
    assert main(["genkey", "--out", str(key), "--seed", "cli-test"]) == 0
    return tmp_path


def embed_args(ws, **overrides):
    args = {
        "--data": str(ws / "data.csv"),
        "--schema": str(ws / "schema.json"),
        "--key": str(ws / "key.json"),
        "--attribute": "Item_Nbr",
        "--watermark": "(c)T",
        "--e": "50",
        "--out": str(ws / "marked.csv"),
        "--record": str(ws / "record.json"),
    }
    args.update(overrides)
    return ["embed"] + [part for pair in args.items() for part in pair]


class TestGenkey:
    def test_writes_key_json(self, tmp_path):
        out = tmp_path / "key.json"
        assert main(["genkey", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert set(payload) == {"k1", "k2"}

    def test_seeded_keys_reproducible(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        main(["genkey", "--out", str(first), "--seed", "s"])
        main(["genkey", "--out", str(second), "--seed", "s"])
        assert first.read_text() == second.read_text()


class TestEmbedDetect:
    def test_embed_then_detect_clean(self, workspace, capsys):
        assert main(embed_args(workspace)) == 0
        code = main(
            [
                "detect",
                "--data", str(workspace / "marked.csv"),
                "--schema", str(workspace / "schema.json"),
                "--key", str(workspace / "key.json"),
                "--record", str(workspace / "record.json"),
            ]
        )
        assert code == 0
        assert "DETECTED" in capsys.readouterr().out

    def test_detect_survives_row_loss(self, workspace):
        main(embed_args(workspace))
        schema = schema_from_json(
            (workspace / "schema.json").read_text()
        )
        marked = read_csv(workspace / "marked.csv", schema)
        suspect = drop_fraction(marked, 0.5, random.Random(4))
        write_csv(suspect, workspace / "suspect.csv")
        code = main(
            [
                "detect",
                "--data", str(workspace / "suspect.csv"),
                "--schema", str(workspace / "schema.json"),
                "--key", str(workspace / "key.json"),
                "--record", str(workspace / "record.json"),
            ]
        )
        assert code == 0

    def test_unmarked_data_exits_not_detected(self, workspace):
        main(embed_args(workspace))
        code = main(
            [
                "detect",
                "--data", str(workspace / "data.csv"),  # the original!
                "--schema", str(workspace / "schema.json"),
                "--key", str(workspace / "key.json"),
                "--record", str(workspace / "record.json"),
            ]
        )
        assert code == EXIT_NOT_DETECTED

    def test_embed_with_quality_budget(self, workspace, capsys):
        assert main(
            embed_args(workspace, **{"--max-alteration": "0.001"})
        ) == 0
        out = capsys.readouterr().out
        assert "vetoed" in out

    def test_bits_watermark_format(self, workspace):
        assert main(
            embed_args(workspace, **{"--watermark": "bits:1011001110"})
        ) == 0
        record = json.loads((workspace / "record.json").read_text())
        assert record["watermark"] == "1011001110"

    def test_hex_watermark_format(self, workspace):
        assert main(embed_args(workspace, **{"--watermark": "hex:AC"})) == 0
        record = json.loads((workspace / "record.json").read_text())
        assert record["watermark"] == "10101100"


class TestInspect:
    def test_inspect_prints_profile(self, workspace, capsys):
        code = main(
            [
                "inspect",
                "--data", str(workspace / "data.csv"),
                "--schema", str(workspace / "schema.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Item_Nbr" in out
        assert "5000" in out

    def test_inspect_single_attribute(self, workspace, capsys):
        code = main(
            [
                "inspect",
                "--data", str(workspace / "data.csv"),
                "--schema", str(workspace / "schema.json"),
                "--attribute", "Item_Nbr",
            ]
        )
        assert code == 0
        assert "distinct values" in capsys.readouterr().out


class TestSchemaTemplate:
    def test_template_is_valid_json(self, workspace, capsys):
        code = main(
            ["schema-template", "--data", str(workspace / "data.csv")]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["primary_key"] == "Visit_Nbr"
        assert [a["name"] for a in payload["attributes"]] == [
            "Visit_Nbr", "Item_Nbr",
        ]


class TestRemapRecoveryFlag:
    @pytest.fixture
    def dense_workspace(self, tmp_path):
        """Remap recovery needs many rows per value (§4.5's "over large
        data sets"): 8000 rows over 25 items."""
        table = generate_item_scan(8000, item_count=25, seed=9)
        write_csv(table, tmp_path / "data.csv")
        (tmp_path / "schema.json").write_text(
            schema_to_json(table.schema), encoding="utf-8"
        )
        assert main(
            ["genkey", "--out", str(tmp_path / "key.json"), "--seed", "d"]
        ) == 0
        return tmp_path

    def test_detect_with_recovery_after_remap(self, dense_workspace):
        workspace = dense_workspace
        main(embed_args(workspace))
        schema = schema_from_json((workspace / "schema.json").read_text())
        marked = read_csv(workspace / "marked.csv", schema)
        from repro.attacks import PermutationRemapAttack

        attacked = PermutationRemapAttack("Item_Nbr").apply(
            marked, random.Random(6)
        )
        write_csv(attacked, workspace / "remapped.csv")
        base = [
            "detect",
            "--data", str(workspace / "remapped.csv"),
            "--schema", str(workspace / "schema.json"),
            "--key", str(workspace / "key.json"),
            "--record", str(workspace / "record.json"),
        ]
        assert main(base) == EXIT_NOT_DETECTED
        assert main(base + ["--remap-recovery"]) == 0


class TestSweepCommand:
    @pytest.fixture
    def small_workspace(self, tmp_path):
        table = generate_item_scan(600, item_count=60, seed=19)
        data = tmp_path / "data.csv"
        schema = tmp_path / "schema.json"
        write_csv(table, data)
        schema.write_text(schema_to_json(table.schema), encoding="utf-8")
        return tmp_path

    def _sweep(self, ws, out, **overrides):
        args = {
            "--data": str(ws / "data.csv"),
            "--schema": str(ws / "schema.json"),
            "--attribute": "Item_Nbr",
            "--e": "25",
            "--attack": "alteration",
            "--xs": "0.3,0.6",
            "--passes": "2",
            "--json": str(out),
        }
        args.update(overrides)
        return ["sweep"] + [part for pair in args.items() for part in pair]

    def test_sweep_writes_series_json(self, small_workspace, capsys):
        out = small_workspace / "series.json"
        assert main(self._sweep(small_workspace, out)) == 0
        payload = json.loads(out.read_text())
        assert payload["attack"] == "alteration"
        assert [point["x"] for point in payload["points"]] == [0.3, 0.6]
        assert "mark alteration" in capsys.readouterr().out

    def test_backend_and_mode_flags_are_bit_identical(self, small_workspace):
        """--backend/--mode select execution only — results never change."""
        outputs = []
        for backend, mode in (
            ("scalar", "serial"),
            ("engine", "hoisted"),
            ("vector", "hoisted"),
            ("auto", "auto"),
        ):
            out = small_workspace / f"{backend}-{mode}.json"
            code = main(
                self._sweep(
                    small_workspace, out,
                    **{"--backend": backend, "--mode": mode},
                )
            )
            assert code == 0
            outputs.append(json.loads(out.read_text())["points"])
        assert all(points == outputs[0] for points in outputs[1:])

    def test_loss_attack_sweep(self, small_workspace):
        out = small_workspace / "loss.json"
        assert (
            main(
                self._sweep(
                    small_workspace, out,
                    **{"--attack": "loss", "--xs": "0.5"},
                )
            )
            == 0
        )
        payload = json.loads(out.read_text())
        assert len(payload["points"]) == 1

    def test_rejects_unknown_backend(self, small_workspace):
        out = small_workspace / "bad.json"
        with pytest.raises(SystemExit):
            main(
                self._sweep(
                    small_workspace, out, **{"--backend": "vectr"}
                )
            )


class TestFigureCommand:
    def test_figure7_json(self, tmp_path, capsys):
        out = tmp_path / "fig7.json"
        code = main(
            [
                "figure", "--figure", "7", "--tuples", "500",
                "--items", "50", "--passes", "2",
                "--backend", "auto", "--mode", "auto",
                "--json", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["figure"] == 7
        assert len(payload["points"]) == 8
        assert "figure 7" in capsys.readouterr().out

    def test_figure6_surface_modes_match(self, tmp_path):
        payloads = []
        for mode in ("serial", "hoisted"):
            out = tmp_path / f"fig6-{mode}.json"
            code = main(
                [
                    "figure", "--figure", "6", "--tuples", "400",
                    "--items", "40", "--passes", "2",
                    "--mode", mode, "--json", str(out),
                ]
            )
            assert code == 0
            payloads.append(json.loads(out.read_text())["surface"])
        assert payloads[0] == payloads[1]


class TestStreamingFileMode:
    """--input/--output/--chunk-size: the out-of-core CLI pipelines."""

    def stream_embed_args(self, ws, **overrides):
        args = {
            "--input": str(ws / "data.csv"),
            "--output": str(ws / "marked.csv.gz"),
            "--chunk-size": "1024",
            "--schema": str(ws / "schema.json"),
            "--key": str(ws / "key.json"),
            "--attribute": "Item_Nbr",
            "--watermark": "(c)T",
            "--e": "50",
            "--record": str(ws / "record_stream.json"),
        }
        args.update(overrides)
        return ["mark"] + [part for pair in args.items() for part in pair]

    def test_streamed_mark_then_streamed_detect(self, workspace, capsys):
        assert main(self.stream_embed_args(workspace)) == 0
        code = main(
            [
                "detect",
                "--input", str(workspace / "marked.csv.gz"),
                "--chunk-size", "1024",
                "--schema", str(workspace / "schema.json"),
                "--key", str(workspace / "key.json"),
                "--record", str(workspace / "record_stream.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DETECTED" in out and "chunks" in out

    def test_streamed_output_matches_in_memory_output(self, workspace):
        import gzip

        assert main(embed_args(workspace)) == 0
        assert main(self.stream_embed_args(workspace)) == 0
        in_memory = (workspace / "marked.csv").read_bytes()
        streamed = gzip.decompress(
            (workspace / "marked.csv.gz").read_bytes()
        )
        assert streamed == in_memory
        # and the escrowed specs agree
        record_memory = json.loads((workspace / "record.json").read_text())
        record_stream = json.loads(
            (workspace / "record_stream.json").read_text()
        )
        assert record_stream["spec"] == record_memory["spec"]

    def test_streamed_detect_not_detected_on_unmarked(self, workspace):
        assert main(self.stream_embed_args(workspace)) == 0
        code = main(
            [
                "detect",
                "--input", str(workspace / "data.csv"),  # the original!
                "--schema", str(workspace / "schema.json"),
                "--key", str(workspace / "key.json"),
                "--record", str(workspace / "record_stream.json"),
            ]
        )
        assert code == EXIT_NOT_DETECTED

    def test_checkpoint_file_written(self, workspace):
        checkpoint = workspace / "run.ckpt"
        assert main(
            self.stream_embed_args(
                workspace, **{"--checkpoint": str(checkpoint)}
            )
        ) == 0
        payload = json.loads(checkpoint.read_text())
        assert payload["rows_done"] == 5000

    def test_data_and_input_are_mutually_exclusive(self, workspace):
        import pytest

        with pytest.raises(SystemExit):
            main(
                self.stream_embed_args(
                    workspace, **{"--data": str(workspace / "data.csv")}
                )
            )
        with pytest.raises(SystemExit):
            main([
                "detect",
                "--schema", str(workspace / "schema.json"),
                "--key", str(workspace / "key.json"),
                "--record", str(workspace / "record.json"),
            ])

    def test_streaming_rejects_in_memory_only_flags(self, workspace):
        import pytest

        with pytest.raises(SystemExit, match="frequency"):
            main(
                self.stream_embed_args(workspace)
                + ["--frequency-channel"]
            )

    def test_resume_without_checkpoint_is_a_usage_error(self, workspace):
        import pytest

        with pytest.raises(SystemExit, match="checkpoint"):
            main(self.stream_embed_args(workspace) + ["--resume"])
