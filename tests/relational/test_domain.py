"""Tests for repro.relational.domain — canonical categorical domains."""

import pytest

from repro.relational import CategoricalDomain, DomainError, SchemaError


class TestConstruction:
    def test_values_are_sorted_canonically(self):
        domain = CategoricalDomain(["zebra", "apple", "mango"])
        assert domain.values == ("apple", "mango", "zebra")

    def test_duplicates_collapse(self):
        domain = CategoricalDomain(["a", "b", "a", "b", "a"])
        assert domain.size == 2

    def test_empty_domain_rejected(self):
        with pytest.raises(SchemaError):
            CategoricalDomain([])

    def test_integer_values_sorted_numerically(self):
        domain = CategoricalDomain([30, 4, 100])
        assert domain.values == (4, 30, 100)

    def test_mixed_types_have_total_order(self):
        domain = CategoricalDomain(["b", 2, "a", 1])
        # ints group before strs (by type name), each group sorted natively
        assert domain.values == (1, 2, "a", "b")

    def test_construction_order_is_irrelevant(self):
        first = CategoricalDomain(["c", "a", "b"])
        second = CategoricalDomain(["b", "c", "a"])
        assert first == second
        assert hash(first) == hash(second)

    def test_from_column_builds_observed_domain(self):
        domain = CategoricalDomain.from_column(["x", "y", "x", "x"])
        assert domain.values == ("x", "y")


class TestIndexing:
    def test_index_round_trip(self):
        domain = CategoricalDomain(["a", "b", "c"])
        for index, value in enumerate(domain.values):
            assert domain.index_of(value) == index
            assert domain.value_at(index) == value

    def test_index_of_unknown_value_raises(self):
        domain = CategoricalDomain(["a"])
        with pytest.raises(DomainError):
            domain.index_of("zzz")

    def test_value_at_out_of_range_raises(self):
        domain = CategoricalDomain(["a", "b"])
        with pytest.raises(DomainError):
            domain.value_at(2)
        with pytest.raises(DomainError):
            domain.value_at(-1)

    def test_contains(self):
        domain = CategoricalDomain(["a", "b"])
        assert "a" in domain
        assert "q" not in domain

    def test_len_and_iter(self):
        domain = CategoricalDomain(["a", "b", "c"])
        assert len(domain) == 3
        assert list(domain) == ["a", "b", "c"]


class TestRemapping:
    def test_remapped_builds_bijective_image(self):
        domain = CategoricalDomain(["a", "b"])
        image = domain.remapped({"a": "X", "b": "Y"})
        assert set(image.values) == {"X", "Y"}

    def test_remapped_requires_total_mapping(self):
        domain = CategoricalDomain(["a", "b"])
        with pytest.raises(DomainError):
            domain.remapped({"a": "X"})

    def test_remapped_requires_injective_mapping(self):
        domain = CategoricalDomain(["a", "b"])
        with pytest.raises(SchemaError):
            domain.remapped({"a": "X", "b": "X"})

    def test_detection_relevant_invariant_same_set_same_order(self):
        """The blind detector reconstructing the domain from the same value
        set must get identical value/index associations (§3.2.2)."""
        published = CategoricalDomain(["NYC", "LAX", "ORD", "ATL"])
        reconstructed = CategoricalDomain(["ATL", "ORD", "LAX", "NYC"])
        for value in published:
            assert published.index_of(value) == reconstructed.index_of(value)
