"""Tests for repro.relational.table — the PK-indexed relation."""

import pytest

from repro.relational import (
    Attribute,
    AttributeType,
    CategoricalDomain,
    DomainError,
    DuplicateKeyError,
    MissingKeyError,
    Schema,
    SchemaError,
    Table,
    make_categorical_attribute,
    table_from_columns,
)


class TestInsert:
    def test_insert_and_len(self, tiny_table):
        assert len(tiny_table) == 6

    def test_duplicate_key_rejected(self, tiny_table):
        with pytest.raises(DuplicateKeyError):
            tiny_table.insert((1, "red", "x"))

    def test_type_violation_rejected(self, tiny_schema):
        table = Table(tiny_schema)
        with pytest.raises(Exception):
            table.insert(("one", "red", "x"))

    def test_domain_violation_rejected(self, tiny_table):
        with pytest.raises(DomainError):
            tiny_table.insert((7, "magenta", "x"))

    def test_arity_violation_rejected(self, tiny_table):
        with pytest.raises(SchemaError):
            tiny_table.insert((7, "red"))


class TestReads:
    def test_get_returns_tuple(self, tiny_table):
        assert tiny_table.get(3) == (3, "blue", "z")

    def test_get_missing_key_raises(self, tiny_table):
        with pytest.raises(MissingKeyError):
            tiny_table.get(999)

    def test_value_cell_access(self, tiny_table):
        assert tiny_table.value(2, "A") == "green"

    def test_column_order_matches_iteration(self, tiny_table):
        column = tiny_table.column("A")
        assert column == [row[1] for row in tiny_table]

    def test_contains_key(self, tiny_table):
        assert 1 in tiny_table
        assert 999 not in tiny_table

    def test_keys_iteration(self, tiny_table):
        assert sorted(tiny_table.keys()) == [1, 2, 3, 4, 5, 6]

    def test_rows_where_filters(self, tiny_table):
        reds = list(tiny_table.rows_where(lambda row: row[1] == "red"))
        assert len(reds) == 2


class TestWrites:
    def test_set_value_returns_previous(self, tiny_table):
        previous = tiny_table.set_value(1, "A", "blue")
        assert previous == "red"
        assert tiny_table.value(1, "A") == "blue"

    def test_set_value_validates_domain(self, tiny_table):
        with pytest.raises(DomainError):
            tiny_table.set_value(1, "A", "magenta")

    def test_set_value_missing_key(self, tiny_table):
        with pytest.raises(MissingKeyError):
            tiny_table.set_value(42, "A", "red")

    def test_set_primary_key_reindexes(self, tiny_table):
        tiny_table.set_value(1, "K", 100)
        assert 100 in tiny_table
        assert 1 not in tiny_table
        assert tiny_table.get(100) == (100, "red", "x")

    def test_set_primary_key_to_existing_raises(self, tiny_table):
        with pytest.raises(DuplicateKeyError):
            tiny_table.set_value(1, "K", 2)

    def test_set_primary_key_same_value_noop(self, tiny_table):
        assert tiny_table.set_value(1, "K", 1) == 1

    def test_delete_removes_tuple(self, tiny_table):
        removed = tiny_table.delete(3)
        assert removed == (3, "blue", "z")
        assert 3 not in tiny_table
        assert len(tiny_table) == 5

    def test_delete_missing_raises(self, tiny_table):
        with pytest.raises(MissingKeyError):
            tiny_table.delete(999)

    def test_delete_keeps_index_consistent(self, tiny_table):
        tiny_table.delete(1)  # triggers swap-with-last
        for key in (2, 3, 4, 5, 6):
            assert tiny_table.get(key)[0] == key

    def test_replace_rows_swaps_contents(self, tiny_table):
        tiny_table.replace_rows([(9, "red", "x")])
        assert len(tiny_table) == 1
        assert 9 in tiny_table

    def test_replace_rows_rejects_duplicates(self, tiny_table):
        with pytest.raises(DuplicateKeyError):
            tiny_table.replace_rows([(9, "red", "x"), (9, "blue", "y")])


class TestCloneAndEquality:
    def test_clone_is_independent(self, tiny_table):
        duplicate = tiny_table.clone()
        duplicate.set_value(1, "A", "blue")
        assert tiny_table.value(1, "A") == "red"

    def test_equality_is_order_insensitive(self, tiny_table):
        rows = list(tiny_table)
        shuffled = Table(tiny_table.schema, reversed(rows))
        assert tiny_table == shuffled

    def test_inequality_on_different_contents(self, tiny_table):
        other = tiny_table.clone()
        other.set_value(1, "A", "blue")
        assert tiny_table != other

    def test_with_schema_requires_same_layout(self, tiny_table, tiny_schema):
        other_schema = Schema(
            (Attribute("Z", AttributeType.INTEGER),), primary_key="Z"
        )
        with pytest.raises(SchemaError):
            tiny_table.with_schema(other_schema)


class TestHelpers:
    def test_table_from_columns(self, tiny_schema):
        table = table_from_columns(
            tiny_schema,
            {
                "K": [1, 2],
                "A": ["red", "blue"],
                "B": ["x", "y"],
            },
        )
        assert len(table) == 2
        assert table.get(2) == (2, "blue", "y")

    def test_table_from_columns_ragged_rejected(self, tiny_schema):
        with pytest.raises(SchemaError):
            table_from_columns(
                tiny_schema, {"K": [1], "A": ["red", "blue"], "B": ["x"]}
            )

    def test_table_from_columns_missing_column(self, tiny_schema):
        with pytest.raises(SchemaError):
            table_from_columns(tiny_schema, {"K": [1], "A": ["red"]})

    def test_make_categorical_attribute(self):
        attribute = make_categorical_attribute("A", ["a", "b"])
        assert attribute.is_categorical
        assert attribute.domain.size == 2


class TestSetValuesBatch:
    """Batched writes: atomicity, copy-on-write, version accounting."""

    def test_batch_writes_and_single_version_bump(self, tiny_table):
        before = tiny_table.version
        written = tiny_table.set_values("A", [(1, "blue"), (2, "red")])
        assert written == 2
        assert tiny_table.value(1, "A") == "blue"
        assert tiny_table.value(2, "A") == "red"
        assert tiny_table.version == before + 1

    def test_batch_on_shared_clone_privatizes_rows(self, tiny_table):
        clone = tiny_table.clone()
        clone.set_values("A", [(1, "blue"), (3, "red")])
        # The clone sees the new values, the original is untouched.
        assert clone.value(1, "A") == "blue"
        assert clone.value(3, "A") == "red"
        assert tiny_table.value(1, "A") == "red"
        assert tiny_table.value(3, "A") == "blue"
        # And the other direction: writing the original after the batch
        # must not leak into the clone.
        tiny_table.set_values("A", [(2, "cyan")])
        assert clone.value(2, "A") == "green"

    def test_schema_violating_batch_rejected_atomically(self, tiny_table):
        before = tiny_table.version
        with pytest.raises(DomainError):
            tiny_table.set_values(
                "A", [(1, "blue"), (2, "not-a-colour"), (3, "red")]
            )
        # Nothing applied — not even the valid leading write — and no
        # cache invalidation happened.
        assert tiny_table.value(1, "A") == "red"
        assert tiny_table.version == before

    def test_missing_key_batch_rejected_atomically(self, tiny_table):
        before = tiny_table.version
        with pytest.raises(MissingKeyError):
            tiny_table.set_values("A", [(1, "blue"), (999, "red")])
        assert tiny_table.value(1, "A") == "red"
        assert tiny_table.version == before

    def test_pk_batch_renames_atomically(self, tiny_table):
        before = tiny_table.version
        tiny_table.set_values("K", [(1, 101), (2, 102)])
        assert tiny_table.get(101) == (101, "red", "x")
        assert tiny_table.get(102) == (102, "green", "y")
        assert 1 not in tiny_table and 2 not in tiny_table
        assert tiny_table.version == before + 1

    def test_pk_batch_allows_rename_chains(self, tiny_table):
        # Sequential semantics: 1 -> 7 frees key 1 for 2 -> 1.
        tiny_table.set_values("K", [(1, 7), (2, 1)])
        assert tiny_table.get(7) == (7, "red", "x")
        assert tiny_table.get(1) == (1, "green", "y")

    def test_pk_batch_duplicate_key_rejected_atomically(self, tiny_table):
        before = tiny_table.version
        with pytest.raises(DuplicateKeyError):
            tiny_table.set_values("K", [(1, 100), (2, 3)])  # 3 exists
        assert tiny_table.get(1) == (1, "red", "x")
        assert tiny_table.get(2) == (2, "green", "y")
        assert 100 not in tiny_table
        assert tiny_table.version == before

    def test_pk_batch_on_shared_clone_privatizes_rows(self, tiny_table):
        clone = tiny_table.clone()
        clone.set_values("K", [(1, 100)])
        assert clone.get(100) == (100, "red", "x")
        assert tiny_table.get(1) == (1, "red", "x")
        assert 100 not in tiny_table

    def test_empty_and_lazy_batches(self, tiny_table):
        before = tiny_table.version
        assert tiny_table.set_values("A", []) == 0
        assert tiny_table.version == before
        # Lazy iterables reading the table observe the pre-batch state.
        updates = ((key, "cyan") for key in [1, 2])
        assert tiny_table.set_values("A", updates) == 2
        assert tiny_table.value(2, "A") == "cyan"
