"""Tests for repro.relational.types — the attribute type system."""

import pytest

from repro.relational import AttributeType


class TestAccepts:
    def test_integer_accepts_int(self):
        assert AttributeType.INTEGER.accepts(42)

    def test_integer_rejects_bool(self):
        assert not AttributeType.INTEGER.accepts(True)

    def test_integer_rejects_float(self):
        assert not AttributeType.INTEGER.accepts(4.2)

    def test_real_accepts_float_and_int(self):
        assert AttributeType.REAL.accepts(4.2)
        assert AttributeType.REAL.accepts(4)

    def test_real_rejects_bool(self):
        assert not AttributeType.REAL.accepts(False)

    def test_string_accepts_str(self):
        assert AttributeType.STRING.accepts("hello")

    def test_string_rejects_bytes(self):
        assert not AttributeType.STRING.accepts(b"hello")

    def test_categorical_accepts_hashables(self):
        assert AttributeType.CATEGORICAL.accepts("x")
        assert AttributeType.CATEGORICAL.accepts(7)
        assert AttributeType.CATEGORICAL.accepts(("a", 1))

    def test_categorical_rejects_unhashable(self):
        assert not AttributeType.CATEGORICAL.accepts(["list"])


class TestParse:
    def test_parse_integer(self):
        assert AttributeType.INTEGER.parse("42") == 42

    def test_parse_real(self):
        assert AttributeType.REAL.parse("4.5") == pytest.approx(4.5)

    def test_parse_string_passthrough(self):
        assert AttributeType.STRING.parse("abc") == "abc"

    def test_parse_categorical_passthrough(self):
        assert AttributeType.CATEGORICAL.parse("abc") == "abc"

    def test_parse_integer_garbage_raises(self):
        with pytest.raises(ValueError):
            AttributeType.INTEGER.parse("xyz")
