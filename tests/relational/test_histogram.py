"""Tests for repro.relational.histogram — frequency profiles (§2.1, §4.2)."""

import pytest

from repro.relational import (
    count_vector,
    empirical_distribution,
    frequency_histogram,
    frequency_vector,
    l1_distance,
    sorted_frequency_profile,
    value_counts,
)


class TestCounts:
    def test_value_counts(self, tiny_table):
        counts = value_counts(tiny_table, "A")
        assert counts["red"] == 2
        assert counts["green"] == 2
        assert counts["blue"] == 1
        assert counts["cyan"] == 1

    def test_declared_but_absent_values_counted_as_zero(self, tiny_table):
        tiny_table.delete(5)  # removes the only cyan
        counts = value_counts(tiny_table, "A")
        assert counts["cyan"] == 0

    def test_count_vector_follows_domain_order(self, tiny_table):
        domain = tiny_table.schema.attribute("A").domain
        vector = count_vector(tiny_table, "A")
        assert len(vector) == domain.size
        assert vector[domain.index_of("red")] == 2


class TestFrequencies:
    def test_frequencies_sum_to_one(self, tiny_table):
        histogram = frequency_histogram(tiny_table, "A")
        assert sum(histogram.values()) == pytest.approx(1.0)

    def test_frequency_values(self, tiny_table):
        histogram = frequency_histogram(tiny_table, "A")
        assert histogram["red"] == pytest.approx(2 / 6)

    def test_frequency_vector_matches_histogram(self, tiny_table):
        domain = tiny_table.schema.attribute("A").domain
        vector = frequency_vector(tiny_table, "A")
        histogram = frequency_histogram(tiny_table, "A")
        for value in domain:
            assert vector[domain.index_of(value)] == pytest.approx(
                histogram[value]
            )

    def test_empty_table_gives_zero_frequencies(self, tiny_schema):
        from repro.relational import Table

        table = Table(tiny_schema)
        histogram = frequency_histogram(table, "A")
        assert all(value == 0.0 for value in histogram.values())


class TestDistances:
    def test_l1_identity_is_zero(self, tiny_table):
        histogram = frequency_histogram(tiny_table, "A")
        assert l1_distance(histogram, histogram) == 0.0

    def test_l1_disjoint_is_two(self):
        assert l1_distance({"a": 1.0}, {"b": 1.0}) == pytest.approx(2.0)

    def test_l1_missing_keys_are_zero(self):
        assert l1_distance({"a": 0.5, "b": 0.5}, {"a": 0.5}) == pytest.approx(0.5)

    def test_l1_symmetry(self):
        first = {"a": 0.7, "b": 0.3}
        second = {"a": 0.4, "b": 0.6}
        assert l1_distance(first, second) == pytest.approx(
            l1_distance(second, first)
        )


class TestProfiles:
    def test_sorted_profile_descending(self, tiny_table):
        histogram = frequency_histogram(tiny_table, "A")
        profile = sorted_frequency_profile(histogram)
        frequencies = [freq for _, freq in profile]
        assert frequencies == sorted(frequencies, reverse=True)

    def test_sorted_profile_tie_break_deterministic(self):
        histogram = {"b": 0.5, "a": 0.5}
        profile = sorted_frequency_profile(histogram)
        assert [value for value, _ in profile] == ["a", "b"]

    def test_empirical_distribution_weights(self):
        distribution = empirical_distribution(["x", "x", "y"])
        as_dict = dict(distribution)
        assert as_dict["x"] == pytest.approx(2 / 3)
        assert as_dict["y"] == pytest.approx(1 / 3)

    def test_empirical_distribution_empty(self):
        assert empirical_distribution([]) == []
