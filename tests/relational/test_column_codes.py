"""Tests for Table.column_codes — the vector backend's factorize-once
contract: first-encounter unique order, version-scoped caching at
attribute granularity, and copy-on-write inheritance across clones."""

import numpy as np
import pytest

from repro.relational import ColumnCodes, Table


def decode(codes: ColumnCodes) -> list:
    return [codes.uniques[code] for code in codes.codes.tolist()]


class TestFactorization:
    def test_codes_reconstruct_the_column(self, tiny_table):
        codes = tiny_table.column_codes("A")
        assert decode(codes) == tiny_table.column("A")

    def test_uniques_in_first_encounter_order(self, tiny_table):
        codes = tiny_table.column_codes("A")
        assert codes.uniques == list(
            dict.fromkeys(tiny_table.column("A"))
        )

    def test_primary_key_fast_path(self, tiny_table):
        codes = tiny_table.column_codes("K")
        assert codes.codes.tolist() == list(range(len(tiny_table)))
        assert codes.uniques == tiny_table.column("K")

    def test_codes_are_read_only(self, tiny_table):
        codes = tiny_table.column_codes("A")
        with pytest.raises(ValueError):
            codes.codes[0] = 3
        assert codes.codes.dtype == np.int32

    def test_build_false_only_consults_cache(self, tiny_table):
        assert tiny_table.column_codes("A", build=False) is None
        built = tiny_table.column_codes("A")
        assert tiny_table.column_codes("A", build=False) is built


class TestInvalidation:
    def test_cached_until_write(self, tiny_table):
        first = tiny_table.column_codes("A")
        assert tiny_table.column_codes("A") is first

    def test_write_to_attribute_invalidates_it(self, tiny_table):
        stale = tiny_table.column_codes("A")
        tiny_table.set_value(1, "A", "blue")
        fresh = tiny_table.column_codes("A")
        assert fresh is not stale
        assert decode(fresh) == tiny_table.column("A")

    def test_write_to_other_attribute_preserves_codes(self, tiny_table):
        """Attribute-granular invalidation: marking one column must not
        throw away another column's factorization (the attack-sweep hot
        path re-detects on the key column after mark-column rewrites)."""
        kept = tiny_table.column_codes("A")
        tiny_table.set_value(1, "B", "w")
        assert tiny_table.column_codes("A") is kept

    def test_batched_write_invalidates(self, tiny_table):
        stale = tiny_table.column_codes("A")
        tiny_table.set_values("A", [(1, "blue")])
        assert tiny_table.column_codes("A") is not stale

    def test_structural_change_invalidates_everything(self, tiny_table):
        codes_a = tiny_table.column_codes("A")
        codes_k = tiny_table.column_codes("K")
        tiny_table.insert((7, "red", "x"))
        assert tiny_table.column_codes("A") is not codes_a
        assert tiny_table.column_codes("K") is not codes_k
        tiny_table.delete(7)
        assert decode(tiny_table.column_codes("A")) == tiny_table.column("A")

    def test_pk_rename_invalidates_only_the_key_column(self, tiny_table):
        codes_a = tiny_table.column_codes("A")
        codes_k = tiny_table.column_codes("K")
        tiny_table.set_value(1, "K", 100)
        assert tiny_table.column_codes("A") is codes_a
        assert tiny_table.column_codes("K") is not codes_k


class TestCloneInheritance:
    def test_clone_inherits_codes(self, tiny_table):
        codes = tiny_table.column_codes("A")
        clone = tiny_table.clone()
        assert clone.column_codes("A") is codes

    def test_clone_write_invalidates_only_its_side(self, tiny_table):
        codes = tiny_table.column_codes("A")
        clone = tiny_table.clone()
        clone.set_value(1, "A", "blue")
        assert clone.column_codes("A") is not codes
        assert tiny_table.column_codes("A") is codes
        assert decode(clone.column_codes("A")) == clone.column("A")

    def test_parent_write_keeps_clone_codes(self, tiny_table):
        codes = tiny_table.column_codes("A")
        clone = tiny_table.clone()
        tiny_table.set_value(1, "A", "blue")
        assert clone.column_codes("A") is codes
        assert tiny_table.column_codes("A") is not codes

    def test_attack_shaped_flow(self, tiny_table):
        """Clone, rewrite the mark column, re-read key codes: the key
        factorization must survive untouched (factorize-once)."""
        key_codes = tiny_table.column_codes("K")
        attacked = tiny_table.clone()
        attacked.set_values("A", [(1, "green"), (4, "cyan")])
        assert attacked.column_codes("K") is key_codes
        assert decode(attacked.column_codes("A")) == attacked.column("A")

    def test_column_view_inherited_and_scoped_like_codes(self, tiny_table):
        view = tiny_table.column_view("A")
        clone = tiny_table.clone()
        assert clone.column_view("A") is view
        clone.set_value(1, "A", "blue")
        assert clone.column_view("A") is not view
        assert tiny_table.column_view("A") is view
