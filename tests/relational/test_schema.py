"""Tests for repro.relational.schema — attributes and schemas."""

import pytest

from repro.relational import (
    Attribute,
    AttributeType,
    CategoricalDomain,
    DomainError,
    Schema,
    SchemaError,
    TypeMismatchError,
    UnknownAttributeError,
    infer_domains,
)


def make_schema() -> Schema:
    return Schema(
        (
            Attribute("K", AttributeType.INTEGER),
            Attribute(
                "A", AttributeType.CATEGORICAL, CategoricalDomain(["a", "b"])
            ),
            Attribute("note", AttributeType.STRING),
        ),
        primary_key="K",
    )


class TestAttribute:
    def test_categorical_requires_domain(self):
        with pytest.raises(SchemaError):
            Attribute("A", AttributeType.CATEGORICAL)

    def test_non_categorical_rejects_domain(self):
        with pytest.raises(SchemaError):
            Attribute("K", AttributeType.INTEGER, CategoricalDomain(["x"]))

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", AttributeType.INTEGER)

    def test_validate_type_mismatch(self):
        attribute = Attribute("K", AttributeType.INTEGER)
        with pytest.raises(TypeMismatchError):
            attribute.validate("not-an-int")

    def test_validate_domain_violation(self):
        attribute = Attribute(
            "A", AttributeType.CATEGORICAL, CategoricalDomain(["a"])
        )
        with pytest.raises(DomainError):
            attribute.validate("zzz")

    def test_bool_rejected_for_integer(self):
        attribute = Attribute("K", AttributeType.INTEGER)
        with pytest.raises(TypeMismatchError):
            attribute.validate(True)

    def test_with_domain_swaps_domain(self):
        attribute = Attribute(
            "A", AttributeType.CATEGORICAL, CategoricalDomain(["a"])
        )
        widened = attribute.with_domain(CategoricalDomain(["a", "b"]))
        assert widened.domain.size == 2

    def test_with_domain_on_non_categorical_raises(self):
        attribute = Attribute("K", AttributeType.INTEGER)
        with pytest.raises(SchemaError):
            attribute.with_domain(CategoricalDomain(["a"]))


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(
                (
                    Attribute("K", AttributeType.INTEGER),
                    Attribute("K", AttributeType.STRING),
                ),
                primary_key="K",
            )

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            Schema((Attribute("K", AttributeType.INTEGER),), primary_key="X")

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema((), primary_key="K")

    def test_positions_follow_declaration_order(self):
        schema = make_schema()
        assert schema.position("K") == 0
        assert schema.position("A") == 1
        assert schema.position("note") == 2

    def test_unknown_attribute_raises_with_candidates(self):
        schema = make_schema()
        with pytest.raises(UnknownAttributeError) as excinfo:
            schema.position("missing")
        assert "missing" in str(excinfo.value)
        assert "K" in str(excinfo.value)

    def test_categorical_names(self):
        assert make_schema().categorical_names() == ("A",)

    def test_validate_row_arity(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.validate_row((1, "a"))

    def test_validate_row_accepts_legal_row(self):
        make_schema().validate_row((1, "a", "hello"))

    def test_contains_and_iteration(self):
        schema = make_schema()
        assert "A" in schema
        assert "Q" not in schema
        assert [a.name for a in schema] == ["K", "A", "note"]

    def test_equality(self):
        assert make_schema() == make_schema()
        other = make_schema().with_primary_key("note")
        assert make_schema() != other


class TestProjection:
    def test_project_keeps_primary_key_when_retained(self):
        schema = make_schema().project(["K", "A"])
        assert schema.primary_key == "K"
        assert schema.names == ("K", "A")

    def test_project_promotes_first_attribute_when_pk_dropped(self):
        schema = make_schema().project(["A", "note"])
        assert schema.primary_key == "A"

    def test_project_explicit_primary_key(self):
        schema = make_schema().project(["A", "note"], primary_key="note")
        assert schema.primary_key == "note"

    def test_project_unknown_attribute_raises(self):
        with pytest.raises(UnknownAttributeError):
            make_schema().project(["nope"])

    def test_project_empty_rejected(self):
        with pytest.raises(SchemaError):
            make_schema().project([])

    def test_project_pk_outside_kept_rejected(self):
        with pytest.raises(SchemaError):
            make_schema().project(["A"], primary_key="K")


class TestDerivedSchemas:
    def test_replace_attribute(self):
        schema = make_schema()
        replaced = schema.replace_attribute(
            Attribute(
                "A", AttributeType.CATEGORICAL, CategoricalDomain(["a", "b", "c"])
            )
        )
        assert replaced.attribute("A").domain.size == 3
        # original untouched
        assert schema.attribute("A").domain.size == 2

    def test_replace_unknown_attribute_raises(self):
        with pytest.raises(UnknownAttributeError):
            make_schema().replace_attribute(
                Attribute("Q", AttributeType.INTEGER)
            )

    def test_with_primary_key_rekeys(self):
        rekeyed = make_schema().with_primary_key("A")
        assert rekeyed.primary_key == "A"
        assert rekeyed.names == make_schema().names

    def test_infer_domains_widens_categorical(self):
        schema = make_schema()
        rows = [(1, "a", "s"), (2, "b", "s")]
        # shrink domain first, then infer back
        narrow = schema.replace_attribute(
            Attribute("A", AttributeType.CATEGORICAL, CategoricalDomain(["a"]))
        )
        widened = infer_domains(narrow, rows)
        assert "b" in widened.attribute("A").domain

    def test_infer_domains_keeps_declared_values(self):
        schema = make_schema()
        widened = infer_domains(schema, [(1, "a", "s")])
        assert "b" in widened.attribute("A").domain  # declared, unobserved
