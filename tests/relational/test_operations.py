"""Tests for repro.relational.operations — relational ops / attack primitives."""

import random

import pytest

from repro.relational import (
    SchemaError,
    Table,
    apply_to_column,
    drop_fraction,
    horizontal_sample,
    project,
    select,
    shuffle,
    sort_by,
    union,
)


@pytest.fixture
def rng():
    return random.Random(7)


class TestSelect:
    def test_select_filters(self, tiny_table):
        reds = select(tiny_table, lambda row: row[1] == "red")
        assert len(reds) == 2
        assert all(row[1] == "red" for row in reds)

    def test_select_does_not_mutate_input(self, tiny_table):
        before = len(tiny_table)
        select(tiny_table, lambda row: False)
        assert len(tiny_table) == before


class TestProject:
    def test_project_keeps_columns(self, tiny_table):
        partition = project(tiny_table, ["K", "A"])
        assert partition.schema.names == ("K", "A")
        assert len(partition) == len(tiny_table)

    def test_project_without_pk_dedupes_on_new_key(self, tiny_table):
        # A has duplicate values; keyed on A, duplicates must collapse.
        partition = project(tiny_table, ["A", "B"])
        assert partition.primary_key == "A"
        values = partition.column("A")
        assert len(values) == len(set(values))

    def test_project_first_occurrence_wins(self, tiny_table):
        partition = project(tiny_table, ["A", "B"])
        # key 1 was (red, x): the first red row defines the association
        assert partition.value("red", "B") == "x"


class TestSampling:
    def test_horizontal_sample_size(self, tiny_table, rng):
        sample = horizontal_sample(tiny_table, 0.5, rng)
        assert len(sample) == 3

    def test_horizontal_sample_zero_gives_empty(self, tiny_table, rng):
        assert len(horizontal_sample(tiny_table, 0.0, rng)) == 0

    def test_horizontal_sample_full_keeps_all(self, tiny_table, rng):
        assert len(horizontal_sample(tiny_table, 1.0, rng)) == len(tiny_table)

    def test_horizontal_sample_rows_come_from_input(self, tiny_table, rng):
        sample = horizontal_sample(tiny_table, 0.5, rng)
        original = set(tiny_table)
        assert all(row in original for row in sample)

    def test_fraction_out_of_range_rejected(self, tiny_table, rng):
        with pytest.raises(ValueError):
            horizontal_sample(tiny_table, 1.5, rng)

    def test_drop_fraction_complements(self, tiny_table, rng):
        kept = drop_fraction(tiny_table, 0.5, rng)
        assert len(kept) == 3

    def test_small_nonzero_fraction_keeps_at_least_one(self, tiny_table, rng):
        sample = horizontal_sample(tiny_table, 0.01, rng)
        assert len(sample) == 1


class TestOrdering:
    def test_shuffle_preserves_multiset(self, tiny_table, rng):
        shuffled = shuffle(tiny_table, rng)
        assert shuffled == tiny_table  # order-insensitive equality

    def test_sort_by_orders_rows(self, tiny_table):
        ordered = sort_by(tiny_table, "A")
        column = ordered.column("A")
        assert column == sorted(column)

    def test_sort_by_reverse(self, tiny_table):
        ordered = sort_by(tiny_table, "A", reverse=True)
        column = ordered.column("A")
        assert column == sorted(column, reverse=True)

    def test_sort_does_not_lose_rows(self, tiny_table):
        assert sort_by(tiny_table, "B") == tiny_table


class TestUnion:
    def test_union_concatenates(self, tiny_table):
        extra = Table(tiny_table.schema, [(100, "red", "x")])
        merged = union(tiny_table, extra)
        assert len(merged) == len(tiny_table) + 1

    def test_union_key_collision_raises(self, tiny_table):
        extra = Table(tiny_table.schema, [(1, "red", "x")])
        with pytest.raises(Exception):
            union(tiny_table, extra)

    def test_union_schema_mismatch_raises(self, tiny_table):
        other = project(tiny_table, ["K", "A"])
        with pytest.raises(SchemaError):
            union(tiny_table, other)


class TestApplyToColumn:
    def test_transform_outside_domain_raises(self, tiny_table):
        # B's domain is lowercase; an uppercasing transform violates it and
        # the strict substrate must refuse to build the result.
        with pytest.raises(Exception):
            apply_to_column(tiny_table, "B", str.upper)

    def test_identity_transform_preserves(self, tiny_table):
        same = apply_to_column(tiny_table, "A", lambda value: value)
        assert same == tiny_table
