"""Tests for repro.relational.csvio — CSV round-trips for blind detection."""

import pytest

from repro.relational import (
    AttributeType,
    dumps_csv,
    loads_csv,
    read_csv,
    schema_for_csv,
    write_csv,
)


class TestRoundTrip:
    def test_dumps_loads_round_trip(self, tiny_table, tiny_schema):
        text = dumps_csv(tiny_table)
        restored = loads_csv(text, tiny_schema)
        assert restored == tiny_table

    def test_file_round_trip(self, tiny_table, tiny_schema, tmp_path):
        path = tmp_path / "relation.csv"
        write_csv(tiny_table, path)
        restored = read_csv(path, tiny_schema)
        assert restored == tiny_table

    def test_header_written(self, tiny_table):
        text = dumps_csv(tiny_table)
        assert text.splitlines()[0] == "K,A,B"

    def test_types_parsed_back(self, tiny_table, tiny_schema):
        restored = loads_csv(dumps_csv(tiny_table), tiny_schema)
        key = next(iter(restored.keys()))
        assert isinstance(key, int)

    def test_header_mismatch_raises(self, tiny_schema):
        with pytest.raises(ValueError):
            loads_csv("X,Y,Z\n1,red,x\n", tiny_schema)

    def test_empty_csv_gives_empty_table(self, tiny_schema):
        table = loads_csv("", tiny_schema)
        assert len(table) == 0


class TestDomainInference:
    def test_observed_values_widen_domain(self, tiny_schema):
        text = "K,A,B\n1,red,x\n"
        # start from a schema whose A domain lacks nothing; loads fine
        table = loads_csv(text, tiny_schema)
        assert "red" in table.schema.attribute("A").domain

    def test_inference_disabled_enforces_declared_domain(self, tiny_schema):
        from repro.relational import schema_for_csv

        schema = schema_for_csv(
            ["K", "A", "B"],
            [
                AttributeType.INTEGER,
                AttributeType.CATEGORICAL,
                AttributeType.CATEGORICAL,
            ],
            primary_key="K",
            categorical_values={"A": ["red"], "B": ["x"]},
        )
        with pytest.raises(Exception):
            loads_csv(
                "K,A,B\n1,blue,x\n", schema, infer_categorical_domains=False
            )


class TestSchemaForCsv:
    def test_placeholder_domains_for_unlisted_categoricals(self):
        schema = schema_for_csv(
            ["K", "A"],
            [AttributeType.INTEGER, AttributeType.CATEGORICAL],
            primary_key="K",
        )
        assert schema.attribute("A").domain is not None

    def test_explicit_domains_respected(self):
        schema = schema_for_csv(
            ["K", "A"],
            [AttributeType.INTEGER, AttributeType.CATEGORICAL],
            primary_key="K",
            categorical_values={"A": ["p", "q"]},
        )
        assert set(schema.attribute("A").domain.values) == {"p", "q"}
