"""Tests for repro.relational.csvio — CSV round-trips for blind detection."""

import pytest

from repro.relational import (
    AttributeType,
    dumps_csv,
    loads_csv,
    read_csv,
    schema_for_csv,
    write_csv,
)


class TestRoundTrip:
    def test_dumps_loads_round_trip(self, tiny_table, tiny_schema):
        text = dumps_csv(tiny_table)
        restored = loads_csv(text, tiny_schema)
        assert restored == tiny_table

    def test_file_round_trip(self, tiny_table, tiny_schema, tmp_path):
        path = tmp_path / "relation.csv"
        write_csv(tiny_table, path)
        restored = read_csv(path, tiny_schema)
        assert restored == tiny_table

    def test_header_written(self, tiny_table):
        text = dumps_csv(tiny_table)
        assert text.splitlines()[0] == "K,A,B"

    def test_types_parsed_back(self, tiny_table, tiny_schema):
        restored = loads_csv(dumps_csv(tiny_table), tiny_schema)
        key = next(iter(restored.keys()))
        assert isinstance(key, int)

    def test_header_mismatch_raises(self, tiny_schema):
        with pytest.raises(ValueError):
            loads_csv("X,Y,Z\n1,red,x\n", tiny_schema)

    def test_empty_csv_gives_empty_table(self, tiny_schema):
        table = loads_csv("", tiny_schema)
        assert len(table) == 0


class TestDomainInference:
    def test_observed_values_widen_domain(self, tiny_schema):
        text = "K,A,B\n1,red,x\n"
        # start from a schema whose A domain lacks nothing; loads fine
        table = loads_csv(text, tiny_schema)
        assert "red" in table.schema.attribute("A").domain

    def test_inference_disabled_enforces_declared_domain(self, tiny_schema):
        from repro.relational import schema_for_csv

        schema = schema_for_csv(
            ["K", "A", "B"],
            [
                AttributeType.INTEGER,
                AttributeType.CATEGORICAL,
                AttributeType.CATEGORICAL,
            ],
            primary_key="K",
            categorical_values={"A": ["red"], "B": ["x"]},
        )
        with pytest.raises(Exception):
            loads_csv(
                "K,A,B\n1,blue,x\n", schema, infer_categorical_domains=False
            )


class TestSchemaForCsv:
    def test_placeholder_domains_for_unlisted_categoricals(self):
        schema = schema_for_csv(
            ["K", "A"],
            [AttributeType.INTEGER, AttributeType.CATEGORICAL],
            primary_key="K",
        )
        assert schema.attribute("A").domain is not None

    def test_explicit_domains_respected(self):
        schema = schema_for_csv(
            ["K", "A"],
            [AttributeType.INTEGER, AttributeType.CATEGORICAL],
            primary_key="K",
            categorical_values={"A": ["p", "q"]},
        )
        assert set(schema.attribute("A").domain.values) == {"p", "q"}


class TestRoundTripHardening:
    """CSV round trips must survive hostile cell contents.

    The streaming subsystem trusts write-then-read to be the identity on
    every legal relation — delimiters, quotes, newlines and empty strings
    inside categorical values included.
    """

    def _schema(self, values):
        from repro.relational import (
            Attribute,
            AttributeType,
            CategoricalDomain,
            Schema,
        )

        return Schema(
            (
                Attribute("K", AttributeType.INTEGER),
                Attribute(
                    "A", AttributeType.CATEGORICAL, CategoricalDomain(values)
                ),
            ),
            primary_key="K",
        )

    @pytest.mark.parametrize(
        "value",
        [
            "plain",
            "with,comma",
            'with"quote',
            "with\nnewline",
            "with\r\ncrlf",
            "",
            " leading and trailing ",
            "ünïcödé",
        ],
    )
    def test_hostile_values_round_trip(self, value):
        from repro.relational import Table

        schema = self._schema([value, "other"])
        table = Table(schema, [(1, value), (2, "other"), (3, value)])
        restored = loads_csv(
            dumps_csv(table), schema, infer_categorical_domains=False
        )
        assert list(restored) == list(table)

    def test_hostile_values_file_round_trip(self, tmp_path):
        from repro.relational import Table

        values = ["a,b", 'c"d', "e\nf", ""]
        schema = self._schema(values)
        table = Table(
            schema, [(index, value) for index, value in enumerate(values)]
        )
        path = tmp_path / "hostile.csv"
        write_csv(table, path)
        assert list(read_csv(path, schema)) == list(table)

    def test_short_row_raises_with_row_number(self, tiny_schema):
        with pytest.raises(ValueError, match="row 2"):
            loads_csv("K,A,B\n1,red,x\n2,red\n", tiny_schema)

    def test_long_row_raises_instead_of_truncating(self, tiny_schema):
        # zip() used to drop the surplus cell silently — data loss on a
        # malformed file must be loud.
        with pytest.raises(ValueError, match="row 1"):
            loads_csv("K,A,B\n1,red,x,EXTRA\n", tiny_schema)

    def test_text_collision_resolves_first_in_domain_order(self):
        # int 1 and str "1" both render as "1"; the parser must pick one
        # deterministically — the first in canonical domain order.
        schema = self._schema([1, "1", "other"])
        domain = schema.attribute("A").domain
        expected = next(v for v in domain.values if str(v) == "1")
        restored = loads_csv(
            "K,A\n7,1\n", schema, infer_categorical_domains=False
        )
        assert next(iter(restored))[1] == expected

    def test_out_of_domain_numeric_text_sniffs_number(self, tiny_schema):
        table = loads_csv("K,A,B\n1,42,x\n", tiny_schema)
        assert next(iter(table))[1] == 42

    def test_inference_of_empty_string_value(self):
        schema = self._schema(["known"])
        table = loads_csv("K,A\n1,\n", schema)
        assert next(iter(table))[1] == ""
        assert "" in table.schema.attribute("A").domain
