"""Tests for repro.relational.serialization — schema JSON round-trips."""

import pytest

from repro.relational import (
    SchemaError,
    schema_from_dict,
    schema_from_json,
    schema_to_dict,
    schema_to_json,
)


class TestRoundTrip:
    def test_json_round_trip(self, tiny_schema):
        assert schema_from_json(schema_to_json(tiny_schema)) == tiny_schema

    def test_dict_round_trip(self, tiny_schema):
        assert schema_from_dict(schema_to_dict(tiny_schema)) == tiny_schema

    def test_domains_preserved(self, tiny_schema):
        restored = schema_from_json(schema_to_json(tiny_schema))
        assert restored.attribute("A").domain == \
            tiny_schema.attribute("A").domain

    def test_primary_key_preserved(self, tiny_schema):
        payload = schema_to_dict(tiny_schema)
        assert payload["primary_key"] == "K"

    def test_generated_schemas_round_trip(self, item_scan, sales, bookings):
        for table in (item_scan, sales, bookings):
            assert schema_from_json(schema_to_json(table.schema)) == \
                table.schema


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(SchemaError):
            schema_from_json("not json {")

    def test_missing_fields(self):
        with pytest.raises(SchemaError):
            schema_from_dict({"attributes": []})

    def test_unknown_type(self):
        with pytest.raises(SchemaError):
            schema_from_dict(
                {
                    "primary_key": "K",
                    "attributes": [{"name": "K", "type": "quantum"}],
                }
            )

    def test_categorical_without_domain_rejected(self):
        with pytest.raises(SchemaError):
            schema_from_dict(
                {
                    "primary_key": "K",
                    "attributes": [
                        {"name": "K", "type": "integer"},
                        {"name": "A", "type": "categorical"},
                    ],
                }
            )
