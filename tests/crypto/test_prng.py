"""Tests for repro.crypto.prng — keyed deterministic randomness."""

from repro.crypto import keyed_rng, seeded_rng


class TestKeyedRng:
    def test_deterministic_for_same_inputs(self):
        first = keyed_rng(b"key", "purpose")
        second = keyed_rng(b"key", "purpose")
        assert [first.random() for _ in range(5)] == [
            second.random() for _ in range(5)
        ]

    def test_label_separates_streams(self):
        first = keyed_rng(b"key", "alpha")
        second = keyed_rng(b"key", "beta")
        assert [first.random() for _ in range(5)] != [
            second.random() for _ in range(5)
        ]

    def test_extra_separates_streams(self):
        first = keyed_rng(b"key", "alpha", 0)
        second = keyed_rng(b"key", "alpha", 1)
        assert first.random() != second.random()

    def test_key_separates_streams(self):
        first = keyed_rng(b"key1", "alpha")
        second = keyed_rng(b"key2", "alpha")
        assert first.random() != second.random()


class TestSeededRng:
    def test_deterministic(self):
        assert seeded_rng(5).random() == seeded_rng(5).random()

    def test_string_seeds_supported(self):
        assert seeded_rng("abc").random() == seeded_rng("abc").random()
