"""Tests for repro.crypto.bits — the paper's §2.1 bit primitives."""

import pytest

from repro.crypto import (
    bit_length,
    bits_to_int,
    get_bit,
    int_to_bits,
    msb,
    set_bit,
)


class TestBitLength:
    def test_zero_occupies_one_bit(self):
        assert bit_length(0) == 1

    def test_powers_of_two(self):
        assert bit_length(1) == 1
        assert bit_length(2) == 2
        assert bit_length(255) == 8
        assert bit_length(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bit_length(-1)


class TestMsb:
    def test_truncates_to_top_bits(self):
        # 0b110101 -> top 3 bits 0b110
        assert msb(0b110101, 3) == 0b110

    def test_short_value_left_padded(self):
        # b(X) < b: left-padding with zeroes returns X itself (§2.1)
        assert msb(0b101, 8) == 0b101

    def test_exact_width_identity(self):
        assert msb(0b1011, 4) == 0b1011

    def test_width_one(self):
        assert msb(0b1011, 1) == 1
        assert msb(0b0011, 1) == 1  # leading zeroes don't count

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            msb(5, 0)

    def test_negative_value(self):
        with pytest.raises(ValueError):
            msb(-5, 3)


class TestSetBit:
    def test_set_lsb_to_one(self):
        assert set_bit(0b100, 0, 1) == 0b101

    def test_set_lsb_to_zero(self):
        assert set_bit(0b101, 0, 0) == 0b100

    def test_set_high_bit(self):
        assert set_bit(0, 5, 1) == 32

    def test_idempotent(self):
        assert set_bit(set_bit(7, 0, 0), 0, 0) == 6

    def test_invalid_bit_value(self):
        with pytest.raises(ValueError):
            set_bit(0, 0, 2)

    def test_invalid_position(self):
        with pytest.raises(ValueError):
            set_bit(0, -1, 1)

    def test_paper_identity_lsb_readback(self):
        """The decoding rule ``bit = t & 1`` must read back what set_bit
        forced (§3.2.2)."""
        for value in range(32):
            for bit in (0, 1):
                assert set_bit(value, 0, bit) & 1 == bit


class TestGetBit:
    def test_reads_positions(self):
        value = 0b1010
        assert get_bit(value, 0) == 0
        assert get_bit(value, 1) == 1
        assert get_bit(value, 3) == 1

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            get_bit(1, -1)


class TestConversions:
    def test_round_trip(self):
        for value in (0, 1, 5, 170, 1023):
            bits = int_to_bits(value, 10)
            assert bits_to_int(bits) == value

    def test_int_to_bits_width_enforced(self):
        with pytest.raises(ValueError):
            int_to_bits(1024, 10)

    def test_big_endian_layout(self):
        assert int_to_bits(0b100, 3) == (1, 0, 0)

    def test_bits_to_int_validates(self):
        with pytest.raises(ValueError):
            bits_to_int((0, 2, 1))
