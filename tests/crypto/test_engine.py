"""Equivalence and behaviour tests for the batched hash engine.

The engine is only allowed to be *fast*: every derived quantity must be
bit-for-bit identical to the scalar reference primitives
(``keyed_hash`` / ``slot_index`` / ``embedded_value_index``), for every
value type the canonical encoding supports.
"""

from __future__ import annotations

import pytest

from repro.core.embedding import (
    embedded_value_index,
    slot_index,
)
from repro.crypto import (
    HashEngine,
    KeyedDigestCache,
    MarkKey,
    canonical_bytes,
    clear_engine_registry,
    get_digest_cache,
    get_engine,
    keyed_hash,
)
from repro.relational import CategoricalDomain

#: a deliberately nasty mix: negative/huge ints, non-ASCII text, bytes,
#: floats, bools, and nested tuple keys (composite §3.3 place-holders)
VALUES = [
    0,
    1,
    -17,
    2**70 + 3,
    "item-42",
    "naïve café ☃\U0001F600",
    "",
    b"\x00\xffraw",
    3.14159,
    -0.0,
    True,
    False,
    ("composite", 9),
    (1, (2, "três")),
    (),
]

#: VALUES minus cross-type ``==`` collisions (True==1, False==0, -0.0==0):
#: the engine's *derived* maps are plain dicts — like the reference scan
#: caches — so equal-comparing lookalikes share one entry by design.  The
#: digest cache itself stays exact (see
#: TestDigestEquivalence.test_cache_distinguishes_equal_comparing_values).
DISTINCT_VALUES = [
    v for v in VALUES if not isinstance(v, (bool, float)) or v == 3.14159
]


@pytest.fixture
def key() -> MarkKey:
    return MarkKey.from_seed("engine-equivalence")


@pytest.fixture
def engine(key: MarkKey) -> HashEngine:
    return HashEngine(key)


class TestDigestEquivalence:
    def test_digest_matches_keyed_hash(self, key, engine):
        for value in VALUES:
            assert engine.k1.digest(value) == keyed_hash(value, key.k1)
            assert engine.k2.digest(value) == keyed_hash(value, key.k2)

    def test_digest_many_matches_scalar_digest(self, key, engine):
        batched = engine.k1.digest_many(VALUES)
        assert batched == [keyed_hash(value, key.k1) for value in VALUES]

    def test_digest_many_handles_duplicates(self, key, engine):
        doubled = VALUES + VALUES
        assert engine.k1.digest_many(doubled) == [
            keyed_hash(value, key.k1) for value in doubled
        ]

    def test_cache_distinguishes_equal_comparing_values(self, key, engine):
        # 1 == True == 1.0 as dict keys, but their canonical encodings --
        # and hence digests -- differ; the payload-keyed cache keeps them
        # apart even when queried interleaved.
        lookalikes = [1, True, 1.0, "1", b"1"]
        digests = engine.k1.digest_many(lookalikes)
        again = [engine.k1.digest(value) for value in lookalikes]
        assert digests == again
        assert len(set(digests)) == len(lookalikes)
        assert digests == [keyed_hash(value, key.k1) for value in lookalikes]

    def test_memoization_counts_each_value_once(self, engine):
        engine.k1.digest_many(VALUES)
        computed = engine.k1.computed
        engine.k1.digest_many(VALUES)
        for value in VALUES:
            engine.k1.digest(value)
        assert engine.k1.computed == computed

    def test_rejects_bad_key(self):
        with pytest.raises(TypeError):
            KeyedDigestCache(b"")
        with pytest.raises(TypeError):
            KeyedDigestCache("not-bytes")  # type: ignore[arg-type]


class TestDerivedPrimitives:
    @pytest.mark.parametrize("e", [1, 2, 7, 60])
    def test_fitness_mask(self, key, engine, e):
        mask = engine.fitness_mask(DISTINCT_VALUES, e)
        assert mask == [
            keyed_hash(value, key.k1) % e == 0 for value in DISTINCT_VALUES
        ]

    @pytest.mark.parametrize("channel_length", [1, 10, 100, 1023])
    def test_slot_indices(self, key, engine, channel_length):
        slots = engine.slot_indices(DISTINCT_VALUES, channel_length)
        assert slots == [
            slot_index(value, key.k2, channel_length) for value in DISTINCT_VALUES
        ]

    @pytest.mark.parametrize("size", [2, 3, 5, 500])
    def test_pair_indices(self, key, engine, size):
        domain = CategoricalDomain([f"v{i}" for i in range(size)])
        for bit in (0, 1):
            expected = [
                embedded_value_index(value, key.k1, bit, domain)
                for value in DISTINCT_VALUES
            ]
            derived = [
                2 * pair + bit
                for pair in engine.pair_indices(DISTINCT_VALUES, domain)
            ]
            assert derived == expected

    def test_pair_indices_accepts_plain_size(self, engine):
        domain = CategoricalDomain(["a", "b", "c", "d"])
        assert engine.pair_indices(DISTINCT_VALUES, 4) == engine.pair_indices(
            DISTINCT_VALUES, domain
        )

    def test_scalar_conveniences_match_batched(self, engine):
        for value in DISTINCT_VALUES:
            assert engine.is_fit(value, 7) == engine.fitness_mask([value], 7)[0]
            assert engine.slot_index(value, 64) == \
                engine.slot_indices([value], 64)[0]
            assert engine.pair_index(value, 10) == \
                engine.pair_indices([value], 10)[0]

    def test_parameter_validation(self, engine):
        with pytest.raises(ValueError):
            engine.fitness_map(DISTINCT_VALUES, 0)
        with pytest.raises(ValueError):
            engine.slot_map(DISTINCT_VALUES, 0)
        with pytest.raises(ValueError):
            engine.pair_map(DISTINCT_VALUES, 1)  # single-value domain: no pairs

    def test_carrier_plan_views_share_engine_caches(self, engine):
        plan = engine.plan(e=7, channel_length=50, domain_size=10)
        fit = plan.fitness(DISTINCT_VALUES)
        assert fit is engine.fitness_map([], 7)
        carriers = [value for value in DISTINCT_VALUES if fit[value]]
        assert plan.slots(carriers) is engine.slot_map([], 50)
        assert plan.pairs(carriers) is engine.pair_map([], 10)

    def test_plan_without_domain_rejects_pairs(self, engine):
        plan = engine.plan(e=7, channel_length=50)
        with pytest.raises(ValueError):
            plan.pairs(DISTINCT_VALUES)


class TestProcessPool:
    def test_pooled_digests_match_serial(self, key):
        serial = HashEngine(key)
        pooled = HashEngine(key, pool_threshold=10, max_workers=2)
        values = [f"value-{i}" for i in range(64)] + VALUES
        assert pooled.k1.digest_many(values) == serial.k1.digest_many(values)
        assert pooled.fitness_mask(values, 13) == serial.fitness_mask(
            values, 13
        )

    def test_below_threshold_stays_serial(self, key):
        engine = HashEngine(key, pool_threshold=10**9, max_workers=2)
        assert engine.k1.digest_many(VALUES) == [
            keyed_hash(value, key.k1) for value in VALUES
        ]


class TestRegistry:
    def test_get_engine_is_shared_per_key(self):
        clear_engine_registry()
        key = MarkKey.from_seed("registry")
        assert get_engine(key) is get_engine(key)
        assert get_engine(key) is get_engine(MarkKey.from_seed("registry"))
        assert get_engine(key) is not get_engine(MarkKey.from_seed("other"))

    def test_registry_is_bounded(self):
        clear_engine_registry()
        first = MarkKey.from_seed("evict-0")
        get_engine(first)
        for index in range(1, 40):
            get_engine(MarkKey.from_seed(f"evict-{index}"))
        from repro.crypto.engine import _engines

        assert len(_engines) <= 32
        assert first not in _engines  # oldest got evicted

    def test_raw_key_cache_registry(self):
        clear_engine_registry()
        key = b"ak-secret"
        assert get_digest_cache(key) is get_digest_cache(key)
        assert get_digest_cache(key).digest("pk") == keyed_hash("pk", key)


class TestCanonicalInlineFastPath:
    def test_inline_encodings_match_canonical_bytes(self, key):
        # digest_many inlines the int/str encodings; cross-check against
        # the canonical function through the digest values themselves.
        cache = KeyedDigestCache(key.k1)
        tricky = [0, -1, 10**40, "", "a", "ünïcode", "1", 1, True, 1.0]
        assert cache.digest_many(tricky) == [
            keyed_hash(value, key.k1) for value in tricky
        ]
        for value in tricky:
            assert canonical_bytes(value)  # still encodable


class TestCacheBounds:
    def test_digest_cache_clears_at_cap(self):
        cache = KeyedDigestCache(b"cap-key", max_entries=8)
        cache.digest_many(list(range(9)))       # over the cap in one batch
        assert len(cache) == 9                  # cap is checked pre-batch
        cache.digest_many([100])                # next batch trips the valve
        assert len(cache) <= 2
        # correctness survives the reset
        assert cache.digest(3) == keyed_hash(3, b"cap-key")

    def test_derived_maps_clear_at_cap(self):
        engine = HashEngine(MarkKey.from_seed("cap"), max_entries=8)
        derived = engine.fitness_map(list(range(12)), 7)
        assert len(derived) == 12
        engine.fitness_map([99], 7)             # trips the valve, re-adds one
        assert len(derived) == 1                # same shared dict, now reset
        assert engine.is_fit(5, 7) == (keyed_hash(5, engine.key.k1) % 7 == 0)


class TestResolveEngine:
    def test_mismatched_engine_is_rejected(self):
        from repro.crypto import resolve_engine

        key_a = MarkKey.from_seed("resolve-a")
        key_b = MarkKey.from_seed("resolve-b")
        engine_b = HashEngine(key_b)
        with pytest.raises(ValueError):
            resolve_engine(engine_b, key_a)
        assert resolve_engine(engine_b, key_b) is engine_b
        assert resolve_engine(None, key_a).key == key_a

    def test_mismatch_caught_at_detection_surface(self):
        from repro.core import Watermark, Watermarker

        from repro.datagen import generate_item_scan

        table = generate_item_scan(300, item_count=20, seed=1)
        key_a = MarkKey.from_seed("surface-a")
        key_b = MarkKey.from_seed("surface-b")
        with pytest.raises(ValueError):
            Watermarker(key_a, e=10, engine=HashEngine(key_b))
        marker = Watermarker(key_a, e=10)
        outcome = marker.embed(
            table, Watermark.from_int(0b1011001110, 10), "Item_Nbr"
        )
        from repro.core.detection import extract_slots

        with pytest.raises(ValueError):
            extract_slots(
                outcome.table, key_a, outcome.record.spec,
                engine=HashEngine(key_b),
            )
