"""Tests for repro.crypto.keys — the (k1, k2) secret pair."""

import pytest

from repro.crypto import KeyError_, MarkKey


class TestConstruction:
    def test_generate_produces_distinct_subkeys(self):
        key = MarkKey.generate()
        assert key.k1 != key.k2

    def test_generate_is_random(self):
        assert MarkKey.generate() != MarkKey.generate()

    def test_equal_subkeys_rejected(self):
        with pytest.raises(KeyError_):
            MarkKey(b"same", b"same")

    def test_empty_key_rejected(self):
        with pytest.raises(KeyError_):
            MarkKey(b"", b"other")

    def test_non_bytes_rejected(self):
        with pytest.raises(KeyError_):
            MarkKey("string", b"other")


class TestSeeding:
    def test_from_seed_deterministic(self):
        assert MarkKey.from_seed(7) == MarkKey.from_seed(7)

    def test_from_seed_distinct_seeds(self):
        assert MarkKey.from_seed(7) != MarkKey.from_seed(8)

    def test_string_and_int_seeds_with_same_text(self):
        assert MarkKey.from_seed(7) == MarkKey.from_seed("7")


class TestDerivation:
    def test_derive_deterministic(self):
        key = MarkKey.from_seed(1)
        assert key.derive("K->A") == key.derive("K->A")

    def test_derive_label_sensitivity(self):
        key = MarkKey.from_seed(1)
        assert key.derive("K->A") != key.derive("K->B")

    def test_derived_differs_from_master(self):
        key = MarkKey.from_seed(1)
        assert key.derive("K->A") != key


class TestPersistence:
    def test_dict_round_trip(self):
        key = MarkKey.from_seed(3)
        assert MarkKey.from_dict(key.to_dict()) == key

    def test_malformed_payload_raises(self):
        with pytest.raises(KeyError_):
            MarkKey.from_dict({"k1": "zz-not-hex"})

    def test_repr_does_not_leak_full_key(self):
        key = MarkKey.from_seed(3)
        assert key.k1.hex() not in repr(key)
