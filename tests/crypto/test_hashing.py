"""Tests for repro.crypto.hashing — H(V,k) = crypto_hash(k;V;k) (§2.2)."""

import pytest

from repro.crypto import canonical_bytes, crypto_hash, keyed_hash, keyed_hash_mod


class TestCanonicalBytes:
    def test_int_and_string_distinct(self):
        assert canonical_bytes(1) != canonical_bytes("1")

    def test_bool_and_int_distinct(self):
        assert canonical_bytes(True) != canonical_bytes(1)

    def test_float_round_trip_precision(self):
        assert canonical_bytes(0.1) == canonical_bytes(0.1)
        assert canonical_bytes(0.1) != canonical_bytes(0.2)

    def test_tuple_encoding_structure(self):
        assert canonical_bytes(("a", 1)) != canonical_bytes(("a1",))

    def test_bytes_passthrough(self):
        assert canonical_bytes(b"xy") == b"y:xy"

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            canonical_bytes(object())


class TestKeyedHash:
    def test_deterministic(self):
        assert keyed_hash(42, b"key") == keyed_hash(42, b"key")

    def test_key_sensitivity(self):
        assert keyed_hash(42, b"key1") != keyed_hash(42, b"key2")

    def test_value_sensitivity(self):
        assert keyed_hash(41, b"key") != keyed_hash(42, b"key")

    def test_256_bit_output(self):
        value = keyed_hash("anything", b"key")
        assert 0 <= value < 2 ** 256

    def test_key_must_be_bytes(self):
        with pytest.raises(TypeError):
            keyed_hash(42, "string-key")

    def test_stable_across_runs(self):
        """Pinned value: detection across processes depends on this."""
        assert keyed_hash(1, b"k") == crypto_hash(
            b"k" + b"\x00;\x00" + b"i:1" + b"\x00;\x00" + b"k"
        )


class TestKeyedHashMod:
    def test_matches_full_hash(self):
        assert keyed_hash_mod(7, b"k", 13) == keyed_hash(7, b"k") % 13

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            keyed_hash_mod(7, b"k", 0)

    def test_fitness_rate_approximately_one_in_e(self):
        """H(V,k) mod e == 0 should select ~1/e of values (§3.2.1)."""
        e = 10
        hits = sum(
            keyed_hash_mod(value, b"secret", e) == 0 for value in range(5000)
        )
        assert 350 < hits < 650  # 500 expected; generous 3+ sigma band
