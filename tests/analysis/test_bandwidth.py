"""Tests for repro.analysis.bandwidth — §2.4/§3.1 capacity accounting."""

import pytest

from repro.analysis import (
    BandwidthError,
    association_channel_bits,
    direct_domain_bits,
    expected_alteration_fraction,
    minimum_tuples_for_watermark,
    replication_factor,
)


class TestDirectDomain:
    def test_paper_example_14_bits(self):
        # §3.1: nA = 16000 -> ~14 bits
        assert direct_domain_bits(16000) == pytest.approx(13.97, abs=0.01)

    def test_single_value_zero_bits(self):
        assert direct_domain_bits(1) == 0.0

    def test_invalid(self):
        with pytest.raises(BandwidthError):
            direct_domain_bits(0)


class TestAssociationChannel:
    def test_n_over_e(self):
        assert association_channel_bits(6000, 60) == 100

    def test_rounding(self):
        assert association_channel_bits(130, 60) == 2

    def test_invalid(self):
        with pytest.raises(BandwidthError):
            association_channel_bits(100, 0)
        with pytest.raises(BandwidthError):
            association_channel_bits(-1, 10)


class TestAlterationCost:
    def test_fraction_shrinks_with_e(self):
        assert expected_alteration_fraction(60, 500) < \
            expected_alteration_fraction(30, 500)

    def test_large_domain_near_one_in_e(self):
        assert expected_alteration_fraction(60, 10_000) == pytest.approx(
            1 / 60, rel=0.01
        )

    def test_matches_measured_embedding(self, item_scan, mark_key, watermark):
        from repro.core import embed, make_spec

        table = item_scan.clone()
        spec = make_spec(table, watermark, "Item_Nbr", e=20)
        result = embed(table, watermark, mark_key, spec)
        predicted = expected_alteration_fraction(20, 200)
        measured = result.applied / len(table)
        assert measured == pytest.approx(predicted, rel=0.35)


class TestReplication:
    def test_replication_factor(self):
        assert replication_factor(6000, 60, 10) == pytest.approx(10.0)

    def test_minimum_tuples(self):
        assert minimum_tuples_for_watermark(10, 60) == 600

    def test_invalid(self):
        with pytest.raises(BandwidthError):
            replication_factor(100, 10, 0)
        with pytest.raises(BandwidthError):
            minimum_tuples_for_watermark(0, 60)
