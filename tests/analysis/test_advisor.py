"""Tests for repro.analysis.advisor — principled parameter selection."""

import pytest

from repro.analysis import AdvisorError, recommend_parameters
from repro.analysis import (
    attack_success_exact,
    bit_undecidable_probability,
    expected_alteration_fraction,
)


class TestRecommendation:
    def test_paper_workload_recommendation_is_sane(self):
        rec = recommend_parameters(6000, 500, 10)
        assert 20 <= rec.e <= 200
        assert rec.expected_alteration_fraction <= 0.05
        assert rec.clean_bit_failure <= 1e-3
        assert rec.attack_success <= 0.10
        assert rec.carriers_per_bit >= 1.0

    def test_budgets_actually_hold_at_recommendation(self):
        rec = recommend_parameters(
            6000, 500, 10, max_alteration=0.03, clean_fidelity=1e-4
        )
        assert expected_alteration_fraction(rec.e, 500) <= 0.03
        carriers = round(6000 / rec.e)
        assert bit_undecidable_probability(
            carriers, rec.channel_length, 10
        ) <= 1e-4

    def test_tighter_alteration_budget_raises_e(self):
        loose = recommend_parameters(20_000, 500, 10, max_alteration=0.05)
        tight = recommend_parameters(20_000, 500, 10, max_alteration=0.005)
        assert tight.e >= loose.e
        assert tight.expected_alteration_fraction <= 0.005

    def test_tighter_fidelity_lowers_e(self):
        loose = recommend_parameters(6000, 500, 10, clean_fidelity=1e-2)
        tight = recommend_parameters(6000, 500, 10, clean_fidelity=1e-6)
        assert tight.e <= loose.e

    def test_short_watermark_warns_about_perfect_match(self):
        rec = recommend_parameters(6000, 500, 8)
        assert any("PERFECT" in warning for warning in rec.warnings)

    def test_long_watermark_no_perfect_match_warning(self):
        rec = recommend_parameters(20_000, 500, 24)
        assert not any("PERFECT" in warning for warning in rec.warnings)

    def test_saturation_warning_at_e_max(self):
        rec = recommend_parameters(
            100_000, 500, 16, max_alteration=0.02, e_max=500
        )
        assert rec.e == 500
        assert any("saturated" in warning for warning in rec.warnings)

    def test_summary_mentions_e(self):
        rec = recommend_parameters(6000, 500, 10)
        assert f"e = {rec.e}" in rec.summary()


class TestInfeasibility:
    def test_tiny_relation_rejected(self):
        # 50 tuples cannot carry a 10-bit mark with any fidelity
        with pytest.raises(AdvisorError):
            recommend_parameters(50, 500, 10)

    def test_impossible_significance_rejected(self):
        with pytest.raises(AdvisorError):
            recommend_parameters(6000, 500, 4, significance=1e-6)

    def test_contradictory_budgets_rejected(self):
        # demand near-zero alteration AND huge per-bit redundancy
        with pytest.raises(AdvisorError):
            recommend_parameters(
                2000, 500, 10, max_alteration=1e-5, clean_fidelity=1e-9
            )

    def test_invalid_inputs(self):
        with pytest.raises(AdvisorError):
            recommend_parameters(0, 500, 10)
        with pytest.raises(AdvisorError):
            recommend_parameters(6000, 1, 10)
        with pytest.raises(AdvisorError):
            recommend_parameters(6000, 500, 10, max_alteration=1.5)


class TestAgainstSimulation:
    def test_recommended_e_survives_the_assumed_attack(self):
        """End-to-end sanity: embed at the recommended e, run the assumed
        attack, and confirm the mark survives."""
        import random

        from repro import MarkKey, Watermark, Watermarker
        from repro.attacks import SubsetAlterationAttack
        from repro.datagen import generate_item_scan

        rec = recommend_parameters(
            6000, 300, 10, attack_fraction=0.10, flip_probability=0.7
        )
        table = generate_item_scan(6000, item_count=300, seed=71)
        marker = Watermarker(MarkKey.from_seed("advisor"), e=rec.e)
        watermark = Watermark.from_int(0x155, 10)
        outcome = marker.embed(table, watermark, "Item_Nbr")
        attack = SubsetAlterationAttack("Item_Nbr", 0.10, 0.7)
        attacked = attack.apply(outcome.table, random.Random(4))
        verdict = marker.verify(attacked, outcome.record)
        assert verdict.association.mark_alteration <= 0.1
