"""Tests for repro.analysis.erasure — keyed-variant slot erasure model."""

import pytest

from repro.analysis import (
    EmpiricalErasure,
    ErasureError,
    bit_undecidable_probability,
    carriers_for_fidelity,
    empirical_erasure,
    expected_clean_alteration,
    expected_erased_slots,
    slot_erasure_probability,
)


class TestClosedForms:
    def test_slot_probability_limits(self):
        assert slot_erasure_probability(0, 100) == 1.0
        assert slot_erasure_probability(10_000, 100) < 1e-40

    def test_equal_carriers_and_slots_near_1_over_e(self):
        import math

        value = slot_erasure_probability(100, 100)
        assert value == pytest.approx(math.exp(-1), rel=0.01)

    def test_expected_erased_slots(self):
        assert expected_erased_slots(100, 100) == pytest.approx(
            100 * slot_erasure_probability(100, 100)
        )

    def test_bit_failure_decreases_with_carriers(self):
        values = [
            bit_undecidable_probability(c, 100, 10)
            for c in (50, 100, 200, 400)
        ]
        assert values == sorted(values, reverse=True)

    def test_clean_alteration_is_half_bit_failure(self):
        assert expected_clean_alteration(100, 100, 10) == pytest.approx(
            0.5 * bit_undecidable_probability(100, 100, 10)
        )

    def test_invalid_parameters(self):
        with pytest.raises(ErasureError):
            slot_erasure_probability(10, 0)
        with pytest.raises(ErasureError):
            slot_erasure_probability(-1, 10)
        with pytest.raises(ErasureError):
            bit_undecidable_probability(10, 5, 10)


class TestInverse:
    def test_carriers_for_fidelity_inverts_model(self):
        carriers = carriers_for_fidelity(100, 10, 1e-4)
        assert bit_undecidable_probability(carriers, 100, 10) <= 1e-4
        assert bit_undecidable_probability(carriers - 20, 100, 10) > 1e-4

    def test_invalid_target(self):
        with pytest.raises(ErasureError):
            carriers_for_fidelity(100, 10, 0.0)


class TestAgainstSimulation:
    def test_model_matches_measured_erasures(self, mark_key):
        """Embed on synthetic data and compare observed erased slots with
        the closed form."""
        from repro.core import Watermark, embed, extract_slots, make_spec
        from repro.datagen import generate_item_scan

        table = generate_item_scan(6000, item_count=300, seed=17)
        watermark = Watermark.from_int(0x2AB, 10)
        spec = make_spec(table, watermark, "Item_Nbr", e=60)
        marked = table.clone()
        result = embed(marked, watermark, mark_key, spec)
        slots, _ = extract_slots(marked, mark_key, spec)
        observed = sum(slot is None for slot in slots)
        predicted = expected_erased_slots(
            result.fit_count, spec.channel_length
        )
        assert observed == pytest.approx(predicted, abs=12)


class TestEmpiricalErasure:
    """The multi-pass Monte-Carlo cross-check on the sweep engine."""

    def test_multi_pass_measurement_tracks_the_refined_model(self):
        from repro.datagen import generate_item_scan

        table = generate_item_scan(6000, item_count=300, seed=17)
        result = empirical_erasure(table, "Item_Nbr", e=60, passes=5)
        assert isinstance(result, EmpiricalErasure)
        assert result.passes == 5
        assert result.mean_carriers > 0
        # The refined model (reachable-slot structure of the implemented
        # msb addressing) matches the measurement tightly; the paper's
        # uniform model is optimistic and must sit at or below it.
        assert result.mean_observed_erased == pytest.approx(
            result.mean_predicted_refined, abs=6
        )
        assert (
            result.mean_predicted_erased
            <= result.mean_predicted_refined + 1e-9
        )
        assert result.model_gap == pytest.approx(
            result.mean_observed_erased - result.mean_predicted_refined
        )

    def test_reachable_slots_structure(self):
        from repro.analysis import (
            expected_erased_slots_refined,
            reachable_slots,
        )

        # L = 100: w = 7, field values 64..127 -> slots {64..99, 0..27}.
        assert reachable_slots(100) == 64
        # Powers of two are fully reachable, and there the refined model
        # collapses to the uniform one.
        assert reachable_slots(64) == 64
        assert expected_erased_slots_refined(100, 64) == pytest.approx(
            expected_erased_slots(100, 64)
        )
        # Unreachable slots stay erased no matter how many carriers.
        assert expected_erased_slots_refined(10_000, 100) >= 36

    def test_passes_share_the_sweep_engine_cache(self):
        from repro.datagen import generate_item_scan
        from repro.experiments import get_sweep_engine

        table = generate_item_scan(1500, item_count=100, seed=18)
        engine = get_sweep_engine()
        empirical_erasure(table, "Item_Nbr", e=40, passes=3)
        after_first = engine.embeds_performed
        # A repeat measurement re-uses every embedded pass.
        empirical_erasure(table, "Item_Nbr", e=40, passes=3)
        assert engine.embeds_performed == after_first

    def test_invalid_passes(self):
        from repro.datagen import generate_item_scan

        table = generate_item_scan(500, item_count=50, seed=19)
        with pytest.raises(ErasureError):
            empirical_erasure(table, "Item_Nbr", e=40, passes=0)
