"""Tests for repro.analysis.erasure — keyed-variant slot erasure model."""

import pytest

from repro.analysis import (
    ErasureError,
    bit_undecidable_probability,
    carriers_for_fidelity,
    expected_clean_alteration,
    expected_erased_slots,
    slot_erasure_probability,
)


class TestClosedForms:
    def test_slot_probability_limits(self):
        assert slot_erasure_probability(0, 100) == 1.0
        assert slot_erasure_probability(10_000, 100) < 1e-40

    def test_equal_carriers_and_slots_near_1_over_e(self):
        import math

        value = slot_erasure_probability(100, 100)
        assert value == pytest.approx(math.exp(-1), rel=0.01)

    def test_expected_erased_slots(self):
        assert expected_erased_slots(100, 100) == pytest.approx(
            100 * slot_erasure_probability(100, 100)
        )

    def test_bit_failure_decreases_with_carriers(self):
        values = [
            bit_undecidable_probability(c, 100, 10)
            for c in (50, 100, 200, 400)
        ]
        assert values == sorted(values, reverse=True)

    def test_clean_alteration_is_half_bit_failure(self):
        assert expected_clean_alteration(100, 100, 10) == pytest.approx(
            0.5 * bit_undecidable_probability(100, 100, 10)
        )

    def test_invalid_parameters(self):
        with pytest.raises(ErasureError):
            slot_erasure_probability(10, 0)
        with pytest.raises(ErasureError):
            slot_erasure_probability(-1, 10)
        with pytest.raises(ErasureError):
            bit_undecidable_probability(10, 5, 10)


class TestInverse:
    def test_carriers_for_fidelity_inverts_model(self):
        carriers = carriers_for_fidelity(100, 10, 1e-4)
        assert bit_undecidable_probability(carriers, 100, 10) <= 1e-4
        assert bit_undecidable_probability(carriers - 20, 100, 10) > 1e-4

    def test_invalid_target(self):
        with pytest.raises(ErasureError):
            carriers_for_fidelity(100, 10, 0.0)


class TestAgainstSimulation:
    def test_model_matches_measured_erasures(self, mark_key):
        """Embed on synthetic data and compare observed erased slots with
        the closed form."""
        from repro.core import Watermark, embed, extract_slots, make_spec
        from repro.datagen import generate_item_scan

        table = generate_item_scan(6000, item_count=300, seed=17)
        watermark = Watermark.from_int(0x2AB, 10)
        spec = make_spec(table, watermark, "Item_Nbr", e=60)
        marked = table.clone()
        result = embed(marked, watermark, mark_key, spec)
        slots, _ = extract_slots(marked, mark_key, spec)
        observed = sum(slot is None for slot in slots)
        predicted = expected_erased_slots(
            result.fit_count, spec.channel_length
        )
        assert observed == pytest.approx(predicted, abs=12)
