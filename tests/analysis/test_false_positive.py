"""Tests for repro.analysis.false_positive — §4.4 court-time statistics."""

import random

import pytest

from repro.analysis import (
    FalsePositiveError,
    full_channel_match_probability,
    monte_carlo_match_distribution,
    partial_match_probability,
    random_watermark_match_probability,
    required_matches_for_significance,
)


class TestClosedForms:
    def test_random_match_half_power(self):
        assert random_watermark_match_probability(10) == pytest.approx(2 ** -10)

    def test_paper_channel_number(self):
        # Paper: N=6000, e=60 -> (1/2)^100 ~= 7.8e-31
        value = full_channel_match_probability(6000, 60)
        assert value == pytest.approx(7.888e-31, rel=0.01)

    def test_partial_full_match_equals_random(self):
        assert partial_match_probability(10, 10) == pytest.approx(
            random_watermark_match_probability(10)
        )

    def test_partial_zero_match_is_one(self):
        assert partial_match_probability(0, 10) == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(FalsePositiveError):
            random_watermark_match_probability(0)
        with pytest.raises(FalsePositiveError):
            full_channel_match_probability(0, 10)
        with pytest.raises(FalsePositiveError):
            partial_match_probability(11, 10)


class TestRequiredMatches:
    def test_threshold_is_minimal(self):
        matches = required_matches_for_significance(20, 0.01)
        assert partial_match_probability(matches, 20) <= 0.01
        assert partial_match_probability(matches - 1, 20) > 0.01

    def test_too_short_watermark_flagged(self):
        # a 4-bit mark can never reach 1e-6 significance
        assert required_matches_for_significance(4, 1e-6) == 5

    def test_invalid_significance(self):
        with pytest.raises(FalsePositiveError):
            required_matches_for_significance(10, 0.0)


class TestMonteCarlo:
    def test_distribution_matches_binomial(self):
        rng = random.Random(5)
        counts = monte_carlo_match_distribution(10, 20000, rng)
        assert sum(counts) == 20000
        # mean matches ~ 5; coarse binomial sanity
        mean = sum(m * c for m, c in enumerate(counts)) / 20000
        assert mean == pytest.approx(5.0, abs=0.1)
        empirical_tail = sum(counts[9:]) / 20000
        assert empirical_tail == pytest.approx(
            partial_match_probability(9, 10), abs=0.005
        )

    def test_invalid_trials(self):
        with pytest.raises(FalsePositiveError):
            monte_carlo_match_distribution(10, 0, random.Random(1))
