"""Tests for repro.experiments — runner, figure generators, reporting."""

import pytest

from repro.attacks import DataLossAttack, SubsetAlterationAttack
from repro.experiments import (
    ExperimentPoint,
    FigureConfig,
    PassResult,
    figure4_series,
    figure5_series,
    figure6_surface,
    figure7_series,
    format_series,
    format_surface,
    format_table,
    run_attack_experiment,
    sweep,
)

QUICK = FigureConfig(tuple_count=1500, item_count=100, passes=2)


class TestRunner:
    def test_pass_results_have_expected_shape(self, item_scan):
        results = run_attack_experiment(
            item_scan, "Item_Nbr", 40, DataLossAttack(0.2), passes=2
        )
        assert len(results) == 2
        for result in results:
            assert 0.0 <= result.mark_alteration <= 1.0
            assert result.fit_count > 0

    def test_distinct_seeds_per_pass(self, item_scan):
        results = run_attack_experiment(
            item_scan, "Item_Nbr", 40, DataLossAttack(0.2), passes=3
        )
        assert len({result.seed for result in results}) == 3

    def test_no_attack_means_no_alteration(self, item_scan):
        from repro.attacks import IdentityAttack

        results = run_attack_experiment(
            item_scan, "Item_Nbr", 40, IdentityAttack(), passes=2
        )
        assert all(result.mark_alteration == 0.0 for result in results)
        assert all(result.detected for result in results)

    def test_sweep_points_follow_xs(self, item_scan):
        points = sweep(
            item_scan,
            "Item_Nbr",
            40,
            lambda loss: DataLossAttack(loss),
            [0.1, 0.5],
            passes=2,
        )
        assert [point.x for point in points] == [0.1, 0.5]

    def test_experiment_point_statistics(self):
        point = ExperimentPoint(
            x=1.0,
            passes=[
                PassResult(0, 0.2, True, 0.001, 10, 10),
                PassResult(1, 0.4, False, 0.2, 10, 10),
            ],
        )
        assert point.mean_alteration == pytest.approx(0.3)
        assert point.detection_rate == pytest.approx(0.5)
        assert point.alteration_stdev == pytest.approx(0.1)

    def test_empty_point_statistics(self):
        point = ExperimentPoint(x=0.0)
        assert point.mean_alteration == 0.0
        assert point.detection_rate == 0.0


class TestFigures:
    def test_figure4_shape(self):
        series = figure4_series(
            QUICK, e_values=(30, 60), attack_sizes=(0.2, 0.6)
        )
        assert set(series) == {30, 60}
        for points in series.values():
            assert [point.x for point in points] == [0.2, 0.6]
            # graceful degradation: more attack, at least as much damage
            # (allow small sampling wobble at 2 passes)
            assert points[1].mean_alteration >= points[0].mean_alteration - 0.15

    def test_figure5_more_bandwidth_more_resilience(self):
        series = figure5_series(
            QUICK, e_values=(10, 120), attack_sizes=(0.5,)
        )
        points = series[0.5]
        assert points[0].x == 10.0
        # e=10 (more carriers) must beat e=120 under the same attack
        assert points[0].mean_alteration <= points[1].mean_alteration + 0.05

    def test_figure6_surface_grid(self):
        surface = figure6_surface(
            QUICK, e_values=(30, 90), attack_sizes=(0.2, 0.6)
        )
        assert len(surface) == 4
        es = {e for e, _, _ in surface}
        assert es == {30, 90}

    def test_figure7_loss_series(self):
        points = figure7_series(QUICK, e=40, loss_fractions=(0.2, 0.8))
        assert len(points) == 2
        assert all(0.0 <= point.mean_alteration <= 1.0 for point in points)


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(("a", "bb"), [(1, 2.5), (10, 3.25)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "2.500" in text

    def test_format_series_contains_points(self):
        point = ExperimentPoint(
            x=0.5, passes=[PassResult(0, 0.25, True, 0.001, 10, 10)]
        )
        text = format_series("Figure X", [point], "loss", percent_x=True)
        assert "Figure X" in text
        assert "50%" in text
        assert "25.0%" in text

    def test_format_surface_grid(self):
        text = format_surface(
            "Surface", [(30, 0.2, 0.1), (30, 0.6, 0.2), (90, 0.2, 0.3)]
        )
        assert "e \\ attack" in text
        assert "-" in text  # missing (90, 0.6) cell
