"""Tests for repro.experiments.sweepengine — mode equivalence, caching,
pool lifecycle.

The load-bearing property is the determinism contract: serial
(re-embed-per-cell), hoisted (embed-once-per-seed) and pooled (worker
processes) execution must produce bit-identical ``PassResult`` lists, so
the engine is free to pick the fastest path without changing the science.
"""

from __future__ import annotations

import random

import pytest

from repro.attacks import Attack, DataLossAttack, SubsetAlterationAttack
from repro.core import Watermark, Watermarker
from repro.crypto import MarkKey
from repro.datagen import generate_item_scan
from repro.experiments import (
    MODE_HOISTED,
    MODE_POOLED,
    MODE_SERIAL,
    SweepEngine,
    SweepProtocol,
    run_attack_experiment,
    shutdown_sweep_pool,
    sweep,
)
from repro.experiments import sweepengine


@pytest.fixture(scope="module")
def base_table():
    return generate_item_scan(1200, item_count=80, seed=13)


@pytest.fixture(autouse=True)
def _pool_cleanup():
    yield
    shutdown_sweep_pool()


PROTOCOL = SweepProtocol(mark_attribute="Item_Nbr", e=40)
XS = (0.2, 0.5)
SEEDS = range(3)


def _attacks():
    return [(x, SubsetAlterationAttack("Item_Nbr", x, 0.7)) for x in XS]


def _flatten(points):
    return [(point.x, result) for point in points for result in point.passes]


class TestModeEquivalence:
    def test_serial_hoisted_pooled_bit_identical(self, base_table):
        serial = SweepEngine(mode=MODE_SERIAL).run(
            base_table, PROTOCOL, _attacks(), SEEDS
        )
        hoisted = SweepEngine(mode=MODE_HOISTED).run(
            base_table, PROTOCOL, _attacks(), SEEDS
        )
        pooled_one = SweepEngine(mode=MODE_POOLED, max_workers=1).run(
            base_table, PROTOCOL, _attacks(), SEEDS
        )
        pooled_two = SweepEngine(mode=MODE_POOLED, max_workers=2).run(
            base_table, PROTOCOL, _attacks(), SEEDS
        )
        assert (
            _flatten(serial)
            == _flatten(hoisted)
            == _flatten(pooled_one)
            == _flatten(pooled_two)
        )

    def test_equivalence_under_data_loss_attack(self, base_table):
        attacks = [(x, DataLossAttack(x)) for x in (0.3, 0.6)]
        serial = SweepEngine(mode=MODE_SERIAL).run(
            base_table, PROTOCOL, attacks, SEEDS
        )
        pooled = SweepEngine(mode=MODE_POOLED, max_workers=1).run(
            base_table, PROTOCOL, attacks, SEEDS
        )
        assert _flatten(serial) == _flatten(pooled)

    def test_unpicklable_attack_falls_back_to_hoisted(self, base_table):
        class ClosureAttack(Attack):
            """Carries a lambda, so it cannot cross a process boundary."""

            name = "closure"

            def __init__(self):
                self.pick = lambda rng: DataLossAttack(0.4)

            def apply(self, table, rng):
                return self.pick(rng).apply(table, rng)

        attacks = [(0.4, ClosureAttack())]
        pooled = SweepEngine(mode=MODE_POOLED, max_workers=1).run(
            base_table, PROTOCOL, attacks, SEEDS
        )
        serial = SweepEngine(mode=MODE_SERIAL).run(
            base_table, PROTOCOL, attacks, SEEDS
        )
        assert _flatten(pooled) == _flatten(serial)

    def test_pool_fallback_is_logged_and_counted(self, base_table, caplog):
        class ClosureAttack(Attack):
            name = "closure"

            def __init__(self):
                self.pick = lambda rng: DataLossAttack(0.4)

            def apply(self, table, rng):
                return self.pick(rng).apply(table, rng)

        engine = SweepEngine(mode=MODE_POOLED, max_workers=1)
        with caplog.at_level("WARNING", logger="repro.experiments.sweepengine"):
            engine.run(base_table, PROTOCOL, [(0.4, ClosureAttack())], SEEDS)
        # the degradation is visible, not silent: a warning naming the
        # cause plus a counter in both telemetry surfaces
        assert any("falling back" in record.message for record in caplog.records)
        assert engine.reliability_report().pool_fallbacks == 1
        assert engine.cache_info()["pool_fallbacks"] == 1

    def test_cache_info_exposes_reliability_counters(self, base_table):
        engine = SweepEngine(mode=MODE_SERIAL)
        engine.run(base_table, PROTOCOL, _attacks(), SEEDS)
        info = engine.cache_info()
        for field in (
            "passes_cached", "embeds_performed", "cells_executed",
            "cell_retries", "pool_respawns", "pool_fallbacks",
        ):
            assert field in info
        assert info["pool_fallbacks"] == 0
        assert info["cells_executed"] == len(XS) * len(list(SEEDS))


class TestEmbedHoisting:
    def test_one_embed_per_seed_across_points(self, base_table):
        engine = SweepEngine(mode=MODE_HOISTED)
        engine.run(base_table, PROTOCOL, _attacks(), SEEDS)
        assert engine.embeds_performed == len(list(SEEDS))

    def test_second_sweep_reuses_embedded_passes(self, base_table):
        engine = SweepEngine(mode=MODE_HOISTED)
        first = engine.run(base_table, PROTOCOL, _attacks(), SEEDS)
        after_first = engine.embeds_performed
        second = engine.run(
            base_table,
            PROTOCOL,
            [(0.7, SubsetAlterationAttack("Item_Nbr", 0.7, 0.7))],
            SEEDS,
        )
        assert engine.embeds_performed == after_first
        assert _flatten(first) != _flatten(second)  # different cells, and
        # the reused passes still answer them
        assert all(result.fit_count > 0 for _, result in _flatten(second))

    def test_serial_mode_re_embeds_every_cell(self, base_table):
        engine = SweepEngine(mode=MODE_SERIAL)
        engine.run(base_table, PROTOCOL, _attacks(), SEEDS)
        assert engine.embeds_performed == len(XS) * len(list(SEEDS))

    def test_changed_table_is_not_conflated(self, base_table):
        engine = SweepEngine(mode=MODE_HOISTED)
        engine.run(base_table, PROTOCOL, _attacks(), SEEDS)
        other = generate_item_scan(1200, item_count=80, seed=14)
        before = engine.embeds_performed
        engine.run(other, PROTOCOL, _attacks(), SEEDS)
        assert engine.embeds_performed == before + len(list(SEEDS))


class TestPersistentPool:
    def test_pool_survives_across_runs(self, base_table):
        engine = SweepEngine(mode=MODE_POOLED, max_workers=1)
        engine.run(base_table, PROTOCOL, _attacks(), SEEDS)
        first_pool = sweepengine._pool
        assert first_pool is not None
        engine.run(base_table, PROTOCOL, _attacks(), SEEDS)
        assert sweepengine._pool is first_pool

    def test_new_table_retires_the_pool(self, base_table):
        engine = SweepEngine(mode=MODE_POOLED, max_workers=1)
        engine.run(base_table, PROTOCOL, _attacks(), SEEDS)
        first_pool = sweepengine._pool
        other = generate_item_scan(1000, item_count=80, seed=15)
        engine.run(other, PROTOCOL, _attacks(), SEEDS)
        assert sweepengine._pool is not first_pool

    def test_shutdown_clears_state(self, base_table):
        engine = SweepEngine(mode=MODE_POOLED, max_workers=1)
        engine.run(base_table, PROTOCOL, _attacks(), SEEDS)
        shutdown_sweep_pool()
        assert sweepengine._pool is None


class TestRunnerCompatibility:
    """The public runner API must keep the historical per-pass protocol."""

    def test_run_attack_experiment_matches_pre_engine_runner(self, base_table):
        attack = SubsetAlterationAttack("Item_Nbr", 0.4, 0.7)
        results = run_attack_experiment(
            base_table, "Item_Nbr", 40, attack, passes=3
        )

        # The pre-sweep-engine runner, inlined: fresh key + watermark +
        # marker per pass, attack rng seeded f"attack:{seed}".
        expected = []
        for seed in range(3):
            key = MarkKey.from_seed(seed)
            watermark = Watermark.random(10, random.Random(f"wm:{seed}"))
            marker = Watermarker(key, e=40)
            outcome = marker.embed(base_table, watermark, "Item_Nbr")
            attacked = attack.apply(
                outcome.table, random.Random(f"attack:{seed}")
            )
            verdict = marker.verify(attacked, outcome.record)
            association = verdict.association
            expected.append(
                (
                    seed,
                    association.mark_alteration,
                    association.detected,
                    association.false_hit_probability,
                    association.detection.fit_count,
                    association.detection.slots_recovered,
                )
            )
        assert [
            (
                r.seed,
                r.mark_alteration,
                r.detected,
                r.false_hit_probability,
                r.fit_count,
                r.slots_recovered,
            )
            for r in results
        ] == expected

    def test_sweep_shares_seeds_across_points(self, base_table):
        points = sweep(
            base_table,
            "Item_Nbr",
            40,
            lambda x: SubsetAlterationAttack("Item_Nbr", x, 0.7),
            [0.2, 0.6],
            passes=3,
        )
        assert [point.x for point in points] == [0.2, 0.6]
        seeds_per_point = [
            [result.seed for result in point.passes] for point in points
        ]
        # The paper's protocol: the *same* 15 keyed passes swept over the
        # attack axis — seeds repeat across points, attacks differ.
        assert seeds_per_point[0] == seeds_per_point[1] == [0, 1, 2]

    def test_sweep_mode_override_is_bit_identical(self, base_table):
        factory = lambda x: SubsetAlterationAttack("Item_Nbr", x, 0.7)
        auto = sweep(
            base_table, "Item_Nbr", 40, factory, [0.2, 0.6], passes=3
        )
        serial = sweep(
            base_table, "Item_Nbr", 40, factory, [0.2, 0.6], passes=3,
            mode=MODE_SERIAL,
        )
        assert _flatten(auto) == _flatten(serial)


class TestBackendEquivalence:
    """The execution backend (SCALAR / ENGINE / VECTOR) never changes a
    sweep's results — in-process or across the worker pool."""

    def _run(self, base_table, backend, mode, max_workers=None):
        from repro.crypto import clear_engine_registry

        clear_engine_registry()
        shutdown_sweep_pool()
        protocol = SweepProtocol(
            mark_attribute="Item_Nbr", e=40, backend=backend
        )
        engine = SweepEngine(mode=mode, max_workers=max_workers)
        return _flatten(
            engine.run(base_table, protocol, _attacks(), SEEDS)
        )

    def test_backends_bit_identical_hoisted(self, base_table, monkeypatch):
        from repro.core import kernels
        from repro.crypto import ENGINE, SCALAR, VECTOR

        monkeypatch.setattr(kernels, "VECTOR_MIN_ROWS", 1)
        scalar = self._run(base_table, SCALAR, MODE_HOISTED)
        engine = self._run(base_table, ENGINE, MODE_HOISTED)
        vector = self._run(base_table, VECTOR, MODE_HOISTED)
        assert scalar == engine == vector

    def test_vector_backend_bit_identical_pooled(self, base_table):
        """Acceptance: a pooled sweep on the vector backend matches the
        hoisted engine-backend reference cell for cell.  (Workers resolve
        the backend themselves; VECTOR_MIN_ROWS patching does not cross
        the process boundary, so the protocol forces VECTOR explicitly.)"""
        from repro.crypto import ENGINE, VECTOR

        reference = self._run(base_table, ENGINE, MODE_HOISTED)
        pooled = self._run(
            base_table, VECTOR, MODE_POOLED, max_workers=2
        )
        assert pooled == reference

    def test_auto_backend_is_default_and_identical(self, base_table):
        from repro.crypto import AUTO, SCALAR

        assert SweepProtocol(mark_attribute="Item_Nbr", e=40).backend == AUTO
        auto = self._run(base_table, AUTO, MODE_HOISTED)
        scalar = self._run(base_table, SCALAR, MODE_SERIAL)
        assert auto == scalar
