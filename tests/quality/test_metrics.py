"""Tests for repro.quality.metrics — post-hoc distortion measurement."""

import pytest

from repro.quality import measure_distortion


class TestMeasureDistortion:
    def test_identity_reports_zero(self, tiny_table):
        report = measure_distortion(tiny_table, tiny_table.clone())
        assert report.cells_changed == 0
        assert report.tuples_changed == 0
        assert report.missing_tuples == 0
        assert report.added_tuples == 0
        assert report.cell_change_fraction == 0.0

    def test_cell_change_counted(self, tiny_table):
        changed = tiny_table.clone()
        changed.set_value(1, "A", "blue")
        report = measure_distortion(tiny_table, changed)
        assert report.cells_changed == 1
        assert report.tuples_changed == 1
        assert report.tuple_change_fraction == pytest.approx(1 / 6)

    def test_missing_and_added(self, tiny_table):
        changed = tiny_table.clone()
        changed.delete(1)
        changed.insert((100, "red", "x"))
        report = measure_distortion(tiny_table, changed)
        assert report.missing_tuples == 1
        assert report.added_tuples == 1

    def test_frequency_drift_reported(self, tiny_table):
        changed = tiny_table.clone()
        changed.set_value(1, "A", "blue")
        report = measure_distortion(
            tiny_table, changed, frequency_attributes=("A",)
        )
        assert report.frequency_drift["A"] == pytest.approx(2 / 6)

    def test_summary_mentions_counts(self, tiny_table):
        changed = tiny_table.clone()
        changed.set_value(1, "A", "blue")
        text = measure_distortion(
            tiny_table, changed, frequency_attributes=("A",)
        ).summary()
        assert "tuples changed" in text
        assert "A" in text

    def test_empty_tables(self, tiny_schema):
        from repro.relational import Table

        report = measure_distortion(Table(tiny_schema), Table(tiny_schema))
        assert report.cell_change_fraction == 0.0
        assert report.tuple_change_fraction == 0.0
