"""Tests for repro.quality.constraints — the on-the-fly guard (§4.1)."""

import pytest

from repro.quality import (
    ForbiddenTransitions,
    FrozenAttribute,
    MaxAlterationFraction,
    MaxFrequencyDrift,
    PredicateConstraint,
    QualityGuard,
    permissive_guard,
)


class TestGuardBasics:
    def test_apply_changes_and_logs(self, tiny_table):
        guard = permissive_guard()
        guard.bind(tiny_table)
        assert guard.apply(1, "A", "blue")
        assert tiny_table.value(1, "A") == "blue"
        assert len(guard.log) == 1
        assert guard.report.applied == 1

    def test_noop_change_not_logged(self, tiny_table):
        guard = permissive_guard()
        guard.bind(tiny_table)
        assert guard.apply(1, "A", "red")  # already red
        assert len(guard.log) == 0
        assert guard.report.noop == 1

    def test_unbound_guard_raises(self):
        with pytest.raises(RuntimeError):
            QualityGuard([]).context

    def test_undo_everything(self, tiny_table):
        guard = permissive_guard()
        guard.bind(tiny_table)
        guard.apply(1, "A", "blue")
        guard.apply(2, "A", "cyan")
        assert guard.undo_everything() == 2
        assert tiny_table.value(1, "A") == "red"
        assert tiny_table.value(2, "A") == "green"

    def test_rebind_resets_state(self, tiny_table):
        guard = permissive_guard()
        guard.bind(tiny_table)
        guard.apply(1, "A", "blue")
        guard.bind(tiny_table)
        assert len(guard.log) == 0
        assert guard.report.applied == 0


class TestMaxAlterationFraction:
    def test_vetoes_beyond_budget(self, tiny_table):
        guard = QualityGuard([MaxAlterationFraction(1 / 6)])  # one change
        guard.bind(tiny_table)
        assert guard.apply(1, "A", "blue")
        assert not guard.apply(2, "A", "cyan")
        assert tiny_table.value(2, "A") == "green"  # rolled back
        assert guard.report.vetoed == 1

    def test_zero_budget_blocks_everything(self, tiny_table):
        guard = QualityGuard([MaxAlterationFraction(0.0)])
        guard.bind(tiny_table)
        assert not guard.apply(1, "A", "blue")

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            MaxAlterationFraction(1.5)

    def test_veto_attribution(self, tiny_table):
        constraint = MaxAlterationFraction(0.0)
        guard = QualityGuard([constraint])
        guard.bind(tiny_table)
        guard.apply(1, "A", "blue")
        assert guard.report.vetoes_by_constraint[constraint.name] == 1


class TestMaxFrequencyDrift:
    def test_drift_accumulates_incrementally(self, tiny_table):
        # each change moves 2 counts out of 6 -> L1 freq drift 2/6
        guard = QualityGuard([MaxFrequencyDrift("A", 0.4)])
        guard.bind(tiny_table)
        assert guard.apply(1, "A", "blue")   # drift 2/6 = 0.33 ok
        assert not guard.apply(2, "A", "blue")  # would be 4/6 = 0.67

    def test_compensating_changes_reduce_drift(self, tiny_table):
        guard = QualityGuard([MaxFrequencyDrift("A", 0.4)])
        guard.bind(tiny_table)
        assert guard.apply(1, "A", "blue")    # red -> blue
        assert guard.apply(3, "A", "red")     # blue -> red: net zero drift
        assert guard.apply(2, "A", "cyan")    # fresh drift fits again

    def test_other_attributes_not_counted(self, tiny_table):
        guard = QualityGuard([MaxFrequencyDrift("A", 0.0)])
        guard.bind(tiny_table)
        assert guard.apply(1, "B", "y")  # drift constraint on A untouched

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            MaxFrequencyDrift("A", -0.1)


class TestForbiddenTransitions:
    def test_explicit_pair_blocked(self, tiny_table):
        guard = QualityGuard(
            [ForbiddenTransitions("A", forbidden={("red", "blue")})]
        )
        guard.bind(tiny_table)
        assert not guard.apply(1, "A", "blue")
        assert guard.apply(1, "A", "cyan")

    def test_predicate_blocked(self, tiny_table):
        guard = QualityGuard(
            [
                ForbiddenTransitions(
                    "A", predicate=lambda old, new: new == "cyan"
                )
            ]
        )
        guard.bind(tiny_table)
        assert not guard.apply(1, "A", "cyan")
        assert guard.apply(1, "A", "blue")

    def test_other_attribute_ignored(self, tiny_table):
        guard = QualityGuard(
            [ForbiddenTransitions("A", forbidden={("x", "y")})]
        )
        guard.bind(tiny_table)
        assert guard.apply(1, "B", "y")

    def test_requires_some_rule(self):
        with pytest.raises(ValueError):
            ForbiddenTransitions("A")


class TestFrozenAttribute:
    def test_frozen_attribute_untouchable(self, tiny_table):
        guard = QualityGuard([FrozenAttribute("A")])
        guard.bind(tiny_table)
        assert not guard.apply(1, "A", "blue")
        assert guard.apply(1, "B", "y")


class TestPredicateConstraint:
    def test_custom_context_rule(self, tiny_table):
        def at_most_one(context):
            if context.change_count > 1:
                return "only one change allowed"
            return None

        guard = QualityGuard([PredicateConstraint("one-change", at_most_one)])
        guard.bind(tiny_table)
        assert guard.apply(1, "A", "blue")
        assert not guard.apply(2, "A", "cyan")
