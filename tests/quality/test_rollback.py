"""Tests for repro.quality.rollback — the §4.1 alteration undo log."""

from repro.quality import ChangeRecord, RollbackLog


class TestLog:
    def test_record_appends(self, tiny_table):
        log = RollbackLog()
        log.record(1, "A", "red", "blue")
        assert len(log) == 1
        assert log.entries[0] == ChangeRecord(1, "A", "red", "blue")

    def test_undo_last_restores_cell(self, tiny_table):
        log = RollbackLog()
        old = tiny_table.set_value(1, "A", "blue")
        log.record(1, "A", old, "blue")
        log.undo_last(tiny_table)
        assert tiny_table.value(1, "A") == "red"
        assert len(log) == 0

    def test_undo_last_empty_log_is_noop(self, tiny_table):
        assert RollbackLog().undo_last(tiny_table) is None

    def test_undo_all_reverts_in_reverse_order(self, tiny_table):
        log = RollbackLog()
        for target in ("blue", "cyan", "green"):
            old = tiny_table.set_value(1, "A", target)
            log.record(1, "A", old, target)
        reverted = log.undo_all(tiny_table)
        assert reverted == 3
        assert tiny_table.value(1, "A") == "red"

    def test_changed_cells_deduplicates(self):
        log = RollbackLog()
        log.record(1, "A", "red", "blue")
        log.record(1, "A", "blue", "cyan")
        log.record(2, "B", "x", "y")
        assert log.changed_cells() == {(1, "A"), (2, "B")}

    def test_inverted_record(self):
        record = ChangeRecord(1, "A", "red", "blue")
        assert record.inverted() == ChangeRecord(1, "A", "blue", "red")

    def test_iteration_order(self):
        log = RollbackLog()
        log.record(1, "A", "r", "b")
        log.record(2, "A", "g", "c")
        assert [entry.key for entry in log] == [1, 2]
