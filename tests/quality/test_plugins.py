"""Tests for repro.quality.plugins — the Figure-3 usability plugin handler."""

import pytest

from repro.quality import (
    CallableMetric,
    CellPreservationMetric,
    FrequencyPreservationMetric,
    PluginConstraint,
    PluginHandler,
    QualityGuard,
)


class TestCellPreservation:
    def test_identical_tables_score_one(self, tiny_table):
        metric = CellPreservationMetric(minimum=0.9)
        result = metric.evaluate(tiny_table, tiny_table.clone())
        assert result.score == 1.0
        assert result.passed

    def test_changes_lower_score(self, tiny_table):
        changed = tiny_table.clone()
        changed.set_value(1, "A", "blue")
        metric = CellPreservationMetric(minimum=0.99)
        result = metric.evaluate(tiny_table, changed)
        assert result.score == pytest.approx(17 / 18)
        assert not result.passed

    def test_missing_tuples_skipped(self, tiny_table):
        partial = tiny_table.clone()
        partial.delete(1)
        result = CellPreservationMetric().evaluate(tiny_table, partial)
        assert result.score == 1.0  # surviving tuples untouched


class TestFrequencyPreservation:
    def test_identity_scores_one(self, tiny_table):
        metric = FrequencyPreservationMetric("A")
        assert metric.evaluate(tiny_table, tiny_table.clone()).score == 1.0

    def test_drift_lowers_score(self, tiny_table):
        changed = tiny_table.clone()
        changed.set_value(1, "A", "blue")
        metric = FrequencyPreservationMetric("A", minimum=0.99)
        result = metric.evaluate(tiny_table, changed)
        assert result.score < 1.0
        assert not result.passed


class TestHandler:
    def test_register_and_evaluate(self, tiny_table):
        handler = PluginHandler()
        handler.register(CellPreservationMetric())
        handler.register(FrequencyPreservationMetric("A"))
        results = handler.evaluate(tiny_table, tiny_table.clone())
        assert len(results) == 2
        assert handler.all_pass(tiny_table, tiny_table.clone())

    def test_duplicate_registration_rejected(self):
        handler = PluginHandler()
        handler.register(CellPreservationMetric())
        with pytest.raises(ValueError):
            handler.register(CellPreservationMetric())

    def test_unregister(self):
        handler = PluginHandler()
        handler.register(CellPreservationMetric())
        handler.unregister("cell-preservation")
        assert handler.plugins == ()

    def test_callable_metric_adapter(self, tiny_table):
        handler = PluginHandler()
        handler.register(
            CallableMetric("always-half", lambda a, b: 0.5, minimum=0.6)
        )
        results = handler.evaluate(tiny_table, tiny_table)
        assert results[0].score == 0.5
        assert not results[0].passed


class TestPluginConstraint:
    def test_failing_plugin_vetoes_change(self, tiny_table):
        original = tiny_table.clone()
        constraint = PluginConstraint(
            CellPreservationMetric(minimum=1.0), original
        )
        guard = QualityGuard([constraint])
        guard.bind(tiny_table)
        assert not guard.apply(1, "A", "blue")
        assert tiny_table.value(1, "A") == "red"

    def test_every_thins_evaluation(self, tiny_table):
        original = tiny_table.clone()
        constraint = PluginConstraint(
            CellPreservationMetric(minimum=1.0), original, every=2
        )
        guard = QualityGuard([constraint])
        guard.bind(tiny_table)
        # first proposal skipped by thinning, second evaluated and vetoed
        assert guard.apply(1, "A", "blue")
        assert not guard.apply(2, "A", "cyan")

    def test_invalid_every(self, tiny_table):
        with pytest.raises(ValueError):
            PluginConstraint(CellPreservationMetric(), tiny_table, every=0)
