"""Tests for repro.quality.semantic — association-rule preservation."""

import pytest

from repro.quality import (
    AssociationRuleMetric,
    PluginConstraint,
    QualityGuard,
    mine_rules,
    rule_statistics,
)
from repro.relational import (
    Attribute,
    AttributeType,
    CategoricalDomain,
    Schema,
    Table,
)


@pytest.fixture
def correlated_table():
    """Dept strongly implies Aisle: a textbook association rule."""
    schema = Schema(
        (
            Attribute("Id", AttributeType.INTEGER),
            Attribute(
                "Dept",
                AttributeType.CATEGORICAL,
                CategoricalDomain(["DAIRY", "BAKERY"]),
            ),
            Attribute(
                "Aisle",
                AttributeType.CATEGORICAL,
                CategoricalDomain(["A1", "A2", "A3"]),
            ),
        ),
        primary_key="Id",
    )
    rows = []
    for index in range(100):
        if index % 2:  # 50 DAIRY rows: 40x A1, 10x A3
            rows.append((index, "DAIRY", "A1" if index % 5 else "A3"))
        else:  # 50 BAKERY rows: 40x A2, 10x A3
            rows.append((index, "BAKERY", "A2" if index % 5 else "A3"))
    return Table(schema, rows)


class TestRuleStatistics:
    def test_support_and_confidence(self, correlated_table):
        support, confidence = rule_statistics(
            correlated_table, "Dept", "DAIRY", "Aisle", "A1"
        )
        assert support == pytest.approx(0.40)
        assert confidence == pytest.approx(0.8)

    def test_empty_table(self, correlated_table):
        empty = Table(correlated_table.schema)
        assert rule_statistics(empty, "Dept", "DAIRY", "Aisle", "A1") == (
            0.0, 0.0,
        )


class TestMiner:
    def test_mines_the_strong_rules(self, correlated_table):
        rules = mine_rules(
            correlated_table, "Dept", "Aisle",
            min_support=0.1, min_confidence=0.8,
        )
        found = {
            (rule.antecedent_value, rule.consequent_value) for rule in rules
        }
        assert ("DAIRY", "A1") in found
        assert ("BAKERY", "A2") in found

    def test_thresholds_filter(self, correlated_table):
        rules = mine_rules(
            correlated_table, "Dept", "Aisle",
            min_support=0.1, min_confidence=0.95,
        )
        assert rules == []

    def test_sorted_by_confidence(self, correlated_table):
        rules = mine_rules(
            correlated_table, "Dept", "Aisle",
            min_support=0.01, min_confidence=0.05,
        )
        confidences = [rule.confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_max_rules_cap(self, correlated_table):
        rules = mine_rules(
            correlated_table, "Dept", "Aisle",
            min_support=0.0, min_confidence=0.0, max_rules=2,
        )
        assert len(rules) == 2

    def test_empty_table_no_rules(self, correlated_table):
        assert mine_rules(
            Table(correlated_table.schema), "Dept", "Aisle"
        ) == []

    def test_invalid_thresholds(self, correlated_table):
        with pytest.raises(ValueError):
            mine_rules(correlated_table, "Dept", "Aisle", min_support=-1)


class TestMetric:
    def test_untouched_data_scores_one(self, correlated_table):
        rules = mine_rules(correlated_table, "Dept", "Aisle",
                           min_support=0.1, min_confidence=0.8)
        metric = AssociationRuleMetric(rules, minimum=0.95)
        result = metric.evaluate(correlated_table, correlated_table.clone())
        assert result.score == 1.0
        assert result.passed

    def test_breaking_a_rule_fails(self, correlated_table):
        rules = mine_rules(correlated_table, "Dept", "Aisle",
                           min_support=0.1, min_confidence=0.8)
        damaged = correlated_table.clone()
        # send half of DAIRY to A2 — the DAIRY->A1 rule collapses
        moved = 0
        for row in list(damaged):
            if row[1] == "DAIRY" and row[2] == "A1" and moved < 25:
                damaged.set_value(row[0], "Aisle", "A2")
                moved += 1
        metric = AssociationRuleMetric(rules, minimum=0.9)
        result = metric.evaluate(correlated_table, damaged)
        assert not result.passed
        assert "DAIRY" in result.detail

    def test_requires_rules(self):
        with pytest.raises(ValueError):
            AssociationRuleMetric([])

    def test_as_guard_constraint(self, correlated_table):
        """The §6 vision: embedding alterations vetoed when they would
        break mined rules."""
        rules = mine_rules(correlated_table, "Dept", "Aisle",
                           min_support=0.1, min_confidence=0.8)
        original = correlated_table.clone()
        guard = QualityGuard(
            [
                PluginConstraint(
                    AssociationRuleMetric(rules, minimum=0.97), original
                )
            ]
        )
        guard.bind(correlated_table)
        # small drifts pass...
        assert guard.apply(1, "Aisle", "A3")
        # ...but a bulk rewrite attempt is stopped partway by the metric
        vetoed = 0
        for row in list(correlated_table):
            if row[1] == "DAIRY" and row[2] == "A1":
                vetoed += not guard.apply(row[0], "Aisle", "A2")
        assert vetoed > 0
