"""Tests for repro.baseline.agrawal_kiernan — the numeric LSB baseline."""

import random

import pytest

from repro.baseline import (
    AKParameters,
    BaselineError,
    ak_detect,
    ak_embed,
)
from repro.relational import Attribute, AttributeType, Schema, Table

KEY = b"ak-secret-key"


def numeric_table(count: int = 4000, seed: int = 5) -> Table:
    rng = random.Random(seed)
    schema = Schema(
        (
            Attribute("Id", AttributeType.INTEGER),
            Attribute("Price", AttributeType.INTEGER),
            Attribute("Stock", AttributeType.INTEGER),
        ),
        primary_key="Id",
    )
    rows = (
        (i, rng.randrange(100, 10_000), rng.randrange(0, 500))
        for i in range(count)
    )
    return Table(schema, rows, name="inventory")


@pytest.fixture
def params():
    return AKParameters(candidate_attributes=("Price", "Stock"), gamma=40, xi=2)


class TestParameters:
    def test_invalid_gamma(self):
        with pytest.raises(BaselineError):
            AKParameters(("Price",), gamma=0)

    def test_invalid_xi(self):
        with pytest.raises(BaselineError):
            AKParameters(("Price",), xi=0)

    def test_empty_candidates(self):
        with pytest.raises(BaselineError):
            AKParameters(())


class TestEmbed:
    def test_marks_about_one_in_gamma(self, params):
        table = numeric_table()
        result = ak_embed(table, KEY, params)
        expected = len(table) / params.gamma
        assert expected * 0.6 < result.marked_tuples < expected * 1.4

    def test_changes_at_most_marked(self, params):
        table = numeric_table()
        result = ak_embed(table, KEY, params)
        assert 0 < result.changed_tuples <= result.marked_tuples

    def test_lsb_changes_only(self, params):
        table = numeric_table()
        original = table.clone()
        ak_embed(table, KEY, params)
        mask = ~((1 << params.xi) - 1)
        for row, before in zip(table, original):
            for position in (1, 2):
                assert row[position] & mask == before[position] & mask

    def test_unknown_candidate_rejected(self):
        table = numeric_table()
        with pytest.raises(Exception):
            ak_embed(table, KEY, AKParameters(("nope",)))


class TestDetect:
    def test_marked_data_detected(self, params):
        table = numeric_table()
        ak_embed(table, KEY, params)
        verdict = ak_detect(table, KEY, params)
        assert verdict.detected
        assert verdict.match_fraction == 1.0

    def test_unmarked_data_not_detected(self, params):
        verdict = ak_detect(numeric_table(seed=9), KEY, params)
        assert verdict.match_fraction < 0.75
        assert not verdict.detected

    def test_wrong_key_not_detected(self, params):
        table = numeric_table()
        ak_embed(table, KEY, params)
        verdict = ak_detect(table, b"other-key", params)
        assert not verdict.detected

    def test_survives_moderate_row_loss(self, params):
        from repro.relational import drop_fraction

        table = numeric_table()
        ak_embed(table, KEY, params)
        attacked = drop_fraction(table, 0.5, random.Random(2))
        verdict = ak_detect(attacked, KEY, params)
        assert verdict.detected  # surviving marked bits still all match

    def test_lsb_randomisation_destroys_mark(self, params):
        """The categorical channel's motivation: numeric-LSB marks die to
        trivial value perturbation, which categorical data doesn't allow."""
        table = numeric_table()
        ak_embed(table, KEY, params)
        rng = random.Random(3)
        for key in list(table.keys()):
            table.set_value(
                key, "Price", table.value(key, "Price") ^ rng.randrange(4)
            )
            table.set_value(
                key, "Stock", table.value(key, "Stock") ^ rng.randrange(4)
            )
        verdict = ak_detect(table, KEY, params)
        assert not verdict.detected

    def test_empty_evidence_false_hit_one(self, params):
        from repro.relational import Table

        empty = Table(numeric_table(10).schema)
        verdict = ak_detect(empty, KEY, params)
        assert verdict.false_hit_probability == 1.0
        assert not verdict.detected
