"""Property-based tests for the relational substrate's invariants."""

from hypothesis import given, settings, strategies as st

from repro.relational import (
    Attribute,
    AttributeType,
    CategoricalDomain,
    Schema,
    Table,
)

VALUES = ("alpha", "beta", "gamma", "delta")


def schema() -> Schema:
    return Schema(
        (
            Attribute("K", AttributeType.INTEGER),
            Attribute(
                "A", AttributeType.CATEGORICAL, CategoricalDomain(VALUES)
            ),
        ),
        primary_key="K",
    )


rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from(VALUES),
    ),
    max_size=60,
    unique_by=lambda row: row[0],
)


class TestTableInvariants:
    @given(rows_strategy)
    @settings(max_examples=100, deadline=None)
    def test_pk_index_consistent_after_bulk_insert(self, rows):
        table = Table(schema(), rows)
        assert len(table) == len(rows)
        for row in rows:
            assert table.get(row[0]) == row

    @given(rows_strategy, st.randoms(use_true_random=False))
    @settings(max_examples=80, deadline=None)
    def test_pk_index_consistent_after_deletions(self, rows, rng):
        table = Table(schema(), rows)
        keys = [row[0] for row in rows]
        rng.shuffle(keys)
        for key in keys[: len(keys) // 2]:
            table.delete(key)
        survivors = set(keys[len(keys) // 2:])
        assert set(table.keys()) == survivors
        for key in survivors:
            assert table.get(key)[0] == key

    @given(rows_strategy, st.randoms(use_true_random=False))
    @settings(max_examples=80, deadline=None)
    def test_updates_preserve_size_and_index(self, rows, rng):
        table = Table(schema(), rows)
        for row in rows:
            table.set_value(row[0], "A", rng.choice(VALUES))
        assert len(table) == len(rows)
        assert set(table.keys()) == {row[0] for row in rows}

    @given(rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_clone_equality_and_independence(self, rows):
        table = Table(schema(), rows)
        duplicate = table.clone()
        assert duplicate == table
        if rows:
            duplicate.delete(rows[0][0])
            assert len(table) == len(rows)

    @given(rows_strategy, st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_shuffle_is_content_neutral(self, rows, rng):
        import random

        from repro.relational import shuffle

        table = Table(schema(), rows)
        reordered = shuffle(table, random.Random(rng.randrange(10**6)))
        assert reordered == table

    @given(rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_csv_round_trip(self, rows):
        from repro.relational import dumps_csv, loads_csv

        table = Table(schema(), rows)
        assert loads_csv(dumps_csv(table), schema()) == table
