"""Property-based equivalence: batched engine vs scalar primitives.

Randomized values — including tuple-typed composite keys and non-ASCII
text — must produce bit-identical fitness/slot/pair results through the
engine and through the scalar ``keyed_hash``-based reference functions,
in any query order and batch shape.
"""

from hypothesis import given, settings, strategies as st

from repro.core.embedding import embedded_value_index, slot_index
from repro.crypto import HashEngine, MarkKey, keyed_hash
from repro.relational import CategoricalDomain

# Scalar leaves for key values.  Floats/bools are exercised separately in
# tests/crypto/test_engine.py; here we avoid cross-type ``==`` collisions
# (1 == True == 1.0) because the per-value derived maps — like the
# reference implementation's per-scan caches — use plain dict equality.
_leaves = st.one_of(
    st.integers(min_value=-(2**80), max_value=2**80),
    st.text(max_size=24),
    st.binary(max_size=24),
)

key_values = st.one_of(
    _leaves,
    st.tuples(_leaves, _leaves),
    st.tuples(_leaves, st.tuples(_leaves, _leaves)),
)

keys = st.integers(min_value=0, max_value=2**32).map(
    lambda seed: MarkKey.from_seed(f"prop-{seed}")
)


@settings(max_examples=60, deadline=None)
@given(
    key=keys,
    values=st.lists(key_values, min_size=1, max_size=40),
    e=st.integers(min_value=1, max_value=97),
    channel_length=st.integers(min_value=1, max_value=300),
    domain_size=st.integers(min_value=2, max_value=64),
    bit=st.integers(min_value=0, max_value=1),
)
def test_engine_matches_scalar_reference(
    key, values, e, channel_length, domain_size, bit
):
    engine = HashEngine(key)
    domain = CategoricalDomain(range(domain_size))

    assert engine.fitness_mask(values, e) == [
        keyed_hash(value, key.k1) % e == 0 for value in values
    ]
    assert engine.slot_indices(values, channel_length) == [
        slot_index(value, key.k2, channel_length) for value in values
    ]
    assert [
        2 * pair + bit for pair in engine.pair_indices(values, domain)
    ] == [
        embedded_value_index(value, key.k1, bit, domain) for value in values
    ]


@settings(max_examples=40, deadline=None)
@given(
    key=keys,
    values=st.lists(key_values, min_size=1, max_size=30),
    e=st.integers(min_value=1, max_value=50),
)
def test_batch_then_scalar_then_rebatch_is_stable(key, values, e):
    """Memoization must be invisible: any interleaving of batched and
    scalar queries returns the same verdicts as a fresh engine."""
    warm = HashEngine(key)
    first = warm.fitness_mask(values, e)
    scalar = [warm.is_fit(value, e) for value in values]
    second = warm.fitness_mask(list(reversed(values)), e)
    fresh = HashEngine(key).fitness_mask(values, e)
    assert first == scalar == fresh
    assert second == list(reversed(first))


@settings(max_examples=40, deadline=None)
@given(
    key=keys,
    values=st.lists(key_values, min_size=1, max_size=40),
    e=st.integers(min_value=1, max_value=97),
    channel_length=st.integers(min_value=1, max_value=300),
    domain_size=st.integers(min_value=2, max_value=64),
)
def test_plan_arrays_match_scalar_reference(
    key, values, e, channel_length, domain_size
):
    """Vector plan arrays project the derived maps losslessly: for every
    unique, fitness matches the scalar criterion and — on fit uniques,
    the only ones the kernels ever gather — slot and pair indices match
    the scalar addressing."""
    np = __import__("numpy")

    from repro.relational import ColumnCodes

    engine = HashEngine(key)
    # Factorize the generated value list exactly as Table.column_codes
    # does: first-encounter uniques, dense int32 codes.
    index = {}
    uniques = []
    raw = []
    for value in values:
        code = index.get(value)
        if code is None:
            code = index[value] = len(uniques)
            uniques.append(value)
        raw.append(code)
    codes = ColumnCodes(np.asarray(raw, dtype=np.int32), uniques)

    fit = engine.fitness_array(codes, e)
    slot = engine.slot_array(codes, channel_length, e)
    pair = engine.pair_array(codes, domain_size, e)
    assert len(fit) == len(slot) == len(pair) == len(codes.uniques)

    for position, value in enumerate(codes.uniques):
        assert bool(fit[position]) == (keyed_hash(value, key.k1) % e == 0)
        if fit[position]:
            assert int(slot[position]) == slot_index(
                value, key.k2, channel_length
            )
            expected_pair = embedded_value_index(
                value, key.k1, 0, CategoricalDomain(range(domain_size))
            ) // 2
            assert int(pair[position]) == expected_pair

    # Per-row gathers reconstruct per-row verdicts.
    row_fit = fit[codes.codes]
    assert row_fit.tolist() == [
        keyed_hash(value, key.k1) % e == 0 for value in values
    ]
    assert np.count_nonzero(row_fit) == sum(row_fit.tolist())
