"""Property-based tests for the §2.1 bit primitives."""

from hypothesis import given, strategies as st

from repro.crypto import (
    bit_length,
    bits_to_int,
    get_bit,
    int_to_bits,
    msb,
    set_bit,
)

values = st.integers(min_value=0, max_value=2 ** 128)
positions = st.integers(min_value=0, max_value=130)
bits = st.integers(min_value=0, max_value=1)
widths = st.integers(min_value=1, max_value=130)


class TestSetBit:
    @given(values, positions, bits)
    def test_readback(self, value, position, bit):
        assert get_bit(set_bit(value, position, bit), position) == bit

    @given(values, positions, bits)
    def test_other_bits_untouched(self, value, position, bit):
        updated = set_bit(value, position, bit)
        for other in range(0, 131, 7):
            if other != position:
                assert get_bit(updated, other) == get_bit(value, other)

    @given(values, positions, bits)
    def test_idempotent(self, value, position, bit):
        once = set_bit(value, position, bit)
        assert set_bit(once, position, bit) == once


class TestMsb:
    @given(values, widths)
    def test_result_fits_width(self, value, width):
        assert msb(value, width).bit_length() <= width

    @given(values)
    def test_full_width_is_identity(self, value):
        assert msb(value, max(1, value.bit_length())) == value

    @given(values, widths)
    def test_msb_is_right_shift(self, value, width):
        expected = value >> max(0, value.bit_length() - width)
        assert msb(value, width) == expected


class TestConversions:
    @given(values)
    def test_round_trip(self, value):
        width = max(1, value.bit_length())
        assert bits_to_int(int_to_bits(value, width)) == value

    @given(values)
    def test_bit_length_matches_python(self, value):
        assert bit_length(value) == max(1, value.bit_length())
