"""Property-based tests for the embedding/detection core invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import (
    Watermark,
    detect,
    embed,
    embedded_value_index,
    make_spec,
    slot_index,
)
from repro.crypto import MarkKey
from repro.relational import (
    Attribute,
    AttributeType,
    CategoricalDomain,
    Schema,
    Table,
)


def build_table(n_rows: int, n_values: int, seed: int) -> Table:
    values = [f"v{index:03d}" for index in range(n_values)]
    schema = Schema(
        (
            Attribute("K", AttributeType.INTEGER),
            Attribute(
                "A", AttributeType.CATEGORICAL, CategoricalDomain(values)
            ),
        ),
        primary_key="K",
    )
    rng = random.Random(seed)
    rows = ((key, rng.choice(values)) for key in range(n_rows))
    return Table(schema, rows)


watermark_bits = st.lists(
    st.integers(min_value=0, max_value=1), min_size=2, max_size=16
).map(tuple)


class TestPrimitiveProperties:
    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=1, max_value=4096),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=150, deadline=None)
    def test_slot_index_in_range(self, value, length, seed):
        key = MarkKey.from_seed(seed)
        assert 0 <= slot_index(value, key.k2, length) < length

    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=2, max_value=500),
        st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=150, deadline=None)
    def test_value_index_parity_and_range(self, value, bit, size, seed):
        key = MarkKey.from_seed(seed)
        domain = CategoricalDomain([f"v{i:03d}" for i in range(size)])
        index = embedded_value_index(value, key.k1, bit, domain)
        assert 0 <= index < size
        assert index & 1 == bit


class TestEmbedDetectProperties:
    @given(
        watermark_bits,
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=25, deadline=None)
    def test_round_trip_for_any_watermark_keyed(self, bits, e, seed):
        """Keyed variant: the hash-addressed slot selection can leave a
        residue class of ``wm_data`` empty (the paper's "arguably rare
        cases" note in §3.2.1), so clean detection is within 1 bit — and
        usually exact."""
        table = build_table(
            n_rows=max(60 * len(bits), 40 * e * 2), n_values=32, seed=seed
        )
        watermark = Watermark(bits)
        key = MarkKey.from_seed(seed)
        spec = make_spec(table, watermark, "A", e=e)
        embed(table, watermark, key, spec)
        detected = detect(table, key, spec).watermark
        assert watermark.hamming_distance(detected) <= 1

    @given(
        watermark_bits,
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=25, deadline=None)
    def test_round_trip_exact_with_map_variant(self, bits, e, seed):
        """Map variant (Figure 1(b)): sequential slot assignment guarantees
        channel coverage, so clean detection is exact."""
        table = build_table(
            n_rows=max(60 * len(bits), 40 * e * 2), n_values=32, seed=seed
        )
        watermark = Watermark(bits)
        key = MarkKey.from_seed(seed)
        spec = make_spec(table, watermark, "A", e=e, variant="map")
        result = embed(table, watermark, key, spec)
        detected = detect(
            table, key, spec, embedding_map=result.embedding_map
        ).watermark
        assert detected == watermark

    @given(watermark_bits, st.integers(min_value=0, max_value=20))
    @settings(max_examples=15, deadline=None)
    def test_detection_order_invariance(self, bits, seed):
        from repro.relational import shuffle

        table = build_table(n_rows=1500, n_values=32, seed=seed)
        watermark = Watermark(bits)
        key = MarkKey.from_seed(seed)
        spec = make_spec(table, watermark, "A", e=10)
        embed(table, watermark, key, spec)
        reordered = shuffle(table, random.Random(seed + 1))
        assert detect(reordered, key, spec).watermark == watermark

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_double_embedding_is_idempotent(self, seed):
        """Re-running the encoder with the same key/spec changes nothing:
        every carrier already holds its target value."""
        table = build_table(n_rows=1200, n_values=32, seed=seed)
        watermark = Watermark((1, 0, 1, 1, 0, 1))
        key = MarkKey.from_seed(seed)
        spec = make_spec(table, watermark, "A", e=10)
        embed(table, watermark, key, spec)
        snapshot = table.clone()
        second = embed(table, watermark, key, spec)
        assert table == snapshot
        assert second.applied == 0
        assert second.unchanged == second.fit_count
