"""Property-based tests for the error-correcting codes."""

from hypothesis import given, settings, strategies as st

from repro.ecc import get_code, registered_codes

messages = st.lists(
    st.integers(min_value=0, max_value=1), min_size=1, max_size=24
).map(tuple)
code_names = st.sampled_from(registered_codes())


def channel_length_for(code, message, slack):
    return max(code.minimum_length(len(message)) + slack, len(message))


class TestAllCodes:
    @given(code_names, messages, st.integers(min_value=0, max_value=64))
    @settings(max_examples=120, deadline=None)
    def test_clean_round_trip(self, name, message, slack):
        code = get_code(name)
        length = channel_length_for(code, message, slack)
        encoded = code.encode(message, length)
        assert len(encoded) == length
        assert code.decode(encoded, len(message)).bits == message

    @given(code_names, messages, st.integers(min_value=0, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_encoding_is_bits(self, name, message, slack):
        code = get_code(name)
        length = channel_length_for(code, message, slack)
        assert all(bit in (0, 1) for bit in code.encode(message, length))

    @given(code_names, messages)
    @settings(max_examples=60, deadline=None)
    def test_decode_confidence_range(self, name, message):
        code = get_code(name)
        length = channel_length_for(code, message, 32)
        encoded = code.encode(message, length)
        result = code.decode(encoded, len(message))
        assert all(0.0 <= conf <= 1.0 for conf in result.confidence)


class TestMajorityRobustness:
    @given(
        messages,
        st.integers(min_value=3, max_value=15),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_sub_majority_damage_always_corrected(
        self, message, replicas_factor, rng
    ):
        """For odd replica counts, flipping < half of each bit's replicas
        can never change the decoded message."""
        code = get_code("majority")
        replicas = replicas_factor | 1  # force odd
        length = len(message) * replicas
        channel = list(code.encode(message, length))
        for bit_index in range(len(message)):
            slots = list(range(bit_index, length, len(message)))
            damage = rng.sample(slots, (replicas - 1) // 2)
            for slot in damage:
                channel[slot] ^= 1
        assert code.decode(channel, len(message)).bits == message

    @given(
        messages,
        st.integers(min_value=3, max_value=15),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_erasures_below_full_loss_preserve_message(
        self, message, replicas_factor, rng
    ):
        code = get_code("majority")
        replicas = replicas_factor | 1
        length = len(message) * replicas
        channel = list(code.encode(message, length))
        for bit_index in range(len(message)):
            slots = list(range(bit_index, length, len(message)))
            erased = rng.sample(slots, replicas - 1)  # keep one replica
            for slot in erased:
                channel[slot] = None
        assert code.decode(channel, len(message)).bits == message
