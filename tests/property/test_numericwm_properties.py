"""Property-based tests for the numeric-set watermark substrate."""

from hypothesis import given, settings, strategies as st

from repro.numericwm import detect_numeric_set, embed_numeric_set

KEY = b"property-key"

bit_strings = st.lists(
    st.integers(min_value=0, max_value=1), min_size=1, max_size=8
).map(tuple)
value_sets = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=40,
    max_size=120,
)
quanta = st.floats(min_value=1e-4, max_value=0.05, allow_nan=False)


class TestNumericSetProperties:
    @given(value_sets, bit_strings, quanta)
    @settings(max_examples=80, deadline=None)
    def test_round_trip(self, values, bits, quantum):
        embedding = embed_numeric_set(values, bits, KEY, quantum)
        detection = detect_numeric_set(
            embedding.values, len(bits), KEY, quantum
        )
        assert detection.bits == bits

    @given(value_sets, bit_strings, quanta)
    @settings(max_examples=80, deadline=None)
    def test_distortion_bound(self, values, bits, quantum):
        embedding = embed_numeric_set(values, bits, KEY, quantum)
        assert embedding.max_change <= 1.5 * quantum + 1e-9

    @given(value_sets, bit_strings, quanta)
    @settings(max_examples=60, deadline=None)
    def test_non_negative_outputs(self, values, bits, quantum):
        embedding = embed_numeric_set(values, bits, KEY, quantum)
        assert all(value >= 0.0 for value in embedding.values)

    @given(value_sets, bit_strings, quanta, st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_sub_half_quantum_noise_harmless(self, values, bits, quantum, rng):
        embedding = embed_numeric_set(values, bits, KEY, quantum)
        noisy = [
            value + rng.uniform(-0.45 * quantum, 0.45 * quantum)
            for value in embedding.values
        ]
        detection = detect_numeric_set(noisy, len(bits), KEY, quantum)
        assert detection.bits == bits
