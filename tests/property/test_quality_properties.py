"""Property-based tests for the quality guard's transactional invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.quality import (
    MaxAlterationFraction,
    MaxFrequencyDrift,
    QualityGuard,
    permissive_guard,
)
from repro.relational import (
    Attribute,
    AttributeType,
    CategoricalDomain,
    Schema,
    Table,
    frequency_histogram,
    l1_distance,
)

VALUES = ("a", "b", "c", "d", "e")


def build_table(rows):
    schema = Schema(
        (
            Attribute("K", AttributeType.INTEGER),
            Attribute(
                "A", AttributeType.CATEGORICAL, CategoricalDomain(VALUES)
            ),
        ),
        primary_key="K",
    )
    return Table(schema, rows)


rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=500),
        st.sampled_from(VALUES),
    ),
    min_size=4,
    max_size=40,
    unique_by=lambda row: row[0],
)

changes_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=39), st.sampled_from(VALUES)),
    max_size=60,
)


class TestGuardInvariants:
    @given(rows_strategy, changes_strategy)
    @settings(max_examples=80, deadline=None)
    def test_undo_everything_restores_exactly(self, rows, changes):
        """After any accepted/vetoed change sequence, undo_everything must
        restore the table to its exact original state."""
        table = build_table(rows)
        snapshot = table.clone()
        guard = permissive_guard()
        guard.bind(table)
        keys = list(table.keys())
        for index, value in changes:
            guard.apply(keys[index % len(keys)], "A", value)
        guard.undo_everything()
        assert table == snapshot
        for key in keys:
            assert table.get(key) == snapshot.get(key)

    @given(rows_strategy, changes_strategy, st.floats(0.0, 1.0))
    @settings(max_examples=80, deadline=None)
    def test_alteration_budget_never_exceeded(self, rows, changes, limit):
        table = build_table(rows)
        snapshot = table.clone()
        guard = QualityGuard([MaxAlterationFraction(limit)])
        guard.bind(table)
        keys = list(table.keys())
        for index, value in changes:
            guard.apply(keys[index % len(keys)], "A", value)
        changed = sum(
            table.get(key) != snapshot.get(key) for key in keys
        )
        assert changed <= limit * len(rows) + 1e-9 or changed == 0

    @given(rows_strategy, changes_strategy, st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_frequency_drift_budget_respected(self, rows, changes, limit):
        table = build_table(rows)
        snapshot = table.clone()
        guard = QualityGuard([MaxFrequencyDrift("A", limit)])
        guard.bind(table)
        keys = list(table.keys())
        for index, value in changes:
            guard.apply(keys[index % len(keys)], "A", value)
        drift = l1_distance(
            frequency_histogram(snapshot, "A"),
            frequency_histogram(table, "A"),
        )
        # the guard's incremental drift uses counts/len; allow fp slack
        assert drift <= limit + 1e-9

    @given(rows_strategy, changes_strategy)
    @settings(max_examples=60, deadline=None)
    def test_report_accounting_is_consistent(self, rows, changes):
        table = build_table(rows)
        guard = QualityGuard([MaxAlterationFraction(0.5)])
        guard.bind(table)
        keys = list(table.keys())
        for index, value in changes:
            guard.apply(keys[index % len(keys)], "A", value)
        report = guard.report
        assert report.proposed == len(changes)
        assert report.applied == len(guard.log)
        assert report.applied + report.vetoed + report.noop == len(changes)


class TestFrequencyChannelProperty:
    @given(
        st.integers(min_value=2, max_value=20),
        st.lists(
            st.integers(min_value=0, max_value=1), min_size=1, max_size=6
        ).map(tuple),
        st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=20, deadline=None)
    def test_frequency_round_trip(self, domain_size, bits, seed):
        """Whatever the payload and domain size (with |wm| <= nA):
        embed+detect on the frequency channel round-trips on unmodified
        data."""
        from hypothesis import assume

        from repro.core import Watermark, detect_frequency, embed_frequency
        from repro.crypto import MarkKey
        from repro.datagen import generate_item_scan

        assume(domain_size >= len(bits))
        table = generate_item_scan(
            4000, item_count=domain_size, seed=seed
        )
        key = MarkKey.from_seed(seed)
        watermark = Watermark(bits)
        result = embed_frequency(table, watermark, key, "Item_Nbr")
        assert result.shortfall == 0
        detected = detect_frequency(table, key, result.record)
        assert detected == watermark

    @given(
        st.lists(
            st.integers(min_value=0, max_value=1), min_size=3, max_size=8
        ).map(tuple),
    )
    @settings(max_examples=10, deadline=None)
    def test_frequency_undersized_domain_rejected(self, bits):
        from repro.core import BandwidthError, Watermark, embed_frequency
        from repro.crypto import MarkKey
        from repro.datagen import generate_item_scan
        import pytest

        table = generate_item_scan(2000, item_count=len(bits) - 1, seed=1)
        with pytest.raises(BandwidthError):
            embed_frequency(
                table, Watermark(bits), MarkKey.from_seed(1), "Item_Nbr"
            )
