"""Tests for the identity (no-ECC) ablation code."""

import pytest

from repro.ecc import ECCError, IdentityCode


@pytest.fixture
def code():
    return IdentityCode()


class TestIdentity:
    def test_message_prefix_padding_zero(self, code):
        assert code.encode((1, 0, 1), 6) == (1, 0, 1, 0, 0, 0)

    def test_round_trip(self, code):
        message = (1, 1, 0, 1)
        assert code.decode(code.encode(message, 10), 4).bits == message

    def test_single_flip_is_fatal(self, code):
        """No redundancy: every carrier flip is a watermark bit flip."""
        message = (1, 0)
        channel = list(code.encode(message, 5))
        channel[0] ^= 1
        assert code.decode(channel, 2).bits != message

    def test_erasure_decodes_to_zero(self, code):
        channel = [None, 1]
        result = code.decode(channel, 2)
        assert result.bits == (0, 1)
        assert result.confidence == (0.0, 1.0)

    def test_channel_too_small(self, code):
        with pytest.raises(ECCError):
            code.encode((1, 0, 1), 2)
