"""Tests for the interleaved majority-voting code (§3.2.1's ECC)."""

import pytest

from repro.ecc import ECCError, MajorityVotingCode


@pytest.fixture
def code():
    return MajorityVotingCode()


class TestEncode:
    def test_cyclic_layout(self, code):
        encoded = code.encode((1, 0, 1), 7)
        assert encoded == (1, 0, 1, 1, 0, 1, 1)

    def test_exact_length(self, code):
        assert len(code.encode((1, 0), 9)) == 9

    def test_channel_too_small_rejected(self, code):
        with pytest.raises(ECCError):
            code.encode((1, 0, 1), 2)

    def test_empty_message_rejected(self, code):
        with pytest.raises(ECCError):
            code.encode((), 5)

    def test_non_bit_rejected(self, code):
        with pytest.raises(ECCError):
            code.encode((1, 2), 5)


class TestDecode:
    def test_clean_round_trip(self, code):
        message = (1, 0, 1, 1, 0)
        encoded = code.encode(message, 50)
        result = code.decode(encoded, len(message))
        assert result.bits == message
        assert all(conf == 1.0 for conf in result.confidence)

    def test_minority_flips_corrected(self, code):
        message = (1, 0)
        channel = list(code.encode(message, 10))
        channel[0] ^= 1  # one replica of bit 0 flipped
        result = code.decode(channel, 2)
        assert result.bits == message
        assert result.confidence[0] < 1.0

    def test_majority_flips_change_bit(self, code):
        message = (1, 0)
        channel = list(code.encode(message, 10))
        for position in (0, 2, 4):  # 3 of 5 replicas of bit 0
            channel[position] ^= 1
        result = code.decode(channel, 2)
        assert result.bits[0] == 0

    def test_erasures_ignored_in_vote(self, code):
        message = (1, 0)
        channel = list(code.encode(message, 10))
        channel[0] = None
        channel[2] = None
        result = code.decode(channel, 2)
        assert result.bits == message

    def test_all_erased_bit_decodes_to_zero_with_zero_confidence(self, code):
        channel = [None] * 10
        result = code.decode(channel, 2)
        assert result.bits == (0, 0)
        assert result.confidence == (0.0, 0.0)

    def test_tie_breaks_to_zero(self, code):
        # bit 0 replicas: positions 0, 2 -> one vote each way
        channel = [1, 1, 0, 1]
        result = code.decode(channel, 2)
        assert result.bits[0] == 0
        assert result.confidence[0] == 0.5

    def test_channel_shorter_than_message_rejected(self, code):
        with pytest.raises(ECCError):
            code.decode((1, 0), 3)

    def test_invalid_message_length(self, code):
        with pytest.raises(ECCError):
            code.decode((1, 0, 1), 0)

    def test_invalid_slot_symbol(self, code):
        with pytest.raises(ECCError):
            code.decode((1, 0, 2), 2)


class TestReplication:
    def test_replication_factor(self, code):
        assert code.replication_factor(10, 100) == pytest.approx(10.0)

    def test_tolerates_damage_below_half_per_bit(self, code):
        """With r replicas per bit, any < r/2 flips per bit are absorbed —
        the error-correction property Figure 4 banks on."""
        message = (1, 1, 0, 0, 1)
        channel = list(code.encode(message, 55))  # 11 replicas per bit
        for bit_index in range(5):
            for replica in range(5):  # flip 5 of 11 replicas
                channel[bit_index + replica * 5] ^= 1
        assert code.decode(channel, 5).bits == message
