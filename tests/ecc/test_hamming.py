"""Tests for the Hamming(7,4)+replication code."""

import random

import pytest

from repro.ecc import ECCError, Hamming74Code
from repro.ecc.hamming import _decode_block, _encode_block


@pytest.fixture
def code():
    return Hamming74Code()


class TestBlockPrimitives:
    def test_all_16_blocks_round_trip(self):
        for value in range(16):
            data = tuple((value >> shift) & 1 for shift in range(4))
            assert _decode_block(_encode_block(data)) == data

    def test_single_error_corrected_everywhere(self):
        for value in range(16):
            data = tuple((value >> shift) & 1 for shift in range(4))
            codeword = list(_encode_block(data))
            for position in range(7):
                damaged = codeword[:]
                damaged[position] ^= 1
                assert _decode_block(damaged) == data, (
                    f"data={data} flip@{position}"
                )


class TestCode:
    def test_minimum_length(self, code):
        assert code.minimum_length(4) == 7
        assert code.minimum_length(5) == 14
        assert code.minimum_length(10) == 21

    def test_clean_round_trip(self, code):
        message = (1, 0, 1, 1, 0, 0, 1, 0, 1, 1)
        encoded = code.encode(message, 100)
        assert code.decode(encoded, len(message)).bits == message

    def test_padding_truncated_on_decode(self, code):
        message = (1, 0, 1)  # pads to 4 bits internally
        encoded = code.encode(message, 30)
        assert code.decode(encoded, 3).bits == message

    def test_scattered_errors_corrected(self, code):
        rng = random.Random(3)
        message = tuple(rng.randrange(2) for _ in range(8))
        channel = list(code.encode(message, 140))  # 10 replicas of 14 bits
        for position in rng.sample(range(140), 20):
            channel[position] ^= 1
        assert code.decode(channel, 8).bits == message

    def test_channel_too_small_rejected(self, code):
        with pytest.raises(ECCError):
            code.encode((1, 0, 1, 1, 1), 13)  # needs >= 14

    def test_decode_channel_too_small_rejected(self, code):
        with pytest.raises(ECCError):
            code.decode((1,) * 10, 10)
