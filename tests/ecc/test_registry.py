"""Tests for the ECC registry and shared base helpers."""

import pytest

from repro.ecc import (
    ECCError,
    ErrorCorrectingCode,
    get_code,
    majority,
    registered_codes,
    validate_message,
    validate_slots,
)


class TestRegistry:
    def test_all_names_resolve(self):
        for name in registered_codes():
            code = get_code(name)
            assert isinstance(code, ErrorCorrectingCode)
            assert code.name == name

    def test_expected_codes_present(self):
        names = registered_codes()
        for expected in ("majority", "block-repetition", "hamming74", "identity"):
            assert expected in names

    def test_unknown_name_raises(self):
        with pytest.raises(ECCError):
            get_code("fountain")

    def test_every_registered_code_round_trips(self):
        message = (1, 0, 1, 1, 0, 1, 0, 0)
        for name in registered_codes():
            code = get_code(name)
            length = max(64, code.minimum_length(len(message)))
            encoded = code.encode(message, length)
            assert code.decode(encoded, len(message)).bits == message, name


class TestBaseHelpers:
    def test_majority_function(self):
        assert majority((1, 1, 0)) == (1, 2 / 3)
        assert majority((0, 0, 1)) == (0, 2 / 3)

    def test_majority_empty_uses_tie(self):
        assert majority((), tie=1) == (1, 0.0)

    def test_majority_tie(self):
        bit, confidence = majority((1, 0))
        assert bit == 0
        assert confidence == 0.5

    def test_validate_message(self):
        assert validate_message([1, 0]) == (1, 0)
        with pytest.raises(ECCError):
            validate_message([])
        with pytest.raises(ECCError):
            validate_message([1, "x"])

    def test_validate_slots(self):
        assert validate_slots([1, None, 0]) == (1, None, 0)
        with pytest.raises(ECCError):
            validate_slots([0.5])
