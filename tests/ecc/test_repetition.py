"""Tests for the block-repetition code (ECC-ablation alternative)."""

import pytest

from repro.ecc import BlockRepetitionCode, ECCError


@pytest.fixture
def code():
    return BlockRepetitionCode()


class TestEncode:
    def test_contiguous_layout(self, code):
        encoded = code.encode((1, 0), 6)
        assert encoded == (1, 1, 1, 0, 0, 0)

    def test_remainder_slots_cycle(self, code):
        encoded = code.encode((1, 0), 7)
        assert encoded == (1, 1, 1, 0, 0, 0, 1)

    def test_channel_too_small_rejected(self, code):
        with pytest.raises(ECCError):
            code.encode((1, 0, 1), 2)


class TestDecode:
    def test_clean_round_trip(self, code):
        message = (0, 1, 1, 0)
        encoded = code.encode(message, 41)
        assert code.decode(encoded, 4).bits == message

    def test_minority_flip_corrected(self, code):
        message = (1, 0)
        channel = list(code.encode(message, 10))
        channel[1] ^= 1
        assert code.decode(channel, 2).bits == message

    def test_erasure_handling(self, code):
        message = (1, 0)
        channel = list(code.encode(message, 10))
        channel[0] = None
        assert code.decode(channel, 2).bits == message

    def test_contiguous_loss_kills_a_block(self, code):
        """The failure mode motivating the paper's interleaving: losing a
        contiguous run erases ALL replicas of one bit."""
        message = (1, 0)
        channel = list(code.encode(message, 10))
        for position in range(5):  # all replicas of bit 0
            channel[position] = None
        result = code.decode(channel, 2)
        assert result.confidence[0] == 0.0  # bit 0 decoded from nothing

    def test_interleaved_counterpart_survives_same_loss(self):
        """Contrast case: the majority code keeps evidence for every bit
        under the identical contiguous erasure."""
        from repro.ecc import MajorityVotingCode

        message = (1, 0)
        majority = MajorityVotingCode()
        channel = list(majority.encode(message, 10))
        for position in range(5):
            channel[position] = None
        result = majority.decode(channel, 2)
        assert all(conf > 0.0 for conf in result.confidence)
        assert result.bits == message
