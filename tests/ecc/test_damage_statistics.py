"""Statistical behaviour of the ECC layer under random damage.

Cross-checks the measured bit-error rate of each code against the §4.4
analytical model: with ``k`` replicas per bit and per-replica flip
probability ``q``, a majority-voted bit fails with probability
``P[Binom(k, q) > k/2]`` — the quantity the paper's resilience argument is
built on.
"""

import random

import pytest
from scipy import stats

from repro.ecc import MajorityVotingCode, get_code, registered_codes


def damage_channel(channel, flip_probability, rng):
    return [
        bit ^ 1 if rng.random() < flip_probability else bit
        for bit in channel
    ]


class TestMajorityModel:
    @pytest.mark.parametrize("replicas", [5, 11, 21])
    @pytest.mark.parametrize("flip_probability", [0.1, 0.3])
    def test_bit_error_rate_matches_binomial_tail(
        self, replicas, flip_probability
    ):
        code = MajorityVotingCode()
        message_length = 16
        length = message_length * replicas
        rng = random.Random(replicas * 1000 + int(flip_probability * 100))
        trials = 300
        errors = 0
        for trial in range(trials):
            message = tuple(rng.randrange(2) for _ in range(message_length))
            channel = damage_channel(
                code.encode(message, length), flip_probability, rng
            )
            decoded = code.decode(channel, message_length).bits
            errors += sum(a != b for a, b in zip(message, decoded))
        measured = errors / (trials * message_length)
        # analytical: majority of k replicas flips when > k/2 replicas flip
        # (ties impossible for odd k)
        predicted = float(
            stats.binom.sf(replicas // 2, replicas, flip_probability)
        )
        assert measured == pytest.approx(predicted, abs=0.02), (
            f"k={replicas} q={flip_probability}: "
            f"measured {measured:.4f} vs predicted {predicted:.4f}"
        )

    def test_error_rate_decreases_with_replication(self):
        code = MajorityVotingCode()
        rng = random.Random(9)
        rates = []
        for replicas in (3, 9, 27):
            errors = 0
            for _ in range(200):
                message = tuple(rng.randrange(2) for _ in range(8))
                channel = damage_channel(
                    code.encode(message, 8 * replicas), 0.3, rng
                )
                errors += sum(
                    a != b
                    for a, b in zip(message, code.decode(channel, 8).bits)
                )
            rates.append(errors / (200 * 8))
        assert rates[0] > rates[1] > rates[2]
        # theory at k=27, q=0.3: P[Binom(27,.3) > 13] ~ 1.4%
        assert rates[2] < 0.03


class TestAllCodesUnderDamage:
    @pytest.mark.parametrize("name", registered_codes())
    def test_low_damage_mostly_corrected(self, name):
        """At 5% random channel damage and ~9x redundancy, every proper
        code keeps the bit-error rate low; the identity code shows ~5%
        (1:1 propagation) — quantifying why ECC is not optional."""
        code = get_code(name)
        rng = random.Random(42)
        message_length = 10
        length = max(90, code.minimum_length(message_length) * 3)
        errors = 0
        trials = 300
        for _ in range(trials):
            message = tuple(rng.randrange(2) for _ in range(message_length))
            channel = damage_channel(code.encode(message, length), 0.05, rng)
            errors += sum(
                a != b
                for a, b in zip(
                    message, code.decode(channel, message_length).bits
                )
            )
        rate = errors / (trials * message_length)
        if name == "identity":
            assert rate == pytest.approx(0.05, abs=0.02)
        else:
            assert rate < 0.01, name
