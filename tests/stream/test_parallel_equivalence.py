"""Parallel streaming is bit-identical to serial and in-memory detection.

The multicore PR's acceptance bar: for every worker count, every
chunking and every backend, ``stream_verify(workers=N)`` must reproduce
the in-memory :func:`repro.core.verify` output exactly — decoded
payload, per-slot votes (including the global first-vote tie rule,
which only holds if tallies merge in chunk order regardless of which
worker finished first), fit counts, matching bits and false-hit
probability.  Tiny domains and channels force heavy slot collisions and
frequent ties, exactly where an unordered merge would diverge.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import MarkKey, Watermark
from repro.core import EmbeddingSpec, extract_slots, verify, verify_multipass
from repro.crypto import ENGINE, SCALAR, VECTOR
from repro.relational import (
    Attribute,
    AttributeType,
    CategoricalDomain,
    Schema,
    Table,
)
from repro.stream import (
    TableChunkSource,
    shutdown_stream_pool,
    stream_verify,
    stream_verify_multipass,
)

_DOMAIN = CategoricalDomain(["a", "b", "c", "d"])

_SCHEMA = Schema(
    (
        Attribute("K", AttributeType.INTEGER),
        Attribute("A", AttributeType.CATEGORICAL, _DOMAIN),
    ),
    primary_key="K",
)

BACKENDS = [SCALAR, ENGINE, VECTOR]
WORKER_COUNTS = [1, 2, 4]


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_stream_pool()


def _table(marks: list[str]) -> Table:
    return Table(_SCHEMA, list(enumerate(marks)), name="prop")


tables = st.lists(
    st.sampled_from(_DOMAIN.values), min_size=1, max_size=60
).map(_table)


def _assert_same_verdict(streamed, in_memory):
    assert streamed.verification.detected == in_memory.detected
    assert streamed.verification.matching_bits == in_memory.matching_bits
    assert (
        streamed.verification.false_hit_probability
        == in_memory.false_hit_probability
    )
    mine, reference = streamed.verification.detection, in_memory.detection
    assert mine.watermark == reference.watermark
    assert mine.decode.bits == reference.decode.bits
    assert mine.decode.confidence == reference.decode.confidence
    assert mine.fit_count == reference.fit_count
    assert mine.slots_recovered == reference.slots_recovered


def test_worker_matrix_bit_identical_to_in_memory():
    """workers x chunking x backend all land on the in-memory verdict.

    ``e=1`` makes every row a carrier and the 5-slot channel piles ~12
    votes per slot over 60 rows, so first-vote tie resolution is
    exercised at nearly every slot — across chunk boundaries *and*
    across worker boundaries.
    """
    marks = [_DOMAIN.values[i % 4] for i in range(60)]
    table = _table(marks)
    key = MarkKey.from_seed("parallel-matrix")
    spec = EmbeddingSpec("K", "A", 1, 4, 5)
    expected = Watermark.from_int(0b0110, 4)
    in_memory = verify(table, key, spec, expected, engine=SCALAR)
    reference_slots = extract_slots(table, key, spec, engine=SCALAR)
    for workers in WORKER_COUNTS:
        for chunk_size, backend in (
            (1, VECTOR),
            (7, SCALAR),
            (7, ENGINE),
            (7, VECTOR),
            (len(marks), VECTOR),
        ):
            streamed = stream_verify(
                TableChunkSource(table, chunk_size=chunk_size),
                key, spec, expected, backend=backend, workers=workers,
            )
            _assert_same_verdict(streamed, in_memory)
            assert streamed.votes.resolve() == reference_slots
            if workers > 1:
                report = streamed.parallel
                assert report is not None and report.workers == workers
                assert (
                    report.chunks_parallel + report.chunks_serial
                    == streamed.chunks
                )


@settings(max_examples=8, deadline=None)
@given(
    table=tables,
    chunk_size=st.integers(min_value=1, max_value=70),
    e=st.sampled_from([1, 2]),
    seed=st.integers(min_value=0, max_value=50),
)
def test_parallel_verify_property(table, chunk_size, e, seed):
    """Randomized relations: two workers reproduce in-memory exactly."""
    key = MarkKey.from_seed(f"parallel-prop:{seed}")
    spec = EmbeddingSpec("K", "A", e, 4, 5)
    expected = Watermark.from_int(seed % 16, 4)
    in_memory = verify(table, key, spec, expected, engine=SCALAR)
    reference_slots = extract_slots(table, key, spec, engine=SCALAR)
    streamed = stream_verify(
        TableChunkSource(table, chunk_size=chunk_size),
        key, spec, expected, backend=VECTOR, workers=2,
    )
    _assert_same_verdict(streamed, in_memory)
    assert streamed.votes.resolve() == reference_slots


@settings(max_examples=6, deadline=None)
@given(
    table=tables,
    chunk_size=st.integers(min_value=1, max_value=70),
    seed=st.integers(min_value=0, max_value=50),
)
def test_parallel_multipass_property(table, chunk_size, seed):
    """P keyed passes, fused per chunk in the workers, match in-memory."""
    spec = EmbeddingSpec("K", "A", 2, 4, 6)
    keys = [MarkKey.from_seed(f"parallel-mp:{seed}:{p}") for p in range(3)]
    expecteds = [Watermark.from_int((seed + p) % 16, 4) for p in range(3)]
    in_memory = verify_multipass(
        [table] * 3, keys, spec, expecteds, engine=SCALAR
    )
    streamed = stream_verify_multipass(
        TableChunkSource(table, chunk_size=chunk_size),
        keys, spec, expecteds, backend=VECTOR, workers=2,
    )
    for mine, reference in zip(streamed, in_memory):
        assert mine.matching_bits == reference.matching_bits
        assert mine.detection.watermark == reference.detection.watermark
        assert mine.detection.decode.bits == reference.detection.decode.bits
        assert mine.detection.fit_count == reference.detection.fit_count
        assert mine.false_hit_probability == reference.false_hit_probability


def test_parallel_map_variant_matches_in_memory():
    """The map variant survives the worker fan-out too."""
    marks = ["a", "b", "c", "d", "a", "b", "c", "d", "a", "b"]
    table = _table(marks)
    key = MarkKey.from_seed("parallel-map")
    spec = EmbeddingSpec("K", "A", 1, 4, 5, variant="map")
    embedding_map = {k: k % 5 for k in range(len(marks))}
    expected = Watermark.from_int(0b1010, 4)
    in_memory = verify(
        table, key, spec, expected, embedding_map=embedding_map,
        engine=SCALAR,
    )
    for workers in (2, 4):
        for chunk_size in (1, 3, len(marks)):
            streamed = stream_verify(
                TableChunkSource(table, chunk_size=chunk_size),
                key, spec, expected, embedding_map=embedding_map,
                backend=VECTOR, workers=workers,
            )
            _assert_same_verdict(streamed, in_memory)
