"""Pipeline-level guarantees of ``workers=N`` streaming.

Byte-identity of marked output files (ordered commit), resume across a
kill boundary with a parallel re-run, multi-file fan-in, worker-count
resolution, and the explicit refusals for features that cannot cross a
process boundary.
"""

import hashlib
import os

import pytest

from repro import MarkKey, Watermark, Watermarker
from repro.core import EmbeddingSpec, verify
from repro.crypto import HashEngine, VECTOR
from repro.datagen import generate_item_scan
from repro.quality import MaxAlterationFraction
from repro.relational import Table, write_csv
from repro.reliability import MemoryBudget
from repro.stream import (
    AUTO_WORKERS,
    CSVChunkSink,
    MultiFileChunkSource,
    StreamError,
    TableChunkSink,
    TableChunkSource,
    open_sources,
    resolve_workers,
    shutdown_stream_pool,
    stream_detect,
    stream_mark,
    stream_verify,
)

E = 40
CHANNEL = 60


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_stream_pool()


@pytest.fixture(scope="module")
def base():
    return generate_item_scan(1200, item_count=80, seed=33)


@pytest.fixture(scope="module")
def key():
    return MarkKey.from_seed("parallel-pipeline")


@pytest.fixture(scope="module")
def wm():
    return Watermark.from_int(0x1D3, 10)


@pytest.fixture(scope="module")
def spec():
    return EmbeddingSpec("Visit_Nbr", "Item_Nbr", E, 10, CHANNEL)


def _sha(path):
    return hashlib.sha256(path.read_bytes()).hexdigest()


class Interrupt(Exception):
    pass


class StoppingSource:
    """Dies after ``stop_after`` total chunks — simulates a torn run."""

    def __init__(self, inner, stop_after):
        self.inner = inner
        self.stop_after = stop_after

    @property
    def schema(self):
        return self.inner.schema

    @property
    def chunk_size(self):
        return self.inner.chunk_size

    def chunks(self, start=0):
        for offset, chunk in enumerate(self.inner.chunks(start)):
            if start + offset >= self.stop_after:
                raise Interrupt()
            yield chunk


class TestParallelMark:
    def test_marked_file_byte_identical_to_serial(
        self, base, key, wm, spec, tmp_path
    ):
        serial_path = tmp_path / "serial.csv.gz"
        parallel_path = tmp_path / "parallel.csv.gz"
        serial = stream_mark(
            TableChunkSource(base, chunk_size=250), wm, key, spec,
            CSVChunkSink(serial_path),
        )
        parallel = stream_mark(
            TableChunkSource(base, chunk_size=250), wm, key, spec,
            CSVChunkSink(parallel_path), workers=2,
        )
        assert _sha(parallel_path) == _sha(serial_path)
        assert parallel.rows == serial.rows
        assert parallel.chunks == serial.chunks
        assert parallel.applied == serial.applied
        assert parallel.vetoed == serial.vetoed
        assert parallel.unchanged == serial.unchanged
        assert parallel.fit_count == serial.fit_count
        assert parallel.slots_written == serial.slots_written
        assert parallel.parallel is not None
        assert parallel.parallel.workers == 2
        assert (
            parallel.parallel.chunks_parallel
            + parallel.parallel.chunks_serial
            == parallel.chunks
        )

    def test_parallel_resume_after_torn_run_is_byte_identical(
        self, base, key, wm, spec, tmp_path
    ):
        full = tmp_path / "full.csv.gz"
        stream_mark(
            TableChunkSource(base, chunk_size=250), wm, key, spec,
            CSVChunkSink(full),
        )
        part = tmp_path / "part.csv.gz"
        checkpoint = tmp_path / "mark.ckpt"
        with pytest.raises(Interrupt):
            stream_mark(
                StoppingSource(TableChunkSource(base, chunk_size=250), 2),
                wm, key, spec, CSVChunkSink(part),
                checkpoint_path=checkpoint,
            )
        resumed = stream_mark(
            TableChunkSource(base, chunk_size=250), wm, key, spec,
            CSVChunkSink(part), checkpoint_path=checkpoint, resume=True,
            workers=2,
        )
        assert _sha(part) == _sha(full)
        assert resumed.rows == len(base)

    def test_parallel_mark_verifies_in_memory(self, base, key, wm, spec):
        sink = TableChunkSink()
        stream_mark(
            TableChunkSource(base, chunk_size=250), wm, key, spec, sink,
            workers=2,
        )
        marked = sink.table
        verdict = verify(marked, key, spec, wm)
        assert verdict.detected

    def test_workers_refuse_constraints_factory(self, base, key, wm, spec):
        with pytest.raises(StreamError, match="constraints"):
            stream_mark(
                TableChunkSource(base, chunk_size=250), wm, key, spec,
                TableChunkSink(), workers=2,
                constraints_factory=lambda: [MaxAlterationFraction(0.5)],
            )

    def test_workers_refuse_shared_engine(self, base, key, wm, spec):
        with pytest.raises(StreamError, match="HashEngine"):
            stream_mark(
                TableChunkSource(base, chunk_size=250), wm, key, spec,
                TableChunkSink(), workers=2, backend=HashEngine(key),
            )

    def test_workers_refuse_memory_budget(self, base, key, wm, spec):
        with pytest.raises(StreamError, match="memory"):
            stream_mark(
                TableChunkSource(base, chunk_size=250), wm, key, spec,
                TableChunkSink(), workers=2,
                memory_budget=MemoryBudget(limit_bytes=1 << 30),
            )


class TestMultiFile:
    def test_multi_file_detect_equals_concatenated_scan(
        self, base, key, wm, spec, tmp_path
    ):
        outcome = Watermarker(key, e=E).embed(
            base, wm, "Item_Nbr", channel_length=CHANNEL
        )
        marked = outcome.table
        rows = list(marked)
        half = len(rows) // 2
        paths = [tmp_path / "part-a.csv", tmp_path / "part-b.csv"]
        write_csv(Table(marked.schema, rows[:half]), paths[0])
        write_csv(Table(marked.schema, rows[half:]), paths[1])
        source = open_sources(
            [str(p) for p in paths], marked.schema, chunk_size=250,
        )
        assert isinstance(source, MultiFileChunkSource)
        in_memory = verify(marked, key, spec, wm)
        for workers in (None, 2):
            streamed = stream_verify(
                open_sources(
                    [str(p) for p in paths], marked.schema, chunk_size=250,
                ),
                key, spec, wm, workers=workers,
            )
            assert streamed.detected
            assert (
                streamed.verification.matching_bits == in_memory.matching_bits
            )
            assert streamed.rows == len(rows)

    def test_multi_file_parallel_detect_matches_serial(
        self, base, key, wm, spec, tmp_path
    ):
        outcome = Watermarker(key, e=E).embed(
            base, wm, "Item_Nbr", channel_length=CHANNEL
        )
        marked = outcome.table
        rows = list(marked)
        paths = []
        for i, start in enumerate(range(0, len(rows), 400)):
            path = tmp_path / f"shard-{i}.csv"
            write_csv(Table(marked.schema, rows[start:start + 400]), path)
            paths.append(str(path))
        runs = [
            stream_detect(
                open_sources(paths, marked.schema, chunk_size=180),
                key, spec, workers=workers,
            )
            for workers in (None, 2)
        ]
        serial, parallel = runs
        assert parallel.votes == serial.votes
        assert (
            parallel.detection.watermark == serial.detection.watermark
        )
        assert parallel.rows == serial.rows == len(rows)


class TestResolveWorkers:
    def test_default_and_explicit(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3

    def test_auto_matches_cores(self):
        resolved = resolve_workers(AUTO_WORKERS)
        cores = os.cpu_count() or 1
        if cores < 2:
            assert resolved == 1
        else:
            assert 2 <= resolved <= min(max(cores - 1, 2), 8)

    def test_rejects_nonsense(self):
        with pytest.raises(StreamError):
            resolve_workers(0)
        with pytest.raises(StreamError):
            resolve_workers(-2)
        with pytest.raises(StreamError):
            resolve_workers("lots")
