"""Chunked detection is bit-identical to in-memory detection.

The subsystem's defining invariant (and the acceptance bar of the
streaming PR): for *any* chunking of a relation — size 1, ragged, whole
table — and every execution backend, ``stream_verify`` must reproduce the
in-memory :func:`repro.core.verify` output exactly: decoded payload,
per-slot votes (including first-vote tie resolution), fit counts,
matching bits and false-hit probability.  A hypothesis property drives
randomized relations whose tiny domains and channels force heavy slot
collisions and frequent ties — exactly the cases where a sloppy merge
rule would diverge.
"""

from hypothesis import given, settings, strategies as st

from repro import MarkKey, Watermark
from repro.core import (
    EmbeddingSpec,
    SlotVotes,
    VoteAccumulator,
    extract_slot_votes,
    extract_slots,
    verify,
    verify_multipass,
)
from repro.crypto import ENGINE, SCALAR, VECTOR
from repro.relational import (
    Attribute,
    AttributeType,
    CategoricalDomain,
    Schema,
    Table,
)
from repro.stream import TableChunkSource, stream_verify, stream_verify_multipass

#: tiny mark domain -> many vote collisions per slot
_DOMAIN = CategoricalDomain(["a", "b", "c", "d"])

_SCHEMA = Schema(
    (
        Attribute("K", AttributeType.INTEGER),
        Attribute("A", AttributeType.CATEGORICAL, _DOMAIN),
    ),
    primary_key="K",
)

BACKENDS = [SCALAR, ENGINE, VECTOR]


def _table(marks: list[str]) -> Table:
    return Table(_SCHEMA, list(enumerate(marks)), name="prop")


tables = st.lists(
    st.sampled_from(_DOMAIN.values), min_size=1, max_size=60
).map(_table)


def _assert_same_verdict(streamed, in_memory):
    assert streamed.verification.detected == in_memory.detected
    assert streamed.verification.matching_bits == in_memory.matching_bits
    assert (
        streamed.verification.false_hit_probability
        == in_memory.false_hit_probability
    )
    mine, reference = streamed.verification.detection, in_memory.detection
    assert mine.watermark == reference.watermark
    assert mine.decode.bits == reference.decode.bits
    assert mine.decode.confidence == reference.decode.confidence
    assert mine.fit_count == reference.fit_count
    assert mine.slots_recovered == reference.slots_recovered


@settings(max_examples=40, deadline=None)
@given(
    table=tables,
    chunk_size=st.integers(min_value=1, max_value=70),
    e=st.sampled_from([1, 2, 3]),
    channel_length=st.integers(min_value=4, max_value=8),
    seed=st.integers(min_value=0, max_value=50),
)
def test_streamed_verify_bit_identical_across_chunkings(
    table, chunk_size, e, channel_length, seed
):
    """Every chunking x every backend reproduces the in-memory verdict.

    ``e`` near 1 makes almost every row a carrier and the small channel
    piles several votes per slot, so ties (and their first-vote
    resolution across chunk boundaries) occur constantly.
    """
    key = MarkKey.from_seed(f"stream-prop:{seed}")
    spec = EmbeddingSpec("K", "A", e, 4, channel_length)
    expected = Watermark.from_int(seed % 16, 4)
    in_memory = verify(table, key, spec, expected, engine=SCALAR)
    reference_slots = extract_slots(table, key, spec, engine=SCALAR)
    for backend in BACKENDS:
        streamed = stream_verify(
            TableChunkSource(table, chunk_size=chunk_size),
            key, spec, expected, backend=backend,
        )
        _assert_same_verdict(streamed, in_memory)
        # per-slot resolution, not just the decoded payload
        assert streamed.votes.resolve() == reference_slots


@settings(max_examples=25, deadline=None)
@given(
    table=tables,
    chunk_size=st.integers(min_value=1, max_value=70),
    seed=st.integers(min_value=0, max_value=50),
)
def test_streamed_multipass_bit_identical(table, chunk_size, seed):
    """P keyed passes over one stream match P in-memory verifies."""
    spec = EmbeddingSpec("K", "A", 2, 4, 6)
    keys = [MarkKey.from_seed(f"mp-prop:{seed}:{p}") for p in range(3)]
    expecteds = [Watermark.from_int((seed + p) % 16, 4) for p in range(3)]
    in_memory = verify_multipass(
        [table] * 3, keys, spec, expecteds, engine=SCALAR
    )
    for backend in BACKENDS:
        streamed = stream_verify_multipass(
            TableChunkSource(table, chunk_size=chunk_size),
            keys, spec, expecteds, backend=backend,
        )
        for mine, reference in zip(streamed, in_memory):
            assert mine.matching_bits == reference.matching_bits
            assert mine.detection.watermark == reference.detection.watermark
            assert mine.detection.decode.bits == reference.detection.decode.bits
            assert mine.detection.fit_count == reference.detection.fit_count
            assert (
                mine.false_hit_probability == reference.false_hit_probability
            )


@settings(max_examples=30, deadline=None)
@given(
    table=tables,
    split=st.integers(min_value=0, max_value=60),
    e=st.sampled_from([1, 2]),
    channel_length=st.integers(min_value=4, max_value=8),
)
def test_vote_accumulator_merge_matches_one_shot_scan(
    table, split, e, channel_length
):
    """Merging two half-table tallies equals one whole-table tally."""
    key = MarkKey.from_seed("acc-prop")
    spec = EmbeddingSpec("K", "A", e, 4, channel_length)
    rows = list(table)
    split = min(split, len(rows))
    head = Table(_SCHEMA, rows[:split])
    tail = Table(_SCHEMA, rows[split:])
    accumulator = VoteAccumulator(channel_length)
    for part in (head, tail):
        if len(part):
            accumulator.add(extract_slot_votes(part, key, spec, engine=SCALAR))
    whole = extract_slot_votes(table, key, spec, engine=SCALAR)
    assert accumulator.votes() == whole
    assert accumulator.resolve() == whole.resolve()


class TestMapVariant:
    def test_streamed_map_variant_matches_in_memory(self):
        """The map variant detects through chunked accumulators too."""
        marks = ["a", "b", "c", "d", "a", "b", "c", "d", "a", "b"]
        table = _table(marks)
        key = MarkKey.from_seed("map-prop")
        spec = EmbeddingSpec("K", "A", 1, 4, 5, variant="map")
        embedding_map = {k: k % 5 for k in range(len(marks))}
        expected = Watermark.from_int(0b1010, 4)
        in_memory = verify(
            table, key, spec, expected, embedding_map=embedding_map,
            engine=SCALAR,
        )
        for backend in BACKENDS:
            for chunk_size in (1, 3, len(marks)):
                streamed = stream_verify(
                    TableChunkSource(table, chunk_size=chunk_size),
                    key, spec, expected, embedding_map=embedding_map,
                    backend=backend,
                )
                _assert_same_verdict(streamed, in_memory)


class TestSlotVotesShape:
    def test_from_arrays_round_trip(self):
        import numpy as np

        votes = SlotVotes.from_arrays(
            np.array([1, 0, 2]), np.array([1, 0, 2]),
            np.array([0, -1, 1]), fit_count=6,
        )
        assert votes.total == [2, 0, 4]
        assert votes.first == [0, None, 1]
        assert votes.resolve() == ([0, None, 1], 6)

    def test_tie_resolves_to_first_vote(self):
        votes = SlotVotes(total=[2], ones=[1], first=[1], fit_count=2)
        assert votes.resolve() == ([1], 2)
        votes = SlotVotes(total=[2], ones=[1], first=[0], fit_count=2)
        assert votes.resolve() == ([0], 2)

    def test_accumulator_keeps_earliest_first_vote(self):
        accumulator = VoteAccumulator(1)
        accumulator.add(SlotVotes([1], [1], [1], 1))  # first chunk votes 1
        accumulator.add(SlotVotes([1], [0], [0], 1))  # tie-maker votes 0
        assert accumulator.resolve() == ([1], 2)
