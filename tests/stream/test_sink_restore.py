"""``CSVChunkSink.restore()`` edge cases: offset zero and empty states.

The crash-recovery paths normally rewind to a durable marker somewhere
mid-file; these tests pin the two degenerate corners — restoring to the
very start of the file, and round-tripping a flush state captured before
any chunk landed — for both the plain and the gzip writer.  A restore
that mishandles either corner corrupts the earliest (and most likely)
recovery window: a crash during the first chunk.
"""

import gzip

import pytest

from repro.datagen import generate_item_scan
from repro.stream import CSVChunkSink, TableChunkSource

CHUNK = 50
ROWS = 200


@pytest.fixture(scope="module")
def base():
    return generate_item_scan(ROWS, item_count=20, seed=5)


@pytest.fixture(scope="module")
def chunks(base):
    return list(TableChunkSource(base, chunk_size=CHUNK).chunks())


def _read(path):
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rb") as handle:
        return handle.read()


@pytest.mark.parametrize("suffix", ["csv", "csv.gz"])
class TestRestoreEdges:
    def test_restore_to_offset_zero_discards_everything(
        self, base, chunks, tmp_path, suffix
    ):
        path = tmp_path / f"out.{suffix}"
        sink = CSVChunkSink(path)
        sink.open(base.schema)
        sink.write_chunk(chunks[0])
        sink.flush_state()
        sink.restore(base.schema, {"offset": 0, "chunks": 0})
        sink.write_chunk(chunks[1])
        state = sink.flush_state()
        sink.close()
        # header and chunk 0 are gone; the file holds exactly chunk 1
        reference = tmp_path / f"ref.{suffix}"
        ref = CSVChunkSink(reference)
        ref.open(base.schema)
        ref.write_chunk(chunks[1])
        ref.flush_state()
        ref.close()
        header_end = _header_end(reference, base)
        assert path.stat().st_size == state["offset"]
        assert state["chunks"] == 1
        assert (
            path.read_bytes()
            == reference.read_bytes()[header_end:]
        )

    def test_empty_flush_state_roundtrip(self, base, chunks, tmp_path, suffix):
        """A state captured right after open() resumes to identical bytes."""
        path = tmp_path / f"out.{suffix}"
        sink = CSVChunkSink(path)
        sink.open(base.schema)
        state = sink.flush_state()
        sink.close()
        assert state["chunks"] == 0
        assert state["offset"] == path.stat().st_size
        resumed = CSVChunkSink(path)
        resumed.restore(base.schema, state)
        for chunk in chunks:
            resumed.write_chunk(chunk)
        resumed.flush_state()
        resumed.close()
        reference = tmp_path / f"ref.{suffix}"
        ref = CSVChunkSink(reference)
        ref.open(base.schema)
        for chunk in chunks:
            ref.write_chunk(chunk)
        ref.flush_state()
        ref.close()
        assert path.read_bytes() == reference.read_bytes()

    def test_restore_truncates_trailing_garbage(
        self, base, chunks, tmp_path, suffix
    ):
        path = tmp_path / f"out.{suffix}"
        sink = CSVChunkSink(path)
        sink.open(base.schema)
        state = sink.flush_state()
        sink.close()
        with open(path, "ab") as handle:
            handle.write(b"half-written garbage from a crash")
        resumed = CSVChunkSink(path)
        resumed.restore(base.schema, state)
        for chunk in chunks:
            resumed.write_chunk(chunk)
        resumed.flush_state()
        resumed.close()
        assert _read(path).decode("utf-8").count("\n") == ROWS + 1

    def test_manifest_restore_to_zero_empties_entries(
        self, base, chunks, tmp_path, suffix
    ):
        path = tmp_path / f"out.{suffix}"
        sink = CSVChunkSink(path)
        sink.arm_manifest()
        sink.open(base.schema)
        sink.write_chunk(chunks[0])
        sink.flush_state()
        assert len(sink.manifest.entries) == 1
        sink.restore(base.schema, {"offset": 0, "chunks": 0})
        assert sink.manifest.entries == []
        sink.write_chunk(chunks[1])
        sink.flush_state()
        sink.close()
        entry = sink.manifest.entries[0]
        assert (entry.index, entry.start) == (0, 0)
        assert entry.end == path.stat().st_size


def _header_end(reference_path, base):
    """Byte length of the header segment of a reference sink file."""
    probe = CSVChunkSink(reference_path.with_name("probe" + reference_path.name))
    probe.arm_manifest()
    probe.open(base.schema)
    probe.flush_state()
    probe.close()
    return probe.manifest.header.end
