"""Tests for repro.stream sources and sinks — chunked file I/O."""

import gzip
import sqlite3

import pytest

from repro.datagen import generate_item_scan, iter_item_scan_rows
from repro.relational import (
    Attribute,
    AttributeType,
    CategoricalDomain,
    Schema,
    Table,
    write_csv,
)
from repro.stream import (
    CSVChunkSink,
    CSVChunkSource,
    NullChunkSink,
    SQLiteChunkSink,
    SQLiteChunkSource,
    StreamError,
    SyntheticChunkSource,
    TableChunkSink,
    TableChunkSource,
    count_data_rows,
    item_scan_source,
    open_sink,
    open_source,
)


@pytest.fixture(scope="module")
def relation():
    return generate_item_scan(1000, item_count=60, seed=13)


def concatenate(chunks):
    rows = []
    schema = None
    for chunk in chunks:
        schema = schema or chunk.schema
        rows.extend(chunk)
    return rows, schema


class TestCSVChunkSource:
    def test_chunks_cover_file_in_order(self, relation, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(relation, path)
        source = CSVChunkSource(path, relation.schema, chunk_size=128)
        chunks = list(source)
        assert [len(chunk) for chunk in chunks] == [128] * 7 + [104]
        rows, _ = concatenate(chunks)
        assert rows == list(relation)

    def test_cells_are_typed(self, relation, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(relation, path)
        chunk = next(iter(CSVChunkSource(path, relation.schema, chunk_size=5)))
        first = next(iter(chunk))
        assert isinstance(first[0], int) and isinstance(first[1], int)

    def test_gzip_detected_by_magic(self, relation, tmp_path):
        path = tmp_path / "data.csv.gz"  # suffix and magic both say gzip
        with gzip.open(path, "wt", encoding="utf-8", newline="") as handle:
            handle.write(
                "Visit_Nbr,Item_Nbr\n"
                + "".join(f"{k},{v}\n" for k, v in relation.iter_cells(
                    "Visit_Nbr", "Item_Nbr"))
            )
        rows, _ = concatenate(
            CSVChunkSource(path, relation.schema, chunk_size=300)
        )
        assert rows == list(relation)

    def test_start_skips_whole_chunks(self, relation, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(relation, path)
        source = CSVChunkSource(path, relation.schema, chunk_size=128)
        tail = list(source.chunks(start=6))
        assert [len(chunk) for chunk in tail] == [128, 104]
        assert list(tail[0])[0] == list(relation)[6 * 128]

    def test_header_mismatch_raises(self, relation, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("A,B\n1,2\n", encoding="utf-8")
        with pytest.raises(ValueError, match="header"):
            list(CSVChunkSource(path, relation.schema))

    def test_arity_mismatch_reports_row_number(self, relation, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text(
            "Visit_Nbr,Item_Nbr\n1,10003\n2,10003,EXTRA\n", encoding="utf-8"
        )
        with pytest.raises(ValueError, match="row 2"):
            list(CSVChunkSource(path, relation.schema))

    def test_bad_chunk_size_rejected(self, relation, tmp_path):
        with pytest.raises(StreamError):
            CSVChunkSource(tmp_path / "x.csv", relation.schema, chunk_size=0)

    def test_infer_domains_widens_per_chunk(self, tmp_path):
        schema = Schema(
            (
                Attribute("K", AttributeType.INTEGER),
                Attribute(
                    "A", AttributeType.CATEGORICAL, CategoricalDomain(["a"])
                ),
            ),
            primary_key="K",
        )
        path = tmp_path / "data.csv"
        path.write_text("K,A\n1,a\n2,zz\n", encoding="utf-8")
        with pytest.raises(Exception):  # strict mode rejects out-of-domain
            list(CSVChunkSource(path, schema, chunk_size=10))
        chunks = list(
            CSVChunkSource(path, schema, chunk_size=10, infer_domains=True)
        )
        assert "zz" in chunks[0].schema.attribute("A").domain


class TestSQLiteChunkSource:
    def test_round_trip_via_sink(self, relation, tmp_path):
        path = tmp_path / "data.sqlite"
        sink = SQLiteChunkSink(path)
        sink.open(relation.schema)
        sink.write_chunk(relation)
        sink.close()
        source = SQLiteChunkSource(path, relation.schema, chunk_size=333)
        rows, _ = concatenate(source)
        assert rows == list(relation)

    def test_start_offsets_by_rowid(self, relation, tmp_path):
        path = tmp_path / "data.sqlite"
        with SQLiteChunkSink(path) as sink:
            sink.open(relation.schema)
            sink.write_chunk(relation)
        source = SQLiteChunkSource(path, relation.schema, chunk_size=400)
        tail = list(source.chunks(start=2))
        assert [len(chunk) for chunk in tail] == [200]
        assert list(tail[0]) == list(relation)[800:]


class TestSyntheticChunkSource:
    def test_restartable_and_deterministic(self):
        source = item_scan_source(500, chunk_size=64, item_count=50, seed=3)
        first, _ = concatenate(source)
        second, _ = concatenate(source)
        assert first == second
        assert len(first) == 500
        assert len({row[0] for row in first}) == 500  # unique PKs

    def test_start_fast_forwards_the_stream(self):
        source = item_scan_source(500, chunk_size=64, item_count=50, seed=3)
        full, _ = concatenate(source)
        tail, _ = concatenate(source.chunks(start=3))
        assert tail == full[3 * 64:]

    def test_rows_factory_contract(self):
        schema = generate_item_scan(1, item_count=10).schema
        source = SyntheticChunkSource(
            schema,
            lambda: iter_item_scan_rows(100, item_count=10, seed=1),
            chunk_size=30,
        )
        assert [len(chunk) for chunk in source] == [30, 30, 30, 10]


class TestTableChunkSource:
    def test_whole_table_single_chunk(self, relation):
        chunks = list(TableChunkSource(relation, chunk_size=len(relation)))
        assert len(chunks) == 1
        assert list(chunks[0]) == list(relation)

    def test_chunk_size_one(self, relation):
        source = TableChunkSource(relation, chunk_size=1)
        total = sum(len(chunk) for chunk in source)
        assert total == len(relation)


class TestOpenHelpers:
    def test_open_source_dispatches_by_type(self, relation, tmp_path):
        csv_path = tmp_path / "r.csv"
        write_csv(relation, csv_path)
        assert isinstance(
            open_source(csv_path, relation.schema), CSVChunkSource
        )
        db_path = tmp_path / "r.sqlite"
        with SQLiteChunkSink(db_path) as sink:
            sink.open(relation.schema)
            sink.write_chunk(relation)
        assert isinstance(
            open_source(db_path, relation.schema), SQLiteChunkSource
        )

    def test_open_sink_dispatches_by_suffix(self, tmp_path):
        assert isinstance(open_sink(tmp_path / "x.csv"), CSVChunkSink)
        assert isinstance(open_sink(tmp_path / "x.csv.gz"), CSVChunkSink)
        assert isinstance(open_sink(tmp_path / "x.sqlite"), SQLiteChunkSink)

    def test_count_data_rows_csv_with_embedded_newlines(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text('K,A\n1,"a\nb"\n2,c\n', encoding="utf-8")
        assert count_data_rows(path) == 2  # a quoted newline is one record

    def test_count_data_rows_sqlite(self, relation, tmp_path):
        path = tmp_path / "r.sqlite"
        with SQLiteChunkSink(path) as sink:
            sink.open(relation.schema)
            sink.write_chunk(relation)
        assert count_data_rows(path) == len(relation)


class TestSinks:
    def test_csv_sink_restore_truncates_garbage(self, relation, tmp_path):
        path = tmp_path / "out.csv"
        sink = CSVChunkSink(path)
        sink.open(relation.schema)
        sink.write_chunk(relation)
        state = sink.flush_state()
        sink.close()
        with open(path, "ab") as handle:
            handle.write(b"half-written,chunk")
        sink = CSVChunkSink(path)
        sink.restore(relation.schema, state)
        sink.close()
        rows, _ = concatenate(CSVChunkSource(path, relation.schema))
        assert rows == list(relation)

    def test_gzip_sink_members_concatenate(self, relation, tmp_path):
        path = tmp_path / "out.csv.gz"
        sink = CSVChunkSink(path)
        sink.open(relation.schema)
        half = len(relation) // 2
        rows = list(relation)
        sink.write_chunk(Table(relation.schema, rows[:half]))
        sink.write_chunk(Table(relation.schema, rows[half:]))
        sink.close()
        text = gzip.decompress(path.read_bytes()).decode("utf-8")
        assert text.count("\r\n") == len(relation) + 1  # header + rows
        restored, _ = concatenate(
            CSVChunkSource(path, relation.schema, chunk_size=100)
        )
        assert restored == rows

    def test_sqlite_sink_restore_deletes_beyond_marker(
        self, relation, tmp_path
    ):
        path = tmp_path / "out.sqlite"
        rows = list(relation)
        sink = SQLiteChunkSink(path)
        sink.open(relation.schema)
        sink.write_chunk(Table(relation.schema, rows[:400]))
        state = sink.flush_state()
        sink.write_chunk(Table(relation.schema, rows[400:]))
        sink.close()
        sink = SQLiteChunkSink(path)
        sink.restore(relation.schema, state)
        sink.close()
        with sqlite3.connect(path) as connection:
            count = connection.execute(
                "SELECT COUNT(*) FROM relation"
            ).fetchone()[0]
        assert count == 400

    def test_table_sink_collects(self, relation):
        sink = TableChunkSink()
        sink.open(relation.schema)
        sink.write_chunk(relation)
        assert list(sink.table) == list(relation)
        with pytest.raises(StreamError):
            sink.restore(relation.schema, {"rows": 0})

    def test_null_sink_counts(self, relation):
        sink = NullChunkSink()
        sink.open(relation.schema)
        sink.write_chunk(relation)
        assert sink.flush_state() == {"rows": len(relation)}


class TestSQLiteTableResolution:
    def _renamed_db(self, relation, tmp_path, new_name):
        path = tmp_path / "data.sqlite"
        with SQLiteChunkSink(path) as sink:
            sink.open(relation.schema)
            sink.write_chunk(relation)
        with sqlite3.connect(path) as connection:
            connection.execute(f'ALTER TABLE relation RENAME TO "{new_name}"')
        return path

    def test_single_table_auto_resolves_whatever_its_name(
        self, relation, tmp_path
    ):
        path = self._renamed_db(relation, tmp_path, "sales")
        rows, _ = concatenate(SQLiteChunkSource(path, relation.schema))
        assert rows == list(relation)
        assert count_data_rows(path) == len(relation)

    def test_explicit_table_name_is_used_verbatim(self, relation, tmp_path):
        path = self._renamed_db(relation, tmp_path, "sales")
        with pytest.raises(sqlite3.OperationalError):
            list(SQLiteChunkSource(path, relation.schema, table="nope"))

    def test_ambiguous_tables_raise(self, relation, tmp_path):
        path = self._renamed_db(relation, tmp_path, "sales")
        with sqlite3.connect(path) as connection:
            connection.execute("CREATE TABLE other (x INTEGER)")
        with pytest.raises(StreamError, match="pass table="):
            list(SQLiteChunkSource(path, relation.schema))


class TestSinkCompressionChoice:
    def test_sink_format_follows_requested_suffix_not_stale_bytes(
        self, relation, tmp_path
    ):
        # A .csv path currently holding gzip bytes (say, a renamed earlier
        # output) must be overwritten with PLAIN csv, not silently gzip.
        path = tmp_path / "out.csv"
        path.write_bytes(gzip.compress(b"old,contents\n"))
        sink = CSVChunkSink(path)
        sink.open(relation.schema)
        sink.write_chunk(relation)
        sink.close()
        head = path.read_bytes()[:2]
        assert head != b"\x1f\x8b"
        rows, _ = concatenate(CSVChunkSource(path, relation.schema))
        assert rows == list(relation)
