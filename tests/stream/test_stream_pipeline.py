"""Tests for repro.stream.pipeline — streamed mark/detect correctness."""

import hashlib

import pytest

from repro import MarkKey, Watermark, Watermarker
from repro.core import EmbeddingSpec, verify
from repro.crypto import ENGINE, SCALAR, VECTOR
from repro.datagen import generate_item_scan
from repro.quality import MaxAlterationFraction
from repro.relational import write_csv
from repro.stream import (
    CheckpointError,
    CSVChunkSink,
    CSVChunkSource,
    SQLiteChunkSink,
    SQLiteChunkSource,
    StreamError,
    TableChunkSink,
    TableChunkSource,
    load_checkpoint,
    stream_detect,
    stream_engine,
    stream_mark,
    stream_verify,
    stream_verify_multipass,
)

E = 40
CHANNEL = 120


@pytest.fixture(scope="module")
def base():
    return generate_item_scan(3000, item_count=120, seed=21)


@pytest.fixture(scope="module")
def key():
    return MarkKey.from_seed("stream-pipeline")


@pytest.fixture(scope="module")
def wm():
    return Watermark.from_int(0x2AB, 10)


@pytest.fixture(scope="module")
def spec():
    return EmbeddingSpec("Visit_Nbr", "Item_Nbr", E, 10, CHANNEL)


@pytest.fixture(scope="module")
def reference(base, key, wm, spec):
    """In-memory marked table + verdict to pin the stream against."""
    outcome = Watermarker(key, e=E).embed(
        base, wm, "Item_Nbr", channel_length=CHANNEL
    )
    return outcome.table, verify(outcome.table, key, spec, wm)


class Interrupt(Exception):
    pass


class StoppingSource:
    """Wraps a source and dies after ``stop_after`` total chunks."""

    def __init__(self, inner, stop_after):
        self.inner = inner
        self.stop_after = stop_after

    @property
    def schema(self):
        return self.inner.schema

    @property
    def chunk_size(self):
        return self.inner.chunk_size

    def chunks(self, start=0):
        for offset, chunk in enumerate(self.inner.chunks(start)):
            if start + offset >= self.stop_after:
                raise Interrupt()
            yield chunk


class TestStreamMark:
    @pytest.mark.parametrize("chunk_size", [250, 1024, 3000])
    @pytest.mark.parametrize("backend", [SCALAR, ENGINE, VECTOR, None])
    def test_cell_identical_to_in_memory_embed(
        self, base, key, wm, spec, reference, chunk_size, backend
    ):
        sink = TableChunkSink()
        result = stream_mark(
            TableChunkSource(base, chunk_size=chunk_size),
            wm, key, spec, sink, backend=backend,
        )
        assert sink.table == reference[0]
        assert result.rows == len(base)
        assert result.fit_count > 0
        assert result.applied + result.unchanged == result.fit_count
        assert result.slots_written and result.slot_coverage > 0

    def test_counters_match_in_memory_embed(self, base, key, wm, spec):
        in_memory = Watermarker(key, e=E).embed(
            base, wm, "Item_Nbr", channel_length=CHANNEL
        ).embedding
        streamed = stream_mark(
            TableChunkSource(base, chunk_size=500), wm, key, spec,
            TableChunkSink(),
        )
        assert streamed.fit_count == in_memory.fit_count
        assert streamed.applied == in_memory.applied
        assert streamed.unchanged == in_memory.unchanged
        assert streamed.slots_written == in_memory.slots_written

    def test_map_variant_rejected(self, base, key, wm):
        spec = EmbeddingSpec(
            "Visit_Nbr", "Item_Nbr", E, 10, CHANNEL, variant="map"
        )
        with pytest.raises(StreamError, match="keyed"):
            stream_mark(
                TableChunkSource(base, chunk_size=500), wm, key, spec,
                TableChunkSink(),
            )

    def test_plain_iterable_rejected(self, base, key, wm, spec):
        with pytest.raises(StreamError, match="schema"):
            stream_mark([base], wm, key, spec, TableChunkSink())

    def test_per_chunk_constraints(self, base, key, wm, spec):
        sink = TableChunkSink()
        result = stream_mark(
            TableChunkSource(base, chunk_size=500), wm, key, spec, sink,
            constraints_factory=lambda: [MaxAlterationFraction(0.0)],
        )
        assert result.applied == 0
        assert result.vetoed > 0
        assert result.guard_report.vetoed == result.vetoed
        assert sink.table == base  # every change vetoed

    def test_wrong_backend_engine_key_rejected(self, base, key, wm, spec):
        other = stream_engine(MarkKey.from_seed("someone-else"))
        with pytest.raises(StreamError, match="MarkKey"):
            stream_mark(
                TableChunkSource(base, chunk_size=500), wm, key, spec,
                TableChunkSink(), backend=other,
            )


class TestCheckpointResume:
    @pytest.mark.parametrize("suffix", ["out.csv", "out.csv.gz"])
    def test_resumed_file_is_byte_identical(
        self, base, key, wm, spec, tmp_path, suffix
    ):
        full = tmp_path / ("full_" + suffix)
        stream_mark(
            TableChunkSource(base, chunk_size=500), wm, key, spec,
            CSVChunkSink(full),
        )
        part = tmp_path / ("part_" + suffix)
        checkpoint = tmp_path / "mark.ckpt"
        source = TableChunkSource(base, chunk_size=500)
        with pytest.raises(Interrupt):
            stream_mark(
                StoppingSource(source, 3), wm, key, spec,
                CSVChunkSink(part), checkpoint_path=checkpoint,
            )
        assert load_checkpoint(checkpoint).chunks_done == 3
        # simulate a torn write after the last durable flush
        with open(part, "ab") as handle:
            handle.write(b"torn-partial-chunk")
        resumed = stream_mark(
            source, wm, key, spec, CSVChunkSink(part),
            checkpoint_path=checkpoint, resume=True,
        )
        assert resumed.resumed_at_chunk == 3
        assert resumed.rows == len(base)
        assert (
            hashlib.sha256(part.read_bytes()).hexdigest()
            == hashlib.sha256(full.read_bytes()).hexdigest()
        )

    def test_resume_merges_counters(self, base, key, wm, spec, tmp_path):
        whole = stream_mark(
            TableChunkSource(base, chunk_size=500), wm, key, spec,
            TableChunkSink(),
        )
        checkpoint = tmp_path / "mark.ckpt"
        source = TableChunkSource(base, chunk_size=500)
        with pytest.raises(Interrupt):
            stream_mark(
                StoppingSource(source, 4), wm, key, spec,
                CSVChunkSink(tmp_path / "out.csv"),
                checkpoint_path=checkpoint,
            )
        resumed = stream_mark(
            source, wm, key, spec, CSVChunkSink(tmp_path / "out.csv"),
            checkpoint_path=checkpoint, resume=True,
        )
        assert resumed.fit_count == whole.fit_count
        assert resumed.applied == whole.applied
        assert resumed.unchanged == whole.unchanged
        assert resumed.slots_written == whole.slots_written
        assert resumed.guard_report.applied == whole.guard_report.applied

    def test_sqlite_resume(self, base, key, wm, spec, tmp_path):
        checkpoint = tmp_path / "mark.ckpt"
        path = tmp_path / "out.sqlite"
        source = TableChunkSource(base, chunk_size=500)
        with pytest.raises(Interrupt):
            stream_mark(
                StoppingSource(source, 2), wm, key, spec,
                SQLiteChunkSink(path), checkpoint_path=checkpoint,
            )
        stream_mark(
            source, wm, key, spec, SQLiteChunkSink(path),
            checkpoint_path=checkpoint, resume=True,
        )
        verdict = stream_verify(
            SQLiteChunkSource(path, base.schema, chunk_size=700),
            key, spec, wm,
        )
        assert verdict.detected and verdict.rows == len(base)

    def test_fingerprint_mismatch_refuses(self, base, key, wm, spec, tmp_path):
        checkpoint = tmp_path / "mark.ckpt"
        source = TableChunkSource(base, chunk_size=500)
        with pytest.raises(Interrupt):
            stream_mark(
                StoppingSource(source, 2), wm, key, spec,
                CSVChunkSink(tmp_path / "out.csv"),
                checkpoint_path=checkpoint,
            )
        with pytest.raises(CheckpointError, match="different"):
            stream_mark(
                source, Watermark.from_int(1, 10), key, spec,
                CSVChunkSink(tmp_path / "out.csv"),
                checkpoint_path=checkpoint, resume=True,
            )

    def test_resume_without_checkpoint_refuses(self, base, key, wm, spec,
                                               tmp_path):
        with pytest.raises(CheckpointError, match="checkpoint"):
            stream_mark(
                TableChunkSource(base, chunk_size=500), wm, key, spec,
                CSVChunkSink(tmp_path / "out.csv"), resume=True,
            )
        with pytest.raises(CheckpointError, match="resume"):
            stream_mark(
                TableChunkSource(base, chunk_size=500), wm, key, spec,
                CSVChunkSink(tmp_path / "out.csv"),
                checkpoint_path=tmp_path / "never-written.ckpt", resume=True,
            )


class TestStreamDetect:
    def test_verdict_identical_to_in_memory(self, key, spec, wm, reference):
        marked, in_memory = reference
        streamed = stream_verify(
            TableChunkSource(marked, chunk_size=333), key, spec, wm
        )
        assert streamed.detected == in_memory.detected
        assert streamed.verification.matching_bits == in_memory.matching_bits
        assert (
            streamed.verification.detection.watermark
            == in_memory.detection.watermark
        )
        assert (
            streamed.verification.detection.fit_count
            == in_memory.detection.fit_count
        )
        assert (
            streamed.verification.false_hit_probability
            == in_memory.false_hit_probability
        )
        assert streamed.chunks == 10 and streamed.rows == len(marked)

    def test_file_round_trip_with_attack(
        self, base, key, wm, spec, reference, tmp_path
    ):
        import random

        from repro.attacks import DataLossAttack

        marked = reference[0]
        attacked = DataLossAttack(0.4).apply(marked, random.Random(5))
        path = tmp_path / "suspect.csv.gz"
        write_path = tmp_path / "suspect_plain.csv"
        write_csv(attacked, write_path)
        sink = CSVChunkSink(path)
        sink.open(attacked.schema)
        sink.write_chunk(attacked)
        sink.close()
        in_memory = verify(attacked, key, spec, wm)
        streamed = stream_verify(
            CSVChunkSource(
                path, base.schema, chunk_size=444, infer_domains=True
            ),
            key, spec, wm,
            domain=base.schema.attribute("Item_Nbr").domain,
        )
        assert streamed.verification.matching_bits == in_memory.matching_bits
        assert (
            streamed.verification.detection.fit_count
            == in_memory.detection.fit_count
        )

    def test_stream_detect_exposes_votes(self, key, spec, wm, reference):
        marked, _ = reference
        streamed = stream_detect(
            TableChunkSource(marked, chunk_size=500), key, spec
        )
        assert streamed.votes.fit_count == streamed.detection.fit_count
        assert sum(streamed.votes.total) >= streamed.detection.slots_recovered

    def test_plain_iterable_of_tables(self, key, spec, wm, reference):
        marked, in_memory = reference
        streamed = stream_verify([marked], key, spec, wm)
        assert streamed.verification.matching_bits == in_memory.matching_bits

    def test_expected_length_validated(self, key, spec, reference):
        with pytest.raises(Exception, match="bits"):
            stream_verify(
                TableChunkSource(reference[0], chunk_size=500), key, spec,
                Watermark.from_int(1, 3),
            )


class TestStreamVerifyMultipass:
    def test_matches_in_memory_loop(self, base, key, spec, wm):
        keys = [MarkKey.from_seed(f"mp:{index}") for index in range(4)]
        wms = [Watermark.from_int(index + 5, 10) for index in range(4)]
        marked = Watermarker(keys[0], e=E).embed(
            base, wms[0], "Item_Nbr", channel_length=CHANNEL
        ).table
        in_memory = [
            verify(marked, pass_key, spec, pass_wm)
            for pass_key, pass_wm in zip(keys, wms)
        ]
        streamed = stream_verify_multipass(
            TableChunkSource(marked, chunk_size=700), keys, spec, wms
        )
        assert len(streamed) == 4
        for mine, reference in zip(streamed, in_memory):
            assert mine.matching_bits == reference.matching_bits
            assert mine.detection.watermark == reference.detection.watermark
            assert mine.detection.fit_count == reference.detection.fit_count
            assert (
                mine.false_hit_probability == reference.false_hit_probability
            )

    def test_length_mismatch_rejected(self, base, key, spec, wm):
        with pytest.raises(Exception, match="expected"):
            stream_verify_multipass(
                TableChunkSource(base, chunk_size=700),
                [key, MarkKey.from_seed("x")], spec, [wm],
            )


class TestResumeWithConstraints:
    def test_vetoes_by_constraint_survive_resume(
        self, base, key, wm, spec, tmp_path
    ):
        factory = lambda: [MaxAlterationFraction(0.0)]  # noqa: E731
        whole = stream_mark(
            TableChunkSource(base, chunk_size=500), wm, key, spec,
            TableChunkSink(), constraints_factory=factory,
        )
        assert whole.guard_report.vetoes_by_constraint  # something vetoed
        checkpoint = tmp_path / "mark.ckpt"
        source = TableChunkSource(base, chunk_size=500)
        with pytest.raises(Interrupt):
            stream_mark(
                StoppingSource(source, 3), wm, key, spec,
                CSVChunkSink(tmp_path / "out.csv"),
                checkpoint_path=checkpoint, constraints_factory=factory,
            )
        resumed = stream_mark(
            source, wm, key, spec, CSVChunkSink(tmp_path / "out.csv"),
            checkpoint_path=checkpoint, resume=True,
            constraints_factory=factory,
        )
        assert (
            resumed.guard_report.vetoes_by_constraint
            == whole.guard_report.vetoes_by_constraint
        )
        assert (
            sum(resumed.guard_report.vetoes_by_constraint.values())
            == resumed.guard_report.vetoed
        )
