"""Tests for repro.datagen — synthetic workload generators."""

import random

import pytest

from repro.datagen import (
    CategoricalSampler,
    DistributionError,
    airline_schema,
    generate_bookings,
    generate_item_scan,
    generate_sales,
    item_catalogue,
    uniform_weights,
    zipf_weights,
)


class TestWeights:
    def test_zipf_normalised(self):
        weights = zipf_weights(100, 1.0)
        assert sum(weights) == pytest.approx(1.0)

    def test_zipf_monotone_decreasing(self):
        weights = zipf_weights(50, 1.2)
        assert weights == sorted(weights, reverse=True)

    def test_zipf_exponent_zero_is_uniform(self):
        assert zipf_weights(10, 0.0) == pytest.approx(uniform_weights(10))

    def test_uniform_weights(self):
        weights = uniform_weights(4)
        assert weights == [0.25] * 4

    def test_invalid_parameters(self):
        with pytest.raises(DistributionError):
            zipf_weights(0)
        with pytest.raises(DistributionError):
            zipf_weights(5, -1.0)
        with pytest.raises(DistributionError):
            uniform_weights(0)


class TestSampler:
    def test_sample_many_count(self):
        sampler = CategoricalSampler.uniform(["a", "b", "c"])
        samples = sampler.sample_many(100, random.Random(1))
        assert len(samples) == 100
        assert set(samples) <= {"a", "b", "c"}

    def test_zipf_sampler_skew(self):
        sampler = CategoricalSampler.zipf(list(range(50)), 1.2)
        samples = sampler.sample_many(20_000, random.Random(1))
        from collections import Counter

        counts = Counter(samples)
        most_common = counts.most_common(1)[0][1]
        assert most_common > 20_000 / 50 * 3  # clearly skewed

    def test_ragged_inputs_rejected(self):
        with pytest.raises(DistributionError):
            CategoricalSampler(["a", "b"], [0.5])

    def test_negative_weight_rejected(self):
        with pytest.raises(DistributionError):
            CategoricalSampler(["a", "b"], [0.5, -0.5])

    def test_all_zero_weights_rejected(self):
        with pytest.raises(DistributionError):
            CategoricalSampler(["a"], [0.0])


class TestItemScan:
    def test_paper_schema(self, item_scan):
        assert item_scan.schema.names == ("Visit_Nbr", "Item_Nbr")
        assert item_scan.primary_key == "Visit_Nbr"
        assert item_scan.schema.attribute("Item_Nbr").is_categorical

    def test_requested_size(self):
        assert len(generate_item_scan(1234, seed=1)) == 1234

    def test_deterministic_by_seed(self):
        assert generate_item_scan(500, seed=3) == generate_item_scan(500, seed=3)
        assert generate_item_scan(500, seed=3) != generate_item_scan(500, seed=4)

    def test_catalogue_size_respected(self):
        table = generate_item_scan(2000, item_count=50, seed=1)
        assert table.schema.attribute("Item_Nbr").domain.size == 50
        assert set(table.column("Item_Nbr")) <= set(item_catalogue(50))

    def test_zipf_exponent_zero_near_uniform(self):
        from collections import Counter

        table = generate_item_scan(
            20000, item_count=20, zipf_exponent=0.0, seed=1
        )
        counts = Counter(table.column("Item_Nbr"))
        assert max(counts.values()) < 2.0 * min(counts.values())

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            generate_item_scan(-1)
        with pytest.raises(ValueError):
            generate_item_scan(10, item_count=0)


class TestSales:
    def test_schema_attributes(self, sales):
        assert sales.schema.names == (
            "Scan_Id", "Item_Nbr", "Store_Nbr", "Dept", "Quantity",
        )
        assert sales.schema.categorical_names() == (
            "Item_Nbr", "Store_Nbr", "Dept",
        )

    def test_quantities_positive(self, sales):
        assert all(quantity >= 1 for quantity in sales.column("Quantity"))

    def test_deterministic(self):
        assert generate_sales(200, seed=2) == generate_sales(200, seed=2)


class TestBookings:
    def test_schema(self, bookings):
        assert bookings.schema.primary_key == "Ticket_Id"
        assert "Depart_City" in bookings.schema

    def test_no_self_loops(self, bookings):
        depart_position = bookings.schema.position("Depart_City")
        arrive_position = bookings.schema.position("Arrive_City")
        assert all(
            row[depart_position] != row[arrive_position] for row in bookings
        )

    def test_hub_skew_present(self, bookings):
        from collections import Counter

        counts = Counter(bookings.column("Depart_City"))
        ordered = [count for _, count in counts.most_common()]
        assert ordered[0] > 3 * ordered[-1]

    def test_schema_factory_matches_generator(self, bookings):
        assert airline_schema().names == bookings.schema.names


class TestLazyRowStreams:
    """iter_*_rows: deterministic, restartable, O(1)-memory row streams."""

    def test_iter_sales_rows_matches_generate_sales(self):
        from repro.datagen import generate_sales, iter_sales_rows

        table = generate_sales(150, item_count=40, seed=9)
        streamed = list(iter_sales_rows(150, item_count=40, seed=9))
        assert streamed == list(table)

    def test_iter_booking_rows_matches_generate_bookings(self):
        from repro.datagen import generate_bookings, iter_booking_rows

        table = generate_bookings(120, seed=4)
        streamed = list(iter_booking_rows(120, seed=4))
        assert streamed == list(table)

    def test_iter_item_scan_rows_deterministic_and_unique(self):
        from repro.datagen import item_scan_schema, item_catalogue
        from repro.datagen import iter_item_scan_rows
        from repro.relational import Table

        first = list(iter_item_scan_rows(300, item_count=30, seed=5))
        second = list(iter_item_scan_rows(300, item_count=30, seed=5))
        assert first == second
        assert len({visit for visit, _ in first}) == 300  # unique PKs
        # rows type-check under the declared ItemScan schema
        schema = item_scan_schema(item_catalogue(30))
        assert len(Table(schema, first)) == 300

    def test_iter_item_scan_rows_is_lazy(self):
        from itertools import islice

        from repro.datagen import iter_item_scan_rows

        stream = iter_item_scan_rows(10**12, item_count=30, seed=5)
        head = list(islice(stream, 5))
        assert len(head) == 5  # a terabyte-row request costs nothing upfront

    def test_iter_item_scan_rows_rejects_negative(self):
        import pytest

        from repro.datagen import iter_item_scan_rows

        with pytest.raises(ValueError):
            list(iter_item_scan_rows(-1))
