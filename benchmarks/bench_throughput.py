"""Throughput — embed/detect tuples per second vs relation size.

The paper's pitch includes "massive data" (840 M-tuple relations, marked in
subsamples); this bench records the scalability of the pure-Python
implementation so absolute wall-times elsewhere have context.  Embedding
and detection are both single-scan (O(N) keyed hashes), so tuples/sec
should be roughly flat in N.
"""

import time

from conftest import once

from repro.core import Watermark, Watermarker
from repro.crypto import MarkKey
from repro.datagen import generate_item_scan
from repro.experiments import format_table

SIZES = (2_000, 8_000, 32_000)


def run_scaling():
    rows = []
    rates = []
    watermark = Watermark.from_int(0x2AB, 10)
    key = MarkKey.from_seed("throughput")
    for size in SIZES:
        table = generate_item_scan(size, item_count=500, seed=3)
        marker = Watermarker(key, e=60)
        started = time.perf_counter()
        outcome = marker.embed(table, watermark, "Item_Nbr")
        embed_seconds = time.perf_counter() - started
        started = time.perf_counter()
        verdict = marker.verify(outcome.table, outcome.record)
        detect_seconds = time.perf_counter() - started
        # Sanity only (this bench measures speed): at the smallest size the
        # keyed variant's expected ~half-bit erasure loss is tolerated.
        assert verdict.association.matching_bits >= 9
        embed_rate = size / embed_seconds
        detect_rate = size / detect_seconds
        rates.append((embed_rate, detect_rate))
        rows.append(
            (
                size,
                f"{embed_rate:,.0f}",
                f"{detect_rate:,.0f}",
            )
        )
    return rows, rates


def test_throughput(benchmark, record):
    rows, rates = once(benchmark, run_scaling)
    record(
        "throughput",
        format_table(
            ("tuples", "embed tuples/s", "detect tuples/s"), rows
        ),
    )
    # Single-scan algorithms: rate at the largest size stays within 4x of
    # the rate at the smallest (no superlinear blowup).
    assert rates[-1][0] > rates[0][0] / 4
    assert rates[-1][1] > rates[0][1] / 4
    # And the absolute floor is usable on laptop-scale data.
    assert rates[-1][0] > 20_000
    assert rates[-1][1] > 20_000
