"""Throughput — embed/detect tuples per second vs relation size.

The paper's pitch includes "massive data" (840 M-tuple relations, marked in
subsamples); this bench records the scalability of the implementation
across the three execution backends:

* **scalar** — the row-at-a-time reference path;
* **engine** — the PR-1 batched :class:`~repro.crypto.HashEngine` columnar
  path (memoized digests + derived maps);
* **vector** — the NumPy kernel backend (column codes + plan arrays +
  ``bincount`` tallies), the path AUTO picks at these sizes.

Each backend is reported in two regimes:

* **cold** — first contact with the relation: digests must actually be
  computed, so the win over scalar comes from batching, columnar scans and
  the copy-on-write clone;
* **steady** — the relation has been seen before (the attack-sweep and
  re-verification regime): the engine path answers from the carrier-plan
  cache; the vector path re-detects on cached codes and plan arrays
  without touching per-row Python at all.

Besides the usual text table, the series is appended to
``benchmarks/results/throughput.json`` (via the shared ``record_json``
fixture / ``--bench-json`` flag) — stamped with ``cpu_count`` and backend
labels — so the speedup trajectory is recorded across runs.
"""

import os
import time

from conftest import once

from repro.core import Watermark, Watermarker
from repro.crypto import (
    ENGINE,
    SCALAR,
    VECTOR,
    MarkKey,
    clear_engine_registry,
    get_engine,
)
from repro.datagen import generate_item_scan
from repro.experiments import format_table

#: ``REPRO_BENCH_SIZES=2000,8000`` restricts the tiers (the CI
#: bench-smoke job runs the 8k tier only); acceptance assertions engage
#: per tier, so a restricted run still records its trajectory.
SIZES = tuple(
    int(part)
    for part in os.environ.get(
        "REPRO_BENCH_SIZES", "2000,8000,32000,128000"
    ).split(",")
    if part.strip()
)
ASSERT_SIZE = 32_000   # acceptance tier for the engine-vs-scalar speedup
VECTOR_ASSERT_SIZE = 128_000  # acceptance tier for vector-vs-engine
STEADY_ROUNDS = 3

BACKENDS = (SCALAR, ENGINE, VECTOR)

WATERMARK = Watermark.from_int(0x2AB, 10)


def _measure(make_marker, table):
    """(embed_cold, embed_steady, detect_cold, detect_steady) in seconds.

    "Cold" is a first pass with empty caches; "steady" the best subsequent
    pass — for the scalar back end the two only differ by machine noise,
    for the engine and vector back ends the steady pass runs entirely from
    the carrier-plan / plan-array caches.  Detection gets its own fresh
    marker (registry cleared) so the cold number is genuinely cold rather
    than pre-warmed by embedding.
    """
    clear_engine_registry()
    marker = make_marker()
    embed_times = []
    outcome = None
    for _ in range(1 + STEADY_ROUNDS):
        started = time.perf_counter()
        outcome = marker.embed(table, WATERMARK, "Item_Nbr")
        embed_times.append(time.perf_counter() - started)
    clear_engine_registry()
    marker = make_marker()
    detect_times = []
    for _ in range(1 + STEADY_ROUNDS):
        started = time.perf_counter()
        verdict = marker.verify(outcome.table, outcome.record)
        detect_times.append(time.perf_counter() - started)
    # Sanity only (this bench measures speed): the keyed variant's
    # expected ~half-bit erasure loss at small sizes is tolerated.
    assert verdict.association.matching_bits >= 9
    return (
        embed_times[0],
        min(embed_times[1:]),
        detect_times[0],
        min(detect_times[1:]),
    )


def run_scaling():
    key = MarkKey.from_seed("throughput")
    rows = []
    series = {}
    telemetry = {}
    table = None
    for size in SIZES:
        table = generate_item_scan(size, item_count=500, seed=3)

        point = {}
        for backend in BACKENDS:
            timings = _measure(
                lambda: Watermarker(key, e=60, engine=backend), table
            )
            point[f"{backend}_embed_cold"] = size / timings[0]
            point[f"{backend}_embed_steady"] = size / timings[1]
            point[f"{backend}_detect_cold"] = size / timings[2]
            point[f"{backend}_detect_steady"] = size / timings[3]
        # The scalar path has no caches: keep its historical single-column
        # names (best-of-rounds == steady for it).
        point["scalar_embed"] = point.pop("scalar_embed_steady")
        point["scalar_detect"] = point.pop("scalar_detect_steady")
        del point["scalar_embed_cold"], point["scalar_detect_cold"]
        series[size] = point
        rows.append(
            (
                size,
                f"{point['scalar_embed']:,.0f}",
                f"{point['engine_embed_steady']:,.0f}",
                f"{point['vector_embed_steady']:,.0f}",
                f"{point['scalar_detect']:,.0f}",
                f"{point['engine_detect_steady']:,.0f}",
                f"{point['vector_detect_steady']:,.0f}",
            )
        )
    # Cache telemetry for the largest tier's final (vector) run — how the
    # warm numbers above are actually achieved.
    telemetry = {
        "engine": get_engine(key).cache_info(),
        "table": table.cache_info() if table is not None else {},
    }
    return rows, series, telemetry


def test_throughput(benchmark, record, record_json):
    rows, series, telemetry = once(benchmark, run_scaling)
    record(
        "throughput",
        format_table(
            (
                "tuples",
                "embed scalar t/s",
                "embed engine steady",
                "embed vector steady",
                "detect scalar t/s",
                "detect engine steady",
                "detect vector steady",
            ),
            rows,
        ),
    )
    record_json(
        "throughput",
        {
            "backend": "scalar+engine+vector",
            "tuples_per_second": {
                str(size): {
                    metric: round(rate) for metric, rate in point.items()
                }
                for size, point in series.items()
            },
            "cache_info": telemetry,
        },
    )
    if ASSERT_SIZE in series:
        tier = series[ASSERT_SIZE]
        benchmark.extra_info.update(
            {
                f"{metric}_{ASSERT_SIZE}": round(rate)
                for metric, rate in tier.items()
            }
        )

        # Acceptance: the engine's steady-state (attack-sweep regime)
        # beats the row-at-a-time scalar reference >= 5x on both paths at
        # the 32k tier.
        assert tier["engine_embed_steady"] >= 5 * tier["scalar_embed"], tier
        assert tier["engine_detect_steady"] >= 5 * tier["scalar_detect"], tier

    # Acceptance: the vector kernels beat the engine path's warm numbers
    # >= 2x on embed and >= 3x on detect at the 128k tier (measured ~2.6x
    # and ~18x on the 1-core dev box — detection is pure array code).
    if VECTOR_ASSERT_SIZE in series:
        vector_tier = series[VECTOR_ASSERT_SIZE]
        assert vector_tier["vector_embed_steady"] >= \
            2 * vector_tier["engine_embed_steady"], vector_tier
        assert vector_tier["vector_detect_steady"] >= \
            3 * vector_tier["engine_detect_steady"], vector_tier

    # Single-scan algorithms: cold rates at the largest size stay within
    # 4x of the smallest (no superlinear blowup)...
    for backend in (ENGINE, VECTOR):
        assert series[SIZES[-1]][f"{backend}_embed_cold"] > \
            series[SIZES[0]][f"{backend}_embed_cold"] / 4
        assert series[SIZES[-1]][f"{backend}_detect_cold"] > \
            series[SIZES[0]][f"{backend}_detect_cold"] / 4
        # ...and the absolute floor is comfortably above the seed's 20k t/s.
        assert series[SIZES[-1]][f"{backend}_embed_cold"] > 20_000
        assert series[SIZES[-1]][f"{backend}_detect_cold"] > 20_000
