"""Figure 5 — mark alteration vs e, for attack sizes 55% and 20%.

Paper claim: "more available bandwidth (decreasing e) results in a higher
attack resilience" — the alteration curve rises with e, and the 55% attack
dominates the 20% attack.
"""

from conftest import PAPER_CONFIG, once, series_payload

from repro.experiments import figure5_series, format_series

E_VALUES = (10, 25, 50, 75, 100, 125, 150, 175, 200)
ATTACK_SIZES = (0.55, 0.20)


def test_figure5(benchmark, record, record_json):
    series = once(
        benchmark,
        lambda: figure5_series(
            PAPER_CONFIG, e_values=E_VALUES, attack_sizes=ATTACK_SIZES
        ),
    )
    record_json(
        "fig5_bandwidth_tradeoff",
        {
            "passes": PAPER_CONFIG.passes,
            "series": {
                f"{size:.2f}": series_payload(series[size])
                for size in ATTACK_SIZES
            },
        },
    )
    blocks = []
    for attack_size in ATTACK_SIZES:
        blocks.append(
            format_series(
                f"Figure 5 — mark alteration vs e (attack size "
                f"{attack_size:.0%}, N={PAPER_CONFIG.tuple_count}, "
                f"passes={PAPER_CONFIG.passes})",
                series[attack_size],
                x_label="e",
            )
        )
    record("fig5_bandwidth_tradeoff", "\n\n".join(blocks))

    for attack_size in ATTACK_SIZES:
        points = series[attack_size]
        low_e = sum(point.mean_alteration for point in points[:3])
        high_e = sum(point.mean_alteration for point in points[-3:])
        # Shape: resilience decays as e grows (alteration increases).
        assert low_e <= high_e + 0.05 * 3

    # Shape: the heavier attack does at least as much damage everywhere
    # (summed; single points may wobble).
    heavy = sum(p.mean_alteration for p in series[0.55])
    light = sum(p.mean_alteration for p in series[0.20])
    assert light <= heavy + 0.05 * len(E_VALUES)
