"""Figure 6 — the mark-loss surface over (attack size × e).

Paper: the composite of Figures 4 and 5 — "note the lower-left to
upper-right tilt": loss grows toward large attacks AND large e.
"""

from conftest import PAPER_CONFIG, once

from repro.experiments import FigureConfig, figure6_surface, format_surface

#: the surface is |e| x |attack| x passes embeddings; trim passes further
SURFACE_CONFIG = FigureConfig(
    tuple_count=PAPER_CONFIG.tuple_count,
    item_count=PAPER_CONFIG.item_count,
    passes=max(3, PAPER_CONFIG.passes - 2),
)

E_VALUES = (20, 65, 110, 155, 200)
ATTACK_SIZES = (0.0, 0.2, 0.4, 0.6, 0.8)


def test_figure6(benchmark, record, record_json):
    surface = once(
        benchmark,
        lambda: figure6_surface(
            SURFACE_CONFIG, e_values=E_VALUES, attack_sizes=ATTACK_SIZES
        ),
    )
    record_json(
        "fig6_surface",
        {
            "passes": SURFACE_CONFIG.passes,
            "surface": [
                {"e": e, "attack": attack, "mean_alteration": round(loss, 6)}
                for e, attack, loss in surface
            ],
        },
    )
    record(
        "fig6_surface",
        format_surface(
            f"Figure 6 — mark loss over (attack size x e), "
            f"N={SURFACE_CONFIG.tuple_count}, passes={SURFACE_CONFIG.passes}",
            surface,
        ),
    )

    lookup = {(e, attack): loss for e, attack, loss in surface}
    # Lower-left corner (small attack, small e) vs upper-right (big, big):
    # the tilt the paper points at.
    assert lookup[(E_VALUES[0], 0.0)] <= 0.05
    assert lookup[(E_VALUES[0], 0.0)] < lookup[(E_VALUES[-1], 0.8)]
    # Zero attack is harmless at small e regardless of everything else.
    assert lookup[(E_VALUES[1], 0.0)] <= 0.10
    # Marginals tilt the right way (summed over rows/columns).
    small_e_total = sum(lookup[(E_VALUES[0], a)] for a in ATTACK_SIZES)
    large_e_total = sum(lookup[(E_VALUES[-1], a)] for a in ATTACK_SIZES)
    assert small_e_total <= large_e_total + 0.05 * len(ATTACK_SIZES)
    no_attack_total = sum(lookup[(e, 0.0)] for e in E_VALUES)
    big_attack_total = sum(lookup[(e, 0.8)] for e in E_VALUES)
    assert no_attack_total <= big_attack_total
