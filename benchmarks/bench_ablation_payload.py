"""Ablation — payload length |wm| vs detection robustness.

Not swept in the paper (it fixes |wm| = 10), but the choice matters: longer
payloads lower the court-time chance bar but thin out per-bit redundancy.
This bench runs the same 50 %-loss attack against payloads of 8–32 bits
and reports mark alteration, detection rate and the significance bar
(matches required at p <= 0.01) — the evidence behind the
docs/PARAMETERS.md sizing advice.
"""

from conftest import BENCH_PASSES, once

from repro.analysis import required_matches_for_significance
from repro.attacks import DataLossAttack
from repro.datagen import generate_item_scan
from repro.experiments import format_table, run_attack_experiment

TUPLES = 8000
E = 40
PAYLOADS = (8, 10, 16, 24, 32)


def run_sweep():
    table = generate_item_scan(TUPLES, item_count=400, seed=73)
    rows = []
    outcome = {}
    for payload in PAYLOADS:
        results = run_attack_experiment(
            table,
            "Item_Nbr",
            E,
            DataLossAttack(0.5),
            watermark_length=payload,
            passes=BENCH_PASSES,
        )
        alteration = sum(r.mark_alteration for r in results) / len(results)
        detection = sum(r.detected for r in results) / len(results)
        bar = required_matches_for_significance(payload, 0.01)
        rows.append(
            (
                payload,
                f"{alteration:.1%}",
                f"{detection:.0%}",
                f"{bar}/{payload}",
            )
        )
        outcome[payload] = (alteration, detection)
    return rows, outcome


def test_ablation_payload(benchmark, record):
    rows, outcome = once(benchmark, run_sweep)
    record(
        "ablation_payload",
        format_table(
            ("|wm| bits", "mark alteration", "detected", "court bar"), rows
        ),
    )

    # Longer payloads tolerate damaged bits: the 24/32-bit detection rate
    # dominates the 8/10-bit rate under identical damage.
    short_rate = (outcome[8][1] + outcome[10][1]) / 2
    long_rate = (outcome[24][1] + outcome[32][1]) / 2
    assert long_rate >= short_rate
    # All payloads keep alteration modest at 50% loss with e=40.
    assert all(alteration <= 0.25 for alteration, _ in outcome.values())
