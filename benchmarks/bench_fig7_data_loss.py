"""Figure 7 — mark alteration vs data loss (attack A1).

Paper: "the watermark degrades almost linearly with increasing data loss",
and the headline claim — "tolerating up to 80% data loss with a watermark
alteration of only 25%".
"""

from conftest import PAPER_CONFIG, once, series_payload

from repro.experiments import figure7_series, format_series

LOSS_FRACTIONS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
E = 65


def test_figure7(benchmark, record, record_json):
    points = once(
        benchmark,
        lambda: figure7_series(
            PAPER_CONFIG, e=E, loss_fractions=LOSS_FRACTIONS
        ),
    )
    record_json(
        "fig7_data_loss",
        {"passes": PAPER_CONFIG.passes, "series": series_payload(points)},
    )
    record(
        "fig7_data_loss",
        format_series(
            f"Figure 7 — mark alteration vs data loss (e={E}, "
            f"N={PAPER_CONFIG.tuple_count}, passes={PAPER_CONFIG.passes})",
            points,
            x_label="data loss",
            percent_x=True,
        ),
    )

    # Headline claim: <= 25% mark alteration at 80% data loss.
    assert points[-1].mean_alteration <= 0.25
    # Moderate loss is nearly free (error correction riding the majority).
    assert points[2].mean_alteration <= 0.10
    # Roughly monotone degradation.
    assert points[0].mean_alteration <= points[-1].mean_alteration + 0.05
