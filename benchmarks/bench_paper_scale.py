"""Paper-scale run: the full 141 000-tuple experiment (§5).

The paper's largest sample of `UnivClassTables.ItemScan` was 141 000
tuples.  This bench replays the headline experiment at exactly that scale —
embed, 80 % data loss, blind detect — to show the implementation handles
the paper's real workload in seconds.

Skipped by default (it dominates suite time); enable with::

    REPRO_BENCH_PAPER_SCALE=1 pytest benchmarks/bench_paper_scale.py --benchmark-only
"""

import os
import random

import pytest

from conftest import once

from repro import MarkKey, Watermark, Watermarker
from repro.attacks import DataLossAttack
from repro.datagen import generate_item_scan
from repro.experiments import format_table

PAPER_MAX_TUPLES = 141_000

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_BENCH_PAPER_SCALE"),
    reason="paper-scale bench is opt-in (REPRO_BENCH_PAPER_SCALE=1)",
)


def run_paper_scale():
    table = generate_item_scan(PAPER_MAX_TUPLES, item_count=500, seed=2004)
    key = MarkKey.from_seed("paper-scale")
    watermark = Watermark.from_int(0x2AB, 10)
    marker = Watermarker(key, e=65)
    outcome = marker.embed(table, watermark, "Item_Nbr")
    attacked = DataLossAttack(0.8).apply(outcome.table, random.Random(1))
    verdict = marker.verify(attacked, outcome.record)
    return [
        ("tuples", f"{PAPER_MAX_TUPLES:,}"),
        ("carriers", str(outcome.embedding.fit_count)),
        ("alteration", f"{outcome.embedding.applied / PAPER_MAX_TUPLES:.2%}"),
        ("survivors after 80% loss", f"{len(attacked):,}"),
        ("mark alteration", f"{verdict.association.mark_alteration:.1%}"),
        ("detected", str(verdict.detected)),
    ], verdict


def test_paper_scale(benchmark, record):
    rows, verdict = once(benchmark, run_paper_scale)
    record("paper_scale", format_table(("quantity", "value"), rows))
    assert verdict.detected
    assert verdict.association.mark_alteration <= 0.25
