"""Sweep-engine throughput — serial runner vs embed-hoisted/pooled engine.

A figure-4-shaped workload (8 attack-size points x 15 keyed passes over an
8k-tuple relation) timed under the sweep engine's execution modes:

* ``serial`` — the pre-engine runner's cost model: re-embed once per pass
  *per sweep point* (120 embeds), run every cell in-process;
* ``engine`` — the sweep engine's auto mode: 15 embeds total (one per
  seed, shared copy-on-write across all points), cells fanned across the
  persistent worker pool when the box has >= 2 cores, the warm hoisted
  path otherwise.

Both modes are pinned bit-identical here (and in
``tests/experiments/test_sweepengine.py``), so the speedup is pure
execution-engine effect.  The acceptance tier scales with the hardware:
the >= 3x bound engages where pooling has >= 4 cores to work with; 2-3
core boxes must clear 1.8x; a single-core box exercises only the
embed-hoist share, which must still clear 1.1x.  The measured series is
appended to ``benchmarks/results/sweep_throughput.json`` either way.
"""

import os
import time

from conftest import once

from repro.attacks import SubsetAlterationAttack
from repro.crypto import clear_engine_registry
from repro.datagen import generate_item_scan
from repro.experiments import (
    MODE_AUTO,
    MODE_SERIAL,
    SweepEngine,
    format_table,
    reset_sweep_engine,
)

TUPLES = 8_000
ITEMS = 500
E = 65
PASSES = 15
ATTACK_SIZES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
FLIP_PROBABILITY = 0.7


def _attack_factory(size):
    return SubsetAlterationAttack("Item_Nbr", size, FLIP_PROBABILITY)


def _timed_sweep(table, mode, max_workers=None):
    """(wall seconds, points) for one full figure-4-shaped sweep.

    Every run starts from cold hash caches and a fresh engine, so the
    serial baseline and the engine pay the same first-contact costs; what
    differs is purely how the sweep re-uses work after that.
    """
    clear_engine_registry()
    reset_sweep_engine()
    engine = SweepEngine(mode=mode, max_workers=max_workers)
    started = time.perf_counter()
    points = engine.sweep(
        table, "Item_Nbr", E, _attack_factory, list(ATTACK_SIZES),
        passes=PASSES,
    )
    return time.perf_counter() - started, points


def run_comparison():
    table = generate_item_scan(TUPLES, item_count=ITEMS, seed=9)
    serial_time, serial_points = _timed_sweep(table, MODE_SERIAL)
    engine_time, engine_points = _timed_sweep(table, MODE_AUTO)
    reset_sweep_engine()
    return serial_time, serial_points, engine_time, engine_points


def test_sweep_throughput(benchmark, record, record_json):
    serial_time, serial_points, engine_time, engine_points = once(
        benchmark, run_comparison
    )
    cores = os.cpu_count() or 1
    speedup = serial_time / engine_time
    cells = len(ATTACK_SIZES) * PASSES

    rows = [
        ("cores", cores),
        ("cells (points x passes)", cells),
        ("serial sweep s", f"{serial_time:.2f}"),
        ("engine sweep s", f"{engine_time:.2f}"),
        ("speedup", f"{speedup:.2f}x"),
        ("serial cells/s", f"{cells / serial_time:,.1f}"),
        ("engine cells/s", f"{cells / engine_time:,.1f}"),
    ]
    record(
        "sweep_throughput", format_table(("metric", "value"), rows)
    )
    record_json(
        "sweep_throughput",
        {
            "cores": cores,
            "tuples": TUPLES,
            "points": len(ATTACK_SIZES),
            "passes": PASSES,
            "serial_seconds": round(serial_time, 3),
            "engine_seconds": round(engine_time, 3),
            "speedup": round(speedup, 3),
        },
    )
    benchmark.extra_info.update({"speedup": round(speedup, 3)})

    # Equivalence first: the engine must reproduce the serial runner's
    # results bit-for-bit — a speedup that changes the science is a bug.
    assert [(p.x, p.passes) for p in engine_points] == [
        (p.x, p.passes) for p in serial_points
    ]

    # Acceptance tiers (see module docstring): the pooled >= 3x bound
    # needs cores for the cell fan-out; below that, embed hoisting alone
    # carries a smaller but still mandatory margin.
    if cores >= 4:
        floor = 3.0
    elif cores >= 2:
        floor = 1.8
    else:
        floor = 1.1
    assert speedup >= floor, (
        f"sweep engine speedup {speedup:.2f}x below the {floor:g}x floor "
        f"for a {cores}-core box"
    )
