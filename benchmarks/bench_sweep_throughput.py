"""Sweep-engine throughput — serial vs engine, and fused vs per-pass.

Two comparisons over a figure-4-shaped workload (attack-size points x 15
keyed passes over an 8k-tuple relation):

1. **Sweep modes** — the pre-engine ``serial`` runner's cost model
   (re-embed once per pass *per point*) against the engine's auto mode
   (15 embeds total, cells pooled/hoisted).  Acceptance tiers scale with
   the hardware: >= 3x with >= 4 cores for the pool, >= 1.8x at 2-3
   cores, >= 1.1x embed-hoist-only on 1 core.
2. **Warm sweep cells (PR 4)** — with embedding hoisted and every cache
   warm, one sweep point timed under the PR-3 per-pass path (row-level
   attacks + one vector detection kernel per pass) against the fused
   path (code-level attacks + one ``detect_multipass`` kernel for all 15
   passes).  Both are pinned bit-identical here; acceptance is a >= 2x
   wall-time ratio at the 8k x 15-pass tier.

Measured numbers — including engine/table/stack cache telemetry — are
appended to ``benchmarks/results/sweep_throughput.json`` either way.
"""

import os
import time

from conftest import once

from repro.attacks import ATTACK_CODES, ATTACK_ROWS, SubsetAlterationAttack
from repro.crypto import MarkKey, clear_engine_registry, get_engine, stack_cache_info
from repro.datagen import generate_item_scan
from repro.experiments import (
    MODE_AUTO,
    MODE_HOISTED,
    MODE_SERIAL,
    SweepEngine,
    SweepProtocol,
    format_table,
    reset_sweep_engine,
    run_point,
)

TUPLES = 8_000
ITEMS = 500
E = 65
PASSES = 15
ATTACK_SIZES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
FLIP_PROBABILITY = 0.7

#: warm-cell comparison: points measured and repetitions kept (best-of)
WARM_POINTS = (0.2, 0.5, 0.8)
WARM_REPS = 6


def _attack_factory(size):
    return SubsetAlterationAttack("Item_Nbr", size, FLIP_PROBABILITY)


def _timed_sweep(table, mode, max_workers=None):
    """(wall seconds, points) for one full figure-4-shaped sweep.

    Every run starts from cold hash caches and a fresh engine, so the
    serial baseline and the engine pay the same first-contact costs; what
    differs is purely how the sweep re-uses work after that.
    """
    clear_engine_registry()
    reset_sweep_engine()
    engine = SweepEngine(mode=mode, max_workers=max_workers)
    started = time.perf_counter()
    points = engine.sweep(
        table, "Item_Nbr", E, _attack_factory, list(ATTACK_SIZES),
        passes=PASSES,
    )
    return time.perf_counter() - started, points


def run_comparison():
    table = generate_item_scan(TUPLES, item_count=ITEMS, seed=9)
    serial_time, serial_points = _timed_sweep(table, MODE_SERIAL)
    engine_time, engine_points = _timed_sweep(table, MODE_AUTO)
    reset_sweep_engine()
    return serial_time, serial_points, engine_time, engine_points


def run_warm_cell_comparison():
    """Warm-cell wall time: PR-3 per-pass path vs PR-4 fused path.

    Embeds the 15 keyed passes once, warms both paths, then times
    ``len(WARM_POINTS)`` sweep points per configuration (best of
    ``WARM_REPS``).  Returns per-point seconds, the two result sets (for
    the equivalence assertion) and cache telemetry snapshots.
    """
    table = generate_item_scan(TUPLES, item_count=ITEMS, seed=9)
    clear_engine_registry()
    reset_sweep_engine()
    engine = SweepEngine(mode=MODE_HOISTED)
    protocol = SweepProtocol(mark_attribute="Item_Nbr", e=E)
    passes = [
        engine.embedded_pass(table, protocol, seed) for seed in range(PASSES)
    ]

    def attack(size, backend):
        built = _attack_factory(size)
        built.backend = backend
        return built

    configurations = {
        "legacy": (ATTACK_ROWS, False),
        "fused": (ATTACK_CODES, True),
    }
    best = {label: float("inf") for label in configurations}
    results: dict = {}
    for backend, fused in configurations.values():  # warm both paths
        run_point(passes, attack(0.45, backend), 0.45, fused=fused)
    # Interleaved best-of under the default GC regime (the regime real
    # sweeps run in): machine-noise phases (a busy CI neighbour, a
    # frequency step) hit both configurations alike instead of skewing
    # whichever happened to run during the quiet window.
    for _ in range(WARM_REPS):
        for label, (backend, fused) in configurations.items():
            started = time.perf_counter()
            batch = [
                run_point(passes, attack(size, backend), size, fused=fused)
                for size in WARM_POINTS
            ]
            best[label] = min(best[label], time.perf_counter() - started)
            results[label] = batch
    legacy_time = best["legacy"] / len(WARM_POINTS)
    fused_time = best["fused"] / len(WARM_POINTS)
    legacy_results = results["legacy"]
    fused_results = results["fused"]
    telemetry = {
        "engine": get_engine(MarkKey.from_seed(0)).cache_info(),
        "base_table": table.cache_info(),
        "plan_stacks": stack_cache_info(),
    }
    reset_sweep_engine()
    return legacy_time, legacy_results, fused_time, fused_results, telemetry


def test_sweep_throughput(benchmark, record, record_json):
    serial_time, serial_points, engine_time, engine_points = once(
        benchmark, run_comparison
    )
    (
        legacy_cell_time,
        legacy_results,
        fused_cell_time,
        fused_results,
        telemetry,
    ) = run_warm_cell_comparison()
    cores = os.cpu_count() or 1
    speedup = serial_time / engine_time
    warm_speedup = legacy_cell_time / fused_cell_time
    cells = len(ATTACK_SIZES) * PASSES

    rows = [
        ("cores", cores),
        ("cells (points x passes)", cells),
        ("serial sweep s", f"{serial_time:.2f}"),
        ("engine sweep s", f"{engine_time:.2f}"),
        ("speedup", f"{speedup:.2f}x"),
        ("serial cells/s", f"{cells / serial_time:,.1f}"),
        ("engine cells/s", f"{cells / engine_time:,.1f}"),
        ("warm point per-pass ms", f"{legacy_cell_time * 1000:.1f}"),
        ("warm point fused ms", f"{fused_cell_time * 1000:.1f}"),
        ("warm-cell speedup", f"{warm_speedup:.2f}x"),
    ]
    record(
        "sweep_throughput", format_table(("metric", "value"), rows)
    )
    record_json(
        "sweep_throughput",
        {
            "cores": cores,
            "tuples": TUPLES,
            "points": len(ATTACK_SIZES),
            "passes": PASSES,
            "serial_seconds": round(serial_time, 3),
            "engine_seconds": round(engine_time, 3),
            "speedup": round(speedup, 3),
            "warm_cell_legacy_seconds": round(legacy_cell_time, 4),
            "warm_cell_fused_seconds": round(fused_cell_time, 4),
            "warm_cell_speedup": round(warm_speedup, 3),
            "cache_info": telemetry,
        },
    )
    benchmark.extra_info.update(
        {
            "speedup": round(speedup, 3),
            "warm_cell_speedup": round(warm_speedup, 3),
        }
    )

    # Equivalence first: the engine must reproduce the serial runner's
    # results bit-for-bit — a speedup that changes the science is a bug.
    assert [(p.x, p.passes) for p in engine_points] == [
        (p.x, p.passes) for p in serial_points
    ]
    # Same bar for the fused warm cells vs the per-pass path.
    assert fused_results == legacy_results

    # Acceptance tiers (see module docstring): the pooled >= 3x bound
    # needs cores for the cell fan-out; below that, embed hoisting alone
    # carries a smaller but still mandatory margin.
    if cores >= 4:
        floor = 3.0
    elif cores >= 2:
        floor = 1.8
    else:
        floor = 1.1
    assert speedup >= floor, (
        f"sweep engine speedup {speedup:.2f}x below the {floor:g}x floor "
        f"for a {cores}-core box"
    )

    # Acceptance (PR 4): fused multi-pass detection + code-level attacks
    # must at least halve the warm sweep-cell wall time against the PR-3
    # per-pass vector path at the 8k x 15-pass tier (measured ~2.4x on
    # the 1-core dev box).
    assert warm_speedup >= 2.0, (
        f"warm sweep-cell speedup {warm_speedup:.2f}x below the 2x floor "
        f"(per-pass {legacy_cell_time * 1000:.1f} ms vs fused "
        f"{fused_cell_time * 1000:.1f} ms per point)"
    )
