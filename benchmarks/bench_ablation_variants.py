"""Ablation — keyed (Figure 1(a)) vs embedding-map (Figure 1(b)) variant.

The keyed variant pays a collision/erasure cost for statelessness (§3.2.1's
note); the map variant achieves exact channel coverage at the price of
escrowing the map.  Both must survive the standard attacks; the map variant
should show equal-or-lower clean-detection alteration.
"""

from conftest import BENCH_PASSES, once

from repro.attacks import DataLossAttack, IdentityAttack, SubsetAdditionAttack
from repro.datagen import generate_item_scan
from repro.experiments import format_table, run_attack_experiment

TUPLES = 4000
E = 40


def run_matrix():
    table = generate_item_scan(TUPLES, item_count=400, seed=11)
    attacks = (
        ("clean", IdentityAttack()),
        ("A1 loss 50%", DataLossAttack(0.5)),
        ("A2 addition 50%", SubsetAdditionAttack(0.5)),
    )
    rows = []
    outcome = {}
    for variant in ("keyed", "map"):
        for attack_label, attack in attacks:
            results = run_attack_experiment(
                table,
                "Item_Nbr",
                E,
                attack,
                passes=BENCH_PASSES,
                variant=variant,
            )
            alteration = sum(r.mark_alteration for r in results) / len(results)
            rows.append((variant, attack_label, f"{alteration:.1%}"))
            outcome[(variant, attack_label)] = alteration
    return rows, outcome


def test_ablation_variants(benchmark, record):
    rows, outcome = once(benchmark, run_matrix)
    record(
        "ablation_variants",
        format_table(("variant", "attack", "mark alteration"), rows),
    )

    # Clean detection: the map variant has no slot collisions/erasures.
    assert outcome[("map", "clean")] == 0.0
    assert outcome[("keyed", "clean")] <= 0.05
    # Both variants ride out loss and dilution.
    for variant in ("keyed", "map"):
        assert outcome[(variant, "A1 loss 50%")] <= 0.2
        assert outcome[(variant, "A2 addition 50%")] <= 0.1
