"""Figure 4 — mark alteration vs attack size for e = 65 and e = 35.

Paper series: random subset-alteration attack (A3), attack size 20–80%,
watermark degrades gracefully; the e = 35 series (more carriers) sits at or
below the e = 65 series.
"""

from conftest import PAPER_CONFIG, once, series_payload

from repro.experiments import figure4_series, format_series

E_VALUES = (65, 35)
ATTACK_SIZES = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)


def test_figure4(benchmark, record, record_json):
    series = once(
        benchmark,
        lambda: figure4_series(
            PAPER_CONFIG, e_values=E_VALUES, attack_sizes=ATTACK_SIZES
        ),
    )
    record_json(
        "fig4_alteration_attack",
        {
            "passes": PAPER_CONFIG.passes,
            "series": {str(e): series_payload(series[e]) for e in E_VALUES},
        },
    )
    blocks = []
    for e in E_VALUES:
        blocks.append(
            format_series(
                f"Figure 4 — mark alteration vs attack size (e={e}, "
                f"N={PAPER_CONFIG.tuple_count}, "
                f"passes={PAPER_CONFIG.passes})",
                series[e],
                x_label="attack size",
                percent_x=True,
            )
        )
    record("fig4_alteration_attack", "\n\n".join(blocks))

    for e in E_VALUES:
        points = series[e]
        # Shape: graceful degradation (small attacks do little; the curve
        # trends upward with attack size).
        assert points[0].mean_alteration <= 0.15
        assert points[-1].mean_alteration >= points[0].mean_alteration
        # Error correction keeps even the 80% attack survivable.
        assert points[-1].mean_alteration <= 0.5

    # Shape: more bandwidth (smaller e) is at least as resilient, summed
    # over the sweep (individual points may wobble at bench pass counts).
    total_e35 = sum(p.mean_alteration for p in series[35])
    total_e65 = sum(p.mean_alteration for p in series[65])
    assert total_e35 <= total_e65 + 0.10 * len(ATTACK_SIZES)
