"""Ablation — ECC choice under the Figure-4 attack and contiguous loss.

The paper picks majority voting without comparison; this bench supplies
one: all four registered codes under (a) the random alteration attack and
(b) a contiguous key-range partition, where the interleaved layout's
advantage over contiguous block repetition shows up.
"""

from conftest import BENCH_PASSES, once

from repro.attacks import KeyRangePartitionAttack, SubsetAlterationAttack
from repro.datagen import generate_item_scan
from repro.ecc import registered_codes
from repro.experiments import format_table, run_attack_experiment

TUPLES = 4000
E = 30


def run_matrix():
    from repro.relational import sort_by

    # Key-sorted physical order: with the map variant, sequential slot
    # assignment then aligns with key order, so a key-range cut removes a
    # contiguous slot run (the worst case for a block layout).
    table = sort_by(
        generate_item_scan(TUPLES, item_count=400, seed=64), "Visit_Nbr"
    )
    rows = []
    # The layout contrast needs the map variant: sequential slot assignment
    # follows scan order, so a contiguous key-range cut erases contiguous
    # slots — precisely where block repetition concentrates one bit's
    # replicas and the interleaved layout spreads them.
    attacks = (
        ("A3 alteration 40%", SubsetAlterationAttack("Item_Nbr", 0.4, 0.7),
         "keyed"),
        ("A1 key-range keep 40%", KeyRangePartitionAttack(0.4), "map"),
    )
    outcome = {}
    for ecc_name in registered_codes():
        for attack_label, attack, variant in attacks:
            results = run_attack_experiment(
                table,
                "Item_Nbr",
                E,
                attack,
                passes=BENCH_PASSES,
                ecc_name=ecc_name,
                variant=variant,
            )
            alteration = sum(r.mark_alteration for r in results) / len(results)
            rows.append((ecc_name, attack_label, f"{alteration:.1%}"))
            outcome[(ecc_name, attack_label)] = alteration
    return rows, outcome


def test_ablation_ecc(benchmark, record):
    rows, outcome = once(benchmark, run_matrix)
    record(
        "ablation_ecc",
        format_table(("ecc", "attack", "mark alteration"), rows),
    )

    # No-ECC is the weakest defence against random alteration.
    assert outcome[("majority", "A3 alteration 40%")] <= \
        outcome[("identity", "A3 alteration 40%")] + 0.02
    # Interleaved majority beats contiguous block repetition under
    # contiguous (key-range) loss — the layout argument from DESIGN.md.
    assert outcome[("majority", "A1 key-range keep 40%")] <= \
        outcome[("block-repetition", "A1 key-range keep 40%")] + 0.02
