"""Ablation — single-pair vs multi-attribute embedding under A5.

§3.3's motivation: a single ``mark(K, A)`` dies when the attacker projects
the key away; the pair closure keeps witnesses alive in every surviving
attribute pair.
"""

import random

from conftest import BENCH_PASSES, once

from repro.attacks import VerticalPartitionAttack
from repro.core import embed_pairs, verify_pairs
from repro.crypto import MarkKey
from repro.core import Watermark, Watermarker
from repro.datagen import generate_sales
from repro.experiments import format_table

TUPLES = 5000
E = 40

PARTITIONS = (
    ("keep K + Item", ["Scan_Id", "Item_Nbr"]),
    ("keep Item + Store (PK dropped)", ["Item_Nbr", "Store_Nbr"]),
    ("keep Store + Dept (PK dropped)", ["Store_Nbr", "Dept"]),
)


def run_matrix():
    table = generate_sales(TUPLES, item_count=300, seed=21)
    rows = []
    outcome = {}
    for label, kept in PARTITIONS:
        single_hits = 0
        multi_hits = 0
        for pass_index in range(BENCH_PASSES):
            key = MarkKey.from_seed(f"multi-{pass_index}")
            watermark = Watermark.random(
                10, random.Random(f"wm-{pass_index}")
            )
            attack = VerticalPartitionAttack(kept)
            rng = random.Random(f"attack-{pass_index}")

            # single-pair scheme: mark(K, Item_Nbr) only
            marker = Watermarker(key, e=E)
            outcome_single = marker.embed(table, watermark, "Item_Nbr")
            attacked = attack.apply(outcome_single.table, rng)
            try:
                verdict = marker.verify(attacked, outcome_single.record)
                single_hits += verdict.detected
            except Exception:
                pass  # marked pair gone: no detection possible

            # multi-attribute closure
            marked = table.clone()
            embedding = embed_pairs(marked, watermark, key, e=E)
            attacked = attack.apply(marked, rng)
            try:
                multi = verify_pairs(attacked, key, embedding, watermark)
                multi_hits += multi.detected
            except Exception:
                pass
        rows.append(
            (
                label,
                f"{single_hits}/{BENCH_PASSES}",
                f"{multi_hits}/{BENCH_PASSES}",
            )
        )
        outcome[label] = (single_hits, multi_hits)
    return rows, outcome


def test_ablation_multiattribute(benchmark, record):
    rows, outcome = once(benchmark, run_matrix)
    record(
        "ablation_multiattribute",
        format_table(
            ("A5 partition", "single-pair detected", "multi-pair detected"),
            rows,
        ),
    )

    # Both schemes survive when the marked (K, Item) pair survives.
    assert outcome["keep K + Item"][0] == BENCH_PASSES
    assert outcome["keep K + Item"][1] == BENCH_PASSES
    # Once the PK is projected away, only the closure still testifies.
    # The projection dedups on its new key, so each witness decodes from a
    # single tuple per key value; with the conservative p<=0.01 bar a
    # 9/10-bit witness (p=0.0107) narrowly misses, which happens in some
    # passes of the hardest (both-attributes-low-cardinality) partition.
    # The load-bearing contrast is single-pair 0/5 vs closure majority.
    assert outcome["keep Item + Store (PK dropped)"][0] == 0
    assert outcome["keep Item + Store (PK dropped)"][1] >= BENCH_PASSES - 1
    assert outcome["keep Store + Dept (PK dropped)"][0] == 0
    assert outcome["keep Store + Dept (PK dropped)"][1] >= (BENCH_PASSES + 1) // 2
