"""Additive (re-watermarking) attack — the §6 open problem, quantified.

Mallory overlays his own watermark on the stolen relation.  The bench
measures, over multiple key passes:

* the damage Mallory's pass does to the owner's mark (bounded by the
  carrier-overlap argument: ~``1/e_mallory`` of the owner's carriers);
* that both marks detect in Mallory's copy (the "deadlock");
* the dispute-resolution asymmetry that breaks the deadlock: the owner's
  mark is absent from nothing, Mallory's is absent from the owner's
  original.
"""

import random

from conftest import BENCH_PASSES, once

from repro.attacks import AdditiveWatermarkAttack
from repro.core import Watermark, Watermarker
from repro.crypto import MarkKey
from repro.datagen import generate_item_scan
from repro.experiments import format_table

TUPLES = 6000
OWNER_E = 40
MALLORY_E = 30


def run_dispute():
    table = generate_item_scan(TUPLES, item_count=400, seed=51)
    counters = {
        "owner mark in Mallory's copy": 0,
        "Mallory mark in Mallory's copy": 0,
        "Mallory mark in owner's original": 0,
    }
    damages = []
    for pass_index in range(BENCH_PASSES):
        owner_key = MarkKey.from_seed(f"owner-{pass_index}")
        owner = Watermarker(owner_key, e=OWNER_E)
        watermark = Watermark.random(
            10, random.Random(f"owm-{pass_index}")
        )
        outcome = owner.embed(table, watermark, "Item_Nbr")
        attack = AdditiveWatermarkAttack("Item_Nbr", e=MALLORY_E)
        stolen = attack.apply(
            outcome.table, random.Random(f"mallory-{pass_index}")
        )

        owner_verdict = owner.verify(stolen, outcome.record)
        counters["owner mark in Mallory's copy"] += owner_verdict.detected
        damages.append(owner_verdict.association.mark_alteration)

        mallory = Watermarker(attack.mallory_key, e=MALLORY_E)
        counters["Mallory mark in Mallory's copy"] += mallory.verify(
            stolen, attack.mallory_record
        ).detected
        counters["Mallory mark in owner's original"] += mallory.verify(
            outcome.table, attack.mallory_record
        ).detected
    mean_damage = sum(damages) / len(damages)
    return counters, mean_damage


def test_additive_attack(benchmark, record, record_json):
    counters, mean_damage = once(benchmark, run_dispute)
    rows = [(label, f"{hits}/{BENCH_PASSES}") for label, hits in counters.items()]
    rows.append(("owner mark damage (mean)", f"{mean_damage:.1%}"))
    record(
        "additive_attack",
        format_table(("claim", "outcome"), rows),
    )
    record_json(
        "additive_attack",
        {
            "passes": BENCH_PASSES,
            "detections": dict(counters),
            "mean_owner_damage": round(mean_damage, 6),
        },
    )

    # The deadlock: both marks detect in Mallory's published copy.
    assert counters["owner mark in Mallory's copy"] == BENCH_PASSES
    assert counters["Mallory mark in Mallory's copy"] >= BENCH_PASSES - 1
    # The tie-breaker: Mallory can never exhibit his mark in data he never
    # touched — the owner's original.
    assert counters["Mallory mark in owner's original"] == 0
    # Overlap damage stays near the 1/e_mallory bound.
    assert mean_damage <= 0.15
