"""Baseline comparison — categorical channel vs Agrawal–Kiernan LSB marks.

Two stories the paper's positioning implies:

* under attacks both schemes are built for (row loss), both detect;
* the numeric-LSB channel dies to cheap value perturbation (randomising
  two low bits barely moves a price), while the categorical channel has no
  such "free" perturbation — altering a category is a significant change
  (§3.1), and an attacker willing to pay it still leaves the majority vote
  standing.
"""

import random

from conftest import BENCH_PASSES, once

from repro.attacks import DataLossAttack, SubsetAlterationAttack
from repro.baseline import AKParameters, ak_detect, ak_embed
from repro.core import Watermark, Watermarker
from repro.crypto import MarkKey
from repro.datagen import generate_item_scan
from repro.experiments import format_table
from repro.relational import Attribute, AttributeType, Schema, Table

TUPLES = 5000
E = 40


def numeric_twin(table: Table, seed: int) -> Table:
    """A numeric relation of the same size for the AHK baseline."""
    rng = random.Random(f"twin-{seed}")
    schema = Schema(
        (
            Attribute("Id", AttributeType.INTEGER),
            Attribute("Price", AttributeType.INTEGER),
        ),
        primary_key="Id",
    )
    rows = ((key, rng.randrange(100, 10_000)) for key in table.keys())
    return Table(schema, rows, name="numeric-twin")


def lsb_noise(table: Table, rng: random.Random, xi: int = 2) -> Table:
    """The cheap attack AHK cannot survive: randomise the xi low bits."""
    attacked = table.clone()
    mask_range = 1 << xi
    for key in list(attacked.keys()):
        attacked.set_value(
            key, "Price", attacked.value(key, "Price") ^ rng.randrange(mask_range)
        )
    return attacked


def run_matrix():
    categorical = generate_item_scan(TUPLES, item_count=400, seed=31)
    rows = []
    counters = {
        ("categorical", "A1 loss 50%"): 0,
        ("categorical", "cheap perturbation"): 0,
        ("ahk-lsb", "A1 loss 50%"): 0,
        ("ahk-lsb", "cheap perturbation"): 0,
    }
    for pass_index in range(BENCH_PASSES):
        key = MarkKey.from_seed(f"cmp-{pass_index}")
        rng = random.Random(f"cmp-attack-{pass_index}")
        watermark = Watermark.random(10, random.Random(f"cmp-wm-{pass_index}"))

        marker = Watermarker(key, e=E)
        outcome = marker.embed(categorical, watermark, "Item_Nbr")
        lost = DataLossAttack(0.5).apply(outcome.table, rng)
        counters[("categorical", "A1 loss 50%")] += marker.verify(
            lost, outcome.record
        ).detected
        # "cheap perturbation" for categorical data does not exist: the
        # closest analogue is a small random alteration, which costs the
        # attacker real value (§3.1).  5% alteration stands in for it.
        perturbed = SubsetAlterationAttack("Item_Nbr", 0.05).apply(
            outcome.table, rng
        )
        counters[("categorical", "cheap perturbation")] += marker.verify(
            perturbed, outcome.record
        ).detected

        numeric = numeric_twin(categorical, pass_index)
        params = AKParameters(("Price",), gamma=E, xi=2)
        ak_embed(numeric, key.k1, params)
        lost_numeric = DataLossAttack(0.5).apply(numeric, rng)
        counters[("ahk-lsb", "A1 loss 50%")] += ak_detect(
            lost_numeric, key.k1, params
        ).detected
        noisy_numeric = lsb_noise(numeric, rng, xi=2)
        counters[("ahk-lsb", "cheap perturbation")] += ak_detect(
            noisy_numeric, key.k1, params
        ).detected

    for (scheme, attack), hits in sorted(counters.items()):
        rows.append((scheme, attack, f"{hits}/{BENCH_PASSES}"))
    return rows, counters


def test_baseline_comparison(benchmark, record, record_json):
    rows, counters = once(benchmark, run_matrix)
    record(
        "baseline_comparison",
        format_table(("scheme", "attack", "detected"), rows),
    )
    record_json(
        "baseline_comparison",
        {
            "passes": BENCH_PASSES,
            "detections": {
                f"{scheme}|{attack}": hits
                for (scheme, attack), hits in sorted(counters.items())
            },
        },
    )

    # Both channels ride out row loss.
    assert counters[("categorical", "A1 loss 50%")] == BENCH_PASSES
    assert counters[("ahk-lsb", "A1 loss 50%")] == BENCH_PASSES
    # The LSB channel dies to free perturbation; the categorical channel
    # survives its (expensive) analogue.
    assert counters[("ahk-lsb", "cheap perturbation")] == 0
    assert counters[("categorical", "cheap perturbation")] == BENCH_PASSES
