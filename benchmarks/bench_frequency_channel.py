"""Frequency channel (§4.2) and remap recovery (§4.5) benches.

Covers the two scenarios only this channel handles:

* extreme vertical partitioning down to one categorical column, with
  additional row loss on top;
* bijective value re-mapping, where rank-aligned frequency recovery
  restores detection — including how recovery quality scales with the
  rows-per-value ratio the paper's "over large data sets" premise needs.
"""

import random

from conftest import BENCH_PASSES, once

from repro.attacks import (
    BijectiveRemapAttack,
    DataLossAttack,
    SingleColumnAttack,
)
from repro.core import (
    FrequencyProfile,
    Watermark,
    embed_frequency,
    recover_mapping,
    recovery_quality,
    verify_frequency,
)
from repro.crypto import MarkKey
from repro.datagen import generate_bookings, generate_item_scan
from repro.experiments import format_table

TUPLES = 15_000
ITEMS = 120


def run_single_column():
    counters = {"single column": 0, "single column + 50% loss": 0}
    for pass_index in range(BENCH_PASSES):
        table = generate_item_scan(TUPLES, item_count=ITEMS, seed=40)
        key = MarkKey.from_seed(f"freq-{pass_index}")
        watermark = Watermark.random(8, random.Random(f"fwm-{pass_index}"))
        result = embed_frequency(table, watermark, key, "Item_Nbr")
        rng = random.Random(f"fattack-{pass_index}")
        column_only = SingleColumnAttack("Item_Nbr").apply(table, rng)
        counters["single column"] += verify_frequency(
            column_only, key, result.record, watermark
        ).detected
        lossy = DataLossAttack(0.5).apply(column_only, rng)
        counters["single column + 50% loss"] += verify_frequency(
            lossy, key, result.record, watermark
        ).detected
    return counters


def run_remap_recovery():
    qualities = []
    for size in (5_000, 20_000, 80_000):
        table = generate_bookings(size, seed=41)
        profile = FrequencyProfile.capture(table, "Depart_City")
        attack = BijectiveRemapAttack("Depart_City")
        attacked = attack.apply(table, random.Random(42))
        recovered = recover_mapping(attacked, profile)
        qualities.append(
            (size, recovery_quality(attack.true_inverse, recovered))
        )
    return qualities


def test_frequency_channel(benchmark, record, record_json):
    counters, qualities = once(
        benchmark, lambda: (run_single_column(), run_remap_recovery())
    )
    record_json(
        "frequency_channel",
        {
            "passes": BENCH_PASSES,
            "detections": dict(counters),
            "remap_recovery_quality": {
                str(size): round(quality, 6) for size, quality in qualities
            },
        },
    )
    rows = [
        (label, f"{hits}/{BENCH_PASSES}") for label, hits in counters.items()
    ]
    rows += [
        (f"remap recovery quality @ N={size}", f"{quality:.0%}")
        for size, quality in qualities
    ]
    record(
        "frequency_channel",
        format_table(("scenario", "outcome"), rows),
    )

    # The frequency channel survives the extreme A5 partition.
    assert counters["single column"] == BENCH_PASSES
    assert counters["single column + 50% loss"] >= BENCH_PASSES - 1
    # Recovery quality improves with rows-per-value and saturates at 100%.
    ordered = [quality for _, quality in qualities]
    assert ordered[-1] == 1.0
    assert ordered[0] <= ordered[-1] + 1e-9
