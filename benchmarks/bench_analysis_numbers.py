"""§4.4 closed-form numbers — reproduced exactly (they are data-free).

* false-positive probability ``(1/2)^(N/e)`` ≈ 7.8e-31 for N=6000, e=60;
* attack success ``P(15, 1200) ≈ 31.6%`` (normal form, p=0.7, e=60);
* expected net watermark damage 1.0 bit (t_ecc=5%, |wm|=10, |wm_data|=100);
* minimum-e bound: the paper's procedure yields e=23 (≈4.3% alteration);
  the corrected exact-binomial tail yields a larger bound (see
  EXPERIMENTS.md for the discrepancy discussion);
* a Monte-Carlo cross-check of the binomial false-hit model.
"""

import random

from conftest import once

from repro.analysis import (
    attack_success_exact,
    attack_success_normal,
    conservative_minimum_e,
    full_channel_match_probability,
    monte_carlo_match_distribution,
    paper_minimum_e,
    partial_match_probability,
    watermark_bits_damaged,
)
from repro.experiments import format_table


def compute_rows():
    mc_rng = random.Random(2004)
    counts = monte_carlo_match_distribution(10, 50_000, mc_rng)
    empirical_full = counts[10] / 50_000
    return [
        (
            "false positive (1/2)^(N/e), N=6000 e=60",
            "7.8e-31",
            f"{full_channel_match_probability(6000, 60):.3g}",
        ),
        (
            "P(15,1200) normal approx (p=.7, e=60)",
            "31.6%",
            f"{attack_success_normal(15, 1200, 0.7, 60):.1%}",
        ),
        (
            "P(15,1200) exact binomial",
            "(not given)",
            f"{attack_success_exact(15, 1200, 0.7, 60):.1%}",
        ),
        (
            "net wm damage, r=15 tecc=5% |wm|=10 L=100",
            "1.0 bit",
            f"{watermark_bits_damaged(15, 100, 0.05, 10):.2f} bits",
        ),
        (
            "min e (paper procedure, d=10% r=15 a=600)",
            "23",
            str(paper_minimum_e(0.10, 15, 600, 0.7)),
        ),
        (
            "min e (exact-tail corrected)",
            "(n/a)",
            str(conservative_minimum_e(0.10, 15, 600, 0.7)),
        ),
        (
            "alteration at paper e (1/23)",
            "~4.3%",
            f"{1 / 23:.1%}",
        ),
        (
            "MC full-match rate vs (1/2)^10",
            f"{0.5 ** 10:.2%}",
            f"{empirical_full:.2%}",
        ),
    ]


def test_analysis_numbers(benchmark, record):
    rows = once(benchmark, compute_rows)
    record(
        "analysis_numbers",
        format_table(("quantity", "paper", "measured"), rows),
    )

    values = {row[0]: row[2] for row in rows}
    assert values["false positive (1/2)^(N/e), N=6000 e=60"] == "7.89e-31"
    assert values["P(15,1200) normal approx (p=.7, e=60)"] == "31.3%"
    assert values["net wm damage, r=15 tecc=5% |wm|=10 L=100"] == "1.00 bits"
    assert values["min e (paper procedure, d=10% r=15 a=600)"] == "23"
    # Monte-Carlo agrees with the binomial model within sampling noise.
    empirical = float(values["MC full-match rate vs (1/2)^10"].rstrip("%")) / 100
    assert abs(empirical - 0.5 ** 10) < 5e-4
    # The partial-match significance function is consistent at the edges.
    assert partial_match_probability(10, 10) == 0.5 ** 10
