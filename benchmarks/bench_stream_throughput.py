"""Streaming throughput — out-of-core mark/detect over a 1M-row tier.

The streaming subsystem's two promises, measured and enforced:

* **bounded memory** — a streamed detect's peak Python allocation is a
  function of (chunk size + channel length), *not* of the row count: the
  bench detects the same synthetic stream at a quarter tier and at the
  full tier under ``tracemalloc`` and asserts the peaks agree within a
  small tolerance (an in-memory detector's peak scales linearly — ~4x —
  between those tiers);
* **throughput** — chunking costs overhead (chunk Table construction,
  per-chunk plan arrays, accumulator merges), but it must stay a
  constant factor: streamed detection over in-memory chunks is asserted
  at ≥ 0.5x the one-shot in-memory vector detector on identical rows.

The full file pipeline (synthetic stream -> gzip CSV mark -> streamed
blind verify, the CI *stream-smoke* round trip) is timed end to end and
recorded — rows/sec for mark, file detect, and kernel-only detect, plus
peak RSS — in ``benchmarks/results/stream_throughput.json``.

``REPRO_BENCH_STREAM_ROWS`` selects the tier (default 1,000,000; the CI
stream-smoke job runs 65,536 with a gzip round trip just the same).
"""

import os
import resource
import time
import tracemalloc

from repro.core import EmbeddingSpec, Watermark, default_channel_length, verify
from repro.crypto import VECTOR, MarkKey, clear_engine_registry, get_engine
from repro.stream import (
    CSVChunkSink,
    CSVChunkSource,
    TableChunkSource,
    item_scan_source,
    stream_mark,
    stream_verify,
)

ROWS = int(os.environ.get("REPRO_BENCH_STREAM_ROWS", "1000000"))
CHUNK = int(os.environ.get("REPRO_BENCH_STREAM_CHUNK", "65536"))
ITEMS = 500
E = 60
SEED = 17

#: the in-memory-comparison tier: large enough for the vector backend,
#: small enough that the comparison table comfortably fits in RAM
RATIO_ROWS = min(ROWS, 131_072)

WATERMARK = Watermark.from_int(0x2AB, 10)


def _spec(rows: int) -> EmbeddingSpec:
    return EmbeddingSpec(
        key_attribute="Visit_Nbr",
        mark_attribute="Item_Nbr",
        e=E,
        watermark_length=len(WATERMARK),
        # Fixed channel across tiers so the O(channel) accumulator state
        # cannot mask (or fake) row-count-dependent memory growth.
        channel_length=default_channel_length(RATIO_ROWS, E, len(WATERMARK)),
    )


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


#: chunk size of the bounded-memory subtest: small relative to the tier,
#: so both measured tiers run far past the stream engine's O(chunk)
#: cache cap — what saturated steady state actually looks like
MEM_CHUNK = max(1_024, ROWS // 64)


def _streamed_detect_peak(rows: int, key: MarkKey, spec) -> tuple[float, int]:
    """(tracemalloc peak bytes, matched bits) of a streamed detect."""
    source = item_scan_source(
        rows, chunk_size=MEM_CHUNK, item_count=ITEMS, seed=SEED
    )
    tracemalloc.start()
    verdict = stream_verify(source, key, spec, WATERMARK, backend=VECTOR)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak, verdict.verification.matching_bits


def test_stream_throughput_and_bounded_memory(record, record_json, tmp_path):
    key = MarkKey.from_seed("stream-bench")
    spec = _spec(ROWS)
    clear_engine_registry()
    lines = [
        f"streaming pipeline tier: {ROWS} rows, chunk {CHUNK}, e={E}, "
        f"L={spec.channel_length}"
    ]

    # -- end-to-end file pipeline: synthetic -> gzip CSV mark -> verify ----
    marked_path = tmp_path / "marked.csv.gz"
    source = item_scan_source(
        ROWS, chunk_size=CHUNK, item_count=ITEMS, seed=SEED
    )
    started = time.perf_counter()
    mark_result = stream_mark(
        source, WATERMARK, key, spec, CSVChunkSink(marked_path)
    )
    mark_seconds = time.perf_counter() - started
    assert mark_result.rows == ROWS

    suspect = CSVChunkSource(
        marked_path, source.schema, chunk_size=CHUNK, infer_domains=True
    )
    started = time.perf_counter()
    verdict = stream_verify(
        suspect, key, spec, WATERMARK,
        domain=source.schema.attribute("Item_Nbr").domain,
    )
    detect_file_seconds = time.perf_counter() - started
    assert verdict.detected and verdict.rows == ROWS
    lines.append(
        f"  mark   -> gzip CSV : {ROWS / mark_seconds:>12,.0f} rows/s "
        f"({mark_seconds:.2f}s, {mark_result.applied} carriers rewritten)"
    )
    lines.append(
        f"  detect <- gzip CSV : {ROWS / detect_file_seconds:>12,.0f} rows/s "
        f"({detect_file_seconds:.2f}s, "
        f"{verdict.verification.matching_bits}/{len(WATERMARK)} bits)"
    )

    # -- kernel-only streamed detect vs in-memory vector detect ------------
    # Same rows, chunked from memory: isolates the chunking overhead from
    # CSV parsing.  The streamed path must hold >= 0.5x of the one-shot
    # in-memory vector detector.
    base_source = item_scan_source(
        RATIO_ROWS, chunk_size=CHUNK, item_count=ITEMS, seed=SEED
    )
    from repro.relational import Table

    rows_accumulator = []
    for chunk in base_source:
        rows_accumulator.extend(chunk)
    table = Table(base_source.schema, rows_accumulator, name="ratio")
    del rows_accumulator
    marked_sink_rows = []
    marked_source = CSVChunkSource(
        marked_path, base_source.schema, chunk_size=CHUNK
    )
    for chunk in marked_source.chunks():
        marked_sink_rows.extend(chunk)
        if len(marked_sink_rows) >= RATIO_ROWS:
            break
    marked_table = Table(
        base_source.schema, marked_sink_rows[:RATIO_ROWS], name="ratio_marked"
    )
    del marked_sink_rows

    clear_engine_registry()
    started = time.perf_counter()
    in_memory = verify(marked_table, key, spec, WATERMARK, engine=VECTOR)
    in_memory_cold = time.perf_counter() - started
    started = time.perf_counter()
    verify(marked_table, key, spec, WATERMARK, engine=VECTOR)
    in_memory_warm = time.perf_counter() - started

    started = time.perf_counter()
    streamed = stream_verify(
        TableChunkSource(marked_table, chunk_size=CHUNK),
        key, spec, WATERMARK, backend=VECTOR,
    )
    streamed_cold = time.perf_counter() - started
    assert streamed.verification.matching_bits == in_memory.matching_bits
    ratio = in_memory_cold / streamed_cold
    lines.append(
        f"  detect, in-memory  : {RATIO_ROWS / in_memory_cold:>12,.0f} rows/s"
        f" cold / {RATIO_ROWS / in_memory_warm:,.0f} warm ({RATIO_ROWS} rows)"
    )
    lines.append(
        f"  detect, chunked    : {RATIO_ROWS / streamed_cold:>12,.0f} rows/s "
        f"cold -> {ratio:.2f}x of in-memory (floor 0.5x)"
    )
    assert ratio >= 0.5, (
        f"streamed detection at {ratio:.2f}x of the in-memory vector "
        f"detector (floor 0.5x)"
    )

    # -- bounded memory: peak independent of row count ----------------------
    small_rows = max(ROWS // 4, 8 * MEM_CHUNK)
    peak_small, bits_small = _streamed_detect_peak(small_rows, key, spec)
    peak_large, bits_large = _streamed_detect_peak(ROWS, key, spec)
    growth = peak_large / peak_small
    lines.append(
        f"  detect peak alloc  : {peak_small / 1e6:.1f} MB at {small_rows} "
        f"rows vs {peak_large / 1e6:.1f} MB at {ROWS} rows, chunk "
        f"{MEM_CHUNK} ({growth:.2f}x growth over a "
        f"{ROWS / small_rows:.1f}x tier jump)"
    )
    # An O(rows) detector would grow ~ROWS/small_rows (4x); O(chunk +
    # channel) streaming must stay flat modulo allocator noise.
    assert growth < 1.5, (
        f"streamed detect peak allocation grew {growth:.2f}x when rows "
        f"grew {ROWS / small_rows:.0f}x — memory is not bounded"
    )

    peak_rss = _peak_rss_mb()
    lines.append(f"  process peak RSS   : {peak_rss:.0f} MB")
    text = "\n".join(lines)
    record("stream_throughput", text)
    record_json(
        "stream_throughput",
        {
            "rows": ROWS,
            "chunk_size": CHUNK,
            "channel_length": spec.channel_length,
            "backend": "vector+stream",
            "mark_rows_per_second": round(ROWS / mark_seconds),
            "detect_file_rows_per_second": round(ROWS / detect_file_seconds),
            "detect_chunked_rows_per_second": round(
                RATIO_ROWS / streamed_cold
            ),
            "detect_in_memory_rows_per_second": round(
                RATIO_ROWS / in_memory_cold
            ),
            "stream_vs_in_memory_ratio": round(ratio, 3),
            "peak_alloc_small_mb": round(peak_small / 1e6, 2),
            "peak_alloc_large_mb": round(peak_large / 1e6, 2),
            "peak_alloc_growth": round(growth, 3),
            "peak_rss_mb": round(peak_rss, 1),
            "in_memory_engine_cache_info": get_engine(key).cache_info(),
        },
    )
