"""Streaming throughput — out-of-core mark/detect over a 1M-row tier.

The streaming subsystem's two promises, measured and enforced:

* **bounded memory** — a streamed detect's peak Python allocation is a
  function of (chunk size + channel length), *not* of the row count: the
  bench detects the same synthetic stream at a quarter tier and at the
  full tier under ``tracemalloc`` and asserts the peaks agree within a
  small tolerance (an in-memory detector's peak scales linearly — ~4x —
  between those tiers);
* **throughput** — chunking costs overhead (chunk Table construction,
  per-chunk plan arrays, accumulator merges), but it must stay a
  constant factor: streamed detection over in-memory chunks is asserted
  at ≥ 0.5x the one-shot in-memory vector detector on identical rows.

The full file pipeline (synthetic stream -> gzip CSV mark -> streamed
blind verify, the CI *stream-smoke* round trip) is timed end to end and
recorded — rows/sec for mark, file detect (serial and ``workers=N``
parallel, which must be bit-identical and >= 1.7x with a second core),
and kernel-only detect, plus peak RSS — in
``benchmarks/results/stream_throughput.json``; every entry is stamped
with ``cpu_count``/``backend``/``workers``.

``REPRO_BENCH_STREAM_ROWS`` selects the tier (default 1,000,000; the CI
stream-smoke job runs 65,536 with a gzip round trip just the same);
``REPRO_BENCH_STREAM_WORKERS`` pins the parallel worker count (default:
``min(4, cpu_count)``).  A multi-million-rows/s kernel-only parallel
tier runs when >= 8 cores are available.
"""

import os
import resource
import time
import tracemalloc

from repro.core import EmbeddingSpec, Watermark, default_channel_length, verify
from repro.crypto import VECTOR, MarkKey, clear_engine_registry, get_engine
from repro.stream import (
    CSVChunkSink,
    CSVChunkSource,
    TableChunkSource,
    item_scan_source,
    shutdown_stream_pool,
    stream_mark,
    stream_verify,
)

ROWS = int(os.environ.get("REPRO_BENCH_STREAM_ROWS", "1000000"))
CHUNK = int(os.environ.get("REPRO_BENCH_STREAM_CHUNK", "65536"))
ITEMS = 500
E = 60
SEED = 17

CORES = os.cpu_count() or 1

#: parallel worker count of the workers=N columns: every spare core up
#: to 4 (the coordinator saturates beyond that at bench chunk sizes)
BENCH_WORKERS = int(
    os.environ.get("REPRO_BENCH_STREAM_WORKERS", "0")
) or (min(4, CORES) if CORES >= 2 else 1)

#: the parallel-speedup acceptance floor: >= 1.7x single-stream when a
#: second core exists; with one core, workers resolve to 1 (the exact
#: serial path) and must merely not regress (>= 0.95x).  ``None`` when
#: an env override oversubscribes a single core (workers > cores) —
#: that is measured and recorded, but not a supported perf claim.
if BENCH_WORKERS >= 2 and CORES >= 2:
    SPEEDUP_FLOOR = 1.7
elif BENCH_WORKERS <= 1:
    SPEEDUP_FLOOR = 0.95
else:
    SPEEDUP_FLOOR = None

#: the multi-million-rows/s kernel-only parallel tier only means
#: anything with real parallel silicon behind it
MM_TIER_CORES = 8

#: the in-memory-comparison tier: large enough for the vector backend,
#: small enough that the comparison table comfortably fits in RAM
RATIO_ROWS = min(ROWS, 131_072)

WATERMARK = Watermark.from_int(0x2AB, 10)


def _spec(rows: int) -> EmbeddingSpec:
    return EmbeddingSpec(
        key_attribute="Visit_Nbr",
        mark_attribute="Item_Nbr",
        e=E,
        watermark_length=len(WATERMARK),
        # Fixed channel across tiers so the O(channel) accumulator state
        # cannot mask (or fake) row-count-dependent memory growth.
        channel_length=default_channel_length(RATIO_ROWS, E, len(WATERMARK)),
    )


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


#: chunk size of the bounded-memory subtest: small relative to the tier,
#: so both measured tiers run far past the stream engine's O(chunk)
#: cache cap — what saturated steady state actually looks like
MEM_CHUNK = max(1_024, ROWS // 64)


def _streamed_detect_peak(rows: int, key: MarkKey, spec) -> tuple[float, int]:
    """(tracemalloc peak bytes, matched bits) of a streamed detect."""
    source = item_scan_source(
        rows, chunk_size=MEM_CHUNK, item_count=ITEMS, seed=SEED
    )
    tracemalloc.start()
    verdict = stream_verify(source, key, spec, WATERMARK, backend=VECTOR)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak, verdict.verification.matching_bits


def test_stream_throughput_and_bounded_memory(record, record_json, tmp_path):
    key = MarkKey.from_seed("stream-bench")
    spec = _spec(ROWS)
    clear_engine_registry()
    lines = [
        f"streaming pipeline tier: {ROWS} rows, chunk {CHUNK}, e={E}, "
        f"L={spec.channel_length}"
    ]

    # -- end-to-end file pipeline: synthetic -> gzip CSV mark -> verify ----
    marked_path = tmp_path / "marked.csv.gz"
    source = item_scan_source(
        ROWS, chunk_size=CHUNK, item_count=ITEMS, seed=SEED
    )
    started = time.perf_counter()
    mark_result = stream_mark(
        source, WATERMARK, key, spec, CSVChunkSink(marked_path)
    )
    mark_seconds = time.perf_counter() - started
    assert mark_result.rows == ROWS

    suspect = CSVChunkSource(
        marked_path, source.schema, chunk_size=CHUNK, infer_domains=True
    )
    started = time.perf_counter()
    verdict = stream_verify(
        suspect, key, spec, WATERMARK,
        domain=source.schema.attribute("Item_Nbr").domain,
    )
    detect_file_seconds = time.perf_counter() - started
    assert verdict.detected and verdict.rows == ROWS
    lines.append(
        f"  mark   -> gzip CSV : {ROWS / mark_seconds:>12,.0f} rows/s "
        f"({mark_seconds:.2f}s, {mark_result.applied} carriers rewritten)"
    )
    lines.append(
        f"  detect <- gzip CSV : {ROWS / detect_file_seconds:>12,.0f} rows/s "
        f"({detect_file_seconds:.2f}s, "
        f"{verdict.verification.matching_bits}/{len(WATERMARK)} bits)"
    )

    # -- parallel file detect: workers=1 vs workers=N ----------------------
    # Best-of-2 on both sides: run 1 pays the pool fork + worker warm-up,
    # run 2 reuses the persistent pool — the steady state a long scan
    # (or repeated scans) actually sees.
    def _file_detect(workers):
        suspect_again = CSVChunkSource(
            marked_path, source.schema, chunk_size=CHUNK, infer_domains=True
        )
        started_at = time.perf_counter()
        got = stream_verify(
            suspect_again, key, spec, WATERMARK,
            domain=source.schema.attribute("Item_Nbr").domain,
            workers=workers,
        )
        return time.perf_counter() - started_at, got

    serial_best = min(detect_file_seconds, _file_detect(None)[0])
    parallel_cold, parallel_verdict = _file_detect(BENCH_WORKERS)
    parallel_warm, _ = _file_detect(BENCH_WORKERS)
    parallel_best = min(parallel_cold, parallel_warm)
    # The acceptance bar under the speedup: same bits, same votes.
    assert parallel_verdict.votes == verdict.votes
    assert (
        parallel_verdict.verification.matching_bits
        == verdict.verification.matching_bits
    )
    speedup = serial_best / parallel_best
    lines.append(
        f"  detect, workers={BENCH_WORKERS}  : "
        f"{ROWS / parallel_best:>12,.0f} rows/s "
        f"({parallel_best:.2f}s) -> {speedup:.2f}x of single-stream "
        + (
            f"(floor {SPEEDUP_FLOOR}x, {CORES} cores)"
            if SPEEDUP_FLOOR is not None
            else f"(floor skipped: oversubscribed on {CORES} core(s))"
        )
    )
    if SPEEDUP_FLOOR is not None:
        assert speedup >= SPEEDUP_FLOOR, (
            f"parallel file detect at {speedup:.2f}x of single-stream "
            f"with workers={BENCH_WORKERS} on {CORES} cores "
            f"(floor {SPEEDUP_FLOOR}x)"
        )

    # -- multi-million-rows/s kernel-only parallel tier --------------------
    mm_rows_per_second = None
    if CORES >= MM_TIER_CORES and BENCH_WORKERS >= 2:
        from repro.relational import Table

        mm_source = item_scan_source(
            ROWS, chunk_size=CHUNK, item_count=ITEMS, seed=SEED
        )
        mm_rows = []
        for chunk in mm_source:
            mm_rows.extend(chunk)
        mm_table = Table(mm_source.schema, mm_rows, name="mm")
        del mm_rows

        def _kernel_detect():
            started_at = time.perf_counter()
            stream_verify(
                TableChunkSource(mm_table, chunk_size=CHUNK),
                key, spec, WATERMARK, backend=VECTOR,
                workers=BENCH_WORKERS,
            )
            return time.perf_counter() - started_at

        mm_best = min(_kernel_detect(), _kernel_detect())
        mm_rows_per_second = ROWS / mm_best
        lines.append(
            f"  detect, kernel-only workers={BENCH_WORKERS}: "
            f"{mm_rows_per_second:>12,.0f} rows/s ({mm_best:.2f}s)"
        )
        assert mm_rows_per_second >= 2_000_000, (
            f"kernel-only parallel detect at {mm_rows_per_second:,.0f} "
            f"rows/s with {BENCH_WORKERS} workers on {CORES} cores "
            f"(floor 2M rows/s)"
        )
    shutdown_stream_pool()

    # -- kernel-only streamed detect vs in-memory vector detect ------------
    # Same rows, chunked from memory: isolates the chunking overhead from
    # CSV parsing.  The streamed path must hold >= 0.5x of the one-shot
    # in-memory vector detector.
    base_source = item_scan_source(
        RATIO_ROWS, chunk_size=CHUNK, item_count=ITEMS, seed=SEED
    )
    from repro.relational import Table

    rows_accumulator = []
    for chunk in base_source:
        rows_accumulator.extend(chunk)
    table = Table(base_source.schema, rows_accumulator, name="ratio")
    del rows_accumulator
    marked_sink_rows = []
    marked_source = CSVChunkSource(
        marked_path, base_source.schema, chunk_size=CHUNK
    )
    for chunk in marked_source.chunks():
        marked_sink_rows.extend(chunk)
        if len(marked_sink_rows) >= RATIO_ROWS:
            break
    marked_table = Table(
        base_source.schema, marked_sink_rows[:RATIO_ROWS], name="ratio_marked"
    )
    del marked_sink_rows

    clear_engine_registry()
    started = time.perf_counter()
    in_memory = verify(marked_table, key, spec, WATERMARK, engine=VECTOR)
    in_memory_cold = time.perf_counter() - started
    started = time.perf_counter()
    verify(marked_table, key, spec, WATERMARK, engine=VECTOR)
    in_memory_warm = time.perf_counter() - started

    started = time.perf_counter()
    streamed = stream_verify(
        TableChunkSource(marked_table, chunk_size=CHUNK),
        key, spec, WATERMARK, backend=VECTOR,
    )
    streamed_cold = time.perf_counter() - started
    assert streamed.verification.matching_bits == in_memory.matching_bits
    ratio = in_memory_cold / streamed_cold
    lines.append(
        f"  detect, in-memory  : {RATIO_ROWS / in_memory_cold:>12,.0f} rows/s"
        f" cold / {RATIO_ROWS / in_memory_warm:,.0f} warm ({RATIO_ROWS} rows)"
    )
    lines.append(
        f"  detect, chunked    : {RATIO_ROWS / streamed_cold:>12,.0f} rows/s "
        f"cold -> {ratio:.2f}x of in-memory (floor 0.5x)"
    )
    assert ratio >= 0.5, (
        f"streamed detection at {ratio:.2f}x of the in-memory vector "
        f"detector (floor 0.5x)"
    )

    # -- bounded memory: peak independent of row count ----------------------
    small_rows = max(ROWS // 4, 8 * MEM_CHUNK)
    peak_small, bits_small = _streamed_detect_peak(small_rows, key, spec)
    peak_large, bits_large = _streamed_detect_peak(ROWS, key, spec)
    growth = peak_large / peak_small
    lines.append(
        f"  detect peak alloc  : {peak_small / 1e6:.1f} MB at {small_rows} "
        f"rows vs {peak_large / 1e6:.1f} MB at {ROWS} rows, chunk "
        f"{MEM_CHUNK} ({growth:.2f}x growth over a "
        f"{ROWS / small_rows:.1f}x tier jump)"
    )
    # An O(rows) detector would grow ~ROWS/small_rows (4x); O(chunk +
    # channel) streaming must stay flat modulo allocator noise.
    assert growth < 1.5, (
        f"streamed detect peak allocation grew {growth:.2f}x when rows "
        f"grew {ROWS / small_rows:.0f}x — memory is not bounded"
    )

    peak_rss = _peak_rss_mb()
    lines.append(f"  process peak RSS   : {peak_rss:.0f} MB")
    text = "\n".join(lines)
    record("stream_throughput", text)
    record_json(
        "stream_throughput",
        {
            "rows": ROWS,
            "chunk_size": CHUNK,
            "channel_length": spec.channel_length,
            "backend": "vector+stream",
            "workers": BENCH_WORKERS,
            "mark_rows_per_second": round(ROWS / mark_seconds),
            "detect_file_rows_per_second": round(ROWS / detect_file_seconds),
            "detect_file_serial_best_rows_per_second": round(
                ROWS / serial_best
            ),
            "detect_file_parallel_rows_per_second": round(
                ROWS / parallel_best
            ),
            "parallel_speedup": round(speedup, 3),
            "parallel_speedup_floor": SPEEDUP_FLOOR,
            "detect_kernel_parallel_rows_per_second": (
                round(mm_rows_per_second) if mm_rows_per_second else None
            ),
            "detect_chunked_rows_per_second": round(
                RATIO_ROWS / streamed_cold
            ),
            "detect_in_memory_rows_per_second": round(
                RATIO_ROWS / in_memory_cold
            ),
            "stream_vs_in_memory_ratio": round(ratio, 3),
            "peak_alloc_small_mb": round(peak_small / 1e6, 2),
            "peak_alloc_large_mb": round(peak_large / 1e6, 2),
            "peak_alloc_growth": round(growth, 3),
            "peak_rss_mb": round(peak_rss, 1),
            "in_memory_engine_cache_info": get_engine(key).cache_info(),
        },
    )
