"""Reliability-layer overhead — the "zero cost when disarmed" claim, measured.

The fault-injection points, the retry plumbing and the stall-safety
checks sit on the streaming hot path (every chunk read, write, flush and
checkpoint crosses one), so the reliability layer's contract is that it
is *free* until something actually fails:

* **disarmed ``fault_point``** — a module-global ``None`` check; the
  bench times it raw and asserts it stays under a microsecond per call,
  so injection points can be sprinkled without throughput anxiety;
* **disarmed ``check_deadline``** — the stall-safety twin (a single
  ``is not None`` test), held to the same sub-microsecond bar, and the
  *armed* check (one ``time.monotonic()`` call) measured alongside;
* **retry-armed, fault-free streaming** — a streamed mark with a
  ``RetryPolicy`` attached (bookkeeping armed: ``flush_state`` snapshots
  per chunk, ``call_with_retry`` wrappers) must hold at least 0.6x the
  fail-fast path's throughput on a clean run;
* **deadline-armed streaming** — a generous ``Deadline`` threaded
  through the same run (one boundary check per chunk) must also hold
  0.6x, byte-identically;
* **manifest-armed streaming** — a checkpointed run that additionally
  journals chunk-hash digests (sha256 over every flushed byte plus a
  row-content digest per chunk) must hold at least 0.9x the throughput
  of the same checkpointed run with recording off: integrity is only
  on-by-default because hashing is nearly free next to the embed kernel.

All series land in ``benchmarks/results/reliability_overhead.json``.
``REPRO_BENCH_RELIABILITY_ROWS`` selects the tier (default 100,000).
"""

import os
import time
import timeit

from repro.core import EmbeddingSpec, Watermark, default_channel_length
from repro.crypto import MarkKey
from repro.datagen import generate_item_scan
from repro.reliability import (
    Deadline,
    RetryPolicy,
    check_deadline,
    fault_point,
)
from repro.stream import CSVChunkSink, TableChunkSource, stream_mark

ROWS = int(os.environ.get("REPRO_BENCH_RELIABILITY_ROWS", "100000"))
CHUNK = max(1_024, ROWS // 16)
E = 60
WATERMARK = Watermark.from_int(0x2AB, 10)


def _spec() -> EmbeddingSpec:
    return EmbeddingSpec(
        key_attribute="Visit_Nbr",
        mark_attribute="Item_Nbr",
        e=E,
        watermark_length=len(WATERMARK),
        channel_length=default_channel_length(ROWS, E, len(WATERMARK)),
    )


def _mark_seconds(base, key, spec, path, retry, deadline=None, **kwargs) -> float:
    started = time.perf_counter()
    result = stream_mark(
        TableChunkSource(base, chunk_size=CHUNK), WATERMARK, key, spec,
        CSVChunkSink(path), retry=retry, deadline=deadline, **kwargs,
    )
    seconds = time.perf_counter() - started
    assert result.rows == ROWS
    assert result.reliability.total_retries == 0  # fault-free by design
    return seconds


def test_disarmed_and_fault_free_overhead(record, record_json, tmp_path):
    # -- disarmed fault_point: one global load + None check ----------------
    calls = 200_000
    per_call = (
        timeit.timeit(lambda: fault_point("bench.point", 0), number=calls)
        / calls
    )
    assert per_call < 1e-6, (
        f"disarmed fault_point costs {per_call * 1e9:.0f}ns/call — "
        "no longer negligible on the chunk hot path"
    )

    # -- disarmed / armed check_deadline -----------------------------------
    deadline_disarmed = (
        timeit.timeit(
            lambda: check_deadline(None, "bench.point", 0), number=calls
        )
        / calls
    )
    assert deadline_disarmed < 1e-6, (
        f"disarmed check_deadline costs {deadline_disarmed * 1e9:.0f}ns/"
        "call — no longer negligible on the chunk hot path"
    )
    generous = Deadline(3600.0)
    deadline_armed = (
        timeit.timeit(
            lambda: check_deadline(generous, "bench.point", 0), number=calls
        )
        / calls
    )

    # -- retry-armed vs fail-fast streamed mark, no faults -----------------
    base = generate_item_scan(ROWS, item_count=500, seed=17)
    key = MarkKey.from_seed("reliability-bench")
    spec = _spec()
    fail_fast = _mark_seconds(base, key, spec, tmp_path / "a.csv", None)
    armed = _mark_seconds(
        base, key, spec, tmp_path / "b.csv", RetryPolicy()
    )
    assert (tmp_path / "a.csv").read_bytes() == (tmp_path / "b.csv").read_bytes()
    ratio = fail_fast / armed
    assert ratio >= 0.6, (
        f"retry bookkeeping costs {1 / ratio:.2f}x on a clean run — "
        "the reliability layer is no longer near-free when idle"
    )

    # -- deadline-armed streamed mark, never expiring ----------------------
    budgeted = _mark_seconds(
        base, key, spec, tmp_path / "c.csv", None,
        deadline=Deadline(3600.0),
    )
    assert (tmp_path / "a.csv").read_bytes() == (tmp_path / "c.csv").read_bytes()
    deadline_ratio = fail_fast / budgeted
    assert deadline_ratio >= 0.6, (
        f"deadline checks cost {1 / deadline_ratio:.2f}x on a clean run — "
        "stall-safety is no longer near-free when the budget is generous"
    )

    # -- manifest-armed vs recording-off, same checkpointed run ------------
    # both runs checkpoint (equal durability cost); the delta is purely
    # the sha256 pass over flushed bytes + the per-chunk journal append
    plain_ckpt = _mark_seconds(
        base, key, spec, tmp_path / "d.csv", None,
        checkpoint_path=tmp_path / "d.ckpt", manifest=False,
    )
    hashed = _mark_seconds(
        base, key, spec, tmp_path / "e.csv", None,
        checkpoint_path=tmp_path / "e.ckpt", manifest=True,
    )
    assert (tmp_path / "d.csv").read_bytes() == (tmp_path / "e.csv").read_bytes()
    manifest_ratio = plain_ckpt / hashed
    assert manifest_ratio >= 0.9, (
        f"manifest hashing costs {1 / manifest_ratio:.2f}x on a clean "
        "checkpointed run — too heavy to stay on by default"
    )

    lines = [
        f"reliability overhead tier: {ROWS} rows, chunk {CHUNK}",
        f"  disarmed fault_point   : {per_call * 1e9:>8.1f} ns/call",
        f"  disarmed check_deadline: {deadline_disarmed * 1e9:>8.1f} ns/call",
        f"  armed check_deadline   : {deadline_armed * 1e9:>8.1f} ns/call",
        f"  mark fail-fast         : {ROWS / fail_fast:>12,.0f} rows/s",
        f"  mark retry-armed       : {ROWS / armed:>12,.0f} rows/s "
        f"({ratio:.2f}x of fail-fast)",
        f"  mark deadline-armed    : {ROWS / budgeted:>12,.0f} rows/s "
        f"({deadline_ratio:.2f}x of fail-fast)",
        f"  mark checkpointed      : {ROWS / plain_ckpt:>12,.0f} rows/s",
        f"  mark manifest-armed    : {ROWS / hashed:>12,.0f} rows/s "
        f"({manifest_ratio:.2f}x of checkpointed)",
    ]
    record("reliability_overhead", "\n".join(lines))
    record_json(
        "reliability_overhead",
        {
            "rows": ROWS,
            "chunk": CHUNK,
            "fault_point_ns": round(per_call * 1e9, 1),
            "deadline_check_disarmed_ns": round(deadline_disarmed * 1e9, 1),
            "deadline_check_armed_ns": round(deadline_armed * 1e9, 1),
            "mark_fail_fast_rows_per_s": round(ROWS / fail_fast),
            "mark_retry_armed_rows_per_s": round(ROWS / armed),
            "mark_deadline_armed_rows_per_s": round(ROWS / budgeted),
            "armed_over_fail_fast": round(armed / fail_fast, 4),
            "deadline_over_fail_fast": round(budgeted / fail_fast, 4),
            "mark_checkpointed_rows_per_s": round(ROWS / plain_ckpt),
            "mark_manifest_armed_rows_per_s": round(ROWS / hashed),
            "manifest_over_checkpointed": round(hashed / plain_ckpt, 4),
        },
    )
