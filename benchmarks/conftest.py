"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's figures (or an ablation) and

* prints the series (visible with ``pytest -s``),
* writes it to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can
  reference stable artefacts,
* appends a structured run entry to ``<results>/<name>.json`` via the
  shared ``record_json`` fixture (``--bench-json`` selects the directory),
  so every bench — not just throughput — accumulates a trajectory across
  runs, and
* asserts the paper's *shape* claims (who wins, rough factors, crossover
  direction) — never absolute percentages (different data/ECC constants).

Workload sizing follows §5 (N = 6000 ItemScan tuples, |wm| = 10) with the
pass count reduced from 15 to 5 to keep the suite fast; the
``REPRO_BENCH_PASSES`` environment variable restores full averaging.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments import FigureConfig

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_PASSES = int(os.environ.get("REPRO_BENCH_PASSES", "5"))

#: the paper's workload shape at bench-friendly pass count
PAPER_CONFIG = FigureConfig(
    tuple_count=6000, item_count=500, passes=BENCH_PASSES
)


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=str(RESULTS_DIR),
        help=(
            "directory receiving the per-bench JSON trajectory files "
            "(one <bench>.json per bench, a run entry appended per run)"
        ),
    )


@pytest.fixture(scope="session")
def record():
    """Persist a bench's series text under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n")

    return _record


def _default_backend_label() -> str:
    """The backend the AUTO heuristic picks at the bench workload scale —
    what a bench that doesn't select backends explicitly actually ran on."""
    from repro.core import auto_backend

    return auto_backend(PAPER_CONFIG.tuple_count)


@pytest.fixture(scope="session")
def record_json(request):
    """Append one structured run entry to ``<bench-json-dir>/<name>.json``.

    The file holds ``{"runs": [...]}``; every bench appends
    ``{"timestamp": ..., **payload}`` so trajectories (throughput, sweep
    speedups, detection rates) accumulate across runs in one uniform
    format.  Every entry is additionally stamped with ``cpu_count`` and
    ``backend`` (overridable through the payload) so throughput
    trajectories stay comparable across hosts and execution backends.
    """
    base = Path(request.config.getoption("--bench-json"))
    base.mkdir(parents=True, exist_ok=True)

    def _record(name: str, payload: dict) -> None:
        path = base / f"{name}.json"
        history = []
        if path.exists():
            history = json.loads(path.read_text(encoding="utf-8")).get(
                "runs", []
            )
        history.append(
            {
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "cpu_count": os.cpu_count(),
                "backend": _default_backend_label(),
                **payload,
            }
        )
        path.write_text(
            json.dumps({"runs": history}, indent=2) + "\n", encoding="utf-8"
        )

    return _record


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The figure sweeps are multi-second workloads; statistical repetition
    belongs to the experiment runner (multi-pass averaging), not the timer.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def series_payload(points) -> list[dict]:
    """JSON-friendly view of a list of ExperimentPoints."""
    return [
        {
            "x": point.x,
            "mean_alteration": round(point.mean_alteration, 6),
            "detection_rate": round(point.detection_rate, 6),
        }
        for point in points
    ]
