"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's figures (or an ablation) and

* prints the series (visible with ``pytest -s``),
* writes it to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can
  reference stable artefacts, and
* asserts the paper's *shape* claims (who wins, rough factors, crossover
  direction) — never absolute percentages (different data/ECC constants).

Workload sizing follows §5 (N = 6000 ItemScan tuples, |wm| = 10) with the
pass count reduced from 15 to 5 to keep the suite fast; the
``REPRO_BENCH_PASSES`` environment variable restores full averaging.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import FigureConfig

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_PASSES = int(os.environ.get("REPRO_BENCH_PASSES", "5"))

#: the paper's workload shape at bench-friendly pass count
PAPER_CONFIG = FigureConfig(
    tuple_count=6000, item_count=500, passes=BENCH_PASSES
)


@pytest.fixture(scope="session")
def record():
    """Persist a bench's series text under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n")

    return _record


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The figure sweeps are multi-second workloads; statistical repetition
    belongs to the experiment runner (multi-pass averaging), not the timer.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
