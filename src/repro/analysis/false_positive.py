"""False-positive (court-time) analysis (§4.4).

"What is the probability of a given watermark of length |wm| to be detected
in a random data set of size N?"  Every extracted bit of an unmarked
relation is an independent coin flip against the claimed watermark, so:

* matching all ``|wm|`` watermark bits by chance: ``(1/2)^|wm|``;
* matching the full redundant channel (multiple embeddings, all ``N/e``
  slots): ``(1/2)^(N/e)`` — the paper's ``N = 6000, e = 60`` example gives
  ``(1/2)^100 ≈ 7.9e-31``;
* the partial-match significance test used by
  :func:`repro.core.false_hit_probability` is the binomial tail of the
  same model.
"""

from __future__ import annotations

import random

from scipy import stats


class FalsePositiveError(Exception):
    """Invalid parameters for a false-positive computation."""


def random_watermark_match_probability(watermark_length: int) -> float:
    """``(1/2)^|wm|`` — chance of a full watermark match in random data."""
    if watermark_length <= 0:
        raise FalsePositiveError(
            f"watermark length must be positive, got {watermark_length}"
        )
    return 0.5 ** watermark_length


def full_channel_match_probability(tuple_count: int, e: int) -> float:
    """``(1/2)^(N/e)`` — chance of matching every redundant channel bit.

    The paper's worked number: ``N = 6000, e = 60`` → ``≈ 7.8e-31``.
    """
    if tuple_count <= 0:
        raise FalsePositiveError(
            f"tuple count must be positive, got {tuple_count}"
        )
    if e <= 0:
        raise FalsePositiveError(f"e must be positive, got {e}")
    return 0.5 ** (tuple_count / e)


def partial_match_probability(matching_bits: int, watermark_length: int) -> float:
    """``P[Binom(|wm|, 1/2) >= matching_bits]`` — the significance of a
    partial match claim."""
    if watermark_length <= 0:
        raise FalsePositiveError(
            f"watermark length must be positive, got {watermark_length}"
        )
    if not 0 <= matching_bits <= watermark_length:
        raise FalsePositiveError(
            f"matching bits {matching_bits} outside [0, {watermark_length}]"
        )
    return float(stats.binom.sf(matching_bits - 1, watermark_length, 0.5))


def required_matches_for_significance(
    watermark_length: int, significance: float
) -> int:
    """Fewest matching bits making the false-hit probability <= significance.

    Returns ``watermark_length + 1`` when even a perfect match is not
    significant (the watermark is too short for the requested confidence —
    a bandwidth warning the owner should see before embedding).
    """
    if not 0.0 < significance < 1.0:
        raise FalsePositiveError(
            f"significance must be in (0, 1), got {significance}"
        )
    for matches in range(watermark_length + 1):
        if partial_match_probability(matches, watermark_length) <= significance:
            return matches
    return watermark_length + 1


def monte_carlo_match_distribution(
    watermark_length: int, trials: int, rng: random.Random
) -> list[int]:
    """Simulate the matched-bit count of random detections.

    Cross-checks the closed forms: each trial draws a random extracted
    watermark against a random claimed watermark and counts agreements.
    Used by the analysis bench to verify the binomial model empirically.
    """
    if trials <= 0:
        raise FalsePositiveError(f"trials must be positive, got {trials}")
    counts = [0] * (watermark_length + 1)
    for _ in range(trials):
        matches = sum(
            rng.randrange(2) == rng.randrange(2)
            for _ in range(watermark_length)
        )
        counts[matches] += 1
    return counts
