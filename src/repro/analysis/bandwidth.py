"""Embedding-bandwidth accounting (§2.4, §3.1).

Watermarking needs bandwidth; for categorical data it comes from two
channels the paper identifies: the direct domain (only ``log2(nA)`` bits —
usually hopeless, e.g. 14 bits for 16 000 departure cities) and the
attribute associations (``~N/e`` carrier tuples).  These helpers quantify
both, plus the data-alteration cost a given parameter choice implies.
"""

from __future__ import annotations

import math


class BandwidthError(Exception):
    """Invalid parameters for a bandwidth computation."""


def direct_domain_bits(domain_size: int) -> float:
    """``log2(nA)`` — entropy of a single categorical value (§3.1).

    The paper's example: ``nA = 16000`` yields only ~14 bits, which is why
    direct-domain embedding is a dead end for any convincing mark.
    """
    if domain_size <= 0:
        raise BandwidthError(f"domain size must be positive, got {domain_size}")
    return math.log2(domain_size)


def association_channel_bits(tuple_count: int, e: int) -> int:
    """``N/e`` — carrier slots in the key↔attribute association channel."""
    if tuple_count < 0:
        raise BandwidthError(f"tuple count must be non-negative, got {tuple_count}")
    if e <= 0:
        raise BandwidthError(f"e must be positive, got {e}")
    return round(tuple_count / e)


def expected_alteration_fraction(e: int, domain_size: int) -> float:
    """Expected fraction of tuples actually altered by one embedding pass.

    One tuple in ``e`` is a carrier; a carrier's value is rewritten to a
    keyed pseudo-random pair member, which coincides with the current value
    roughly once in ``nA`` (for an approximately uniform prior) — those
    coincidences cost nothing.
    """
    if e <= 0:
        raise BandwidthError(f"e must be positive, got {e}")
    if domain_size <= 0:
        raise BandwidthError(f"domain size must be positive, got {domain_size}")
    return (1.0 / e) * (1.0 - 1.0 / domain_size)


def replication_factor(tuple_count: int, e: int, watermark_length: int) -> float:
    """Average carriers per watermark bit under the majority layout.

    The resilience dial of Figure 5: more carriers per bit (smaller ``e``)
    means a random attack must flip more of them to swing a majority.
    """
    if watermark_length <= 0:
        raise BandwidthError(
            f"watermark length must be positive, got {watermark_length}"
        )
    return association_channel_bits(tuple_count, e) / watermark_length


def minimum_tuples_for_watermark(watermark_length: int, e: int) -> int:
    """Smallest relation that can carry ``watermark_length`` bits at all."""
    if watermark_length <= 0:
        raise BandwidthError(
            f"watermark length must be positive, got {watermark_length}"
        )
    if e <= 0:
        raise BandwidthError(f"e must be positive, got {e}")
    return watermark_length * e
