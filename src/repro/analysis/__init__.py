"""Closed-form analysis from §4.4: vulnerability, false positives, bandwidth."""

from .advisor import AdvisorError, Recommendation, recommend_parameters
from .bandwidth import (
    BandwidthError,
    association_channel_bits,
    direct_domain_bits,
    expected_alteration_fraction,
    minimum_tuples_for_watermark,
    replication_factor,
)
from .erasure import (
    ErasureError,
    bit_undecidable_probability,
    carriers_for_fidelity,
    expected_clean_alteration,
    expected_erased_slots,
    slot_erasure_probability,
)
from .false_positive import (
    FalsePositiveError,
    full_channel_match_probability,
    monte_carlo_match_distribution,
    partial_match_probability,
    random_watermark_match_probability,
    required_matches_for_significance,
)
from .vulnerability import (
    AnalysisError,
    VulnerabilityProfile,
    attack_success_exact,
    attack_success_normal,
    conservative_minimum_e,
    effective_trials,
    normal_approximation_valid,
    paper_minimum_e,
    vulnerability_profile,
    watermark_bits_damaged,
)

__all__ = [
    "AdvisorError",
    "AnalysisError",
    "Recommendation",
    "recommend_parameters",
    "BandwidthError",
    "ErasureError",
    "bit_undecidable_probability",
    "carriers_for_fidelity",
    "expected_clean_alteration",
    "expected_erased_slots",
    "slot_erasure_probability",
    "FalsePositiveError",
    "VulnerabilityProfile",
    "association_channel_bits",
    "attack_success_exact",
    "attack_success_normal",
    "conservative_minimum_e",
    "direct_domain_bits",
    "effective_trials",
    "expected_alteration_fraction",
    "full_channel_match_probability",
    "minimum_tuples_for_watermark",
    "monte_carlo_match_distribution",
    "normal_approximation_valid",
    "paper_minimum_e",
    "partial_match_probability",
    "random_watermark_match_probability",
    "replication_factor",
    "required_matches_for_significance",
    "vulnerability_profile",
    "watermark_bits_damaged",
]
