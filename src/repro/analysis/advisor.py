"""Parameter advisor: choose ``e`` (and check |wm|) from first principles.

§4.4 derives the alteration/resilience trade-off but leaves parameter
selection to the owner.  This module packages the repo's closed forms into
one decision: given the relation size, the domain size, the payload length
and the owner's budgets, recommend the largest ``e`` (fewest alterations)
that still satisfies

* a clean-detection fidelity target (slot-erasure model,
  :mod:`repro.analysis.erasure`);
* a random-alteration vulnerability bound against an assumed attacker
  (:mod:`repro.analysis.vulnerability`); and
* the owner's alteration budget (:mod:`repro.analysis.bandwidth`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .bandwidth import expected_alteration_fraction
from .erasure import bit_undecidable_probability
from .false_positive import required_matches_for_significance
from .vulnerability import attack_success_exact


class AdvisorError(Exception):
    """No parameter choice satisfies the requested budgets."""


@dataclass(frozen=True)
class Recommendation:
    """A concrete, justified parameter choice."""

    e: int
    expected_alteration_fraction: float
    channel_length: int
    carriers_per_bit: float
    clean_bit_failure: float
    attack_success: float
    required_matches: int
    warnings: tuple[str, ...] = field(default=())

    def summary(self) -> str:
        lines = [
            f"e = {self.e}",
            f"expected data alteration : {self.expected_alteration_fraction:.2%}",
            f"channel length |wm_data| : {self.channel_length}",
            f"carriers per wm bit      : {self.carriers_per_bit:.1f}",
            f"clean bit-failure prob   : {self.clean_bit_failure:.2g}",
            f"attack success P(r,a)    : {self.attack_success:.2g}",
            f"matches needed in court  : {self.required_matches}",
        ]
        lines.extend(f"warning: {w}" for w in self.warnings)
        return "\n".join(lines)


def recommend_parameters(
    tuple_count: int,
    domain_size: int,
    watermark_length: int,
    max_alteration: float = 0.05,
    attack_fraction: float = 0.10,
    flip_probability: float = 0.7,
    vulnerability_bound: float = 0.10,
    clean_fidelity: float = 1e-3,
    significance: float = 0.01,
    ecc_tolerance: float = 1.0 / 3.0,
    e_max: int = 500,
) -> Recommendation:
    """Largest ``e`` meeting every budget (fewest alterations wins).

    ``attack_fraction`` models the strongest random-alteration attack the
    owner wants protection against (the paper's working example: 10 % of
    tuples, ``p = 0.7``); ``vulnerability_bound`` caps the probability that
    such an attack flips at least one *net* watermark bit (computed via
    the binomial tail at the channel damage needed for one bit).

    Raises :class:`AdvisorError` when even ``e = 1`` cannot satisfy the
    budgets — the §2.4 "lack of bandwidth" condition.
    """
    _validate(tuple_count, domain_size, watermark_length, max_alteration,
              attack_fraction, flip_probability, vulnerability_bound,
              clean_fidelity, significance, ecc_tolerance, e_max)
    attack_tuples = round(attack_fraction * tuple_count)
    warnings: list[str] = []

    required = required_matches_for_significance(
        watermark_length, significance
    )
    if required > watermark_length:
        raise AdvisorError(
            f"a {watermark_length}-bit watermark can never reach "
            f"significance {significance:g}; use a longer payload"
        )
    if required == watermark_length:
        warnings.append(
            f"court test needs a PERFECT {watermark_length}-bit match at "
            f"significance {significance:g}; consider a longer payload"
        )

    best: Recommendation | None = None
    for e in range(1, e_max + 1):
        alteration = expected_alteration_fraction(e, domain_size)
        if alteration > max_alteration:
            continue  # larger e only improves this; keep scanning upward
        channel_length = max(watermark_length, round(tuple_count / e))
        carriers = round(tuple_count / e)
        if carriers < watermark_length:
            break  # and every larger e is worse
        clean_failure = bit_undecidable_probability(
            carriers, channel_length, watermark_length
        )
        if clean_failure > clean_fidelity:
            break
        # Channel bits an attacker must flip to damage one net wm bit —
        # the inverse of §4.4's damage formula: the ECC absorbs a
        # ``t_ecc`` fraction of the channel, and one surviving bit of
        # damage costs a further L/|wm| channel flips.  ``t_ecc = 1/3``
        # is conservative for the interleaved majority code (which
        # tolerates just under 1/2 per residue class).
        r = max(
            1,
            math.ceil(
                ecc_tolerance * channel_length
                + channel_length / watermark_length
            ),
        )
        success = attack_success_exact(
            r, attack_tuples, flip_probability, e
        )
        if success > vulnerability_bound:
            # not monotone in e (both the damage threshold r and the
            # attacked-carrier count shrink with e): keep scanning
            continue
        candidate = Recommendation(
            e=e,
            expected_alteration_fraction=alteration,
            channel_length=channel_length,
            carriers_per_bit=carriers / watermark_length,
            clean_bit_failure=clean_failure,
            attack_success=success,
            required_matches=required,
            warnings=tuple(warnings),
        )
        best = candidate  # keep the largest passing e
    if best is None:
        raise AdvisorError(
            "no e satisfies the requested budgets: relax max_alteration, "
            "shorten the watermark, or accept more vulnerability"
        )
    if best.e == e_max:
        best = Recommendation(
            **{
                **best.__dict__,
                "warnings": best.warnings + (
                    f"recommendation saturated at e_max={e_max}; larger e "
                    f"may also satisfy the budgets",
                ),
            }
        )
    return best


def _validate(
    tuple_count, domain_size, watermark_length, max_alteration,
    attack_fraction, flip_probability, vulnerability_bound,
    clean_fidelity, significance, ecc_tolerance, e_max,
) -> None:
    if tuple_count <= 0:
        raise AdvisorError(f"tuple count must be positive, got {tuple_count}")
    if domain_size < 2:
        raise AdvisorError(
            f"domain size must be at least 2, got {domain_size}"
        )
    if watermark_length <= 0:
        raise AdvisorError(
            f"watermark length must be positive, got {watermark_length}"
        )
    for name, value in (
        ("max_alteration", max_alteration),
        ("attack_fraction", attack_fraction),
        ("flip_probability", flip_probability),
        ("vulnerability_bound", vulnerability_bound),
        ("clean_fidelity", clean_fidelity),
        ("significance", significance),
        ("ecc_tolerance", ecc_tolerance),
    ):
        if not 0.0 <= value <= 1.0:
            raise AdvisorError(f"{name} must be in [0, 1], got {value}")
    if e_max <= 0:
        raise AdvisorError(f"e_max must be positive, got {e_max}")
