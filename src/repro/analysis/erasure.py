"""Slot-erasure analysis for the keyed variant.

The keyed variant addresses ``wm_data`` slots by a hash of the tuple key
(§3.2.1), so with ``C`` carriers and ``L`` slots the per-slot hit count is
~Binomial(C, 1/L): some slots receive no carrier at all.  The paper notes
the case qualitatively ("arguably rare cases... error correction can
tolerate such small changes"); this module makes it quantitative, so owners
can size ``e`` (and hence ``C/L``) for a target clean-detection fidelity —
and so the test suite can assert the observed erasure behaviour matches the
model.

Besides the closed forms, :func:`empirical_erasure` runs the §5-style
multi-pass Monte-Carlo cross-check on a real relation.  It is built on the
sweep engine's :class:`~repro.experiments.sweepengine.EmbeddedPass`
machinery: each keyed pass is embedded once (and shared with any sweep of
the same relation in the process), so measuring erasures across 15 keys
costs 15 embeds and zero re-hashing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..relational import Table


class ErasureError(Exception):
    """Invalid parameters for an erasure computation."""


def slot_erasure_probability(carriers: int, channel_length: int) -> float:
    """P[a given slot receives no carrier] = ``(1 − 1/L)^C``."""
    if channel_length <= 0:
        raise ErasureError(
            f"channel length must be positive, got {channel_length}"
        )
    if carriers < 0:
        raise ErasureError(f"carriers must be non-negative, got {carriers}")
    return (1.0 - 1.0 / channel_length) ** carriers


def expected_erased_slots(carriers: int, channel_length: int) -> float:
    """Expected number of never-written ``wm_data`` slots."""
    return channel_length * slot_erasure_probability(carriers, channel_length)


def _slot_alias_weights(channel_length: int) -> dict[int, int]:
    """How many ``[2^(w-1), 2^w)`` field values alias onto each slot.

    The §2.1 ``msb`` construction extracts the top bits of the digest's
    *own* representation, so the extracted field always has its leading
    bit set: slot indices are ``v mod L`` for ``v in [2^(w-1), 2^w)``
    with ``w = b(L)``.  Slots absent from the returned map are
    structurally unreachable and erased in *every* pass.
    """
    if channel_length <= 0:
        raise ErasureError(
            f"channel length must be positive, got {channel_length}"
        )
    from collections import Counter

    from ..crypto import bit_length

    width = bit_length(channel_length)
    low, high = 1 << (width - 1), 1 << width
    return Counter(value % channel_length for value in range(low, high))


def reachable_slots(channel_length: int) -> int:
    """Number of ``wm_data`` slots the keyed addressing can actually hit.

    Depending on where ``L`` sits between powers of two this reaches
    between ~L/2 and L slots (L = 100 reaches 64); the remainder are
    structurally erased in every pass.  The uniform model above ignores
    this and is therefore optimistic; see
    :func:`expected_erased_slots_refined`.
    """
    return len(_slot_alias_weights(channel_length))


def expected_erased_slots_refined(
    carriers: int, channel_length: int
) -> float:
    """Expected never-written slots under the *implemented* addressing.

    Splits the channel into structurally unreachable slots (always
    erased) and reachable ones, weighting each reachable slot by how many
    field values alias onto it.  This is the quantity
    :func:`empirical_erasure` measurements converge to; the plain
    :func:`expected_erased_slots` is the paper's idealized uniform model.
    """
    if carriers < 0:
        raise ErasureError(f"carriers must be non-negative, got {carriers}")
    weights = _slot_alias_weights(channel_length)
    span = sum(weights.values())
    reachable_erased = sum(
        (1.0 - multiplicity / span) ** carriers
        for multiplicity in weights.values()
    )
    unreachable = channel_length - len(weights)
    return unreachable + reachable_erased


def bit_undecidable_probability(
    carriers: int, channel_length: int, watermark_length: int
) -> float:
    """P[an entire watermark bit decodes from zero evidence].

    Under the interleaved majority layout, bit ``i`` owns the residue class
    ``{j ≡ i (mod |wm|)}`` of ``floor(L/|wm|)`` (±1) slots; the bit is
    undecidable iff *every* slot of the class is erased.  Slot erasures are
    negatively correlated (a carrier always lands somewhere), so the
    independent-slot product is a slightly conservative upper estimate.
    """
    if watermark_length <= 0:
        raise ErasureError(
            f"watermark length must be positive, got {watermark_length}"
        )
    if channel_length < watermark_length:
        raise ErasureError(
            f"channel {channel_length} shorter than watermark "
            f"{watermark_length}"
        )
    slots_per_bit = channel_length / watermark_length
    per_slot = slot_erasure_probability(carriers, channel_length)
    if per_slot == 0.0:
        return 0.0
    return per_slot ** slots_per_bit


def expected_clean_alteration(
    carriers: int, channel_length: int, watermark_length: int
) -> float:
    """Expected clean-detection mark alteration from erasures alone.

    An undecidable bit falls back to the tie value and is wrong with
    probability 1/2 for a uniform payload.
    """
    return 0.5 * bit_undecidable_probability(
        carriers, channel_length, watermark_length
    )


def carriers_for_fidelity(
    channel_length: int,
    watermark_length: int,
    max_bit_failure: float,
) -> int:
    """Smallest carrier count keeping the per-bit failure below target.

    Inverts :func:`bit_undecidable_probability`:
    ``C ≥ ln(p_target^{m/L}) / ln(1 − 1/L)``.
    """
    if not 0.0 < max_bit_failure < 1.0:
        raise ErasureError(
            f"target failure must be in (0, 1), got {max_bit_failure}"
        )
    if channel_length < watermark_length:
        raise ErasureError(
            f"channel {channel_length} shorter than watermark "
            f"{watermark_length}"
        )
    slots_per_bit = channel_length / watermark_length
    per_slot_target = max_bit_failure ** (1.0 / slots_per_bit)
    carriers = math.log(per_slot_target) / math.log(1.0 - 1.0 / channel_length)
    return max(0, math.ceil(carriers))


@dataclass(frozen=True)
class EmpiricalErasure:
    """Multi-pass measurement of clean-detection slot erasures.

    ``mean_predicted_erased`` is the paper's uniform model
    (:func:`expected_erased_slots`); ``mean_predicted_refined`` accounts
    for the implemented addressing's reachable-slot structure
    (:func:`expected_erased_slots_refined`) and is what the measurement
    converges to.
    """

    passes: int
    channel_length: int
    mean_carriers: float
    mean_observed_erased: float
    mean_predicted_erased: float
    mean_predicted_refined: float

    @property
    def model_gap(self) -> float:
        """Observed minus refined-model erased slots (hovers near 0)."""
        return self.mean_observed_erased - self.mean_predicted_refined


def empirical_erasure(
    base_table: "Table",
    mark_attribute: str,
    e: int,
    passes: int = 15,
    watermark_length: int = 10,
    seed_offset: int = 0,
    ecc_name: str = "majority",
) -> EmpiricalErasure:
    """Monte-Carlo cross-check of the erasure model on a real relation.

    Embeds ``passes`` keyed passes (the paper's §5 smoothing protocol),
    extracts the clean ``wm_data`` slots of each, and compares the observed
    never-written slot count against :func:`expected_erased_slots` at the
    pass's carrier count.  Runs on the shared sweep engine, so the
    embedded passes are cached: a figure sweep over the same relation and
    parameters re-uses them for free, and vice versa.
    """
    if passes <= 0:
        raise ErasureError(f"passes must be positive, got {passes}")
    from ..core.detection import extract_slots
    from ..experiments.sweepengine import (
        SweepProtocol,
        _table_token,
        get_sweep_engine,
    )

    protocol = SweepProtocol(
        mark_attribute=mark_attribute,
        e=e,
        watermark_length=watermark_length,
        ecc_name=ecc_name,
    )
    engine = get_sweep_engine()
    token = _table_token(base_table)
    observed_total = 0
    predicted_total = 0.0
    refined_total = 0.0
    carriers_total = 0
    channel_length = 0
    for seed in range(seed_offset, seed_offset + passes):
        embedded = engine.embedded_pass(
            base_table, protocol, seed, token=token
        )
        spec = embedded.record.spec
        channel_length = spec.channel_length
        slots, fit_count = extract_slots(
            embedded.table,
            embedded.marker.key,
            spec,
            embedding_map=embedded.record.embedding_map,
            engine=embedded.marker.engine,
        )
        observed_total += sum(slot is None for slot in slots)
        predicted_total += expected_erased_slots(fit_count, channel_length)
        refined_total += expected_erased_slots_refined(
            fit_count, channel_length
        )
        carriers_total += fit_count
    return EmpiricalErasure(
        passes=passes,
        channel_length=channel_length,
        mean_carriers=carriers_total / passes,
        mean_observed_erased=observed_total / passes,
        mean_predicted_erased=predicted_total / passes,
        mean_predicted_refined=refined_total / passes,
    )
