"""Slot-erasure analysis for the keyed variant.

The keyed variant addresses ``wm_data`` slots by a hash of the tuple key
(§3.2.1), so with ``C`` carriers and ``L`` slots the per-slot hit count is
~Binomial(C, 1/L): some slots receive no carrier at all.  The paper notes
the case qualitatively ("arguably rare cases... error correction can
tolerate such small changes"); this module makes it quantitative, so owners
can size ``e`` (and hence ``C/L``) for a target clean-detection fidelity —
and so the test suite can assert the observed erasure behaviour matches the
model.
"""

from __future__ import annotations

import math


class ErasureError(Exception):
    """Invalid parameters for an erasure computation."""


def slot_erasure_probability(carriers: int, channel_length: int) -> float:
    """P[a given slot receives no carrier] = ``(1 − 1/L)^C``."""
    if channel_length <= 0:
        raise ErasureError(
            f"channel length must be positive, got {channel_length}"
        )
    if carriers < 0:
        raise ErasureError(f"carriers must be non-negative, got {carriers}")
    return (1.0 - 1.0 / channel_length) ** carriers


def expected_erased_slots(carriers: int, channel_length: int) -> float:
    """Expected number of never-written ``wm_data`` slots."""
    return channel_length * slot_erasure_probability(carriers, channel_length)


def bit_undecidable_probability(
    carriers: int, channel_length: int, watermark_length: int
) -> float:
    """P[an entire watermark bit decodes from zero evidence].

    Under the interleaved majority layout, bit ``i`` owns the residue class
    ``{j ≡ i (mod |wm|)}`` of ``floor(L/|wm|)`` (±1) slots; the bit is
    undecidable iff *every* slot of the class is erased.  Slot erasures are
    negatively correlated (a carrier always lands somewhere), so the
    independent-slot product is a slightly conservative upper estimate.
    """
    if watermark_length <= 0:
        raise ErasureError(
            f"watermark length must be positive, got {watermark_length}"
        )
    if channel_length < watermark_length:
        raise ErasureError(
            f"channel {channel_length} shorter than watermark "
            f"{watermark_length}"
        )
    slots_per_bit = channel_length / watermark_length
    per_slot = slot_erasure_probability(carriers, channel_length)
    if per_slot == 0.0:
        return 0.0
    return per_slot ** slots_per_bit


def expected_clean_alteration(
    carriers: int, channel_length: int, watermark_length: int
) -> float:
    """Expected clean-detection mark alteration from erasures alone.

    An undecidable bit falls back to the tie value and is wrong with
    probability 1/2 for a uniform payload.
    """
    return 0.5 * bit_undecidable_probability(
        carriers, channel_length, watermark_length
    )


def carriers_for_fidelity(
    channel_length: int,
    watermark_length: int,
    max_bit_failure: float,
) -> int:
    """Smallest carrier count keeping the per-bit failure below target.

    Inverts :func:`bit_undecidable_probability`:
    ``C ≥ ln(p_target^{m/L}) / ln(1 − 1/L)``.
    """
    if not 0.0 < max_bit_failure < 1.0:
        raise ErasureError(
            f"target failure must be in (0, 1), got {max_bit_failure}"
        )
    if channel_length < watermark_length:
        raise ErasureError(
            f"channel {channel_length} shorter than watermark "
            f"{watermark_length}"
        )
    slots_per_bit = channel_length / watermark_length
    per_slot_target = max_bit_failure ** (1.0 / slots_per_bit)
    carriers = math.log(per_slot_target) / math.log(1.0 - 1.0 / channel_length)
    return max(0, math.ceil(carriers))
