"""Minimal-distortion watermarking of numeric sets.

This reimplements the slice of Sion–Atallah–Prabhakar, *On Watermarking
Numeric Sets* (IWDW 2002) — the paper's reference [10] — that §4.2 builds
its frequency-domain channel on: embedding a short bit string into a set of
real values while **minimising the absolute change** to the set.

Scheme (quantisation-index modulation flavour):

* each item ``i`` is assigned a watermark bit index by a keyed balanced
  assignment (a round-robin over the bit indices, permuted by a PRNG seeded
  from ``k2``): every watermark bit is carried by ``⌈n/|wm|⌉`` or
  ``⌊n/|wm|⌋`` items — key-dependent like a raw hash assignment, but with
  *guaranteed* coverage even when ``n`` barely exceeds ``|wm|``;
* a value ``v`` encodes a bit as the parity of its quantisation cell
  ``floor(v / q)``;
* embedding moves each value **to the centre of the nearest cell of the
  required parity** — a change of at most ``1.5 q`` and, for values already
  in a correct-parity cell, at most ``q/2`` (centring maximises the margin
  against later perturbation);
* detection majority-votes cell parities per watermark bit.

The quantum ``q`` is the distortion/robustness dial: detection survives any
per-value perturbation below ``q/2``.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence
from dataclasses import dataclass

from ..crypto import keyed_hash
from ..ecc import majority


class NumericSetError(Exception):
    """Invalid parameters for numeric-set watermarking."""


@dataclass(frozen=True)
class NumericEmbedding:
    """Result of embedding into a numeric set."""

    values: tuple[float, ...]
    bit_assignment: tuple[int, ...]  # item index -> watermark bit index
    total_change: float
    max_change: float

    @property
    def mean_change(self) -> float:
        if not self.values:
            return 0.0
        return self.total_change / len(self.values)


@dataclass(frozen=True)
class NumericDetection:
    """Result of blind detection from a (possibly perturbed) numeric set."""

    bits: tuple[int, ...]
    confidence: tuple[float, ...]
    votes_per_bit: tuple[int, ...]


def _bit_assignment(
    count: int, watermark_length: int, k2: bytes, label: str
) -> tuple[int, ...]:
    """Keyed balanced item→bit assignment (see module docstring).

    Deterministic in ``(count, |wm|, k2, label)`` so embedding and blind
    detection derive the identical assignment.
    """
    base = [index % watermark_length for index in range(count)]
    rng = random.Random(keyed_hash((label, count, watermark_length), k2))
    rng.shuffle(base)
    return tuple(base)


def _cell_centre_for_bit(value: float, quantum: float, bit: int) -> float:
    """Centre of the nearest quantisation cell whose parity equals ``bit``."""
    cell = math.floor(value / quantum)
    if (cell & 1) == bit:
        return (cell + 0.5) * quantum
    below = (cell - 1 + 0.5) * quantum
    above = (cell + 1 + 0.5) * quantum
    if below >= 0 and abs(value - below) <= abs(value - above):
        return below
    return above


def embed_numeric_set(
    values: Sequence[float],
    bits: Sequence[int],
    k2: bytes,
    quantum: float,
    label: str = "numeric-set",
) -> NumericEmbedding:
    """Embed ``bits`` into ``values`` with minimal absolute distortion."""
    if quantum <= 0:
        raise NumericSetError(f"quantum must be positive, got {quantum}")
    message = tuple(bits)
    if not message:
        raise NumericSetError("cannot embed an empty bit string")
    for bit in message:
        if bit not in (0, 1):
            raise NumericSetError(f"bits must be 0 or 1, got {bit!r}")
    items = [float(v) for v in values]
    if len(items) < len(message):
        raise NumericSetError(
            f"{len(items)} values cannot carry {len(message)} bits"
        )
    assignment = _bit_assignment(len(items), len(message), k2, label)
    marked: list[float] = []
    total_change = 0.0
    max_change = 0.0
    for value, bit_index in zip(items, assignment):
        target = _cell_centre_for_bit(value, quantum, message[bit_index])
        marked.append(target)
        change = abs(target - value)
        total_change += change
        max_change = max(max_change, change)
    return NumericEmbedding(
        values=tuple(marked),
        bit_assignment=assignment,
        total_change=total_change,
        max_change=max_change,
    )


def detect_numeric_set(
    values: Sequence[float],
    watermark_length: int,
    k2: bytes,
    quantum: float,
    label: str = "numeric-set",
) -> NumericDetection:
    """Blindly recover ``watermark_length`` bits from a numeric set."""
    if quantum <= 0:
        raise NumericSetError(f"quantum must be positive, got {quantum}")
    if watermark_length <= 0:
        raise NumericSetError(
            f"watermark length must be positive, got {watermark_length}"
        )
    items = [float(v) for v in values]
    assignment = _bit_assignment(len(items), watermark_length, k2, label)
    votes: list[list[int]] = [[] for _ in range(watermark_length)]
    for value, bit_index in zip(items, assignment):
        cell = math.floor(value / quantum)
        votes[bit_index].append(cell & 1)
    bits: list[int] = []
    confidences: list[float] = []
    for bit_votes in votes:
        bit, confidence = majority(bit_votes)
        bits.append(bit)
        confidences.append(confidence)
    return NumericDetection(
        bits=tuple(bits),
        confidence=tuple(confidences),
        votes_per_bit=tuple(len(v) for v in votes),
    )
