"""Numeric-set watermarking substrate (the paper's reference [10]).

Used by :mod:`repro.core.frequency` to mark the value-occurrence frequency
histogram of a categorical attribute (§4.2).
"""

from .numeric_set import (
    NumericDetection,
    NumericEmbedding,
    NumericSetError,
    detect_numeric_set,
    embed_numeric_set,
)

__all__ = [
    "NumericDetection",
    "NumericEmbedding",
    "NumericSetError",
    "detect_numeric_set",
    "embed_numeric_set",
]
