"""Agrawal–Kiernan numeric relational watermarking (VLDB 2002) — baseline.

The paper's reference [6] and the scheme its categorical channel is defined
against.  AHK marks *numeric* attributes: for one tuple in ``gamma`` (keyed
hash of the primary key), one candidate attribute and one of its ``xi``
least-significant bits are selected by further keyed hashes, and that bit is
set to a keyed pseudo-random value.  Detection re-derives the selections,
counts how many marked bits carry the expected value, and applies a
binomial significance test.

Implemented here so benches can compare, under identical attacks, the
categorical association channel against the numeric-LSB channel (which
categorical data does not offer — the paper's core motivation).
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import stats

from ..crypto import KeyedDigestCache, get_digest_cache, keyed_hash
from ..relational import AttributeType, Table


class BaselineError(Exception):
    """Invalid parameters for the Agrawal–Kiernan scheme."""


@dataclass(frozen=True)
class AKParameters:
    """AHK tuning knobs.

    ``gamma`` — one tuple in ``gamma`` is marked (like the paper's ``e``);
    ``candidate_attributes`` — numeric attributes eligible for marking;
    ``xi`` — number of least-significant bits considered markable.
    """

    candidate_attributes: tuple[str, ...]
    gamma: int = 60
    xi: int = 2

    def __post_init__(self) -> None:
        if self.gamma <= 0:
            raise BaselineError(f"gamma must be positive, got {self.gamma}")
        if self.xi <= 0:
            raise BaselineError(f"xi must be positive, got {self.xi}")
        if not self.candidate_attributes:
            raise BaselineError("need at least one candidate attribute")


@dataclass
class AKEmbedResult:
    """Marking statistics."""

    marked_tuples: int
    changed_tuples: int

    @property
    def change_fraction_of_marked(self) -> float:
        if self.marked_tuples == 0:
            return 0.0
        return self.changed_tuples / self.marked_tuples


@dataclass(frozen=True)
class AKDetectResult:
    """Detection verdict: matched marked bits + binomial significance."""

    total_count: int
    match_count: int
    significance: float

    @property
    def false_hit_probability(self) -> float:
        """``P[Binom(total, 1/2) >= matches]`` — chance of this evidence in
        unmarked data."""
        if self.total_count == 0:
            return 1.0
        return float(
            stats.binom.sf(self.match_count - 1, self.total_count, 0.5)
        )

    @property
    def detected(self) -> bool:
        return self.total_count > 0 and \
            self.false_hit_probability <= self.significance

    @property
    def match_fraction(self) -> float:
        if self.total_count == 0:
            return 0.0
        return self.match_count / self.total_count


def _selections(
    pk_value, key: bytes, params: AKParameters
) -> tuple[bool, int, int, int]:
    """(is_marked, attribute_index, bit_index, bit_value) for one tuple."""
    base = keyed_hash(pk_value, key)
    if base % params.gamma != 0:
        return False, 0, 0, 0
    attribute_index = keyed_hash((pk_value, "attr"), key) % len(
        params.candidate_attributes
    )
    bit_index = keyed_hash((pk_value, "bit"), key) % params.xi
    bit_value = keyed_hash((pk_value, "value"), key) % 2
    return True, attribute_index, bit_index, bit_value


def _marked_selections(
    pk_values: list, cache: KeyedDigestCache, params: AKParameters
):
    """Yield ``(row_position, pk, attribute_index, bit_index, bit_value)``
    for every marked tuple, batch-hashing the whole key column at once.

    Digests are memoized per secret key, so the detect pass after an embed
    — and every re-detection an attack bench runs — reuses the same
    SHA-256 work instead of re-deriving ~4 hashes per marked tuple.
    """
    gamma = params.gamma
    candidates = len(params.candidate_attributes)
    digest = cache.digest
    for position, (pk_value, base) in enumerate(
        zip(pk_values, cache.digest_many(pk_values))
    ):
        if base % gamma != 0:
            continue
        yield (
            position,
            pk_value,
            digest((pk_value, "attr")) % candidates,
            digest((pk_value, "bit")) % params.xi,
            digest((pk_value, "value")) % 2,
        )


def _check_numeric(table: Table, params: AKParameters) -> None:
    for name in params.candidate_attributes:
        meta = table.schema.attribute(name)
        if meta.atype is not AttributeType.INTEGER:
            raise BaselineError(
                f"Agrawal–Kiernan marks integer attributes; {name!r} is "
                f"{meta.atype.value}"
            )


def ak_embed(table: Table, key: bytes, params: AKParameters) -> AKEmbedResult:
    """Mark ``table`` in place; returns marking statistics."""
    _check_numeric(table, params)
    cache = get_digest_cache(key)
    pk_values = table.column(table.primary_key)
    marked = 0
    changed = 0
    for _, pk_value, attribute_index, bit_index, bit_value in (
        _marked_selections(pk_values, cache, params)
    ):
        marked += 1
        attribute = params.candidate_attributes[attribute_index]
        current = table.value(pk_value, attribute)
        mask = 1 << bit_index
        target = (current | mask) if bit_value else (current & ~mask)
        if target != current:
            table.set_value(pk_value, attribute, target)
            changed += 1
    return AKEmbedResult(marked_tuples=marked, changed_tuples=changed)


def ak_detect(
    table: Table,
    key: bytes,
    params: AKParameters,
    significance: float = 0.01,
) -> AKDetectResult:
    """Blindly test ``table`` for the AHK mark under ``key``."""
    _check_numeric(table, params)
    cache = get_digest_cache(key)
    pk_values = table.column_view(table.primary_key)
    columns = {
        name: table.column_view(name) for name in params.candidate_attributes
    }
    total = 0
    matches = 0
    for position, _, attribute_index, bit_index, bit_value in (
        _marked_selections(pk_values, cache, params)
    ):
        attribute = params.candidate_attributes[attribute_index]
        value = columns[attribute][position]
        total += 1
        matches += ((value >> bit_index) & 1) == bit_value
    return AKDetectResult(
        total_count=total, match_count=matches, significance=significance
    )
