"""Baseline watermarking schemes the paper compares against."""

from .agrawal_kiernan import (
    AKDetectResult,
    AKEmbedResult,
    AKParameters,
    BaselineError,
    ak_detect,
    ak_embed,
)

__all__ = [
    "AKDetectResult",
    "AKEmbedResult",
    "AKParameters",
    "BaselineError",
    "ak_detect",
    "ak_embed",
]
