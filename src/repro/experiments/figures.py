"""Series generators for the paper's Figures 4–7.

Each function regenerates the data series of one figure on synthetic
``ItemScan`` data (the paper used a Wal-Mart subsample of the same shape;
see DESIGN.md §5 for the substitution argument).  Absolute percentages are
not expected to match the paper — the data and ECC constants differ — but
the shapes are: graceful degradation with attack size (Fig 4), resilience
improving as ``e`` decreases (Fig 5), the tilted surface (Fig 6), and
near-linear degradation under data loss with ≈25% alteration at 80% loss
(Fig 7).

All series run on the shared :class:`~repro.experiments.sweepengine
.SweepEngine`: each keyed pass is embedded once and reused across every
sweep point (and across the figures of one bench run, which share the
same base relation).  ``mode`` forwards the engine's execution mode —
``"serial"`` for the re-embed-per-cell reference, ``"hoisted"`` /
``"pooled"`` to force a path, ``None`` for auto — and ``backend`` the
(bit-identical) execution backend of every pass's embed/verify.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..attacks import DataLossAttack, SubsetAlterationAttack
from ..crypto import AUTO
from ..datagen import generate_item_scan
from .runner import ExperimentPoint, PAPER_PASSES, sweep

#: the paper's experimental constants (§5)
WATERMARK_LENGTH = 10
DEFAULT_TUPLES = 6000
DEFAULT_ITEMS = 500
#: the paper's working estimate for the bit-kill probability of an alteration
FLIP_PROBABILITY = 0.7


@dataclass(frozen=True)
class FigureConfig:
    """Workload sizing shared by all figure series."""

    tuple_count: int = DEFAULT_TUPLES
    item_count: int = DEFAULT_ITEMS
    passes: int = PAPER_PASSES
    watermark_length: int = WATERMARK_LENGTH
    data_seed: int = 7

    def base_table(self):
        return generate_item_scan(
            self.tuple_count, self.item_count, seed=self.data_seed
        )


def figure4_series(
    config: FigureConfig = FigureConfig(),
    e_values: tuple[int, ...] = (65, 35),
    attack_sizes: tuple[float, ...] = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8),
    mode: str | None = None,
    backend: str = AUTO,
) -> dict[int, list[ExperimentPoint]]:
    """Figure 4: mark alteration vs attack size, one series per ``e``."""
    table = config.base_table()
    series: dict[int, list[ExperimentPoint]] = {}
    for e in e_values:
        series[e] = sweep(
            table,
            "Item_Nbr",
            e,
            lambda size: SubsetAlterationAttack(
                "Item_Nbr", size, FLIP_PROBABILITY
            ),
            list(attack_sizes),
            watermark_length=config.watermark_length,
            passes=config.passes,
            mode=mode,
            backend=backend,
        )
    return series


def figure5_series(
    config: FigureConfig = FigureConfig(),
    e_values: tuple[int, ...] = (10, 25, 50, 75, 100, 125, 150, 175, 200),
    attack_sizes: tuple[float, ...] = (0.55, 0.20),
    mode: str | None = None,
    backend: str = AUTO,
) -> dict[float, list[ExperimentPoint]]:
    """Figure 5: mark alteration vs ``e``, one series per attack size.

    Note the x-axis here is ``e`` (the sweep variable), so each point of the
    returned series carries ``x = e``.
    """
    table = config.base_table()
    series: dict[float, list[ExperimentPoint]] = {}
    for attack_size in attack_sizes:
        points: list[ExperimentPoint] = []
        for e in e_values:
            results = sweep(
                table,
                "Item_Nbr",
                e,
                lambda size: SubsetAlterationAttack(
                    "Item_Nbr", size, FLIP_PROBABILITY
                ),
                [attack_size],
                watermark_length=config.watermark_length,
                passes=config.passes,
                mode=mode,
                backend=backend,
            )[0]
            points.append(ExperimentPoint(x=float(e), passes=results.passes))
        series[attack_size] = points
    return series


def figure6_surface(
    config: FigureConfig = FigureConfig(),
    e_values: tuple[int, ...] = (20, 65, 110, 155, 200),
    attack_sizes: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8),
    mode: str | None = None,
    backend: str = AUTO,
) -> list[tuple[int, float, float]]:
    """Figure 6: the (attack size × e) → mark-loss surface.

    Returns ``(e, attack_size, mean_alteration)`` triples in row-major
    order (e outer, attack size inner).
    """
    table = config.base_table()
    surface: list[tuple[int, float, float]] = []
    for e in e_values:
        points = sweep(
            table,
            "Item_Nbr",
            e,
            lambda size: SubsetAlterationAttack(
                "Item_Nbr", size, FLIP_PROBABILITY
            ),
            list(attack_sizes),
            watermark_length=config.watermark_length,
            passes=config.passes,
            mode=mode,
            backend=backend,
        )
        for point in points:
            surface.append((e, point.x, point.mean_alteration))
    return surface


def figure7_series(
    config: FigureConfig = FigureConfig(),
    e: int = 65,
    loss_fractions: tuple[float, ...] = (
        0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
    ),
    mode: str | None = None,
    backend: str = AUTO,
) -> list[ExperimentPoint]:
    """Figure 7: mark alteration vs data loss (attack A1).

    The headline claim lives at the right edge: "tolerating up to 80% data
    loss with a watermark alteration of only 25%".
    """
    table = config.base_table()
    return sweep(
        table,
        "Item_Nbr",
        e,
        lambda loss: DataLossAttack(loss),
        list(loss_fractions),
        watermark_length=config.watermark_length,
        passes=config.passes,
        mode=mode,
        backend=backend,
    )
