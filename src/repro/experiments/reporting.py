"""ASCII reporting for experiment output.

Benches print the same rows/series the paper's figures plot; these helpers
keep that output aligned and diff-friendly (EXPERIMENTS.md embeds it).
"""

from __future__ import annotations

from collections.abc import Sequence

from .runner import ExperimentPoint


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width table with a header rule."""
    columns = [
        [str(header)] + [_fmt(row[index]) for row in rows]
        for index, header in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(
                _fmt(cell).ljust(width) for cell, width in zip(row, widths)
            )
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_series(
    title: str,
    points: Sequence[ExperimentPoint],
    x_label: str = "x",
    percent_x: bool = False,
) -> str:
    """Render one figure series: x, mean mark alteration, detection rate."""
    rows = []
    for point in points:
        x = f"{point.x:.0%}" if percent_x else f"{point.x:g}"
        rows.append(
            (
                x,
                f"{point.mean_alteration:.1%}",
                f"±{point.alteration_stdev:.1%}",
                f"{point.detection_rate:.0%}",
            )
        )
    body = format_table(
        (x_label, "mark alteration", "stdev", "detected"), rows
    )
    return f"{title}\n{body}"


def format_surface(
    title: str,
    surface: Sequence[tuple[int, float, float]],
) -> str:
    """Render Figure-6-style (e, attack, alteration) triples as a grid."""
    es = sorted({e for e, _, _ in surface})
    attacks = sorted({attack for _, attack, _ in surface})
    lookup = {(e, attack): value for e, attack, value in surface}
    headers = ["e \\ attack"] + [f"{attack:.0%}" for attack in attacks]
    rows = []
    for e in es:
        row: list[object] = [e]
        for attack in attacks:
            value = lookup.get((e, attack))
            row.append("-" if value is None else f"{value:.1%}")
        rows.append(row)
    return f"{title}\n{format_table(headers, rows)}"
