"""Experiment harness: multi-pass runner, figure series, ASCII reporting."""

from .figures import (
    DEFAULT_ITEMS,
    DEFAULT_TUPLES,
    FLIP_PROBABILITY,
    FigureConfig,
    WATERMARK_LENGTH,
    figure4_series,
    figure5_series,
    figure6_surface,
    figure7_series,
)
from .reporting import format_series, format_surface, format_table
from .runner import (
    ExperimentPoint,
    PAPER_PASSES,
    PassResult,
    run_attack_experiment,
    sweep,
)

__all__ = [
    "DEFAULT_ITEMS",
    "DEFAULT_TUPLES",
    "ExperimentPoint",
    "FLIP_PROBABILITY",
    "FigureConfig",
    "PAPER_PASSES",
    "PassResult",
    "WATERMARK_LENGTH",
    "figure4_series",
    "figure5_series",
    "figure6_surface",
    "figure7_series",
    "format_series",
    "format_surface",
    "format_table",
    "run_attack_experiment",
    "sweep",
]
