"""Sweep-level execution engine: embed once per keyed pass, attack many.

The §5 protocol averages every reported figure over 15 keyed passes, and
every figure (4-7) sweeps that protocol over an attack-strength axis.  The
naive runner re-embeds the watermark once per pass *per sweep point* —
``passes x len(xs)`` embeds where ``passes`` suffice, because the embedded
relation for a given seed is the same at every sweep point; only the attack
differs.  This module restructures the sweep around that observation:

* **embed hoisting** — one :class:`EmbeddedPass` (marked table + mark
  record + warm :class:`~repro.crypto.HashEngine`) is built per seed and
  shared, read-only, across every sweep point.  Attacks operate on
  copy-on-write :meth:`~repro.relational.table.Table.clone` copies, so the
  shared table is never mutated.  A figure pays ``passes`` embeds instead
  of ``passes x len(xs)``.
* **persistent worker pool** — ``(seed, x)`` attack+verify cells fan out
  across a :class:`~concurrent.futures.ProcessPoolExecutor` whose workers
  are initialized *once* with the base relation and then reused across
  sweep points and across successive sweeps in one bench run.  Work is
  partitioned by seed, so each worker embeds a seed at most once and keeps
  the pass cached for later sweeps.
* **deterministic serial path** — :data:`MODE_SERIAL` re-embeds per cell,
  exactly the naive runner's cost model, and is pinned bit-identical to
  the hoisted and pooled paths by the equivalence tests.

Determinism contract
--------------------

Every execution mode produces bit-identical :class:`PassResult` lists
because every source of randomness in a cell ``(seed, x)`` is derived from
literal labels, never from shared mutable state or execution order:

* key pair: ``MarkKey.from_seed(seed)``;
* watermark bits: ``Watermark.random(length, random.Random(f"wm:{seed}"))``;
* attack randomness: ``random.Random(f"attack:{seed}:{x}")`` — one private
  generator per cell, so cells can run in any order on any worker.  The
  single-point protocol (:func:`~repro.experiments.runner
  .run_attack_experiment`) passes ``x = None`` and gets the historical
  ``random.Random(f"attack:{seed}")`` label, keeping its outputs identical
  to the pre-engine runner.

Embedding itself is a pure function of ``(base table, key, watermark,
spec)`` — the quality guard draws no randomness — so re-embedding per cell
(serial), embedding once per seed (hoisted) and embedding inside a worker
process (pooled) all yield the same marked relation, and therefore the
same verdicts.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import random
import shutil
import signal
import tempfile
import time
import weakref
from collections import OrderedDict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from statistics import mean, pstdev
from typing import Any, Hashable

from ..attacks import Attack
from ..core import Watermark, Watermarker, kernels, verify_multipass
from ..crypto import AUTO, ENGINE, SCALAR, MarkKey
from ..relational import CategoricalDomain, Table
from ..reliability.breaker import CircuitBreaker
from ..reliability.deadline import Deadline, DeadlineExceededError, check_deadline
from ..reliability.faults import (
    HANG,
    KILL,
    SLOW,
    InjectedFaultError,
    MEMORY,
    active_plan,
    injection_armed,
)
from ..reliability.report import ReliabilityReport
from ..reliability.retry import (
    TRANSIENT,
    RetryError,
    RetryPolicy,
    classify,
)
from ..reliability.watchdog import IDLE, Watchdog, beat

logger = logging.getLogger(__name__)

#: the paper's pass count
PAPER_PASSES = 15

#: execution modes
MODE_AUTO = "auto"        # pooled when >= 2 cores, hoisted otherwise
MODE_SERIAL = "serial"    # re-embed per (seed, x) cell — the reference
MODE_HOISTED = "hoisted"  # embed once per seed, run cells in-process
MODE_POOLED = "pooled"    # embed once per seed *per worker*, cells fan out

_MODES = (MODE_AUTO, MODE_SERIAL, MODE_HOISTED, MODE_POOLED)

#: embedded passes kept warm per engine (and per pool worker)
_PASS_CACHE_SIZE = 64

#: below this many cell-rows (cells x relation size) MODE_AUTO stays on
#: the in-process hoisted path: worker startup + shipping the relation
#: would cost more than the fan-out saves on a small grid
AUTO_POOL_THRESHOLD = 250_000


@dataclass(frozen=True)
class PassResult:
    """One keyed embed -> attack -> verify round trip."""

    seed: int
    mark_alteration: float
    detected: bool
    false_hit_probability: float
    fit_count: int
    slots_recovered: int


@dataclass
class ExperimentPoint:
    """Averaged outcome of all passes at one parameter point."""

    x: float
    passes: list[PassResult] = field(default_factory=list)

    @property
    def mean_alteration(self) -> float:
        if not self.passes:
            return 0.0
        return mean(result.mark_alteration for result in self.passes)

    @property
    def alteration_stdev(self) -> float:
        if len(self.passes) < 2:
            return 0.0
        return pstdev(result.mark_alteration for result in self.passes)

    @property
    def detection_rate(self) -> float:
        if not self.passes:
            return 0.0
        return mean(1.0 if result.detected else 0.0 for result in self.passes)


@dataclass(frozen=True)
class SweepProtocol:
    """The per-pass embedding recipe a sweep holds fixed.

    Hashable (it keys the embedded-pass caches) and picklable (it travels
    to pool workers).  Everything else a cell needs — the seed and the
    attack — varies per cell.

    ``backend`` is the execution backend every pass embeds and verifies
    on (:data:`~repro.crypto.SCALAR` / :data:`~repro.crypto.ENGINE` /
    :data:`~repro.crypto.VECTOR` / :data:`~repro.crypto.AUTO`); all four
    are bit-identical, so it never changes results — only speed.
    """

    mark_attribute: str
    e: int
    watermark_length: int = 10
    ecc_name: str = "majority"
    variant: str = "keyed"
    backend: str = AUTO


@dataclass
class EmbeddedPass:
    """One seed's embedding, reused across every sweep point.

    ``table`` is shared read-only: attacks clone it copy-on-write, so all
    cells of a seed read the same physical rows.  ``marker`` carries the
    warm shared :class:`~repro.crypto.HashEngine` for the seed's key, so
    every re-detection of an attacked clone is hash-free.
    """

    seed: int
    marker: Watermarker
    table: Table
    record: Any  # MarkRecord

    @classmethod
    def build(
        cls, base_table: Table, protocol: SweepProtocol, seed: int
    ) -> "EmbeddedPass":
        key = MarkKey.from_seed(seed)
        watermark = Watermark.random(
            protocol.watermark_length, random.Random(f"wm:{seed}")
        )
        marker = Watermarker(
            key,
            e=protocol.e,
            ecc_name=protocol.ecc_name,
            variant=protocol.variant,
            engine=protocol.backend,
        )
        outcome = marker.embed(base_table, watermark, protocol.mark_attribute)
        if kernels.use_vector(marker.engine, outcome.table):
            # Re-factorize the mark column once per seed: embedding just
            # rewrote it, and every attacked clone of this pass inherits
            # the refreshed codes copy-on-write — so the code-level
            # attacks and the fused detection kernel start warm at every
            # sweep point instead of re-factorizing per cell.
            kernels.warm_codes(outcome.table, protocol.mark_attribute)
        return cls(
            seed=seed, marker=marker, table=outcome.table,
            record=outcome.record,
        )


def cell_rng(seed: int, x: float | None) -> random.Random:
    """The private attack generator of cell ``(seed, x)``.

    ``x = None`` keeps the historical single-point label so
    ``run_attack_experiment`` outputs are unchanged from the serial runner.
    """
    if x is None:
        return random.Random(f"attack:{seed}")
    return random.Random(f"attack:{seed}:{x}")


def run_cell(
    embedded: EmbeddedPass, attack: Attack, x: float | None
) -> PassResult:
    """Attack + verify one ``(seed, x)`` cell of an embedded pass."""
    attacked = attack.apply(embedded.table, cell_rng(embedded.seed, x))
    return _verify_cell(embedded, attacked)


def _verify_cell(embedded: EmbeddedPass, attacked: Table) -> PassResult:
    """Verify one already-attacked cell (the per-pass reference path)."""
    verdict = embedded.marker.verify(attacked, embedded.record)
    association = verdict.association
    if association is None:
        raise RuntimeError(
            "attack removed the marked pair; use the multi-attribute or "
            "frequency experiment instead"
        )
    return PassResult(
        seed=embedded.seed,
        mark_alteration=association.mark_alteration,
        detected=association.detected,
        false_hit_probability=association.false_hit_probability,
        fit_count=association.detection.fit_count,
        slots_recovered=association.detection.slots_recovered,
    )


def run_point(
    passes: Sequence[EmbeddedPass],
    attack: Attack,
    x: float | None,
    fused: bool = True,
) -> list[PassResult]:
    """Every pass's cell at one sweep point — fused when possible.

    Attacks run per cell under the usual rng contract; verification of
    all P attacked clones then goes through one
    :func:`~repro.core.detection.verify_multipass` call (one carrier
    gather + one ``bincount`` for the whole point) whenever the passes
    are homogeneous and the attacked clones share the base relation's
    key-column factorization.  Heterogeneous or non-vector points fall
    back to the per-cell path; both are bit-identical.
    """
    attacked = [
        attack.apply(embedded.table, cell_rng(embedded.seed, x))
        for embedded in passes
    ]
    if fused and len(passes) > 1:
        results = _fused_point_results(passes, attacked)
        if results is not None:
            return results
    return [
        _verify_cell(embedded, suspect)
        for embedded, suspect in zip(passes, attacked)
    ]


def _fused_point_results(
    passes: Sequence[EmbeddedPass], attacked: Sequence[Table]
) -> list[PassResult] | None:
    """Fused verification of one sweep point, or ``None`` to fall back.

    Fusable when every pass shares the protocol-shaped state (spec,
    domain, backend, significance, no frequency channel) and every
    attacked clone is vector-eligible and presents the same key-column
    factorization object — the regime of every alteration-style sweep
    cell.  The per-cell fallback produces bit-identical results.
    """
    first = passes[0]
    record = first.record
    spec = record.spec
    marker = first.marker
    backend = marker.engine
    if not isinstance(backend, str) or backend in (SCALAR, ENGINE):
        return None
    for embedded in passes:
        other = embedded.record
        if (
            other.spec != spec
            or other.frequency_record is not None
            or other.domain_values != record.domain_values
            or embedded.marker.engine != backend
            or embedded.marker.significance != marker.significance
        ):
            return None
    for suspect in attacked:
        if (
            spec.key_attribute not in suspect.schema
            or spec.mark_attribute not in suspect.schema
            or not kernels.use_vector(backend, suspect)
        ):
            return None
    if kernels.shared_key_codes(attacked, spec.key_attribute) is None:
        return None
    domain = (
        CategoricalDomain(record.domain_values)
        if record.domain_values is not None
        else None
    )
    verifications = verify_multipass(
        attacked,
        [embedded.marker.key for embedded in passes],
        spec,
        [embedded.record.watermark for embedded in passes],
        embedding_maps=[embedded.record.embedding_map for embedded in passes],
        domain=domain,
        significance=marker.significance,
        engine=backend,
    )
    return [
        PassResult(
            seed=embedded.seed,
            mark_alteration=result.mark_alteration,
            detected=result.detected,
            false_hit_probability=result.false_hit_probability,
            fit_count=result.detection.fit_count,
            slots_recovered=result.detection.slots_recovered,
        )
        for embedded, result in zip(passes, verifications)
    ]


# Token memoization, keyed by table identity (tables are content-equal
# comparable, hence unhashable — the weak reference guards id reuse and
# cleans the slot up when the table dies).
_token_cache: dict[int, tuple["weakref.ref[Table]", int, bytes]] = {}


def _table_token(table: Table) -> bytes:
    """Content fingerprint of a relation (schema + rows, physical order).

    Keys the embedded-pass caches and the persistent pool: equal-content
    base relations (e.g. the same ``generate_item_scan`` call in two
    benches) share warm state; any difference — including row order —
    forces a re-embed, which is always safe.  Memoized per (table,
    version) so repeated runs over one base relation hash it once.
    """
    slot = id(table)
    entry = _token_cache.get(slot)
    if (
        entry is not None
        and entry[0]() is table
        and entry[1] == table.version
    ):
        return entry[2]
    digest = hashlib.sha256()
    digest.update(repr(table.schema).encode("utf-8"))
    for row in table:
        digest.update(repr(row).encode("utf-8"))
    token = digest.digest()
    _token_cache[slot] = (
        weakref.ref(
            table, lambda ref, _slot=slot: _token_cache.pop(_slot, None)
        ),
        table.version,
        token,
    )
    return token


# -- persistent worker pool ---------------------------------------------------
#
# One module-level executor, keyed by the base-table token.  Workers are
# initialized once with the base relation; each task covers one seed's
# cells for a sweep, so a worker embeds each (protocol, seed) it meets at
# most once and keeps the pass cached for later points and later sweeps.

_pool = None
_pool_token: bytes | None = None
_pool_workers: int = 0
#: pool-scoped heartbeat directory the workers beat into (watchdog state)
_pool_hb_dir: str | None = None

# Worker-process globals (set by _worker_init, used by _worker_run_seed).
_WORKER_TABLE: Table | None = None
_WORKER_HB_DIR: str | None = None
_WORKER_PASSES: "OrderedDict[tuple[SweepProtocol, int], EmbeddedPass]" = (
    OrderedDict()
)


def _worker_init(table_blob: bytes, heartbeat_dir: str | None = None) -> None:
    """Pool initializer: install the base relation in the worker."""
    global _WORKER_TABLE, _WORKER_HB_DIR
    _WORKER_TABLE = pickle.loads(table_blob)
    _WORKER_HB_DIR = heartbeat_dir
    _WORKER_PASSES.clear()
    beat(heartbeat_dir, state=IDLE)


def _worker_embedded_pass(
    protocol: SweepProtocol, seed: int
) -> EmbeddedPass:
    cache_key = (protocol, seed)
    embedded = _WORKER_PASSES.get(cache_key)
    if embedded is None:
        assert _WORKER_TABLE is not None, "pool worker was not initialized"
        embedded = EmbeddedPass.build(_WORKER_TABLE, protocol, seed)
        _WORKER_PASSES[cache_key] = embedded
        while len(_WORKER_PASSES) > _PASS_CACHE_SIZE:
            _WORKER_PASSES.popitem(last=False)
    else:
        _WORKER_PASSES.move_to_end(cache_key)
    return embedded


def _worker_run_seed(
    protocol: SweepProtocol,
    seed: int,
    cells: list[tuple[float | None, Attack]],
    inject: tuple | None = None,
) -> list[PassResult]:
    """Pool task: all of one seed's cells, in sweep-point order.

    Each cell boundary heartbeats the pool's watchdog directory (state
    ``busy``; the task's return beats ``idle``), so a worker stuck inside
    a cell is detectable from the parent.

    ``inject`` ships a parent-planned fault across the process boundary
    (the armed :class:`~repro.reliability.FaultPlan` lives in the parent):
    ``(cell_index, kind, param)`` makes this task misbehave when it
    reaches that cell — ``SIGKILL`` for a ``kill`` fault, a ``param``-
    second stall for ``hang`` (then a transient error: whichever of the
    watchdog or the retry path notices first recovers the seed) and
    ``slow`` (then continue), ``MemoryError`` for ``memory``, and
    :class:`InjectedFaultError` otherwise.  The parent consumed the plan
    trigger at submit time, so the retried task runs clean.
    """
    embedded = _worker_embedded_pass(protocol, seed)
    results = []
    for index, (x, attack) in enumerate(cells):
        beat(_WORKER_HB_DIR)
        if inject is not None and index == inject[0]:
            kind = inject[1]
            param = inject[2] if len(inject) > 2 else 0.0
            if kind == KILL:
                os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover
            elif kind == HANG:
                time.sleep(param)
                raise InjectedFaultError("pool.worker", seed, kind)
            elif kind == SLOW:
                time.sleep(param)
            elif kind == MEMORY:
                raise MemoryError(
                    f"injected memory fault at pool.worker[{seed}]"
                )
            else:
                raise InjectedFaultError("pool.worker", seed, kind)
        results.append(run_cell(embedded, attack, x))
    beat(_WORKER_HB_DIR, state=IDLE)
    return results


def _worker_call(fn, args: tuple) -> Any:
    """Pool task adapter for table-parametrized jobs outside the sweep
    protocol (e.g. the analysis Monte-Carlo loops): calls
    ``fn(worker_table, *args)``."""
    assert _WORKER_TABLE is not None, "pool worker was not initialized"
    beat(_WORKER_HB_DIR)
    try:
        return fn(_WORKER_TABLE, *args)
    finally:
        beat(_WORKER_HB_DIR, state=IDLE)


def _ensure_pool(token: bytes, table: Table, max_workers: int):
    """The persistent executor for ``table`` (created or reused).

    A new base relation retires the old pool: worker caches are only valid
    for the table their initializer installed.
    """
    global _pool, _pool_token, _pool_workers, _pool_hb_dir
    if (
        _pool is not None
        and _pool_token == token
        and _pool_workers == max_workers
    ):
        return _pool
    shutdown_sweep_pool()
    from concurrent.futures import ProcessPoolExecutor

    _pool_hb_dir = tempfile.mkdtemp(prefix="sweep-heartbeat-")
    _pool = ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_worker_init,
        initargs=(pickle.dumps(table), _pool_hb_dir),
    )
    _pool_token = token
    _pool_workers = max_workers
    return _pool


def shutdown_sweep_pool() -> None:
    """Retire the persistent pool (test isolation, table change, exit)."""
    global _pool, _pool_token, _pool_workers, _pool_hb_dir
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
    if _pool_hb_dir is not None:
        shutil.rmtree(_pool_hb_dir, ignore_errors=True)
    _pool = None
    _pool_token = None
    _pool_workers = 0
    _pool_hb_dir = None


def _pool_worker_pids() -> list[int]:
    """PIDs of the live pool workers (empty when no pool is up)."""
    if _pool is None:
        return []
    return list((getattr(_pool, "_processes", None) or {}).keys())


def _kill_pool_workers() -> int:
    """``SIGKILL`` every live pool worker (deadline/timeout cleanup: a
    hung worker would otherwise outlive the pool shutdown, because
    ``Executor.shutdown`` *joins* workers rather than signalling them)."""
    killed = 0
    for pid in _pool_worker_pids():
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            continue
        killed += 1
    return killed


#: ceiling on any single pooled task's wall-clock (pool_table_tasks); far
#: above any legitimate cell batch, so tripping it means a hung worker
DEFAULT_TASK_TIMEOUT = 600.0


def pool_table_tasks(
    table: Table,
    fn,
    task_args: Sequence[tuple],
    max_workers: int | None = None,
    timeout: float | None = DEFAULT_TASK_TIMEOUT,
) -> list[Any]:
    """Run ``fn(table, *args)`` for every ``args`` on the persistent pool.

    ``fn`` must be a module-level function (pickled by reference).  The
    table ships to the workers once, via the pool initializer — the lever
    that makes many small tasks over one large relation affordable.
    Raises whatever the tasks raise; pool-infrastructure failures
    propagate too (callers fall back to a serial loop).

    ``timeout`` bounds the whole batch's wall-clock (``None`` restores
    the historical unbounded wait): a hung worker trips it, the pool's
    workers are killed and the executor retired, and ``TimeoutError``
    propagates so callers take their serial fallback instead of blocking
    forever.
    """
    workers = max_workers or os.cpu_count() or 1
    # An unpicklable payload would deadlock the executor's queue-feeder
    # thread instead of raising; probe here so callers get a clean
    # exception (and can fall back to their serial loops).
    pickle.dumps((fn, list(task_args)))
    pool = _ensure_pool(_table_token(table), table, workers)
    futures = [pool.submit(_worker_call, fn, args) for args in task_args]
    if timeout is None:
        return [future.result() for future in futures]
    from concurrent.futures import TimeoutError as FuturesTimeout

    batch = Deadline(timeout)
    try:
        return [future.result(timeout=batch.timeout()) for future in futures]
    except FuturesTimeout as exc:
        for future in futures:
            future.cancel()
        _kill_pool_workers()
        shutdown_sweep_pool()
        raise TimeoutError(
            f"pooled task batch still running after {timeout:.6g}s; "
            f"workers killed, pool retired"
        ) from exc


# -- the engine ---------------------------------------------------------------

class SweepEngine:
    """Executes embed-once / attack-many sweeps under one of three modes.

    The engine caches one :class:`EmbeddedPass` per ``(base table,
    protocol, seed)`` — the hoisted and pooled modes reuse them across
    sweep points *and across successive `run`/`sweep` calls*, which is
    what makes a bench run's second figure start warm.  ``embeds_performed``
    counts actual in-process embeds (pooled-mode embeds happen inside the
    workers and are counted there), so the perf-smoke suite can assert
    that a second sweep point performs zero embeds.
    """

    def __init__(
        self,
        mode: str = MODE_AUTO,
        max_workers: int | None = None,
        pass_cache_size: int = _PASS_CACHE_SIZE,
        fused: bool = True,
        retry: RetryPolicy | None = None,
        watchdog: Watchdog | bool | None = None,
        breaker: CircuitBreaker | None = None,
    ):
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.mode = mode
        self.max_workers = max_workers
        #: fuse all passes of a hoisted sweep point into one multi-pass
        #: detection kernel (bit-identical; ``False`` keeps the PR-3
        #: per-pass path — the benches' comparison baseline)
        self.fused = fused
        #: bounded-attempt policy for pooled-mode task retries and pool
        #: respawns (per-seed tasks are pure functions of their labels,
        #: so a retried task is bit-identical to a first-try one)
        self.retry = retry if retry is not None else RetryPolicy()
        #: heartbeat watchdog over the pooled workers (``False`` disables;
        #: ``None`` takes the default 300 s silence budget)
        self.watchdog: Watchdog | None = (
            None if watchdog is False
            else (watchdog if isinstance(watchdog, Watchdog) else Watchdog())
        )
        #: consecutive-failure breaker steering pooled -> hoisted
        #: degradation (label ``"pool.worker"``)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._passes: "OrderedDict[tuple[bytes, SweepProtocol, int], EmbeddedPass]" = (
            OrderedDict()
        )
        self._pass_cache_size = pass_cache_size
        #: telemetry: in-process embedding passes actually performed
        self.embeds_performed = 0
        #: telemetry: (seed, x) cells evaluated (all modes, parent count)
        self.cells_executed = 0
        #: telemetry: recovery actions (retries, respawns, fallbacks)
        self.reliability = ReliabilityReport()

    def cache_info(self) -> dict[str, int]:
        """Engine telemetry snapshot (``functools.cache_info`` style) —
        cache occupancy, work counters, and the recovery counters that
        make pool degradation visible instead of silent."""
        return {
            "passes_cached": len(self._passes),
            "pass_cache_size": self._pass_cache_size,
            "embeds_performed": self.embeds_performed,
            "cells_executed": self.cells_executed,
            "cell_retries": self.reliability.cell_retries,
            "pool_respawns": self.reliability.pool_respawns,
            "pool_fallbacks": self.reliability.pool_fallbacks,
        }

    def reliability_report(self) -> ReliabilityReport:
        """The engine's accumulated :class:`ReliabilityReport`."""
        return self.reliability

    # -- embedded-pass cache ------------------------------------------------
    def embedded_pass(
        self,
        base_table: Table,
        protocol: SweepProtocol,
        seed: int,
        token: bytes | None = None,
    ) -> EmbeddedPass:
        """The cached (or freshly built) embedding of ``seed``."""
        if token is None:
            token = _table_token(base_table)
        cache_key = (token, protocol, seed)
        embedded = self._passes.get(cache_key)
        if embedded is None:
            embedded = EmbeddedPass.build(base_table, protocol, seed)
            self.embeds_performed += 1
            self._passes[cache_key] = embedded
            while len(self._passes) > self._pass_cache_size:
                self._passes.popitem(last=False)
        else:
            self._passes.move_to_end(cache_key)
        return embedded

    # -- execution ----------------------------------------------------------
    def _resolve_mode(self, mode: str | None, cell_rows: int) -> str:
        """Pick the execution path for a grid of ``cell_rows`` cell-rows.

        Auto mode pools only when there are cores to fan across *and*
        the workload amortizes worker startup + shipping the relation
        (``cell_rows >= AUTO_POOL_THRESHOLD``); note the pool is a single
        slot keyed by the base table, so workloads alternating between
        large tables should force a mode explicitly rather than churn it.
        """
        resolved = mode or self.mode
        if resolved == MODE_AUTO:
            cores = self.max_workers or os.cpu_count() or 1
            if cores >= 2 and cell_rows >= AUTO_POOL_THRESHOLD:
                return MODE_POOLED
            return MODE_HOISTED
        return resolved

    def run(
        self,
        base_table: Table,
        protocol: SweepProtocol,
        attacks: Sequence[tuple[float | None, Attack]],
        seeds: Iterable[int],
        mode: str | None = None,
        deadline: Deadline | None = None,
    ) -> list[ExperimentPoint]:
        """Run the full ``seeds x attacks`` cell grid.

        ``attacks`` is a sequence of ``(x, attack)`` pairs — the attack is
        pre-built per point so only picklable attack instances (not
        factories) ever cross the process boundary.

        ``deadline`` bounds the run's wall-clock: it is checked at every
        cell/point boundary and caps every pool wait, and expiry raises
        :class:`~repro.reliability.DeadlineExceededError` — never
        swallowed by the pooled -> hoisted fallback, because falling back
        *after* the budget is spent would bust the budget twice over.
        """
        seeds = list(seeds)
        attacks = list(attacks)
        resolved = self._resolve_mode(
            mode, len(seeds) * len(attacks) * len(base_table)
        )
        if resolved == MODE_POOLED and not self.breaker.allow("pool.worker"):
            # Open circuit, still cooling down: dispatching would burn
            # the retry budget against a known-sick pool — degrade
            # straight down the bit-identical ladder.
            logger.warning(
                "circuit breaker open on pool.worker: degrading sweep to "
                "the bit-identical hoisted path"
            )
            self.reliability.pool_fallbacks += 1
            resolved = MODE_HOISTED
        if resolved == MODE_POOLED:
            from concurrent.futures import BrokenExecutor

            try:
                return self._run_pooled(
                    base_table, protocol, attacks, seeds, deadline
                )
            except DeadlineExceededError:
                raise  # stall-safety verdicts outrank the fallback ladder
            except BrokenExecutor as exc:
                self._note_pool_fallback(exc)
                shutdown_sweep_pool()
            except RuntimeError:
                raise  # run_cell's "attack removed the marked pair"
            except Exception as exc:
                # Pool infrastructure failure (unpicklable attack,
                # fork/pipe trouble, nested-daemon limits, retry
                # exhaustion): the hoisted path is bit-identical, so
                # never let the pool kill an experiment — but never
                # degrade silently either.
                self._note_pool_fallback(exc)
                shutdown_sweep_pool()
        if resolved == MODE_SERIAL:
            return self._run_serial(
                base_table, protocol, attacks, seeds, deadline
            )
        return self._run_hoisted(
            base_table, protocol, attacks, seeds, deadline
        )

    def _note_pool_fallback(self, exc: BaseException) -> None:
        """Count and log a pooled -> hoisted degradation (results stay
        bit-identical; only the parallelism is lost)."""
        self.reliability.pool_fallbacks += 1
        logger.warning(
            "pooled sweep failed (%s: %s); falling back to the "
            "bit-identical hoisted path",
            type(exc).__name__,
            exc,
        )

    def _run_serial(self, base_table, protocol, attacks, seeds, deadline=None):
        """Reference path: re-embed per cell (the naive runner's cost)."""
        points = []
        cell_index = 0
        for x, attack in attacks:
            results = []
            for seed in seeds:
                check_deadline(deadline, "sweep.cell", cell_index)
                embedded = EmbeddedPass.build(base_table, protocol, seed)
                self.embeds_performed += 1
                results.append(run_cell(embedded, attack, x))
                self.cells_executed += 1
                cell_index += 1
            points.append(ExperimentPoint(x=x, passes=results))
        return points

    def _run_hoisted(self, base_table, protocol, attacks, seeds, deadline=None):
        token = _table_token(base_table)
        passes = []
        for position, seed in enumerate(seeds):
            check_deadline(deadline, "sweep.embed", position)
            passes.append(
                self.embedded_pass(base_table, protocol, seed, token=token)
            )
        points = []
        for position, (x, attack) in enumerate(attacks):
            check_deadline(deadline, "sweep.point", position)
            results = run_point(passes, attack, x, fused=self.fused)
            self.cells_executed += len(results)
            points.append(ExperimentPoint(x=x, passes=results))
        return points

    def _await_result(self, future, deadline: Deadline | None, position: int):
        """Bounded replacement for the historical unbounded
        ``future.result()`` wait.

        Polls in watchdog-sized slices; every wakeup scans the pool's
        heartbeat directory and ``SIGKILL``-s workers that went silent
        mid-task past the watchdog budget (the broken executor then takes
        the existing respawn path, so the hung seed is re-dispatched
        bit-identically), and an armed deadline turns the wait into an
        immediate-timeout poll once its budget is spent.
        """
        from concurrent.futures import TimeoutError as FuturesTimeout

        watchdog = self.watchdog
        cap = watchdog.poll if watchdog is not None else 1.0
        while True:
            if deadline is not None and deadline.expired():
                _kill_pool_workers()
                shutdown_sweep_pool()
                deadline.check("pool.worker", position)  # raises
            slice_timeout = (
                deadline.timeout(cap) if deadline is not None else cap
            )
            try:
                return future.result(timeout=slice_timeout)
            except FuturesTimeout:
                pass
            if watchdog is not None and _pool_hb_dir is not None:
                killed = watchdog.kill_stale(_pool_hb_dir, _pool_worker_pids())
                if killed:
                    self.reliability.watchdog_kills += len(killed)
                    logger.warning(
                        "watchdog killed %d hung pool worker(s) silent "
                        "past %.6gs: %s — respawning and re-dispatching",
                        len(killed), watchdog.budget, killed,
                    )

    def _run_pooled(self, base_table, protocol, attacks, seeds, deadline=None):
        from concurrent.futures import BrokenExecutor

        workers = self.max_workers or os.cpu_count() or 1
        # Probe picklability up front: an unpicklable attack submitted to
        # the executor deadlocks its queue-feeder thread instead of
        # raising, whereas this raises cleanly and run() falls back to
        # the bit-identical hoisted path.
        pickle.dumps((protocol, attacks))
        token = _table_token(base_table)
        policy = self.retry
        by_seed: dict[int, list[PassResult]] = {}
        pending = list(seeds)
        attempt = 0
        while pending:
            pool = _ensure_pool(token, base_table, workers)
            if self.watchdog is not None:
                self.watchdog.start_round()
            futures = {
                seed: pool.submit(
                    _worker_run_seed,
                    protocol,
                    seed,
                    attacks,
                    self._planned_worker_fault(seed, len(attacks)),
                )
                for seed in pending
            }
            failed = []
            last_exc: BaseException | None = None
            broken = False
            for seed, future in futures.items():
                try:
                    by_seed[seed] = self._await_result(
                        future, deadline, len(by_seed)
                    )
                except BrokenExecutor as exc:
                    # A worker died (OOM kill, injected or watchdog
                    # SIGKILL): the executor is unusable, every in-flight
                    # seed fails.
                    failed.append(seed)
                    last_exc = exc
                    broken = True
                except Exception as exc:
                    if classify(exc) is not TRANSIENT:
                        raise
                    failed.append(seed)
                    last_exc = exc
            if failed:
                attempt += 1
                if self.breaker.record_failure(
                    "pool.worker", cause=repr(last_exc)
                ):
                    # K consecutive failed rounds: stop burning the retry
                    # budget; run() degrades to the hoisted ladder.
                    self.reliability.breaker_trips["pool.worker"] += 1
                    raise RetryError("pool.worker", attempt) from last_exc
                if attempt >= policy.max_attempts:
                    raise RetryError("pool.worker", attempt) from last_exc
                self.reliability.cell_retries += len(failed) * len(attacks)
                self.reliability.record_retry("pool.worker", attempt, last_exc)
                time.sleep(policy.delay("pool.worker", attempt))
                if broken:
                    # Respawn: per-seed tasks are pure functions of their
                    # labels, so a fresh pool reproduces the lost results
                    # bit-identically.
                    shutdown_sweep_pool()
                    self.reliability.pool_respawns += 1
            pending = failed
        self.breaker.record_success("pool.worker")
        points = []
        for index, (x, _) in enumerate(attacks):
            results = [by_seed[seed][index] for seed in seeds]
            self.cells_executed += len(results)
            points.append(ExperimentPoint(x=x, passes=results))
        return points

    def _planned_worker_fault(
        self, seed: int, cell_count: int
    ) -> tuple[int, str, float] | None:
        """Consume any fault the armed plan scheduled for this seed's
        pool task, shipping it as an inject instruction (the plan lives
        in the parent; workers are separate processes).  The third field
        carries the stall parameter (``hang_seconds``/``slow_seconds``)
        for the stall kinds."""
        if not injection_armed():
            return None
        plan = active_plan()
        kind = plan.draw("pool.worker", seed)
        if kind is None:
            return None
        cell = plan.rng("pool.worker", seed).randrange(max(1, cell_count))
        if kind == HANG:
            param = plan.hang_seconds
        elif kind == SLOW:
            param = plan.slow_seconds
        else:
            param = 0.0
        return (cell, kind, param)

    # -- the runner-shaped convenience --------------------------------------
    def sweep(
        self,
        base_table: Table,
        mark_attribute: str,
        e: int,
        attack_factory,
        xs: list[float],
        watermark_length: int = 10,
        passes: int = PAPER_PASSES,
        seed_offset: int = 0,
        ecc_name: str = "majority",
        variant: str = "keyed",
        mode: str | None = None,
        backend: str = AUTO,
        deadline: Deadline | None = None,
    ) -> list[ExperimentPoint]:
        """Embed ``passes`` seeds once, attack at every ``x``.

        ``attack_factory(x)`` builds the (picklable) attack at parameter
        ``x``; attack randomness is decorrelated across cells by the
        per-cell ``random.Random(f"attack:{seed}:{x}")`` contract.
        ``backend`` selects the (bit-identical) execution backend of each
        pass's embed/verify.
        """
        protocol = SweepProtocol(
            mark_attribute=mark_attribute,
            e=e,
            watermark_length=watermark_length,
            ecc_name=ecc_name,
            variant=variant,
            backend=backend,
        )
        attacks = [(x, attack_factory(x)) for x in xs]
        seeds = range(seed_offset, seed_offset + passes)
        return self.run(
            base_table, protocol, attacks, seeds, mode=mode,
            deadline=deadline,
        )


# -- process-wide shared engine ----------------------------------------------

_shared_engine: SweepEngine | None = None


def get_sweep_engine() -> SweepEngine:
    """The process-wide :class:`SweepEngine` the public runner API uses.

    Sharing it is what lets successive sweeps in one process (a figure's
    two series, a bench run's four figures) reuse embedded passes and the
    persistent pool instead of starting cold.
    """
    global _shared_engine
    if _shared_engine is None:
        _shared_engine = SweepEngine()
    return _shared_engine


def reset_sweep_engine() -> None:
    """Drop the shared engine's caches and the pool (test isolation)."""
    global _shared_engine
    _shared_engine = None
    shutdown_sweep_pool()
