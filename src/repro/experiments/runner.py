"""Multi-pass experiment runner (public API over the sweep engine).

The paper's §5 protocol: every reported number "is the result of an
averaging process with 15 passes (each seeded with a different key), aimed
at smoothing out data-dependent biases and singularities".  The runner
reproduces that protocol: one pass = fresh key pair + fresh random
watermark + fresh attack randomness over the same base relation.

Since the sweep-engine rewrite this module is a thin protocol layer:
execution — embed hoisting, the persistent worker pool, the deterministic
serial reference — lives in :mod:`repro.experiments.sweepengine`, and a
sweep embeds each keyed pass *once*, sharing it copy-on-write across every
sweep point, instead of re-embedding per point.
"""

from __future__ import annotations

from ..attacks import Attack
from ..crypto import AUTO
from ..relational import Table
from .sweepengine import (
    ExperimentPoint,
    PAPER_PASSES,
    PassResult,
    SweepProtocol,
    get_sweep_engine,
)

__all__ = [
    "ExperimentPoint",
    "PAPER_PASSES",
    "PassResult",
    "run_attack_experiment",
    "sweep",
]


def run_attack_experiment(
    base_table: Table,
    mark_attribute: str,
    e: int,
    attack: Attack,
    watermark_length: int = 10,
    passes: int = PAPER_PASSES,
    seed_offset: int = 0,
    ecc_name: str = "majority",
    variant: str = "keyed",
    mode: str | None = None,
    backend: str = AUTO,
) -> list[PassResult]:
    """Embed, attack and verify ``passes`` times with per-pass keys.

    The base relation is shared (embedding clones it); keys, watermark bits
    and attack randomness differ per pass, exactly the paper's smoothing
    protocol.  Runs on the shared :class:`~repro.experiments.sweepengine
    .SweepEngine`, so each pass's embedding — and the warm
    :class:`~repro.crypto.HashEngine` behind it, via
    :func:`~repro.crypto.get_engine` — is reused by later experiments in
    the same process.  Outputs are bit-identical to the historical serial
    runner (the attack generator keeps its ``f"attack:{seed}"`` label).
    """
    protocol = SweepProtocol(
        mark_attribute=mark_attribute,
        e=e,
        watermark_length=watermark_length,
        ecc_name=ecc_name,
        variant=variant,
        backend=backend,
    )
    point = get_sweep_engine().run(
        base_table,
        protocol,
        [(None, attack)],
        range(seed_offset, seed_offset + passes),
        mode=mode,
    )[0]
    return point.passes


def sweep(
    base_table: Table,
    mark_attribute: str,
    e: int,
    attack_factory,
    xs: list[float],
    watermark_length: int = 10,
    passes: int = PAPER_PASSES,
    ecc_name: str = "majority",
    variant: str = "keyed",
    seed_offset: int = 0,
    mode: str | None = None,
    backend: str = AUTO,
) -> list[ExperimentPoint]:
    """Run the paper's pass protocol for every x in ``xs``.

    ``attack_factory(x)`` builds the attack at parameter ``x`` (attack
    size, data-loss fraction, ...).  The same ``passes`` keyed embeddings
    are shared across all points — the paper's 15 keyed passes swept over
    the attack axis — and attack randomness is decorrelated per cell by
    the engine's ``random.Random(f"attack:{seed}:{x}")`` contract.
    """
    return get_sweep_engine().sweep(
        base_table,
        mark_attribute,
        e,
        attack_factory,
        xs,
        watermark_length=watermark_length,
        passes=passes,
        seed_offset=seed_offset,
        ecc_name=ecc_name,
        variant=variant,
        mode=mode,
        backend=backend,
    )
