"""Multi-pass experiment runner.

The paper's §5 protocol: every reported number "is the result of an
averaging process with 15 passes (each seeded with a different key), aimed
at smoothing out data-dependent biases and singularities".  The runner
reproduces that protocol: one pass = fresh key pair + fresh random
watermark + fresh attack randomness over the same base relation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from statistics import mean, pstdev

from ..attacks import Attack
from ..core import Watermark, Watermarker
from ..crypto import MarkKey
from ..relational import Table

#: the paper's pass count
PAPER_PASSES = 15


@dataclass(frozen=True)
class PassResult:
    """One keyed embed→attack→verify round trip."""

    seed: int
    mark_alteration: float
    detected: bool
    false_hit_probability: float
    fit_count: int
    slots_recovered: int


@dataclass
class ExperimentPoint:
    """Averaged outcome of all passes at one parameter point."""

    x: float
    passes: list[PassResult] = field(default_factory=list)

    @property
    def mean_alteration(self) -> float:
        if not self.passes:
            return 0.0
        return mean(result.mark_alteration for result in self.passes)

    @property
    def alteration_stdev(self) -> float:
        if len(self.passes) < 2:
            return 0.0
        return pstdev(result.mark_alteration for result in self.passes)

    @property
    def detection_rate(self) -> float:
        if not self.passes:
            return 0.0
        return mean(1.0 if result.detected else 0.0 for result in self.passes)


def run_attack_experiment(
    base_table: Table,
    mark_attribute: str,
    e: int,
    attack: Attack,
    watermark_length: int = 10,
    passes: int = PAPER_PASSES,
    seed_offset: int = 0,
    ecc_name: str = "majority",
    variant: str = "keyed",
) -> list[PassResult]:
    """Embed, attack and verify ``passes`` times with per-pass keys.

    The base relation is shared (embedding clones it); keys, watermark bits
    and attack randomness differ per pass, exactly the paper's smoothing
    protocol.
    """
    results: list[PassResult] = []
    for pass_index in range(passes):
        seed = seed_offset + pass_index
        key = MarkKey.from_seed(seed)
        watermark = Watermark.random(
            watermark_length, random.Random(f"wm:{seed}")
        )
        marker = Watermarker(key, e=e, ecc_name=ecc_name, variant=variant)
        outcome = marker.embed(base_table, watermark, mark_attribute)
        attacked = attack.apply(outcome.table, random.Random(f"attack:{seed}"))
        verdict = marker.verify(attacked, outcome.record)
        association = verdict.association
        if association is None:
            raise RuntimeError(
                "attack removed the marked pair; use the multi-attribute or "
                "frequency experiment instead"
            )
        results.append(
            PassResult(
                seed=seed,
                mark_alteration=association.mark_alteration,
                detected=association.detected,
                false_hit_probability=association.false_hit_probability,
                fit_count=association.detection.fit_count,
                slots_recovered=association.detection.slots_recovered,
            )
        )
    return results


def sweep(
    base_table: Table,
    mark_attribute: str,
    e: int,
    attack_factory,
    xs: list[float],
    watermark_length: int = 10,
    passes: int = PAPER_PASSES,
    ecc_name: str = "majority",
    variant: str = "keyed",
) -> list[ExperimentPoint]:
    """Run :func:`run_attack_experiment` for every x in ``xs``.

    ``attack_factory(x)`` builds the attack at parameter ``x`` (attack size,
    data-loss fraction, ...).  Seeds are decorrelated across points.
    """
    points: list[ExperimentPoint] = []
    for index, x in enumerate(xs):
        results = run_attack_experiment(
            base_table,
            mark_attribute,
            e,
            attack_factory(x),
            watermark_length=watermark_length,
            passes=passes,
            seed_offset=1000 * index,
            ecc_name=ecc_name,
            variant=variant,
        )
        points.append(ExperimentPoint(x=x, passes=results))
    return points
