"""repro — a reproduction of *Proving Ownership over Categorical Data*
(Radu Sion, ICDE 2004).

Watermarking for categorical relational data: embed a secret, blindly
detectable ownership mark into the association between a relation's primary
key and its categorical attributes, surviving subset selection, tuple
addition, random alteration, re-sorting, vertical partitioning and
bijective value re-mapping.

Quickstart::

    from repro import MarkKey, Watermark, Watermarker
    from repro.datagen import generate_item_scan

    table = generate_item_scan(10_000)
    key = MarkKey.generate()
    marker = Watermarker(key, e=60)
    outcome = marker.embed(table, Watermark.from_text("(c)"), "Item_Nbr")
    verdict = marker.verify(outcome.table, outcome.record)
    assert verdict.detected

Subpackages
-----------
``repro.core``
    The paper's algorithms: embedding, blind detection, multi-attribute
    embeddings, frequency channel, remap recovery, data addition.
``repro.relational``
    The in-memory relational substrate (schemas, tables, operations).
``repro.crypto`` / ``repro.ecc`` / ``repro.numericwm``
    Keyed hashing, error-correcting codes, numeric-set watermarking.
``repro.quality``
    On-the-fly quality constraints, rollback log, usability plugins.
``repro.attacks``
    The adversary model A1–A6.
``repro.analysis``
    §4.4 closed forms (vulnerability, false positives, bandwidth).
``repro.baseline``
    Agrawal–Kiernan numeric watermarking for comparison.
``repro.datagen`` / ``repro.experiments``
    Synthetic workloads and the figure-regeneration harness.
``repro.stream``
    Out-of-core chunked mark/detect pipelines over on-disk relations
    (CSV/gzip/SQLite sources and sinks, checkpointed resumable embeds,
    accumulator-based streaming detection).
"""

from .core import (
    BandwidthError,
    DetectionError,
    DetectionResult,
    EmbedOutcome,
    EmbeddingResult,
    EmbeddingSpec,
    MarkRecord,
    SpecError,
    VerificationResult,
    VerifyOutcome,
    Watermark,
    Watermarker,
    WatermarkingError,
)
from .crypto import MarkKey
from .relational import (
    Attribute,
    AttributeType,
    CategoricalDomain,
    Schema,
    Table,
)

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "AttributeType",
    "BandwidthError",
    "CategoricalDomain",
    "DetectionError",
    "DetectionResult",
    "EmbedOutcome",
    "EmbeddingResult",
    "EmbeddingSpec",
    "MarkKey",
    "MarkRecord",
    "Schema",
    "SpecError",
    "Table",
    "VerificationResult",
    "VerifyOutcome",
    "Watermark",
    "Watermarker",
    "WatermarkingError",
    "__version__",
]
