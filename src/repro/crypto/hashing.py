"""One-way keyed hashing (§2.2).

The paper defines ``H(V, k) = crypto_hash(k ; V ; k)`` where ``;`` is
concatenation and ``crypto_hash`` is any cryptographically secure one-way
hash (MD5 and SHA are named as era-appropriate candidates).  One-wayness is
what defeats court-time exhaustive key-search claims: Mallory cannot find
keys that make arbitrary data appear watermarked.

We use SHA-256 from :mod:`hashlib`; the construction ``k;V;k`` is kept
verbatim.  Values are serialised to bytes via a canonical, type-tagged
encoding so that e.g. the integer ``1`` and the string ``"1"`` hash
differently and hashing is stable across processes (no reliance on
``hash()``).
"""

from __future__ import annotations

import hashlib
from typing import Any

# Also the memoization key-space separator of :mod:`repro.crypto.engine`,
# which must reproduce the exact ``k ; V ; k`` pre-image built here.
_SEPARATOR = b"\x00;\x00"


def canonical_bytes(value: Any) -> bytes:
    """Deterministic, type-tagged byte encoding of a scalar value."""
    if isinstance(value, bool):
        return b"b:" + (b"1" if value else b"0")
    if isinstance(value, int):
        return b"i:" + str(value).encode("ascii")
    if isinstance(value, float):
        # repr() round-trips floats exactly in Python 3.
        return b"f:" + repr(value).encode("ascii")
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8")
    if isinstance(value, bytes):
        return b"y:" + value
    if isinstance(value, tuple):
        parts = [canonical_bytes(item) for item in value]
        return b"t:" + _SEPARATOR.join(parts)
    raise TypeError(
        f"cannot canonically encode {type(value).__name__} value {value!r}"
    )


def crypto_hash(payload: bytes) -> int:
    """The paper's ``crypto_hash()``: SHA-256, interpreted as an integer."""
    return int.from_bytes(hashlib.sha256(payload).digest(), "big")


def keyed_hash(value: Any, key: bytes) -> int:
    """``H(V, k) = crypto_hash(k ; V ; k)`` as a 256-bit integer."""
    if not isinstance(key, bytes):
        raise TypeError(f"key must be bytes, got {type(key).__name__}")
    payload = key + _SEPARATOR + canonical_bytes(value) + _SEPARATOR + key
    return crypto_hash(payload)


def keyed_hash_mod(value: Any, key: bytes, modulus: int) -> int:
    """``H(V, k) mod m`` — the fitness criterion's workhorse."""
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    return keyed_hash(value, key) % modulus
