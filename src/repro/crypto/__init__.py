"""Cryptographic substrate: keyed one-way hashing, bit utilities, keys.

Implements §2.1 (notation: ``b``, ``msb``, ``set_bit``) and §2.2
(``H(V,k) = crypto_hash(k;V;k)``) of the paper.
"""

from .bits import (
    bit_length,
    bits_to_int,
    get_bit,
    int_to_bits,
    msb,
    set_bit,
)
from .hashing import canonical_bytes, crypto_hash, keyed_hash, keyed_hash_mod
from .keys import KeyError_, MarkKey
from .prng import keyed_rng, seeded_rng

__all__ = [
    "KeyError_",
    "MarkKey",
    "bit_length",
    "bits_to_int",
    "canonical_bytes",
    "crypto_hash",
    "get_bit",
    "int_to_bits",
    "keyed_hash",
    "keyed_hash_mod",
    "keyed_rng",
    "msb",
    "seeded_rng",
    "set_bit",
]
