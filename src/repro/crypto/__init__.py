"""Cryptographic substrate: keyed one-way hashing, bit utilities, keys.

Implements §2.1 (notation: ``b``, ``msb``, ``set_bit``) and §2.2
(``H(V,k) = crypto_hash(k;V;k)``) of the paper.
"""

from .bits import (
    bit_length,
    bits_to_int,
    get_bit,
    int_to_bits,
    msb,
    set_bit,
)
from .engine import (
    AUTO,
    BACKENDS,
    ENGINE,
    SCALAR,
    VECTOR,
    CarrierPlan,
    HashEngine,
    KeyedDigestCache,
    clear_engine_registry,
    get_digest_cache,
    get_engine,
    resolve_backend,
    resolve_engine,
    stack_cache_info,
)
from .hashing import canonical_bytes, crypto_hash, keyed_hash, keyed_hash_mod
from .keys import KeyError_, MarkKey
from .prng import keyed_rng, seeded_rng

__all__ = [
    "AUTO",
    "BACKENDS",
    "ENGINE",
    "SCALAR",
    "VECTOR",
    "CarrierPlan",
    "HashEngine",
    "KeyError_",
    "KeyedDigestCache",
    "MarkKey",
    "bit_length",
    "bits_to_int",
    "canonical_bytes",
    "clear_engine_registry",
    "crypto_hash",
    "get_bit",
    "get_digest_cache",
    "get_engine",
    "int_to_bits",
    "keyed_hash",
    "keyed_hash_mod",
    "keyed_rng",
    "msb",
    "resolve_backend",
    "resolve_engine",
    "seeded_rng",
    "set_bit",
    "stack_cache_info",
]
