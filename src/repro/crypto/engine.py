"""Batched keyed-hash engine — the columnar fast path for embed/detect.

The scheme spends almost all of its CPU time in ``H(V, k)`` evaluations
(§2.2): fitness selection hashes every distinct key value under ``k1``,
slot addressing hashes every carrier under ``k2``, and the value choice
re-derives the ``k1`` digest.  The row-at-a-time reference implementation
pays the full SHA-256 + Python-call cost for each of those, several times
per carrier, and again on every re-detection of the same relation — which
attack sweeps and benchmarks do hundreds of times.

:class:`HashEngine` removes that redundancy without changing a single
output bit:

* **one digest per (key, value)** — digests are memoized per secret key,
  keyed by the *canonical byte encoding* of the value, so the cache is
  exactly as discriminating as :func:`~repro.crypto.hashing.keyed_hash`
  itself (``1``, ``True``, ``1.0`` and ``"1"`` all stay distinct);
* **batched evaluation** — whole columns of distinct values are hashed in
  one tight loop (:meth:`KeyedDigestCache.digest_many`), with optional
  process-pool sharding for very large relations;
* **derived-primitive caches** — the quantities hot loops actually need
  (``fitness``, ``slot index``, ``pair index``) are memoized per parameter
  (``e``, ``|wm_data|``, ``nA``) on top of the digest cache, so a repeated
  detection of the same relation performs **zero** hash computations.

Cache-safety invariants (why memoization cannot go stale):

* every cached quantity is a pure function of ``(value, secret key)`` plus
  an integer parameter — never of table state, row order, or position;
* :class:`~repro.crypto.keys.MarkKey` and
  :class:`~repro.core.embedding.EmbeddingSpec` are frozen dataclasses, and
  attacks always operate on :meth:`~repro.relational.table.Table.clone`
  copies, so no mutation can invalidate an entry;
* the derived caches (:meth:`HashEngine.fitness_map` and friends) are
  keyed by the Python *value* for per-row lookup speed, mirroring the
  per-scan caches of the reference implementation — so, like any Python
  ``dict``, they treat ``1``/``True``/``1.0`` as one key.  Relations mixing
  equal-comparing values of different types in one key column are outside
  the paper's data model; the underlying digest cache remains exact.

Engines are shared process-wide through :func:`get_engine`, a bounded
registry keyed by :class:`MarkKey`, which is what lets an attack sweep's
hundredth re-detection skip re-hashing entirely.
"""

from __future__ import annotations

import gc
import os
import weakref
from collections import OrderedDict
from collections.abc import Iterable
from hashlib import sha256
from typing import Any, Hashable

from .bits import bit_length, msb
from .hashing import _SEPARATOR, canonical_bytes
from .keys import MarkKey

#: sentinel accepted by engine-aware entry points to force the
#: row-at-a-time reference path (used by equivalence tests and benches)
SCALAR = "scalar"

#: force the batched columnar engine path (the PR-1 fast path) even where
#: the auto heuristic would pick the vector kernels
ENGINE = "engine"

#: force the NumPy vector-kernel backend (column codes + plan arrays);
#: requires numpy and is bit-identical to SCALAR and ENGINE
VECTOR = "vector"

#: pick per call: VECTOR for large relations when numpy imports, the
#: columnar engine path otherwise (the default, equivalent to ``None``)
AUTO = "auto"

#: every string a ``backend=``/``engine=`` parameter accepts
BACKENDS = (SCALAR, ENGINE, VECTOR, AUTO)

#: below this many cache misses a single batch stays on one core;
#: above it, the work is sharded across a process pool (when available)
DEFAULT_POOL_THRESHOLD = 150_000

#: batches at least this large pause the cyclic GC while they hash: the
#: batch allocates several retained objects per value, and every threshold
#: crossing would otherwise rescan the whole heap (including the relation
#: being scanned) for garbage that cannot exist yet — a measured ~8x
#: slowdown on 128k-row cold scans
GC_PAUSE_THRESHOLD = 10_000

#: safety valve for long-lived processes: when a digest cache or derived
#: map exceeds this many entries it is dropped wholesale before the next
#: batch (workloads that keep injecting fresh keys — e.g. A2 dilution
#: sweeps — would otherwise grow the caches without bound).  Losing the
#: warm state once in a few million lookups costs one re-hash pass; the
#: bound keeps worst-case memory at cache ~hundreds of MB, not unbounded.
DEFAULT_MAX_ENTRIES = 2_000_000

#: per-engine bound on the number of column factorizations whose plan
#: arrays are kept warm.  The arrays are weak-keyed (they die with their
#: ColumnCodes), but workloads that churn *live* factorizations — an A1
#: sweep creates a fresh subset factorization per cell — would otherwise
#: accumulate arrays for as long as the attacked tables stay referenced;
#: the LRU keeps the working set at "the few relations under study".
DEFAULT_MAX_PLAN_CODES = 32

#: process-wide bound on factorizations with cached multi-pass stacks
_MAX_STACK_CODES = 16

_DIGEST_BYTES = 32


def _weak_lru_store(plans: "OrderedDict[weakref.ref, dict]", codes, bound: int) -> dict:
    """The per-factorization sub-store of a weak-keyed, LRU-bounded cache.

    Keyed by a weak reference so entries die with their
    :class:`~repro.relational.table.ColumnCodes`; the reference's death
    callback removes the slot eagerly, and the LRU bound evicts the
    coldest *live* factorizations beyond ``bound``.  Shared by the
    per-engine plan-array stores and the module-level stack-plan cache.
    """
    reference = weakref.ref(
        codes, lambda ref, _plans=plans: _plans.pop(ref, None)
    )
    store = plans.get(reference)
    if store is None:
        store = plans[reference] = {}
        while len(plans) > bound:
            plans.popitem(last=False)
    else:
        plans.move_to_end(reference)
    return store


def _digest_chunk(key: bytes, bodies: list[bytes]) -> bytes:
    """Pool worker: SHA-256 of ``k;V;k`` for a shard of canonical bodies.

    Returns the concatenated raw digests; the parent slices them back into
    per-value integers.  Top-level function so it pickles under spawn too.
    """
    prefix = key + _SEPARATOR
    suffix = _SEPARATOR + key
    return b"".join(
        sha256(prefix + body + suffix).digest() for body in bodies
    )


class KeyedDigestCache:
    """Memoized, batchable ``H(V, k)`` evaluation for one secret key.

    The cache key is :func:`canonical_bytes` of the value — the exact
    pre-image fed to SHA-256 — so memoization can never conflate values the
    hash itself distinguishes.
    """

    __slots__ = (
        "key", "computed", "_cache", "_prefix", "_suffix",
        "_pool_threshold", "_max_workers", "_max_entries",
    )

    def __init__(
        self,
        key: bytes,
        pool_threshold: int = DEFAULT_POOL_THRESHOLD,
        max_workers: int | None = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ):
        if not isinstance(key, bytes) or not key:
            raise TypeError("key must be non-empty bytes")
        self.key = key
        self._prefix = key + _SEPARATOR
        self._suffix = _SEPARATOR + key
        self._cache: dict[bytes, int] = {}
        self._pool_threshold = pool_threshold
        self._max_workers = max_workers
        self._max_entries = max_entries
        #: digests actually computed (cache misses) — perf-smoke telemetry
        self.computed = 0

    def __len__(self) -> int:
        return len(self._cache)

    def digest(self, value: Any) -> int:
        """``H(value, key)`` as a 256-bit integer (memoized)."""
        body = canonical_bytes(value)
        cached = self._cache.get(body)
        if cached is not None:
            return cached
        result = int.from_bytes(
            sha256(self._prefix + body + self._suffix).digest(), "big"
        )
        if len(self._cache) > self._max_entries:
            self._cache.clear()
        self._cache[body] = result
        self.computed += 1
        return result

    def digest_many(self, values: Iterable[Any]) -> list[int]:
        """``H(V, key)`` for a whole batch, canonical-encoding each value
        once and hashing only the cache misses (sharded across a process
        pool when the miss count is large enough to amortize fork cost).

        Duplicate values within one batch cost one redundant SHA-256 each
        (callers pass distinct values on the hot paths); the cache stays
        consistent either way because equal bodies hash equally.
        """
        large = (
            hasattr(values, "__len__")
            and len(values) >= GC_PAUSE_THRESHOLD  # type: ignore[arg-type]
            and gc.isenabled()
        )
        if not large:
            return self._digest_many(values)
        gc.disable()
        try:
            return self._digest_many(values)
        finally:
            gc.enable()

    def _digest_many(self, values: Iterable[Any]) -> list[int]:
        cache = self._cache
        if len(cache) > self._max_entries:
            cache.clear()
        canon = canonical_bytes
        if not cache:
            # Fully-cold batch (first contact with this key): every value
            # is a miss, so skip the per-value lookup bookkeeping entirely.
            bodies = [
                b"i:%d" % value if type(value) is int
                else b"s:" + value.encode("utf-8") if type(value) is str
                else canon(value)
                for value in values
            ]
            digests = self._compute(bodies)
            cache.update(zip(bodies, digests))
            self.computed += len(bodies)
            return digests
        out: list[int] = []
        append = out.append
        bodies: list[bytes] = []          # cache-miss pre-images, in order
        positions: list[int] = []         # their slots in `out`
        miss_body = bodies.append
        miss_position = positions.append
        cache_get = cache.get
        index = 0
        for value in values:
            # Inline the two dominant canonical encodings; exact type
            # checks keep bool/int and everything else on the exact
            # canonical_bytes path.
            kind = type(value)
            if kind is int:
                body = b"i:%d" % value
            elif kind is str:
                body = b"s:" + value.encode("utf-8")
            else:
                body = canon(value)
            cached = cache_get(body)
            if cached is None:
                miss_body(body)
                miss_position(index)
                append(0)
            else:
                append(cached)
            index += 1
        if not bodies:
            return out
        digests = self._compute(bodies)
        for body, position, result in zip(bodies, positions, digests):
            cache[body] = result
            out[position] = result
        self.computed += len(bodies)
        return out

    # -- batch back-ends ---------------------------------------------------
    def _compute(self, bodies: list[bytes]) -> list[int]:
        workers = self._max_workers or os.cpu_count() or 1
        if len(bodies) >= self._pool_threshold and workers >= 2:
            try:
                return self._compute_pooled(bodies, workers)
            except Exception:  # pragma: no cover - any pool failure
                # BrokenProcessPool (RuntimeError), fork/pipe OSErrors,
                # "daemonic processes..." from nested workers: the serial
                # loop below always works, so never let the pool kill a
                # scan.  KeyboardInterrupt et al. are BaseException and
                # still propagate.
                pass
        prefix = self._prefix
        suffix = self._suffix
        from_bytes = int.from_bytes
        return [
            from_bytes(sha256(prefix + body + suffix).digest(), "big")
            for body in bodies
        ]

    def _compute_pooled(self, bodies: list[bytes], workers: int) -> list[int]:
        from concurrent.futures import ProcessPoolExecutor

        shard_size = max(1, -(-len(bodies) // workers))
        shards = [
            bodies[start:start + shard_size]
            for start in range(0, len(bodies), shard_size)
        ]
        from_bytes = int.from_bytes
        results: list[int] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for blob in pool.map(
                _digest_chunk, [self.key] * len(shards), shards
            ):
                results.extend(
                    from_bytes(blob[i:i + _DIGEST_BYTES], "big")
                    for i in range(0, len(blob), _DIGEST_BYTES)
                )
        return results


class CarrierPlan:
    """Per-``(key, spec)`` view over an engine's derived caches.

    Bundles exactly the three lookups one embedding/detection pass needs —
    fitness under ``e``, slot index under ``|wm_data|``, pair index under
    ``nA`` — as *shared, persistent* dicts.  A second pass over the same
    relation (or any attacked clone of it) finds every entry already
    resolved and performs no hashing and no modular arithmetic at all.
    """

    __slots__ = ("engine", "e", "channel_length", "domain_size")

    def __init__(
        self,
        engine: "HashEngine",
        e: int,
        channel_length: int,
        domain_size: int | None,
    ):
        self.engine = engine
        self.e = e
        self.channel_length = channel_length
        self.domain_size = domain_size

    def fitness(self, values: Iterable[Hashable]) -> dict[Hashable, bool]:
        """Shared ``value -> H(V, k1) mod e == 0`` map covering ``values``."""
        return self.engine.fitness_map(values, self.e)

    def slots(self, values: Iterable[Hashable]) -> dict[Hashable, int]:
        """Shared ``value -> slot index`` map covering ``values``."""
        return self.engine.slot_map(values, self.channel_length)

    def pairs(self, values: Iterable[Hashable]) -> dict[Hashable, int]:
        """Shared ``value -> pair index`` map covering ``values``."""
        if self.domain_size is None:
            raise ValueError("plan was built without a mark-value domain")
        return self.engine.pair_map(values, self.domain_size)


class HashEngine:
    """Columnar ``H(V, k1)``/``H(V, k2)`` evaluation for one key pair.

    The derived maps returned by :meth:`fitness_map`, :meth:`slot_map` and
    :meth:`pair_map` are *live, shared* dicts — callers must treat them as
    read-only.  They grow monotonically and are safe forever because every
    entry is a pure function of the (immutable) secret keys and the value.
    """

    __slots__ = (
        "key", "k1", "k2", "_fit", "_slots", "_pairs", "_max_entries",
        "_array_plans", "_max_plan_codes", "plan_arrays_built",
        "plan_array_hits",
    )

    def __init__(
        self,
        key: MarkKey,
        pool_threshold: int = DEFAULT_POOL_THRESHOLD,
        max_workers: int | None = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_plan_codes: int = DEFAULT_MAX_PLAN_CODES,
    ):
        self.key = key
        self.k1 = KeyedDigestCache(
            key.k1, pool_threshold, max_workers, max_entries
        )
        self.k2 = KeyedDigestCache(
            key.k2, pool_threshold, max_workers, max_entries
        )
        self._fit: dict[int, dict[Hashable, bool]] = {}
        self._slots: dict[int, dict[Hashable, int]] = {}
        self._pairs: dict[int, dict[Hashable, int]] = {}
        self._max_entries = max_entries
        # Vector-backend plan arrays, cached per ColumnCodes *object*: a
        # factorization is immutable for the table version it was built
        # at, so identity-keyed entries can never go stale, and the weak
        # keys let arrays die with their table instead of pinning it.
        # LRU-bounded (max_plan_codes live factorizations) so that
        # workloads churning live codes objects cannot grow it unbounded.
        self._array_plans: "OrderedDict[weakref.ref, dict]" = OrderedDict()
        self._max_plan_codes = max_plan_codes
        #: telemetry: plan arrays actually materialized (perf smoke
        #: asserts a warm vector re-detection builds zero of them)
        self.plan_arrays_built = 0
        #: telemetry: plan-array requests answered from cache
        self.plan_array_hits = 0

    def _derived(
        self, store: dict[int, dict], parameter: int
    ) -> dict:
        """The derived map for ``parameter``, bounded by the entry cap."""
        derived = store.get(parameter)
        if derived is None:
            derived = store[parameter] = {}
        elif len(derived) > self._max_entries:
            derived.clear()
        return derived

    # -- telemetry --------------------------------------------------------
    @property
    def computed_digests(self) -> int:
        """Total SHA-256 evaluations this engine has actually performed."""
        return self.k1.computed + self.k2.computed

    # -- derived primitive maps (shared, persistent) -----------------------
    def fitness_map(
        self, values: Iterable[Hashable], e: int
    ) -> dict[Hashable, bool]:
        """``value -> (H(V, k1) mod e == 0)`` covering ``values``."""
        if e <= 0:
            raise ValueError(f"e must be positive, got {e}")
        derived = self._derived(self._fit, e)
        missing = [v for v in values if v not in derived]
        if missing:
            # setdefault: if a batch contains equal-comparing values of
            # different types (1/True), the first occurrence wins — the
            # same semantics as the reference implementation's scan caches.
            for value, digest in zip(missing, self.k1.digest_many(missing)):
                derived.setdefault(value, digest % e == 0)
        return derived

    def slot_map(
        self, values: Iterable[Hashable], channel_length: int
    ) -> dict[Hashable, int]:
        """``value -> msb(H(V, k2), b(L)) mod L`` covering ``values``."""
        if channel_length <= 0:
            raise ValueError(
                f"channel length must be positive, got {channel_length}"
            )
        derived = self._derived(self._slots, channel_length)
        missing = [v for v in values if v not in derived]
        if missing:
            width = bit_length(channel_length)
            for value, digest in zip(missing, self.k2.digest_many(missing)):
                derived.setdefault(value, msb(digest, width) % channel_length)
        return derived

    def pair_map(
        self, values: Iterable[Hashable], domain_size: int
    ) -> dict[Hashable, int]:
        """``value -> msb(H(V, k1), b(nA)) mod (nA // 2)`` covering
        ``values`` — the pair-coding secret of
        :func:`~repro.core.embedding.embedded_value_index`."""
        pairs = domain_size // 2
        if pairs <= 0:
            raise ValueError(
                f"domain of size {domain_size} has no usable value pairs"
            )
        derived = self._derived(self._pairs, domain_size)
        missing = [v for v in values if v not in derived]
        if missing:
            width = bit_length(domain_size)
            for value, digest in zip(missing, self.k1.digest_many(missing)):
                derived.setdefault(value, msb(digest, width) % pairs)
        return derived

    # -- list-shaped conveniences -----------------------------------------
    def fitness_mask(self, values: Iterable[Hashable], e: int) -> list[bool]:
        """Per-value fitness verdicts, aligned with ``values``."""
        values = list(values)
        table = self.fitness_map(values, e)
        return [table[v] for v in values]

    def slot_indices(
        self, values: Iterable[Hashable], channel_length: int
    ) -> list[int]:
        """Per-value ``wm_data`` slot indices, aligned with ``values``."""
        values = list(values)
        table = self.slot_map(values, channel_length)
        return [table[v] for v in values]

    def pair_indices(self, values: Iterable[Hashable], domain) -> list[int]:
        """Per-value pair indices, aligned with ``values``.

        ``domain`` may be a :class:`~repro.relational.CategoricalDomain`
        or a plain domain size.
        """
        size = domain if isinstance(domain, int) else domain.size
        values = list(values)
        table = self.pair_map(values, size)
        return [table[v] for v in values]

    # -- vector plan arrays (cached per column factorization) ---------------
    def _plan_store(self, codes) -> dict:
        """The (LRU-tracked) plan-array store for one factorization."""
        return _weak_lru_store(self._array_plans, codes, self._max_plan_codes)

    def fitness_array(self, codes, e: int):
        """Read-only bool array: per-unique fitness verdicts for a
        :class:`~repro.relational.table.ColumnCodes` factorization.

        Aligned with ``codes.uniques`` — gather per-row verdicts as
        ``fitness_array(codes, e)[codes.codes]``.  Built once per
        factorization from :meth:`fitness_map` (memoization semantics and
        digest accounting unchanged) and cached until the factorization
        dies, so a warm re-detection touches no per-value Python dict at
        all.
        """
        store = self._plan_store(codes)
        entry = store.get(("fit", e))
        if entry is not None:
            self.plan_array_hits += 1
            return entry
        import numpy as np

        uniques = codes.uniques
        table = self.fitness_map(uniques, e)
        entry = np.fromiter(
            (table[value] for value in uniques),
            dtype=np.bool_,
            count=len(uniques),
        )
        entry.setflags(write=False)
        store[("fit", e)] = entry
        self.plan_arrays_built += 1
        return entry

    def _fit_masked_array(self, codes, cache_key: tuple, e: int, map_for):
        """Shared fit-masked plan-array builder for slot/pair indices.

        Only *fit* uniques (under ``e``) are resolved through ``map_for``
        — exactly the values the scalar and engine paths hash — so digest
        counts match across backends; unfit entries hold 0 and must be
        masked by :meth:`fitness_array` before use.
        """
        store = self._plan_store(codes)
        entry = store.get(cache_key)
        if entry is not None:
            self.plan_array_hits += 1
            return entry
        import numpy as np

        fit = self.fitness_array(codes, e)
        fit_positions = np.flatnonzero(fit)
        uniques = codes.uniques
        fit_values = [uniques[i] for i in fit_positions.tolist()]
        table = map_for(fit_values)
        entry = np.zeros(len(uniques), dtype=np.int32)
        entry[fit_positions] = np.fromiter(
            (table[value] for value in fit_values),
            dtype=np.int32,
            count=len(fit_values),
        )
        entry.setflags(write=False)
        store[cache_key] = entry
        self.plan_arrays_built += 1
        return entry

    def slot_array(self, codes, channel_length: int, e: int):
        """Read-only int32 array: per-unique ``wm_data`` slot indices
        (fit-masked — see :meth:`_fit_masked_array`)."""
        return self._fit_masked_array(
            codes,
            ("slot", channel_length, e),
            e,
            lambda values: self.slot_map(values, channel_length),
        )

    def pair_array(self, codes, domain_size: int, e: int):
        """Read-only int32 array: per-unique pair indices (fit-masked —
        only carriers are ever pair-coded)."""
        return self._fit_masked_array(
            codes,
            ("pair", domain_size, e),
            e,
            lambda values: self.pair_map(values, domain_size),
        )

    # -- stacked plan projections (multi-pass detection) ---------------------
    #
    # The §5 protocol detects P keyed passes over relations sharing one
    # key-column factorization.  The stacks below bundle P engines'
    # single-pass plan arrays into one (P, U) array so the fused kernel
    # (repro.core.kernels.detect_multipass) gathers all passes at once.
    # Cached weak-keyed per ColumnCodes like the single-pass arrays —
    # keyed by the engines' MarkKeys, which fully determine the content —
    # and LRU-bounded process-wide.

    @staticmethod
    def _stack(engines, codes, cache_key: tuple, build_row):
        global plan_stacks_built, plan_stack_hits
        store = _weak_lru_store(_stack_plans, codes, _MAX_STACK_CODES)
        full_key = (cache_key, tuple(engine.key for engine in engines))
        entry = store.get(full_key)
        if entry is not None:
            plan_stack_hits += 1
            return entry
        import numpy as np

        entry = np.stack([build_row(engine) for engine in engines])
        entry.setflags(write=False)
        store[full_key] = entry
        plan_stacks_built += 1
        return entry

    @staticmethod
    def fitness_stack(engines, codes, e: int):
        """Read-only ``(P, U)`` bool array: per-pass per-unique fitness
        verdicts, one row per engine (pass), aligned with
        ``codes.uniques``."""
        return HashEngine._stack(
            engines,
            codes,
            ("fit", e),
            lambda engine: engine.fitness_array(codes, e),
        )

    @staticmethod
    def slot_stack(engines, codes, channel_length: int, e: int):
        """Read-only ``(P, U)`` int32 array: per-pass per-unique slot
        indices (fit-masked like :meth:`slot_array`)."""
        return HashEngine._stack(
            engines,
            codes,
            ("slot", channel_length, e),
            lambda engine: engine.slot_array(codes, channel_length, e),
        )

    @staticmethod
    def pair_stack(engines, codes, domain_size: int, e: int):
        """Read-only ``(P, U)`` int32 array: per-pass per-unique pair
        indices (fit-masked like :meth:`pair_array`)."""
        return HashEngine._stack(
            engines,
            codes,
            ("pair", domain_size, e),
            lambda engine: engine.pair_array(codes, domain_size, e),
        )

    # -- introspection ------------------------------------------------------
    def cache_info(self) -> dict[str, Any]:
        """Hit/miss/entry telemetry across every cache layer.

        Digest misses are SHA-256 evaluations actually performed; derived
        entries count memoized fitness/slot/pair verdicts; plan-array
        numbers cover the weak-keyed vector-backend caches (bounded by
        ``max_plan_codes``).  Surfaced in the bench JSON records.
        """
        return {
            "digest_entries": len(self.k1) + len(self.k2),
            "digests_computed": self.computed_digests,
            "derived_entries": {
                "fitness": sum(len(m) for m in self._fit.values()),
                "slot": sum(len(m) for m in self._slots.values()),
                "pair": sum(len(m) for m in self._pairs.values()),
            },
            "plan_codes_tracked": len(self._array_plans),
            "plan_arrays": sum(
                len(store) for store in self._array_plans.values()
            ),
            "plan_arrays_built": self.plan_arrays_built,
            "plan_array_hits": self.plan_array_hits,
        }

    # -- scalar conveniences ----------------------------------------------
    def is_fit(self, value: Hashable, e: int) -> bool:
        derived = self._fit.get(e)
        if derived is not None:
            cached = derived.get(value)
            if cached is not None:
                return cached
        return self.fitness_map((value,), e)[value]

    def slot_index(self, value: Hashable, channel_length: int) -> int:
        derived = self._slots.get(channel_length)
        if derived is not None:
            cached = derived.get(value)
            if cached is not None:
                return cached
        return self.slot_map((value,), channel_length)[value]

    def pair_index(self, value: Hashable, domain_size: int) -> int:
        derived = self._pairs.get(domain_size)
        if derived is not None:
            cached = derived.get(value)
            if cached is not None:
                return cached
        return self.pair_map((value,), domain_size)[value]

    # -- plans -------------------------------------------------------------
    def plan(
        self, e: int, channel_length: int, domain_size: int | None = None
    ) -> CarrierPlan:
        """A :class:`CarrierPlan` view for one embedding spec."""
        return CarrierPlan(self, e, channel_length, domain_size)


# -- multi-pass stack-plan cache -------------------------------------------
#
# Stacked (P, U) plan arrays span several engines, so they live at module
# level rather than on any single engine: weak-keyed per ColumnCodes (the
# arrays die with the factorization), LRU-bounded, inner-keyed by the
# participating MarkKeys + parameters.

_stack_plans: "OrderedDict[weakref.ref, dict]" = OrderedDict()

#: telemetry: (P, U) plan stacks actually materialized / served warm
plan_stacks_built = 0
plan_stack_hits = 0


def stack_cache_info() -> dict[str, int]:
    """Entry/built/hit telemetry for the multi-pass stack-plan cache."""
    return {
        "codes_tracked": len(_stack_plans),
        "stacks": sum(len(store) for store in _stack_plans.values()),
        "stacks_built": plan_stacks_built,
        "stack_hits": plan_stack_hits,
    }


# -- process-wide engine registry ------------------------------------------

_MAX_ENGINES = 32
_engines: "OrderedDict[MarkKey, HashEngine]" = OrderedDict()

_MAX_RAW_CACHES = 16
_raw_caches: "OrderedDict[bytes, KeyedDigestCache]" = OrderedDict()


def get_engine(key: MarkKey) -> HashEngine:
    """The shared :class:`HashEngine` for ``key`` (LRU-bounded registry).

    Sharing is what turns the engine's memoization into cross-call wins:
    ``Watermarker.embed`` warms the digests that ``Watermarker.verify`` and
    every subsequent attack-sweep re-detection then read for free.
    """
    engine = _engines.get(key)
    if engine is None:
        engine = _engines[key] = HashEngine(key)
        while len(_engines) > _MAX_ENGINES:
            _engines.popitem(last=False)
    else:
        _engines.move_to_end(key)
    return engine


def resolve_engine(
    engine: HashEngine | None, key: MarkKey
) -> HashEngine:
    """The engine to use for ``key``: the shared registry engine when
    ``engine`` is ``None``, otherwise ``engine`` itself — after checking
    it was built for the *same* key pair.  An unchecked mismatch would
    silently hash under the engine's keys while the result is attributed
    to ``key``.
    """
    if engine is None:
        return get_engine(key)
    if engine.key != key:
        raise ValueError(
            "engine was built for a different MarkKey than the one passed "
            "alongside it"
        )
    return engine


def resolve_backend(
    engine: "HashEngine | str | None", key: MarkKey
) -> HashEngine:
    """Normalize an ``engine=``/``backend=`` parameter to a
    :class:`HashEngine` for ``key``.

    Backend *sentinels* (:data:`ENGINE`, :data:`VECTOR`, :data:`AUTO` —
    the caller dispatches :data:`SCALAR` before ever needing an engine)
    resolve to the shared registry engine; unknown strings raise instead
    of silently running on a default backend, so a typo like
    ``engine="vectr"`` fails loudly.  ``None`` and explicit instances
    behave as in :func:`resolve_engine`.
    """
    if isinstance(engine, str):
        if engine not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {engine!r}"
            )
        return get_engine(key)
    return resolve_engine(engine, key)


def get_digest_cache(key: bytes) -> KeyedDigestCache:
    """Shared :class:`KeyedDigestCache` for a raw byte key (LRU-bounded).

    Used by schemes outside the (k1, k2) pair model — e.g. the
    Agrawal–Kiernan baseline, which hashes under a single secret key.
    """
    cache = _raw_caches.get(key)
    if cache is None:
        cache = _raw_caches[key] = KeyedDigestCache(key)
        while len(_raw_caches) > _MAX_RAW_CACHES:
            _raw_caches.popitem(last=False)
    else:
        _raw_caches.move_to_end(key)
    return cache


def clear_engine_registry() -> None:
    """Drop every shared engine/cache (test isolation, memory pressure)."""
    _engines.clear()
    _raw_caches.clear()
    _stack_plans.clear()
