"""Hash-seeded deterministic randomness.

Several components need randomness that is (a) reproducible given the secret
key — so embedding and experiments are deterministic — and (b) independent
across labelled uses.  :func:`keyed_rng` derives a :class:`random.Random`
from key material and a purpose label via the same one-way hash used by the
embedding, so no global seeding is involved and uses cannot collide.
"""

from __future__ import annotations

import random

from .hashing import keyed_hash


def keyed_rng(key: bytes, label: str, extra: int | str = 0) -> random.Random:
    """Deterministic PRNG bound to ``(key, label, extra)``.

    ``label`` separates purposes (e.g. ``"data-addition"`` vs
    ``"numeric-set"``); ``extra`` separates iterations within a purpose.
    """
    seed = keyed_hash((label, str(extra)), key)
    return random.Random(seed)


def seeded_rng(seed: int | str) -> random.Random:
    """Plain reproducible PRNG for non-secret uses (data generation, attacks)."""
    return random.Random(seed)
