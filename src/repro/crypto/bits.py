"""Bit-level primitives from the paper's notation section (§2.1).

* ``b(X)`` — number of bits required to represent ``X``;
* ``msb(X, b)`` — the most significant ``b`` bits of ``X``, left-padding
  with zeroes when ``X`` is shorter than ``b`` bits;
* ``set_bit(d, a, v)`` — ``d`` with bit position ``a`` set to ``v``.

All functions operate on non-negative integers; bit position 0 is the least
significant bit, matching the paper's use of ``t & 1`` to read back the
embedded bit.
"""

from __future__ import annotations


def bit_length(value: int) -> int:
    """``b(X)``: bits required to represent ``value`` (``b(0) = 1``).

    The paper's ``b()`` counts representation width; zero still occupies one
    bit, and widths feed ``msb`` so they must never be 0.
    """
    if value < 0:
        raise ValueError(f"b() is defined for non-negative integers, got {value}")
    return max(1, value.bit_length())


def msb(value: int, bits: int) -> int:
    """``msb(X, b)``: the most significant ``bits`` bits of ``value``.

    Per §2.1, when ``b(X) < bits`` the value is left-padded with zeroes to
    form a ``bits``-bit result — i.e. the value itself is returned.
    """
    if bits <= 0:
        raise ValueError(f"msb() needs a positive width, got {bits}")
    if value < 0:
        raise ValueError(f"msb() is defined for non-negative integers, got {value}")
    width = value.bit_length()
    if width <= bits:
        return value
    return value >> (width - bits)


def set_bit(value: int, position: int, bit: int) -> int:
    """``set_bit(d, a, b)``: return ``value`` with bit ``position`` forced to ``bit``."""
    if position < 0:
        raise ValueError(f"bit position must be non-negative, got {position}")
    if bit not in (0, 1):
        raise ValueError(f"bit must be 0 or 1, got {bit}")
    if value < 0:
        raise ValueError(f"set_bit() needs a non-negative integer, got {value}")
    mask = 1 << position
    return (value | mask) if bit else (value & ~mask)


def get_bit(value: int, position: int) -> int:
    """Bit at ``position`` of ``value`` (0 = least significant)."""
    if position < 0:
        raise ValueError(f"bit position must be non-negative, got {position}")
    return (value >> position) & 1


def int_to_bits(value: int, width: int) -> tuple[int, ...]:
    """Big-endian tuple of ``width`` bits representing ``value``."""
    if value < 0:
        raise ValueError("only non-negative integers have a bit expansion here")
    if value.bit_length() > width:
        raise ValueError(f"{value} does not fit in {width} bits")
    return tuple((value >> shift) & 1 for shift in range(width - 1, -1, -1))


def bits_to_int(bits) -> int:
    """Inverse of :func:`int_to_bits` (big-endian)."""
    result = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit}")
        result = (result << 1) | bit
    return result
