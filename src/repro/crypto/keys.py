"""Secret key material for watermark embedding and detection.

The scheme of §3.2 uses two independent secret keys:

* ``k1`` — selects the "fit" tuples *and* the pseudo-random new attribute
  value;
* ``k2`` — selects which ``wm_data`` bit each fit tuple carries.

§3.2.1 stresses they must differ so tuple selection and bit-position
selection are uncorrelated (a correlation could starve some watermark bits
of carriers).  :class:`MarkKey` packages the pair, generates fresh pairs,
derives per-pass subkeys for multi-attribute embeddings (§3.3), and
round-trips through a printable form the owner can store in escrow.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

_KEY_BYTES = 32


class KeyError_(Exception):
    """Raised for malformed or mismatched key material."""


@dataclass(frozen=True)
class MarkKey:
    """A (k1, k2) secret key pair."""

    k1: bytes
    k2: bytes

    def __post_init__(self) -> None:
        for label, key in (("k1", self.k1), ("k2", self.k2)):
            if not isinstance(key, bytes) or not key:
                raise KeyError_(f"{label} must be non-empty bytes")
        if self.k1 == self.k2:
            raise KeyError_(
                "k1 and k2 must differ (the paper requires uncorrelated "
                "tuple and bit selection)"
            )

    # -- construction -------------------------------------------------------
    @classmethod
    def generate(cls) -> "MarkKey":
        """Fresh cryptographically random key pair."""
        k1 = secrets.token_bytes(_KEY_BYTES)
        k2 = secrets.token_bytes(_KEY_BYTES)
        while k2 == k1:  # pragma: no cover - astronomically unlikely
            k2 = secrets.token_bytes(_KEY_BYTES)
        return cls(k1, k2)

    @classmethod
    def from_seed(cls, seed: int | str) -> "MarkKey":
        """Deterministic key pair from a seed.

        Experiments average over "15 passes, each seeded with a different
        key" (§5); deterministic derivation makes those passes reproducible.
        """
        material = str(seed).encode("utf-8")
        k1 = hashlib.sha256(b"repro.k1:" + material).digest()
        k2 = hashlib.sha256(b"repro.k2:" + material).digest()
        return cls(k1, k2)

    # -- derivation --------------------------------------------------------
    def derive(self, label: str) -> "MarkKey":
        """Independent subkey pair bound to ``label``.

        Multi-attribute embedding (§3.3) marks several attribute pairs; each
        pair gets its own derived keys so the embeddings are cryptographically
        independent while the owner still escrows a single master key.
        """
        tag = label.encode("utf-8")
        return MarkKey(
            hashlib.sha256(b"repro.derive.k1:" + tag + b":" + self.k1).digest(),
            hashlib.sha256(b"repro.derive.k2:" + tag + b":" + self.k2).digest(),
        )

    # -- persistence ----------------------------------------------------------
    def to_dict(self) -> dict[str, str]:
        return {"k1": self.k1.hex(), "k2": self.k2.hex()}

    @classmethod
    def from_dict(cls, payload: dict[str, str]) -> "MarkKey":
        try:
            return cls(bytes.fromhex(payload["k1"]), bytes.fromhex(payload["k2"]))
        except (KeyError, ValueError) as exc:
            raise KeyError_(f"malformed key payload: {exc}") from exc

    def __repr__(self) -> str:
        return f"MarkKey(k1={self.k1[:4].hex()}…, k2={self.k2[:4].hex()}…)"
