"""Post-hoc data-goodness measurement.

Where :mod:`repro.quality.constraints` enforces quality *during* embedding,
this module measures it *after the fact*: given the original and the marked
(or attacked) relation, report how much actually changed.  Benchmarks use
these numbers to report the data-alteration cost alongside resilience.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..relational import Table, frequency_histogram, l1_distance


@dataclass(frozen=True)
class DistortionReport:
    """Summary of the differences between two versions of a relation."""

    tuples_compared: int
    tuples_changed: int
    cells_compared: int
    cells_changed: int
    missing_tuples: int
    added_tuples: int
    frequency_drift: dict[str, float] = field(default_factory=dict)

    @property
    def tuple_change_fraction(self) -> float:
        if self.tuples_compared == 0:
            return 0.0
        return self.tuples_changed / self.tuples_compared

    @property
    def cell_change_fraction(self) -> float:
        if self.cells_compared == 0:
            return 0.0
        return self.cells_changed / self.cells_compared

    def summary(self) -> str:
        lines = [
            f"tuples changed : {self.tuples_changed}/{self.tuples_compared}"
            f" ({self.tuple_change_fraction:.2%})",
            f"cells changed  : {self.cells_changed}/{self.cells_compared}"
            f" ({self.cell_change_fraction:.2%})",
            f"tuples missing : {self.missing_tuples}",
            f"tuples added   : {self.added_tuples}",
        ]
        for attribute, drift in sorted(self.frequency_drift.items()):
            lines.append(f"freq L1 drift  : {attribute} = {drift:.4f}")
        return "\n".join(lines)


def measure_distortion(
    original: Table,
    current: Table,
    frequency_attributes: tuple[str, ...] = (),
) -> DistortionReport:
    """Compare ``current`` against ``original`` tuple-by-tuple (PK-aligned).

    Tuples present only in the original count as ``missing`` (data loss);
    tuples present only in ``current`` count as ``added`` (A2-style
    additions).  ``frequency_attributes`` selects categorical attributes
    whose normalised-histogram L1 drift should be reported.
    """
    key_position = original.schema.position(original.primary_key)
    tuples_compared = 0
    tuples_changed = 0
    cells_compared = 0
    cells_changed = 0
    missing = 0

    for row in original:
        key = row[key_position]
        if key not in current:
            missing += 1
            continue
        other = current.get(key)
        tuples_compared += 1
        row_changed = False
        for a, b in zip(row, other):
            cells_compared += 1
            if a != b:
                cells_changed += 1
                row_changed = True
        tuples_changed += row_changed

    original_keys = set(original.keys())
    added = sum(1 for key in current.keys() if key not in original_keys)

    drift = {
        attribute: l1_distance(
            frequency_histogram(original, attribute),
            frequency_histogram(current, attribute),
        )
        for attribute in frequency_attributes
    }
    return DistortionReport(
        tuples_compared=tuples_compared,
        tuples_changed=tuples_changed,
        cells_compared=cells_compared,
        cells_changed=cells_changed,
        missing_tuples=missing,
        added_tuples=added,
        frequency_drift=drift,
    )
