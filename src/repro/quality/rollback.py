"""Alteration rollback log (§4.1, Figure 3).

Every cell alteration the encoder performs is recorded as a
:class:`ChangeRecord`.  When a quality constraint is violated by the current
watermarking step, the log's undo path restores the previous value —
"a rollback log is kept to allow undo operations in case certain constraints
are violated by the current watermarking step".
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any, Hashable

from ..relational import Table


@dataclass(frozen=True)
class ChangeRecord:
    """One logged cell alteration: ``T_key(attribute): old -> new``."""

    key: Hashable
    attribute: str
    old: Any
    new: Any

    def inverted(self) -> "ChangeRecord":
        return ChangeRecord(self.key, self.attribute, self.new, self.old)


class RollbackLog:
    """Ordered log of applied alterations with undo support."""

    def __init__(self) -> None:
        self._entries: list[ChangeRecord] = []

    def record(self, key: Hashable, attribute: str, old: Any, new: Any) -> ChangeRecord:
        entry = ChangeRecord(key, attribute, old, new)
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ChangeRecord]:
        return iter(self._entries)

    @property
    def entries(self) -> tuple[ChangeRecord, ...]:
        return tuple(self._entries)

    def undo_last(self, table: Table) -> ChangeRecord | None:
        """Revert the most recent change on ``table``; return it (or None)."""
        if not self._entries:
            return None
        entry = self._entries.pop()
        table.set_value(entry.key, entry.attribute, entry.old)
        return entry

    def undo_all(self, table: Table) -> int:
        """Revert every logged change (reverse order); return the count."""
        reverted = 0
        while self.undo_last(table) is not None:
            reverted += 1
        return reverted

    def changed_cells(self) -> set[tuple[Hashable, str]]:
        """(key, attribute) pairs currently altered.

        This doubles as the "hash-map remembering modified tuples in each
        marking pass" that §3.3 uses to avoid inter-pass interference.
        """
        return {(entry.key, entry.attribute) for entry in self._entries}
