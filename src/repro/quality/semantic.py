"""Semantic-consistency awareness: association rules (§6 future work).

The paper's conclusions propose "augment[ing] the encoding method with
direct awareness of semantic consistency (e.g. classification and
association rules)".  This module implements the association-rule half:

* :func:`mine_rules` — a simple pairwise miner producing
  ``(A=a) -> (B=b)`` rules with support/confidence over a relation;
* :class:`AssociationRuleMetric` — a Figure-3 usability plugin scoring how
  well the mined rules survive in the marked relation;
* via :class:`~repro.quality.plugins.PluginConstraint`, the metric slots
  straight into the on-the-fly guard loop, vetoing alterations that would
  break the rules downstream consumers mine for.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable

from ..relational import Table
from .plugins import MetricResult, UsabilityMetricPlugin


@dataclass(frozen=True)
class AssociationRule:
    """``(antecedent_attr = antecedent_value) -> (consequent_attr = value)``."""

    antecedent_attribute: str
    antecedent_value: Hashable
    consequent_attribute: str
    consequent_value: Hashable
    support: float
    confidence: float

    def __str__(self) -> str:
        return (
            f"({self.antecedent_attribute}={self.antecedent_value!r}) -> "
            f"({self.consequent_attribute}={self.consequent_value!r}) "
            f"[sup={self.support:.3f}, conf={self.confidence:.3f}]"
        )


def rule_statistics(
    table: Table,
    antecedent_attribute: str,
    antecedent_value: Hashable,
    consequent_attribute: str,
    consequent_value: Hashable,
) -> tuple[float, float]:
    """(support, confidence) of one rule over ``table``."""
    if len(table) == 0:
        return 0.0, 0.0
    # Columnar scan: only the two consulted cells are read per tuple.
    # This runs inside the per-alteration guard loop (via
    # AssociationRuleMetric / PluginConstraint), so skipping full-row
    # materialization matters.
    antecedent_count = 0
    joint_count = 0
    for a_value, c_value in table.iter_cells(
        antecedent_attribute, consequent_attribute
    ):
        if a_value == antecedent_value:
            antecedent_count += 1
            joint_count += c_value == consequent_value
    support = joint_count / len(table)
    confidence = joint_count / antecedent_count if antecedent_count else 0.0
    return support, confidence


def mine_rules(
    table: Table,
    antecedent_attribute: str,
    consequent_attribute: str,
    min_support: float = 0.01,
    min_confidence: float = 0.6,
    max_rules: int = 50,
) -> list[AssociationRule]:
    """Mine pairwise value-association rules between two attributes.

    A deliberately simple (single-antecedent) miner: it exists so quality
    constraints have realistic semantic targets, not to compete with
    Apriori.  Rules are returned strongest-confidence first.
    """
    if min_support < 0 or min_confidence < 0:
        raise ValueError("support/confidence thresholds must be non-negative")
    if len(table) == 0:
        return []
    # One C-speed Counter pass over the (antecedent, consequent) cell
    # pairs; the antecedent marginal falls out of the joint counts.
    joint_counts: Counter = Counter(
        table.iter_cells(antecedent_attribute, consequent_attribute)
    )
    antecedent_counts: Counter = Counter()
    for (a_value, _), count in joint_counts.items():
        antecedent_counts[a_value] += count

    rules = []
    for (a_value, c_value), joint in joint_counts.items():
        support = joint / len(table)
        if support < min_support:
            continue
        confidence = joint / antecedent_counts[a_value]
        if confidence < min_confidence:
            continue
        rules.append(
            AssociationRule(
                antecedent_attribute=antecedent_attribute,
                antecedent_value=a_value,
                consequent_attribute=consequent_attribute,
                consequent_value=c_value,
                support=support,
                confidence=confidence,
            )
        )
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support, str(rule)))
    return rules[:max_rules]


class AssociationRuleMetric(UsabilityMetricPlugin):
    """Score: worst-case retained confidence ratio across the given rules.

    A rule mined at confidence ``c`` in the original that now holds with
    confidence ``c'`` contributes ``min(1, c'/c)``; the metric is the
    minimum over all rules (one broken rule should fail the whole check —
    that is how a data-mining customer experiences it).
    """

    def __init__(self, rules: list[AssociationRule], minimum: float = 0.9):
        if not rules:
            raise ValueError("provide at least one rule to preserve")
        self.rules = list(rules)
        self.minimum = minimum
        self.name = f"association-rules({len(rules)})"

    def evaluate(self, original: Table, current: Table) -> MetricResult:
        worst = 1.0
        worst_rule = None
        for rule in self.rules:
            _, confidence_now = rule_statistics(
                current,
                rule.antecedent_attribute,
                rule.antecedent_value,
                rule.consequent_attribute,
                rule.consequent_value,
            )
            if rule.confidence <= 0:
                continue
            ratio = min(1.0, confidence_now / rule.confidence)
            if ratio < worst:
                worst = ratio
                worst_rule = rule
        detail = (
            f"worst rule: {worst_rule}" if worst_rule is not None else "all held"
        )
        return MetricResult(self.name, worst, worst >= self.minimum, detail)
