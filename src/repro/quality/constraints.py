"""Semantic data-quality constraints and the on-the-fly quality guard (§4.1).

The paper: "each property of the database that needs to be preserved is
written as a constraint on the allowable change to the dataset.  The
watermarking algorithm is then applied with these constraints as input and
re-evaluates them continuously for each alteration", rolling back steps that
violate them.

The practical entry point recommended by the paper — "begin by specifying an
upper bound on the percentage of allowable data alterations" — is
:class:`MaxAlterationFraction`; richer semantic constraints stack on top.
Constraints are evaluated *incrementally*: the guard maintains running
statistics so a constraint check is O(1), not O(N), per alteration.
"""

from __future__ import annotations

import abc
from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from ..relational import Table
from .rollback import ChangeRecord, RollbackLog


@dataclass
class ChangeContext:
    """Running view of the alterations performed so far.

    Exposed to constraints on every proposed change.  ``count_deltas`` maps
    attribute -> (value -> signed count delta vs the original relation), so
    histogram-drift constraints don't rescan the table.
    """

    table: Table
    original_size: int
    change_count: int = 0
    proposal: ChangeRecord | None = None
    count_deltas: dict[str, Counter] = field(default_factory=dict)

    @property
    def altered_fraction(self) -> float:
        """Fraction of tuples altered so far (including the proposal)."""
        if self.original_size == 0:
            return 0.0
        return self.change_count / self.original_size

    def frequency_drift(self, attribute: str) -> float:
        """L1 drift of the normalised value-frequency histogram of
        ``attribute`` relative to the original relation."""
        if self.original_size == 0:
            return 0.0
        deltas = self.count_deltas.get(attribute)
        if not deltas:
            return 0.0
        return sum(abs(d) for d in deltas.values()) / self.original_size


class Constraint(abc.ABC):
    """A data-quality property that must hold throughout embedding."""

    #: human-readable identifier used in veto reports
    name: str = "constraint"

    @abc.abstractmethod
    def violated(self, context: ChangeContext) -> str | None:
        """Return a reason string when the context violates the constraint,
        ``None`` when the proposed state is acceptable."""


class MaxAlterationFraction(Constraint):
    """Upper bound on the fraction of tuples the encoder may alter."""

    def __init__(self, limit: float):
        if not 0.0 <= limit <= 1.0:
            raise ValueError(f"limit must be in [0, 1], got {limit}")
        self.limit = limit
        self.name = f"max-alteration<={limit:g}"

    def violated(self, context: ChangeContext) -> str | None:
        if context.altered_fraction > self.limit:
            return (
                f"altered fraction {context.altered_fraction:.4f} exceeds "
                f"bound {self.limit:g}"
            )
        return None


class MaxFrequencyDrift(Constraint):
    """Bound on the L1 drift of one attribute's value-frequency histogram.

    Protects distribution-dependent uses of the data (the "normal with a
    certain mean" notion of value from §1) and keeps the frequency profile
    stable enough for §4.5 remapping recovery to work.
    """

    def __init__(self, attribute: str, limit: float):
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        self.attribute = attribute
        self.limit = limit
        self.name = f"max-frequency-drift({attribute})<={limit:g}"

    def violated(self, context: ChangeContext) -> str | None:
        drift = context.frequency_drift(self.attribute)
        if drift > self.limit:
            return (
                f"frequency drift {drift:.4f} of {self.attribute!r} exceeds "
                f"bound {self.limit:g}"
            )
        return None


class ForbiddenTransitions(Constraint):
    """Semantic consistency: certain value substitutions are never allowed.

    §2.3 (A3) notes "semantic consistency issues that become immediately
    visible because of the discrete nature of the data" — e.g. a flight
    leg's departure city may be changeable to another hub but not to a city
    the airline doesn't serve.
    """

    def __init__(
        self,
        attribute: str,
        forbidden: set[tuple[Hashable, Hashable]] | None = None,
        predicate: Callable[[Any, Any], bool] | None = None,
    ):
        if forbidden is None and predicate is None:
            raise ValueError("provide a forbidden set and/or a predicate")
        self.attribute = attribute
        self.forbidden = forbidden or set()
        self.predicate = predicate
        self.name = f"forbidden-transitions({attribute})"

    def violated(self, context: ChangeContext) -> str | None:
        proposal = context.proposal
        if proposal is None or proposal.attribute != self.attribute:
            return None
        pair = (proposal.old, proposal.new)
        if pair in self.forbidden:
            return f"transition {proposal.old!r} -> {proposal.new!r} is forbidden"
        if self.predicate is not None and self.predicate(*pair):
            return (
                f"transition {proposal.old!r} -> {proposal.new!r} rejected "
                f"by predicate"
            )
        return None


class FrozenAttribute(Constraint):
    """The attribute may not be altered at all (hard usability requirement)."""

    def __init__(self, attribute: str):
        self.attribute = attribute
        self.name = f"frozen({attribute})"

    def violated(self, context: ChangeContext) -> str | None:
        proposal = context.proposal
        if proposal is not None and proposal.attribute == self.attribute:
            return f"attribute {self.attribute!r} is frozen"
        return None


class PredicateConstraint(Constraint):
    """Adapter for arbitrary user predicates over the change context."""

    def __init__(self, name: str, check: Callable[[ChangeContext], str | None]):
        self.name = name
        self._check = check

    def violated(self, context: ChangeContext) -> str | None:
        return self._check(context)


@dataclass
class GuardReport:
    """Outcome of an embedding pass under a quality guard."""

    applied: int = 0
    vetoed: int = 0
    noop: int = 0
    vetoes_by_constraint: Counter = field(default_factory=Counter)

    @property
    def proposed(self) -> int:
        return self.applied + self.vetoed + self.noop


class QualityGuard:
    """Applies alterations under continuous constraint evaluation (Figure 3).

    Usage: ``guard.bind(table)`` once before embedding, then every encoder
    write goes through :meth:`apply`, which performs the change, re-evaluates
    all constraints, and rolls the change back (returning ``False``) when any
    constraint is violated.
    """

    def __init__(self, constraints: list[Constraint] | None = None):
        self.constraints = list(constraints or [])
        self.log = RollbackLog()
        self.report = GuardReport()
        self._context: ChangeContext | None = None

    def bind(self, table: Table) -> None:
        """Start guarding ``table`` (resets the log and statistics)."""
        self.log = RollbackLog()
        self.report = GuardReport()
        self._context = ChangeContext(table=table, original_size=len(table))

    @property
    def context(self) -> ChangeContext:
        if self._context is None:
            raise RuntimeError("QualityGuard.bind(table) must be called first")
        return self._context

    def apply(self, key: Hashable, attribute: str, new_value: Any) -> bool:
        """Attempt one cell alteration; returns ``True`` iff it was kept."""
        context = self.context
        table = context.table
        old_value = table.set_value(key, attribute, new_value)
        if old_value == new_value:
            self.report.noop += 1
            return True

        if not self.constraints:
            # Permissive fast path (the sweep-engine hot loop): no
            # constraint can veto, so skip the proposal object and the
            # violation scan while keeping the log and the incremental
            # statistics identical.
            context.change_count += 1
            deltas = context.count_deltas.get(attribute)
            if deltas is None:
                deltas = context.count_deltas[attribute] = Counter()
            deltas[old_value] -= 1
            deltas[new_value] += 1
            self.log.record(key, attribute, old_value, new_value)
            self.report.applied += 1
            return True

        proposal = ChangeRecord(key, attribute, old_value, new_value)
        context.proposal = proposal
        context.change_count += 1
        deltas = context.count_deltas.get(attribute)
        if deltas is None:
            deltas = context.count_deltas[attribute] = Counter()
        deltas[old_value] -= 1
        deltas[new_value] += 1

        reason = self._first_violation(context)
        if reason is None:
            self.log.record(key, attribute, old_value, new_value)
            self.report.applied += 1
            context.proposal = None
            return True

        # Roll back: restore the cell and the incremental statistics.
        table.set_value(key, attribute, old_value)
        context.change_count -= 1
        deltas[old_value] += 1
        deltas[new_value] -= 1
        context.proposal = None
        self.report.vetoed += 1
        return False

    def apply_group(
        self, keys: Iterable[Hashable], attribute: str, new_value: Any
    ) -> bool:
        """Apply one value to a batch of tuples; ``True`` iff any was kept.

        The columnar counterpart of :meth:`apply` for carrier *groups* —
        every tuple sharing a §3.3 place-holder key value receives the
        same mark value, so the encoder hands the whole group over at
        once.  Constraints are still re-evaluated per cell (a veto
        mid-group must roll back only that cell, exactly as before).
        """
        applied_any = False
        for key in keys:
            applied_any |= self.apply(key, attribute, new_value)
        return applied_any

    def _first_violation(self, context: ChangeContext) -> str | None:
        for constraint in self.constraints:
            reason = constraint.violated(context)
            if reason is not None:
                self.report.vetoes_by_constraint[constraint.name] += 1
                return reason
        return None

    def undo_everything(self) -> int:
        """Abort: revert every change applied so far."""
        return self.log.undo_all(self.context.table)


def permissive_guard() -> QualityGuard:
    """A guard with no constraints (records changes, never vetoes)."""
    return QualityGuard([])
