"""On-the-fly data-quality assessment (§4.1, Figure 3).

Constraints + rollback log + usability-metric plugins: the machinery that
keeps watermark alterations within the owner's declared usability envelope.
"""

from .constraints import (
    ChangeContext,
    Constraint,
    ForbiddenTransitions,
    FrozenAttribute,
    GuardReport,
    MaxAlterationFraction,
    MaxFrequencyDrift,
    PredicateConstraint,
    QualityGuard,
    permissive_guard,
)
from .metrics import DistortionReport, measure_distortion
from .plugins import (
    CallableMetric,
    CellPreservationMetric,
    FrequencyPreservationMetric,
    MetricResult,
    PluginConstraint,
    PluginHandler,
    UsabilityMetricPlugin,
)
from .rollback import ChangeRecord, RollbackLog
from .semantic import (
    AssociationRule,
    AssociationRuleMetric,
    mine_rules,
    rule_statistics,
)

__all__ = [
    "AssociationRule",
    "AssociationRuleMetric",
    "CallableMetric",
    "CellPreservationMetric",
    "ChangeContext",
    "ChangeRecord",
    "Constraint",
    "DistortionReport",
    "ForbiddenTransitions",
    "FrequencyPreservationMetric",
    "FrozenAttribute",
    "GuardReport",
    "MaxAlterationFraction",
    "MaxFrequencyDrift",
    "MetricResult",
    "PluginConstraint",
    "PluginHandler",
    "PredicateConstraint",
    "QualityGuard",
    "RollbackLog",
    "UsabilityMetricPlugin",
    "measure_distortion",
    "mine_rules",
    "permissive_guard",
    "rule_statistics",
]
