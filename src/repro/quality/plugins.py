"""Usability-metric plugin architecture (Figure 3).

The paper's quality-assessment design has a *usability metrics plugin
handler* dispatching to pluggable metric evaluators ("usability metric
plugin A/B/C") that score the marked data against the original.  A plugin
reduces a (original, current) table pair to a score in [0, 1] plus a
pass/fail verdict; the handler aggregates plugin verdicts, and
:class:`PluginConstraint` lets any plugin participate in the on-the-fly
guard loop.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

from ..relational import Table, frequency_histogram, l1_distance
from .constraints import ChangeContext, Constraint


@dataclass(frozen=True)
class MetricResult:
    """Outcome of one usability metric evaluation."""

    plugin: str
    score: float  # 1.0 = indistinguishable from the original
    passed: bool
    detail: str = ""


class UsabilityMetricPlugin(abc.ABC):
    """A pluggable data-usability metric."""

    name: str = "plugin"

    @abc.abstractmethod
    def evaluate(self, original: Table, current: Table) -> MetricResult:
        """Score ``current`` against ``original``."""


class CellPreservationMetric(UsabilityMetricPlugin):
    """Fraction of cells unchanged between original and current relation."""

    def __init__(self, minimum: float = 0.0):
        self.name = "cell-preservation"
        self.minimum = minimum

    def evaluate(self, original: Table, current: Table) -> MetricResult:
        total = 0
        unchanged = 0
        if original.schema.names == current.schema.names:
            # Columnar fast path (the guard-loop case: same schema on
            # both sides): compare attribute by attribute over the shared
            # keys via batched point reads, no row-tuple materialization.
            shared = [key for key in original.keys() if key in current]
            for attribute in original.schema.names:
                before = original.values_for(shared, attribute)
                after = current.values_for(shared, attribute)
                total += len(shared)
                unchanged += sum(a == b for a, b in zip(before, after))
        else:
            key_position = original.schema.position(original.primary_key)
            for row in original:
                key = row[key_position]
                if key not in current:
                    continue
                other = current.get(key)
                for a, b in zip(row, other):
                    total += 1
                    unchanged += a == b
        score = unchanged / total if total else 1.0
        return MetricResult(
            self.name,
            score,
            score >= self.minimum,
            f"{unchanged}/{total} cells preserved",
        )


class FrequencyPreservationMetric(UsabilityMetricPlugin):
    """1 − (L1 histogram drift)/2 for one categorical attribute.

    Score 1.0 means the value-occurrence distribution — often the residual
    value of a heavily partitioned data set (§4.2) — is untouched.
    """

    def __init__(self, attribute: str, minimum: float = 0.0):
        self.name = f"frequency-preservation({attribute})"
        self.attribute = attribute
        self.minimum = minimum

    def evaluate(self, original: Table, current: Table) -> MetricResult:
        drift = l1_distance(
            frequency_histogram(original, self.attribute),
            frequency_histogram(current, self.attribute),
        )
        score = max(0.0, 1.0 - drift / 2.0)
        return MetricResult(
            self.name, score, score >= self.minimum, f"L1 drift {drift:.4f}"
        )


class CallableMetric(UsabilityMetricPlugin):
    """Adapter turning a plain scoring function into a plugin."""

    def __init__(
        self,
        name: str,
        score_fn: Callable[[Table, Table], float],
        minimum: float = 0.0,
    ):
        self.name = name
        self._score_fn = score_fn
        self.minimum = minimum

    def evaluate(self, original: Table, current: Table) -> MetricResult:
        score = self._score_fn(original, current)
        return MetricResult(self.name, score, score >= self.minimum)


class PluginHandler:
    """Figure 3's "usability metrics plugin handler"."""

    def __init__(self) -> None:
        self._plugins: dict[str, UsabilityMetricPlugin] = {}

    def register(self, plugin: UsabilityMetricPlugin) -> None:
        if plugin.name in self._plugins:
            raise ValueError(f"plugin {plugin.name!r} already registered")
        self._plugins[plugin.name] = plugin

    def unregister(self, name: str) -> None:
        self._plugins.pop(name, None)

    @property
    def plugins(self) -> tuple[str, ...]:
        return tuple(sorted(self._plugins))

    def evaluate(self, original: Table, current: Table) -> list[MetricResult]:
        """Run every registered metric; results sorted by plugin name."""
        return [
            self._plugins[name].evaluate(original, current)
            for name in sorted(self._plugins)
        ]

    def all_pass(self, original: Table, current: Table) -> bool:
        return all(result.passed for result in self.evaluate(original, current))


class PluginConstraint(Constraint):
    """Evaluate a usability plugin inside the per-alteration guard loop.

    This is the expensive-but-general path: the plugin rescans the tables on
    every proposed change, exactly the "re-evaluates them continuously for
    each alteration" semantics of §4.1.  ``every`` thins evaluation to each
    k-th change for large relations.
    """

    def __init__(
        self, plugin: UsabilityMetricPlugin, original: Table, every: int = 1
    ):
        if every < 1:
            raise ValueError(f"'every' must be >= 1, got {every}")
        self.plugin = plugin
        self.original = original
        self.every = every
        self.name = f"plugin:{plugin.name}"
        self._proposals_seen = 0

    def violated(self, context: ChangeContext) -> str | None:
        self._proposals_seen += 1
        if self._proposals_seen % self.every:
            return None
        result = self.plugin.evaluate(self.original, context.table)
        if not result.passed:
            return f"usability metric {result.plugin} failed: {result.detail}"
        return None
