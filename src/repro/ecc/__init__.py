"""Error-correcting codes for the watermark channel (§3.2.1).

The paper deploys majority voting; the alternatives here exist for the ECC
ablation benchmark.  :func:`get_code` resolves a code by its ``name`` so
embedding specs can be serialised.
"""

from .base import (
    Bit,
    DecodeResult,
    ECCError,
    ErrorCorrectingCode,
    Slot,
    majority,
    validate_message,
    validate_slots,
)
from .hamming import Hamming74Code
from .identity import IdentityCode
from .majority import MajorityVotingCode
from .repetition import BlockRepetitionCode

# Importing the ``.majority`` submodule above rebinds the package attribute
# ``majority`` to the module object, shadowing the vote helper exported from
# ``.base``; restore the function binding explicitly.
from .base import majority  # noqa: E402  (intentional re-import)

_REGISTRY: dict[str, type[ErrorCorrectingCode]] = {
    MajorityVotingCode.name: MajorityVotingCode,
    BlockRepetitionCode.name: BlockRepetitionCode,
    Hamming74Code.name: Hamming74Code,
    IdentityCode.name: IdentityCode,
}


def get_code(name: str) -> ErrorCorrectingCode:
    """Instantiate a registered code by name (e.g. ``"majority"``)."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ECCError(f"unknown ECC {name!r} (known: {known})") from None


def registered_codes() -> tuple[str, ...]:
    """Names of all available codes."""
    return tuple(sorted(_REGISTRY))


__all__ = [
    "Bit",
    "BlockRepetitionCode",
    "DecodeResult",
    "ECCError",
    "ErrorCorrectingCode",
    "Hamming74Code",
    "IdentityCode",
    "MajorityVotingCode",
    "Slot",
    "get_code",
    "majority",
    "registered_codes",
    "validate_message",
    "validate_slots",
]
