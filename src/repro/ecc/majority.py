"""Interleaved majority-voting code — the paper's ECC of choice (§3.2.1).

``encode(wm, L)`` lays the message out cyclically::

    wm_data[i] = wm[i mod |wm|]

so each message bit ``i`` is carried by every slot in its residue class
``{j : j ≡ i (mod |wm|)}``.  The interleaving matters: data-loss attacks
remove *random* slots, and a cyclic layout spreads each message bit's
replicas uniformly across the relation instead of clustering them.

``decode`` majority-votes each residue class, ignoring erasures.
"""

from __future__ import annotations

from collections.abc import Sequence

from .base import (
    Bit,
    DecodeResult,
    ECCError,
    ErrorCorrectingCode,
    Slot,
    majority,
    validate_message,
    validate_slots,
)


class MajorityVotingCode(ErrorCorrectingCode):
    """Cyclic repetition with per-bit majority decoding."""

    name = "majority"

    def encode(self, message: Sequence[Bit], length: int) -> tuple[Bit, ...]:
        bits = validate_message(message)
        self.check_length(len(bits), length)
        return tuple(bits[i % len(bits)] for i in range(length))

    def decode(self, slots: Sequence[Slot], message_length: int) -> DecodeResult:
        if message_length <= 0:
            raise ECCError(f"message length must be positive, got {message_length}")
        channel = validate_slots(slots)
        if len(channel) < message_length:
            raise ECCError(
                f"{len(channel)} slots cannot carry a {message_length}-bit message"
            )
        decoded: list[Bit] = []
        confidences: list[float] = []
        for residue in range(message_length):
            votes = [
                channel[j]
                for j in range(residue, len(channel), message_length)
                if channel[j] is not None
            ]
            bit, confidence = majority(votes)
            decoded.append(bit)
            confidences.append(confidence)
        return DecodeResult(tuple(decoded), tuple(confidences))

    def replication_factor(self, message_length: int, length: int) -> float:
        """Average number of carrier slots per message bit."""
        if message_length <= 0:
            raise ECCError(f"message length must be positive, got {message_length}")
        return length / message_length
