"""Error-correcting code interface used by the embedding pipeline.

§3.2.1: because the available bandwidth ``N/e`` usually exceeds the
watermark bit-size ``|wm|``, the scheme encodes ``wm`` redundantly into
``wm_data = ECC.encode(wm, N/e)`` before embedding, and recovers
``wm = ECC.decode(wm_data, |wm|)`` after extraction.

The decode side must cope with two kinds of damage the channel produces:

* **bit flips** — an attacker altered a carrier tuple and the recovered
  slot holds the wrong bit;
* **erasures** — no surviving tuple addressed a slot (data loss, or the
  pseudo-random ``k2`` indexing simply never hit it), represented as
  ``None``.

Codes therefore decode from ``Sequence[int | None]``.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from dataclasses import dataclass

Bit = int
Slot = int | None  # None = erasure


class ECCError(Exception):
    """Raised for invalid code parameters or undecodable input."""


@dataclass(frozen=True)
class DecodeResult:
    """Decoded message plus per-bit diagnostics.

    ``confidence[i]`` is the fraction of non-erased evidence agreeing with
    the decoded bit ``i`` (1.0 = unanimous, 0.5 = coin-flip, 0.0 = decoded
    from no evidence at all).  Experiments use it to report *mark
    alteration* at bit granularity.
    """

    bits: tuple[Bit, ...]
    confidence: tuple[float, ...]

    def __len__(self) -> int:
        return len(self.bits)


def validate_message(message: Sequence[Bit]) -> tuple[Bit, ...]:
    """Check a message is a non-empty 0/1 sequence; return it as a tuple."""
    bits = tuple(message)
    if not bits:
        raise ECCError("cannot encode an empty message")
    for bit in bits:
        if bit not in (0, 1):
            raise ECCError(f"message bits must be 0 or 1, got {bit!r}")
    return bits


def validate_slots(slots: Sequence[Slot]) -> tuple[Slot, ...]:
    """Check extracted slots are 0/1/None; return them as a tuple."""
    checked = tuple(slots)
    for slot in checked:
        if slot not in (0, 1, None):
            raise ECCError(f"slots must be 0, 1 or None, got {slot!r}")
    return checked


def majority(votes: Sequence[Bit], tie: Bit = 0) -> tuple[Bit, float]:
    """Majority vote with agreement fraction; empty vote lists count as
    (``tie``, confidence 0.0)."""
    if not votes:
        return tie, 0.0
    ones = sum(votes)
    zeros = len(votes) - ones
    if ones > zeros:
        return 1, ones / len(votes)
    if zeros > ones:
        return 0, zeros / len(votes)
    return tie, 0.5


class ErrorCorrectingCode(abc.ABC):
    """Redundant (message → channel) bit coding with erasure-aware decoding."""

    #: short identifier used in benchmark output and serialised specs
    name: str = "abstract"

    @abc.abstractmethod
    def encode(self, message: Sequence[Bit], length: int) -> tuple[Bit, ...]:
        """Expand ``message`` into exactly ``length`` channel bits."""

    @abc.abstractmethod
    def decode(self, slots: Sequence[Slot], message_length: int) -> DecodeResult:
        """Recover the most likely ``message_length``-bit message."""

    def minimum_length(self, message_length: int) -> int:
        """Smallest channel length this code can encode ``message_length`` into."""
        return message_length

    def check_length(self, message_length: int, length: int) -> None:
        minimum = self.minimum_length(message_length)
        if length < minimum:
            raise ECCError(
                f"{self.name}: channel length {length} below minimum "
                f"{minimum} for a {message_length}-bit message"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
