"""Block-repetition code (ablation alternative to the interleaved layout).

Where :class:`MajorityVotingCode` spreads each message bit cyclically,
``BlockRepetitionCode`` stores all replicas of a bit *contiguously*::

    wm_data = wm[0]*r ++ wm[1]*r ++ ... (+ cyclic filler for the remainder)

Against uniformly random damage the two perform identically; the block
layout exists to demonstrate (bench ``bench_ablation_ecc``) that it degrades
badly under *contiguous* loss — e.g. an attacker keeping only a key range —
which is why the paper's interleaving is the right default.
"""

from __future__ import annotations

from collections.abc import Sequence

from .base import (
    Bit,
    DecodeResult,
    ECCError,
    ErrorCorrectingCode,
    Slot,
    majority,
    validate_message,
    validate_slots,
)


class BlockRepetitionCode(ErrorCorrectingCode):
    """Contiguous repetition with per-bit majority decoding."""

    name = "block-repetition"

    def _layout(self, message_length: int, length: int) -> list[int]:
        """Message-bit index carried by each channel slot."""
        replicas = length // message_length
        owners = []
        for slot in range(length):
            if slot < replicas * message_length:
                owners.append(slot // replicas)
            else:  # remainder slots cycle from the start
                owners.append(slot % message_length)
        return owners

    def encode(self, message: Sequence[Bit], length: int) -> tuple[Bit, ...]:
        bits = validate_message(message)
        self.check_length(len(bits), length)
        owners = self._layout(len(bits), length)
        return tuple(bits[owner] for owner in owners)

    def decode(self, slots: Sequence[Slot], message_length: int) -> DecodeResult:
        if message_length <= 0:
            raise ECCError(f"message length must be positive, got {message_length}")
        channel = validate_slots(slots)
        if len(channel) < message_length:
            raise ECCError(
                f"{len(channel)} slots cannot carry a {message_length}-bit message"
            )
        owners = self._layout(message_length, len(channel))
        votes: list[list[Bit]] = [[] for _ in range(message_length)]
        for slot_value, owner in zip(channel, owners):
            if slot_value is not None:
                votes[owner].append(slot_value)
        decoded, confidences = [], []
        for bit_votes in votes:
            bit, confidence = majority(bit_votes)
            decoded.append(bit)
            confidences.append(confidence)
        return DecodeResult(tuple(decoded), tuple(confidences))
