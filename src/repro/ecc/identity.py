"""No-redundancy code — the "what if we skip ECC" ablation baseline.

Each message bit occupies exactly one channel slot; remaining channel slots
are unused padding (encoded as 0, ignored at decode).  Any damage to a
carrier slot translates 1:1 into watermark damage, which is precisely the
fragility the paper's majority-voting layer exists to absorb.
"""

from __future__ import annotations

from collections.abc import Sequence

from .base import (
    Bit,
    DecodeResult,
    ECCError,
    ErrorCorrectingCode,
    Slot,
    validate_message,
    validate_slots,
)


class IdentityCode(ErrorCorrectingCode):
    """1:1 message-to-channel mapping with zero padding."""

    name = "identity"

    def encode(self, message: Sequence[Bit], length: int) -> tuple[Bit, ...]:
        bits = validate_message(message)
        self.check_length(len(bits), length)
        return bits + (0,) * (length - len(bits))

    def decode(self, slots: Sequence[Slot], message_length: int) -> DecodeResult:
        if message_length <= 0:
            raise ECCError(f"message length must be positive, got {message_length}")
        channel = validate_slots(slots)
        if len(channel) < message_length:
            raise ECCError(
                f"{len(channel)} slots cannot carry a {message_length}-bit message"
            )
        decoded = []
        confidences = []
        for slot in channel[:message_length]:
            if slot is None:
                decoded.append(0)
                confidences.append(0.0)
            else:
                decoded.append(slot)
                confidences.append(1.0)
        return DecodeResult(tuple(decoded), tuple(confidences))
