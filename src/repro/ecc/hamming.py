"""Hamming(7,4) + cyclic replication — a coded ablation alternative.

The paper notes "there are a multitude of error correcting codes to choose
from" and picks majority voting for simplicity.  This module provides a
classical block code so the ECC ablation bench can compare: the message is
chunked into 4-bit blocks, each expanded to a 7-bit Hamming codeword
(single-bit error correction per block), and the resulting codeword stream
is replicated cyclically to fill the channel, with per-position majority
voting before block correction.
"""

from __future__ import annotations

from collections.abc import Sequence

from .base import (
    Bit,
    DecodeResult,
    ECCError,
    ErrorCorrectingCode,
    Slot,
    majority,
    validate_message,
    validate_slots,
)

# Generator layout for systematic-ish Hamming(7,4):
# codeword = (p1, p2, d1, p3, d2, d3, d4), parity positions 1,2,4 (1-based).
_DATA_POSITIONS = (2, 4, 5, 6)  # 0-based positions of d1..d4
_PARITY_POSITIONS = (0, 1, 3)  # 0-based positions of p1, p2, p3


def _encode_block(data: Sequence[Bit]) -> tuple[Bit, ...]:
    """Encode 4 data bits into a 7-bit Hamming codeword."""
    code = [0] * 7
    for position, bit in zip(_DATA_POSITIONS, data):
        code[position] = bit
    for parity_position in _PARITY_POSITIONS:
        mask = parity_position + 1
        parity = 0
        for position in range(7):
            if (position + 1) & mask and position != parity_position:
                parity ^= code[position]
        code[parity_position] = parity
    return tuple(code)


def _decode_block(code: Sequence[Bit]) -> tuple[Bit, ...]:
    """Correct up to one bit error in a 7-bit codeword; return the 4 data bits."""
    syndrome = 0
    for parity_position in _PARITY_POSITIONS:
        mask = parity_position + 1
        parity = 0
        for position in range(7):
            if (position + 1) & mask:
                parity ^= code[position]
        if parity:
            syndrome |= mask
    corrected = list(code)
    if syndrome:  # syndrome is the 1-based position of the flipped bit
        position = syndrome - 1
        if position < 7:
            corrected[position] ^= 1
    return tuple(corrected[p] for p in _DATA_POSITIONS)


class Hamming74Code(ErrorCorrectingCode):
    """Hamming(7,4) blocks replicated cyclically across the channel."""

    name = "hamming74"

    def _codeword_stream(self, message: tuple[Bit, ...]) -> tuple[Bit, ...]:
        padded = list(message)
        while len(padded) % 4:
            padded.append(0)
        stream: list[Bit] = []
        for start in range(0, len(padded), 4):
            stream.extend(_encode_block(padded[start:start + 4]))
        return tuple(stream)

    def minimum_length(self, message_length: int) -> int:
        blocks = (message_length + 3) // 4
        return blocks * 7

    def encode(self, message: Sequence[Bit], length: int) -> tuple[Bit, ...]:
        bits = validate_message(message)
        self.check_length(len(bits), length)
        stream = self._codeword_stream(bits)
        return tuple(stream[i % len(stream)] for i in range(length))

    def decode(self, slots: Sequence[Slot], message_length: int) -> DecodeResult:
        if message_length <= 0:
            raise ECCError(f"message length must be positive, got {message_length}")
        channel = validate_slots(slots)
        stream_length = self.minimum_length(message_length)
        if len(channel) < stream_length:
            raise ECCError(
                f"{len(channel)} slots cannot carry a {message_length}-bit "
                f"message under {self.name}"
            )
        # Majority-vote each codeword-stream position across replicas.
        voted: list[Bit] = []
        confidences_by_position: list[float] = []
        for position in range(stream_length):
            votes = [
                channel[j]
                for j in range(position, len(channel), stream_length)
                if channel[j] is not None
            ]
            bit, confidence = majority(votes)
            voted.append(bit)
            confidences_by_position.append(confidence)
        # Hamming-correct each 7-bit block, then truncate padding.
        data_bits: list[Bit] = []
        data_confidence: list[float] = []
        for start in range(0, stream_length, 7):
            block = voted[start:start + 7]
            block_confidence = confidences_by_position[start:start + 7]
            data_bits.extend(_decode_block(block))
            block_mean = sum(block_confidence) / len(block_confidence)
            data_confidence.extend([block_mean] * 4)
        return DecodeResult(
            tuple(data_bits[:message_length]),
            tuple(data_confidence[:message_length]),
        )
