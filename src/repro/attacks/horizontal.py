"""A1 — horizontal data partitioning (subset selection).

Mallory keeps a random subset of the tuples that "might still provide value
for its intended purpose".  This is also what benign downstream use looks
like (a buyer resells a region's worth of rows), so surviving it is table
stakes.  Figure 7 of the paper sweeps exactly this attack: data loss 10–80%.
"""

from __future__ import annotations

import random

from ..relational import Table, drop_fraction, horizontal_sample
from .base import Attack


def _sample_positions_codes(
    table: Table, fraction: float, rng: random.Random
) -> Table:
    """Code-level :func:`~repro.relational.horizontal_sample`.

    ``rng.sample`` draws from the population *length* only, so sampling
    ``range(n)`` picks exactly the rows — in exactly the order — that
    sampling the materialized tuple list does; :meth:`Table.take` then
    shares those row lists copy-on-write and gathers the cached
    factorizations instead of re-validating every tuple.  Count clamping
    mirrors :func:`horizontal_sample` exactly.
    """
    size = len(table)
    name = f"{table.name}_sample"
    if fraction == 0.0 or size == 0:
        return Table(table.schema, (), name=name)
    count = max(1, round(fraction * size))
    return table.take(rng.sample(range(size), min(count, size)), name=name)


class HorizontalPartitionAttack(Attack):
    """Keep a uniformly random fraction of the tuples."""

    def __init__(self, keep_fraction: float):
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError(
                f"keep_fraction must be in (0, 1], got {keep_fraction}"
            )
        self.keep_fraction = keep_fraction
        self.name = f"A1:horizontal(keep={keep_fraction:g})"

    def apply_rows(self, table: Table, rng: random.Random) -> Table:
        return horizontal_sample(table, self.keep_fraction, rng)

    def apply_codes(self, table: Table, rng: random.Random) -> Table:
        return _sample_positions_codes(table, self.keep_fraction, rng)


class DataLossAttack(Attack):
    """Figure-7 phrasing of A1: *lose* a fraction of the data."""

    def __init__(self, loss_fraction: float):
        if not 0.0 <= loss_fraction < 1.0:
            raise ValueError(
                f"loss_fraction must be in [0, 1), got {loss_fraction}"
            )
        self.loss_fraction = loss_fraction
        self.name = f"A1:data-loss({loss_fraction:g})"

    def apply_rows(self, table: Table, rng: random.Random) -> Table:
        return drop_fraction(table, self.loss_fraction, rng)

    def apply_codes(self, table: Table, rng: random.Random) -> Table:
        return _sample_positions_codes(table, 1.0 - self.loss_fraction, rng)


class KeyRangePartitionAttack(Attack):
    """Keep a *contiguous* primary-key range (non-uniform loss).

    Not in the paper's sweeps, but the realistic "I only bought Q3" cut;
    used by the ECC ablation to show why the interleaved majority layout
    beats block repetition under contiguous loss.
    """

    def __init__(self, keep_fraction: float):
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError(
                f"keep_fraction must be in (0, 1], got {keep_fraction}"
            )
        self.keep_fraction = keep_fraction
        self.name = f"A1:key-range(keep={keep_fraction:g})"

    def apply(self, table: Table, rng: random.Random) -> Table:
        rows = sorted(
            table,
            key=lambda row: _orderable(
                row[table.schema.position(table.primary_key)]
            ),
        )
        count = max(1, round(self.keep_fraction * len(rows)))
        if count >= len(rows):
            start = 0
        else:
            start = rng.randrange(len(rows) - count + 1)
        return Table(
            table.schema, rows[start:start + count],
            name=f"{table.name}_keyrange",
        )


def _orderable(value):
    return (type(value).__name__, value)
