"""The adversary's toolkit — attacks A1–A6 of §2.3 plus composites."""

from .addition import SubsetAdditionAttack
from .additive import AdditiveWatermarkAttack
from .alteration import SubsetAlterationAttack, TargetedValueAttack
from .base import Attack, IdentityAttack
from .composite import CompositeAttack
from .horizontal import (
    DataLossAttack,
    HorizontalPartitionAttack,
    KeyRangePartitionAttack,
)
from .remap import BijectiveRemapAttack, PermutationRemapAttack
from .sorting import ShuffleAttack, SortAttack
from .vertical import SingleColumnAttack, VerticalPartitionAttack

__all__ = [
    "AdditiveWatermarkAttack",
    "Attack",
    "BijectiveRemapAttack",
    "CompositeAttack",
    "DataLossAttack",
    "HorizontalPartitionAttack",
    "IdentityAttack",
    "KeyRangePartitionAttack",
    "PermutationRemapAttack",
    "ShuffleAttack",
    "SingleColumnAttack",
    "SortAttack",
    "SubsetAdditionAttack",
    "SubsetAlterationAttack",
    "TargetedValueAttack",
    "VerticalPartitionAttack",
]
