"""The adversary's toolkit — attacks A1–A6 of §2.3 plus composites."""

from .addition import SubsetAdditionAttack
from .additive import AdditiveWatermarkAttack
from .alteration import SubsetAlterationAttack, TargetedValueAttack
from .base import (
    ATTACK_AUTO,
    ATTACK_BACKENDS,
    ATTACK_CODES,
    ATTACK_ROWS,
    Attack,
    IdentityAttack,
    codes_backend_available,
)
from .composite import CompositeAttack
from .horizontal import (
    DataLossAttack,
    HorizontalPartitionAttack,
    KeyRangePartitionAttack,
)
from .remap import BijectiveRemapAttack, PermutationRemapAttack
from .sorting import ShuffleAttack, SortAttack
from .vertical import SingleColumnAttack, VerticalPartitionAttack

__all__ = [
    "ATTACK_AUTO",
    "ATTACK_BACKENDS",
    "ATTACK_CODES",
    "ATTACK_ROWS",
    "AdditiveWatermarkAttack",
    "Attack",
    "codes_backend_available",
    "BijectiveRemapAttack",
    "CompositeAttack",
    "DataLossAttack",
    "HorizontalPartitionAttack",
    "IdentityAttack",
    "KeyRangePartitionAttack",
    "PermutationRemapAttack",
    "ShuffleAttack",
    "SingleColumnAttack",
    "SortAttack",
    "SubsetAdditionAttack",
    "SubsetAlterationAttack",
    "TargetedValueAttack",
    "VerticalPartitionAttack",
]
