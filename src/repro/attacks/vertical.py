"""A5 — vertical data partitioning.

Mallory keeps a valuable subset of the attributes.  Variants:

* keep the primary key and some attributes — the single-pair scheme
  survives iff its (key, mark) pair survives;
* drop the primary key, keep two attributes where one can act as a key —
  §3.3's motivating scenario for multi-attribute embeddings;
* keep a *single* categorical column — the extreme case only the
  frequency-domain channel (§4.2) survives.
"""

from __future__ import annotations

import random

from ..relational import Table, project
from .base import Attack


class VerticalPartitionAttack(Attack):
    """Project onto ``kept_attributes`` (optionally re-keying)."""

    def __init__(
        self, kept_attributes: list[str], new_primary_key: str | None = None
    ):
        if not kept_attributes:
            raise ValueError("must keep at least one attribute")
        self.kept_attributes = list(kept_attributes)
        self.new_primary_key = new_primary_key
        kept = ",".join(kept_attributes)
        self.name = f"A5:vertical({kept})"

    def apply(self, table: Table, rng: random.Random) -> Table:
        return project(
            table, self.kept_attributes, primary_key=self.new_primary_key
        )


class SingleColumnAttack(Attack):
    """The extreme partition: keep one categorical column only.

    The projection deduplicates (a one-column relation keyed on itself has
    one tuple per distinct value), which would *also* destroy the frequency
    channel — so, like a real attacker who wants the distribution, this
    attack keeps the column as a multiset: the surviving relation carries a
    synthetic row-number key that holds no information.
    """

    def __init__(self, attribute: str):
        self.attribute = attribute
        self.name = f"A5:single-column({attribute})"

    def apply(self, table: Table, rng: random.Random) -> Table:
        from ..relational import Attribute, AttributeType, Schema

        meta = table.schema.attribute(self.attribute)
        schema = Schema(
            (Attribute("_row", AttributeType.INTEGER), meta),
            primary_key="_row",
        )
        rows = [
            (index, value)
            for index, value in enumerate(table.column(self.attribute))
        ]
        rng.shuffle(rows)
        return Table(schema, rows, name=f"{table.name}_{self.attribute}_only")
