"""A4 — subset re-sorting.

If any order can be imposed on the data, detection "should be resilient to
re-sorting attacks and should not depend on this predefined ordering".
Both the random shuffle and deterministic re-sorts are provided; the scheme
is immune by construction (fitness and slot selection are per-tuple), and
the tests assert bit-identical detection either way.
"""

from __future__ import annotations

import random

from ..relational import Table, shuffle, sort_by
from .base import Attack


class ShuffleAttack(Attack):
    """Random physical re-ordering of the tuples."""

    name = "A4:shuffle"

    def apply(self, table: Table, rng: random.Random) -> Table:
        return shuffle(table, rng)


class SortAttack(Attack):
    """Deterministic re-sort on an arbitrary attribute."""

    def __init__(self, attribute: str, reverse: bool = False):
        self.attribute = attribute
        self.reverse = reverse
        direction = "desc" if reverse else "asc"
        self.name = f"A4:sort({attribute}, {direction})"

    def apply(self, table: Table, rng: random.Random) -> Table:
        return sort_by(table, self.attribute, reverse=self.reverse)
