"""Composite attacks: sequences of primitive attacks.

Real adversaries chain transformations — subset, then dilute, then shuffle.
:class:`CompositeAttack` applies a pipeline of attacks in order, forwarding
the same RNG so a composite run is exactly reproducible.
"""

from __future__ import annotations

import random

from ..relational import Table
from .base import Attack


class CompositeAttack(Attack):
    """Apply ``stages`` left to right."""

    def __init__(self, stages: list[Attack]):
        if not stages:
            raise ValueError("a composite attack needs at least one stage")
        self.stages = list(stages)
        self.name = " + ".join(stage.name for stage in self.stages)

    def apply(self, table: Table, rng: random.Random) -> Table:
        current = table
        for stage in self.stages:
            current = stage.apply(current, rng)
        return current
