"""A6 — bijective attribute re-mapping.

Mallory maps the categorical values ``{a_1..a_nA}`` through a bijection into
a foreign label set ``{a'_1..a'_nA}`` (keeping a secret "reverse mapper" to
restore value for paying customers).  Tuple-level associations survive but
the detector can no longer resolve ``T(A) = a_t`` — until §4.5's
frequency-profile alignment reconstructs the inverse map.

The attack instance remembers the true mapping (and its inverse) so
experiments can score :func:`repro.core.recovery_quality` against ground
truth.
"""

from __future__ import annotations

import random
from typing import Hashable

from ..relational import Table, apply_to_column
from .base import Attack


class BijectiveRemapAttack(Attack):
    """Re-label one categorical attribute through a random bijection."""

    def __init__(self, attribute: str, label_prefix: str = "remapped"):
        self.attribute = attribute
        self.label_prefix = label_prefix
        self.name = f"A6:remap({attribute})"
        #: filled on apply(): original value -> foreign label
        self.mapping: dict[Hashable, Hashable] = {}
        #: filled on apply(): foreign label -> original value
        self.true_inverse: dict[Hashable, Hashable] = {}

    def _draw_mapping(self, table: Table, rng: random.Random):
        """Draw the bijection (both paths share the exact rng draws)."""
        meta = table.schema.attribute(self.attribute)
        if meta.domain is None:
            raise ValueError(f"attribute {self.attribute!r} is not categorical")
        originals = list(meta.domain.values)
        # Foreign labels in shuffled correspondence: position in the *new*
        # canonical order carries no information about the original value.
        shuffled = originals[:]
        rng.shuffle(shuffled)
        self.mapping = {
            value: f"{self.label_prefix}-{index:06d}"
            for index, value in zip(range(len(shuffled)), shuffled)
        }
        self.true_inverse = {label: value for value, label in self.mapping.items()}
        new_domain = meta.domain.remapped(self.mapping)
        return table.schema.replace_attribute(meta.with_domain(new_domain))

    def apply_rows(self, table: Table, rng: random.Random) -> Table:
        schema = self._draw_mapping(table, rng)
        position = table.schema.position(self.attribute)
        return Table(
            schema,
            (
                tuple(
                    self.mapping[cell] if slot == position else cell
                    for slot, cell in enumerate(row)
                )
                for row in table
            ),
            name=f"{table.name}_remapped",
        )

    def apply_codes(self, table: Table, rng: random.Random) -> Table:
        """Code-level fast path: the bijection applies per *distinct* value.

        :meth:`~repro.relational.table.Table.with_mapped_column` rewrites
        the column through the mapping once per unique, skips per-row
        schema re-validation, and carries the factorization over with
        re-labelled uniques — the codes array (and with it every cached
        positional quantity of the untouched key column) survives the
        attack unchanged.
        """
        schema = self._draw_mapping(table, rng)
        return table.with_mapped_column(
            self.attribute,
            self.mapping,
            schema=schema,
            name=f"{table.name}_remapped",
        )


class PermutationRemapAttack(Attack):
    """Re-map within the same label set (a derangement of the values).

    Harder to spot than foreign labels: the schema looks untouched, only
    the value-to-tuple assignment is permuted.  Frequency-profile recovery
    works identically.
    """

    def __init__(self, attribute: str):
        self.attribute = attribute
        self.name = f"A6:permute({attribute})"
        self.mapping: dict[Hashable, Hashable] = {}
        self.true_inverse: dict[Hashable, Hashable] = {}

    def _draw_mapping(self, table: Table, rng: random.Random) -> None:
        meta = table.schema.attribute(self.attribute)
        if meta.domain is None:
            raise ValueError(f"attribute {self.attribute!r} is not categorical")
        originals = list(meta.domain.values)
        permuted = originals[:]
        if len(permuted) > 1:
            while True:  # draw until it's an actual derangement somewhere
                rng.shuffle(permuted)
                if any(a != b for a, b in zip(originals, permuted)):
                    break
        self.mapping = dict(zip(originals, permuted))
        self.true_inverse = {new: old for old, new in self.mapping.items()}

    def apply_rows(self, table: Table, rng: random.Random) -> Table:
        self._draw_mapping(table, rng)
        return apply_to_column(
            table,
            self.attribute,
            lambda value: self.mapping[value],
            name=f"{table.name}_permuted",
        )

    def apply_codes(self, table: Table, rng: random.Random) -> Table:
        self._draw_mapping(table, rng)
        return table.with_mapped_column(
            self.attribute,
            self.mapping,
            name=f"{table.name}_permuted",
        )
