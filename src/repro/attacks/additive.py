"""Additive watermark attack (flagged open in §6).

Mallory does not try to *remove* the owner's mark — he embeds his **own**
watermark over the stolen relation and claims ownership too.  The paper
leaves the analysis of this attack to future work; we implement it so the
repository can quantify the outcome:

* Mallory's pass only overwrites ~``1/e_mallory`` of the tuples, of which
  only ~``1/e_owner`` were the owner's carriers — the owner's majority vote
  loses ~``1/(e_owner · e_mallory)`` of its evidence and survives easily;
* both marks therefore detect, and the dispute is resolved *outside* the
  scheme (the classic resolution: the owner can additionally exhibit a
  mark in Mallory's published copy while Mallory cannot exhibit one in the
  owner's original — see ``tests/attacks/test_additive.py``).
"""

from __future__ import annotations

import random

from ..core.embedding import embed, make_spec
from ..core.pipeline import MarkRecord
from ..core.watermark import Watermark
from ..crypto import MarkKey
from ..relational import Table
from .base import Attack


class AdditiveWatermarkAttack(Attack):
    """Re-watermark the relation under Mallory's own key.

    After :meth:`apply`, ``mallory_key`` and ``mallory_record`` hold
    everything Mallory would take to court, so experiments can run both
    parties' detections against both copies.
    """

    def __init__(
        self,
        attribute: str,
        e: int = 60,
        watermark_length: int = 10,
        ecc_name: str = "majority",
    ):
        if e <= 0:
            raise ValueError(f"e must be positive, got {e}")
        if watermark_length <= 0:
            raise ValueError(
                f"watermark length must be positive, got {watermark_length}"
            )
        self.attribute = attribute
        self.e = e
        self.watermark_length = watermark_length
        self.ecc_name = ecc_name
        self.name = f"additive:rewatermark({attribute}, e={e})"
        #: filled on apply()
        self.mallory_key: MarkKey | None = None
        self.mallory_record: MarkRecord | None = None

    def apply(self, table: Table, rng: random.Random) -> Table:
        attacked = table.clone(name=f"{table.name}_rewatermarked")
        self.mallory_key = MarkKey.from_seed(
            f"mallory-{rng.randrange(10 ** 12)}"
        )
        watermark = Watermark(
            tuple(rng.randrange(2) for _ in range(self.watermark_length))
        )
        spec = make_spec(
            attacked,
            watermark,
            mark_attribute=self.attribute,
            e=self.e,
            ecc_name=self.ecc_name,
        )
        embed(attacked, watermark, self.mallory_key, spec)
        domain = attacked.schema.attribute(self.attribute).domain
        self.mallory_record = MarkRecord(
            watermark=watermark,
            spec=spec,
            domain_values=domain.values if domain is not None else None,
        )
        return attacked
