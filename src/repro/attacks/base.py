"""Attack interface (adversary model, §2.3).

Every attack is a transformation Mallory might apply to a watermarked
relation while trying to keep it valuable.  Attacks never mutate their
input — they return a fresh relation — so experiments can compare the
original, marked and attacked versions side by side.

Execution backends
------------------

The high-volume attacks (A1 horizontal, A2 addition, A3 alteration, A6
re-mapping) implement two bit-identical execution paths:

* ``rows`` — the historical per-cell reference implementation
  (:meth:`Attack.apply_rows`);
* ``codes`` — the vectorized fast path (:meth:`Attack.apply_codes`):
  mutations land directly on the relation's ``int32`` column codes through
  the batched :class:`~repro.relational.table.Table` write primitives
  (``apply_codes`` / ``take`` / ``append_rows`` / ``with_mapped_column``),
  so the attacked clone keeps a warm factorization and the following
  re-detection runs as pure array code.

Both paths draw from the *same* ``random.Random`` sequence (the sweep
engine's ``f"attack:{seed}:{x}"`` contract), so selecting a backend can
never change an experiment's outputs — pinned by
``tests/attacks/test_attack_codes_equivalence.py``.  :attr:`Attack.backend`
selects the path: ``auto`` (default) takes ``codes`` whenever the attack
implements it and NumPy is importable.
"""

from __future__ import annotations

import abc
import random

from ..relational import Table

#: backend sentinels accepted by :attr:`Attack.backend`
ATTACK_AUTO = "auto"
ATTACK_ROWS = "rows"
ATTACK_CODES = "codes"
ATTACK_BACKENDS = (ATTACK_AUTO, ATTACK_ROWS, ATTACK_CODES)

_numpy_available: bool | None = None


def codes_backend_available() -> bool:
    """Can the ``codes`` attack backend run (does NumPy import)?"""
    global _numpy_available
    if _numpy_available is None:
        try:
            import numpy  # noqa: F401 - availability probe

            _numpy_available = True
        except ImportError:  # pragma: no cover - slim installs only
            _numpy_available = False
    return _numpy_available


class Attack(abc.ABC):
    """A value-preserving (from Mallory's perspective) transformation."""

    #: identifier used in experiment reports (e.g. ``"A1:horizontal"``)
    name: str = "attack"

    #: execution path: ``auto`` / ``rows`` / ``codes`` (class-level
    #: default; assign on an instance to pin one attack's path)
    backend: str = ATTACK_AUTO

    def __init_subclass__(cls, **kwargs) -> None:
        """Construction-time enforcement in place of the old abstract
        ``apply``: a concrete attack must implement ``apply`` or
        ``apply_rows`` (``apply_codes`` alone has no reference path)."""
        super().__init_subclass__(**kwargs)
        if (
            cls.apply is Attack.apply
            and cls.apply_rows is Attack.apply_rows
        ):
            raise TypeError(
                f"{cls.__name__} must implement apply() or apply_rows()"
            )

    def apply(self, table: Table, rng: random.Random) -> Table:
        """Return the attacked copy of ``table``.

        Dispatches to :meth:`apply_codes` or :meth:`apply_rows` per
        :attr:`backend`; attacks without a fast path simply override
        this method directly.
        """
        backend = self.backend
        if backend == ATTACK_AUTO:
            if self._has_codes_path() and codes_backend_available():
                return self.apply_codes(table, rng)
            return self.apply_rows(table, rng)
        if backend == ATTACK_CODES:
            if not self._has_codes_path():
                raise NotImplementedError(
                    f"{type(self).__name__} has no code-level fast path"
                )
            return self.apply_codes(table, rng)
        if backend == ATTACK_ROWS:
            return self.apply_rows(table, rng)
        raise ValueError(
            f"backend must be one of {ATTACK_BACKENDS}, got {backend!r}"
        )

    def _has_codes_path(self) -> bool:
        return type(self).apply_codes is not Attack.apply_codes

    def apply_rows(self, table: Table, rng: random.Random) -> Table:
        """Row-at-a-time reference implementation."""
        raise NotImplementedError(
            f"{type(self).__name__} implements neither apply() nor "
            f"apply_rows()"
        )

    def apply_codes(self, table: Table, rng: random.Random) -> Table:
        """Code-level fast path; bit-identical to :meth:`apply_rows`."""
        return self.apply_rows(table, rng)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class IdentityAttack(Attack):
    """No-op control: the 'attack' of simply redistributing the data."""

    name = "identity"

    def apply(self, table: Table, rng: random.Random) -> Table:
        return table.clone(name=f"{table.name}_copy")
