"""Attack interface (adversary model, §2.3).

Every attack is a transformation Mallory might apply to a watermarked
relation while trying to keep it valuable.  Attacks never mutate their
input — they return a fresh relation — so experiments can compare the
original, marked and attacked versions side by side.
"""

from __future__ import annotations

import abc
import random

from ..relational import Table


class Attack(abc.ABC):
    """A value-preserving (from Mallory's perspective) transformation."""

    #: identifier used in experiment reports (e.g. ``"A1:horizontal"``)
    name: str = "attack"

    @abc.abstractmethod
    def apply(self, table: Table, rng: random.Random) -> Table:
        """Return the attacked copy of ``table``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class IdentityAttack(Attack):
    """No-op control: the 'attack' of simply redistributing the data."""

    name = "identity"

    def apply(self, table: Table, rng: random.Random) -> Table:
        return table.clone(name=f"{table.name}_copy")
