"""A2 — subset addition.

Mallory dilutes the watermarked relation with fresh tuples that do not
"significantly alter the useful properties" of the set.  The paper flags
this as the hardest attack to reason about for categorical data — the
attacker prefers cheap additions over value-destroying alterations — and
the keyed slot selection is what absorbs it: added tuples are fit with
probability only ``1/e``, and even fit ones inject *random* (uncorrelated)
bit votes that the majority decode outvotes.
"""

from __future__ import annotations

import random
from typing import Hashable

from ..relational import Table, empirical_distribution
from .base import Attack


class SubsetAdditionAttack(Attack):
    """Add ``add_fraction * N`` synthetic tuples mimicking the data.

    Non-key attributes are sampled from the marginal empirical distribution
    of the existing data (a smart attacker keeps the statistics plausible);
    primary keys are fresh values outside the existing key set.
    """

    def __init__(self, add_fraction: float):
        if add_fraction < 0.0:
            raise ValueError(
                f"add_fraction must be non-negative, got {add_fraction}"
            )
        self.add_fraction = add_fraction
        self.name = f"A2:addition({add_fraction:g})"

    def apply(self, table: Table, rng: random.Random) -> Table:
        attacked = table.clone(name=f"{table.name}_diluted")
        goal = round(self.add_fraction * len(table))
        if goal == 0:
            return attacked

        samplers = {}
        for attribute in table.schema.names:
            if attribute == table.primary_key:
                continue
            distribution = empirical_distribution(table.column(attribute))
            values = [value for value, _ in distribution]
            weights = [weight for _, weight in distribution]
            samplers[attribute] = (values, weights)

        for key in _fresh_keys(table, goal, rng):
            row = []
            for attribute in table.schema.names:
                if attribute == table.primary_key:
                    row.append(key)
                else:
                    values, weights = samplers[attribute]
                    row.append(rng.choices(values, weights=weights, k=1)[0])
            attacked.insert(row)
        return attacked


def _fresh_keys(table: Table, count: int, rng: random.Random) -> list[Hashable]:
    """Generate ``count`` primary keys absent from ``table``."""
    position = table.schema.position(table.primary_key)
    existing = {row[position] for row in table}
    sample = next(iter(existing)) if existing else 0
    keys: list[Hashable] = []
    if isinstance(sample, int):
        cursor = max(existing) + 1 if existing else 1
        window = max(10 * (len(existing) + count), 1000)
        while len(keys) < count:
            candidate = rng.randrange(cursor, cursor + window)
            if candidate not in existing:
                existing.add(candidate)
                keys.append(candidate)
    else:
        serial = 0
        while len(keys) < count:
            candidate = f"added-{rng.randrange(10 ** 9)}-{serial}"
            serial += 1
            if candidate not in existing:
                existing.add(candidate)
                keys.append(candidate)
    return keys
