"""A2 — subset addition.

Mallory dilutes the watermarked relation with fresh tuples that do not
"significantly alter the useful properties" of the set.  The paper flags
this as the hardest attack to reason about for categorical data — the
attacker prefers cheap additions over value-destroying alterations — and
the keyed slot selection is what absorbs it: added tuples are fit with
probability only ``1/e``, and even fit ones inject *random* (uncorrelated)
bit votes that the majority decode outvotes.
"""

from __future__ import annotations

import random
from typing import Hashable

from ..relational import Table, empirical_distribution
from .base import Attack

try:  # the codes fast path needs numpy; the rows path never does
    import numpy as _np
except ImportError:  # pragma: no cover - slim installs only
    _np = None


class SubsetAdditionAttack(Attack):
    """Add ``add_fraction * N`` synthetic tuples mimicking the data.

    Non-key attributes are sampled from the marginal empirical distribution
    of the existing data (a smart attacker keeps the statistics plausible);
    primary keys are fresh values outside the existing key set.
    """

    def __init__(self, add_fraction: float):
        if add_fraction < 0.0:
            raise ValueError(
                f"add_fraction must be non-negative, got {add_fraction}"
            )
        self.add_fraction = add_fraction
        self.name = f"A2:addition({add_fraction:g})"

    def apply_rows(self, table: Table, rng: random.Random) -> Table:
        attacked = table.clone(name=f"{table.name}_diluted")
        goal = round(self.add_fraction * len(table))
        if goal == 0:
            return attacked

        samplers = {}
        for attribute in table.schema.names:
            if attribute == table.primary_key:
                continue
            distribution = empirical_distribution(table.column(attribute))
            values = [value for value, _ in distribution]
            weights = [weight for _, weight in distribution]
            samplers[attribute] = (values, weights)

        for row in _synthesize_rows(table, samplers, goal, rng):
            attacked.insert(row)
        return attacked

    def apply_codes(self, table: Table, rng: random.Random) -> Table:
        """Code-level fast path: same draws, batched landing.

        The marginal distributions come from a ``bincount`` over cached
        column codes when a fresh factorization exists (the counts — and
        therefore the sorted value/weight lists the rng consumes — are
        identical to a ``Counter`` scan), and the synthetic tuples land
        through one :meth:`~repro.relational.table.Table.append_rows`
        batch, which *extends* the attacked clone's factorizations instead
        of invalidating them — the diluted relation re-detects without a
        re-factorization pass.
        """
        attacked = table.clone(name=f"{table.name}_diluted")
        goal = round(self.add_fraction * len(table))
        if goal == 0:
            return attacked

        total = len(table)
        samplers = {}
        for attribute in table.schema.names:
            if attribute == table.primary_key:
                continue
            codes = table.column_codes(attribute, build=False)
            if codes is None:
                distribution = empirical_distribution(
                    table.column_view(attribute)
                )
            else:
                counts = _np.bincount(
                    codes.codes, minlength=len(codes.uniques)
                ).tolist()
                distribution = [
                    (value, count / total)
                    for value, count in sorted(
                        zip(codes.uniques, counts),
                        key=lambda item: (type(item[0]).__name__, item[0]),
                    )
                ]
            values = [value for value, _ in distribution]
            weights = [weight for _, weight in distribution]
            samplers[attribute] = (values, weights)

        attacked.append_rows(_synthesize_rows(table, samplers, goal, rng))
        return attacked


def _synthesize_rows(
    table: Table,
    samplers: dict,
    goal: int,
    rng: random.Random,
) -> list[list[Hashable]]:
    """Draw ``goal`` synthetic tuples: fresh keys, marginal-sampled cells.

    The single source of the A2 draw sequence — both attack backends
    consume it verbatim, so the per-row and batched landings stay
    bit-identical by construction.
    """
    names = table.schema.names
    primary_key = table.primary_key
    rows: list[list[Hashable]] = []
    for key in _fresh_keys(table, goal, rng):
        row: list[Hashable] = []
        for attribute in names:
            if attribute == primary_key:
                row.append(key)
            else:
                values, weights = samplers[attribute]
                row.append(rng.choices(values, weights=weights, k=1)[0])
        rows.append(row)
    return rows


def _fresh_keys(table: Table, count: int, rng: random.Random) -> list[Hashable]:
    """Generate ``count`` primary keys absent from ``table``.

    Reads the key column through :meth:`Table.column_view` (no row-tuple
    materialization); the produced set — and therefore every rng draw —
    is identical to a full-row scan.
    """
    existing = set(table.column_view(table.primary_key))
    sample = next(iter(existing)) if existing else 0
    keys: list[Hashable] = []
    if isinstance(sample, int):
        cursor = max(existing) + 1 if existing else 1
        window = max(10 * (len(existing) + count), 1000)
        while len(keys) < count:
            candidate = rng.randrange(cursor, cursor + window)
            if candidate not in existing:
                existing.add(candidate)
                keys.append(candidate)
    else:
        serial = 0
        while len(keys) < count:
            candidate = f"added-{rng.randrange(10 ** 9)}-{serial}"
            serial += 1
            if candidate not in existing:
                existing.add(candidate)
                keys.append(candidate)
    return keys
