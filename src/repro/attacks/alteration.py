"""A3 — subset alteration (the random data-altering attack of §4.4).

Without the keys, Mallory cannot tell carrier tuples from the rest; "faced
with the issue of destroying the watermark while preserving the value of
the data, [Mallory] has only one alternative available, namely a random
attack".  A fraction ``a/N`` of tuples is picked uniformly and their
categorical value replaced.  Only ``(a/N)/e`` of those hits land on actual
carriers, and each hit flips the embedded bit with probability ``p`` —
the quantities equation (1) of the paper is written in.

Figures 4–6 sweep exactly this attack.
"""

from __future__ import annotations

import random
import weakref

from ..relational import Table
from .base import Attack

# Per-factorization translation cache for the codes fast path: the
# domain-index -> column-code table and the row-code list are pure
# functions of one (ColumnCodes, domain) pair, and a sweep re-attacks the
# same 15 marked factorizations at every point — weak-keyed so entries
# die with their factorization.
_translation_cache: "weakref.WeakKeyDictionary[object, dict]" = (
    weakref.WeakKeyDictionary()
)


def _codes_translation(base, domain):
    """(domain codes, extra uniques, row-code list) for one factorization.

    ``domain_codes[i]`` is the code of ``domain.value_at(i)`` within
    ``base.uniques + extra`` (values absent from the column get appended
    codes); ``row_codes`` is ``base.codes`` as a plain list for fast
    per-victim reads.
    """
    store = _translation_cache.get(base)
    if store is None:
        store = _translation_cache[base] = {"rows": base.codes.tolist()}
    entry = store.get(id(domain))
    # The entry pins the domain it was built for: identity-checking it
    # guards against a recycled id() after the original domain was
    # collected while the factorization stayed alive.
    if entry is None or entry[0] is not domain:
        code_of = {value: code for code, value in enumerate(base.uniques)}
        extra: list = []
        domain_codes = []
        next_code = len(base.uniques)
        for value in domain.values:
            code = code_of.get(value)
            if code is None:
                code = next_code
                next_code += 1
                extra.append(value)
            domain_codes.append(code)
        entry = store[id(domain)] = (domain, domain_codes, tuple(extra))
    return entry[1], entry[2], store["rows"]


class SubsetAlterationAttack(Attack):
    """Randomly re-assign the values of one categorical attribute.

    ``flip_probability`` models the paper's ``p`` — the chance an altered
    carrier actually loses its embedded bit.  Drawing the replacement
    uniformly from the *other* domain values yields ``p ≈ 1`` for the bit's
    parity half the time; to track the paper's analysis we implement the
    alteration as: with probability ``p`` replace with a uniformly random
    different value, otherwise leave the tuple as-is.  ``p = 0.7`` is the
    paper's working estimate ("it is quite likely that when Mallory alters
    a watermarked tuple, it will destroy the embedded bit").
    """

    def __init__(
        self,
        attribute: str,
        alter_fraction: float,
        flip_probability: float = 1.0,
    ):
        if not 0.0 <= alter_fraction <= 1.0:
            raise ValueError(
                f"alter_fraction must be in [0, 1], got {alter_fraction}"
            )
        if not 0.0 <= flip_probability <= 1.0:
            raise ValueError(
                f"flip_probability must be in [0, 1], got {flip_probability}"
            )
        self.attribute = attribute
        self.alter_fraction = alter_fraction
        self.flip_probability = flip_probability
        self.name = (
            f"A3:alteration({attribute}, a={alter_fraction:g}, "
            f"p={flip_probability:g})"
        )

    def apply_rows(self, table: Table, rng: random.Random) -> Table:
        attacked = table.clone(name=f"{table.name}_altered")
        domain = attacked.schema.attribute(self.attribute).domain
        if domain is None:
            raise ValueError(f"attribute {self.attribute!r} is not categorical")
        if domain.size < 2:
            return attacked  # nothing to alter to

        # Sample row *indices* and read the two needed cells from column
        # snapshots instead of materializing every row tuple.  The columns
        # are captured before any write, so (like the old full-row
        # snapshot) each victim sees its pre-attack value; and because
        # ``rng.sample`` draws from the population length only, sampling
        # ``range(n)`` selects exactly the rows — in exactly the order —
        # that sampling the tuple list did, keeping outputs bit-identical.
        size = len(attacked)
        pk_column = attacked.column_view(attacked.primary_key)
        value_column = attacked.column_view(self.attribute)
        target_count = round(self.alter_fraction * size)
        victims = rng.sample(range(size), min(target_count, size))
        updates = []
        for slot in victims:
            if rng.random() >= self.flip_probability:
                continue
            current = value_column[slot]
            replacement = domain.value_at(rng.randrange(domain.size - 1))
            if replacement == current:
                replacement = domain.value_at(domain.size - 1)
            updates.append((pk_column[slot], replacement))
        # All rng draws precede all writes; since every victim row is
        # distinct and the draws never read the table, batching the writes
        # leaves the output bit-identical to the per-cell loop.
        attacked.set_values(self.attribute, updates)
        return attacked

    def apply_codes(self, table: Table, rng: random.Random) -> Table:
        """Code-level fast path: the victim loop runs in code space.

        Identical rng draws and identical cell values as
        :meth:`apply_rows`; what changes is the substrate.  The domain is
        translated into column codes once (appending codes for domain
        values the column does not yet hold), the per-victim compare
        happens on ``int`` codes, and the write-back is one positional
        :meth:`~repro.relational.table.Table.apply_codes` batch — no
        primary-key lookups, no per-cell re-validation, and the attacked
        clone keeps a *warm* factorization for the detection that
        follows.  Value equality coincides with code equality because the
        factorization keys values by Python equality, exactly like the
        domain itself.
        """
        attacked = table.clone(name=f"{table.name}_altered")
        domain = attacked.schema.attribute(self.attribute).domain
        if domain is None:
            raise ValueError(f"attribute {self.attribute!r} is not categorical")
        if domain.size < 2:
            return attacked

        size = len(attacked)
        base = attacked.column_codes(self.attribute)
        domain_codes, extra, current_codes = _codes_translation(base, domain)
        last_code = domain_codes[domain.size - 1]

        target_count = round(self.alter_fraction * size)
        victims = rng.sample(range(size), min(target_count, size))
        cutoff = domain.size - 1
        flip_probability = self.flip_probability
        random_draw = rng.random
        randrange = rng.randrange
        positions: list[int] = []
        codes: list[int] = []
        for slot in victims:
            if random_draw() >= flip_probability:
                continue
            replacement = domain_codes[randrange(cutoff)]
            if replacement == current_codes[slot]:
                replacement = last_code
            positions.append(slot)
            codes.append(replacement)
        attacked.apply_codes(self.attribute, positions, codes, base, extra)
        return attacked


class TargetedValueAttack(Attack):
    """Re-assign every occurrence of specific values (semantic cleanup).

    A plausible "normal use" transformation: e.g. merging deprecated product
    codes.  Included to exercise detection under structured (non-uniform)
    alteration.
    """

    def __init__(self, attribute: str, merges: dict):
        if not merges:
            raise ValueError("provide at least one value merge")
        self.attribute = attribute
        self.merges = dict(merges)
        self.name = f"A3:merge({attribute}, {len(merges)} values)"

    def apply(self, table: Table, rng: random.Random) -> Table:
        attacked = table.clone(name=f"{table.name}_merged")
        domain = attacked.schema.attribute(self.attribute).domain
        if domain is not None:
            for target in self.merges.values():
                if target not in domain:
                    raise ValueError(
                        f"merge target {target!r} outside the domain of "
                        f"{self.attribute!r}"
                    )
        # Column snapshots (taken before any write) replace the full-row
        # materialization; only the two consulted cells are ever read.
        pk_column = attacked.column_view(attacked.primary_key)
        value_column = attacked.column_view(self.attribute)
        attacked.set_values(
            self.attribute,
            (
                (pk, self.merges[value])
                for pk, value in zip(pk_column, value_column)
                if value in self.merges
            ),
        )
        return attacked
