"""A3 — subset alteration (the random data-altering attack of §4.4).

Without the keys, Mallory cannot tell carrier tuples from the rest; "faced
with the issue of destroying the watermark while preserving the value of
the data, [Mallory] has only one alternative available, namely a random
attack".  A fraction ``a/N`` of tuples is picked uniformly and their
categorical value replaced.  Only ``(a/N)/e`` of those hits land on actual
carriers, and each hit flips the embedded bit with probability ``p`` —
the quantities equation (1) of the paper is written in.

Figures 4–6 sweep exactly this attack.
"""

from __future__ import annotations

import random

from ..relational import Table
from .base import Attack


class SubsetAlterationAttack(Attack):
    """Randomly re-assign the values of one categorical attribute.

    ``flip_probability`` models the paper's ``p`` — the chance an altered
    carrier actually loses its embedded bit.  Drawing the replacement
    uniformly from the *other* domain values yields ``p ≈ 1`` for the bit's
    parity half the time; to track the paper's analysis we implement the
    alteration as: with probability ``p`` replace with a uniformly random
    different value, otherwise leave the tuple as-is.  ``p = 0.7`` is the
    paper's working estimate ("it is quite likely that when Mallory alters
    a watermarked tuple, it will destroy the embedded bit").
    """

    def __init__(
        self,
        attribute: str,
        alter_fraction: float,
        flip_probability: float = 1.0,
    ):
        if not 0.0 <= alter_fraction <= 1.0:
            raise ValueError(
                f"alter_fraction must be in [0, 1], got {alter_fraction}"
            )
        if not 0.0 <= flip_probability <= 1.0:
            raise ValueError(
                f"flip_probability must be in [0, 1], got {flip_probability}"
            )
        self.attribute = attribute
        self.alter_fraction = alter_fraction
        self.flip_probability = flip_probability
        self.name = (
            f"A3:alteration({attribute}, a={alter_fraction:g}, "
            f"p={flip_probability:g})"
        )

    def apply(self, table: Table, rng: random.Random) -> Table:
        attacked = table.clone(name=f"{table.name}_altered")
        domain = attacked.schema.attribute(self.attribute).domain
        if domain is None:
            raise ValueError(f"attribute {self.attribute!r} is not categorical")
        if domain.size < 2:
            return attacked  # nothing to alter to

        # Sample row *indices* and read the two needed cells from column
        # snapshots instead of materializing every row tuple.  The columns
        # are captured before any write, so (like the old full-row
        # snapshot) each victim sees its pre-attack value; and because
        # ``rng.sample`` draws from the population length only, sampling
        # ``range(n)`` selects exactly the rows — in exactly the order —
        # that sampling the tuple list did, keeping outputs bit-identical.
        size = len(attacked)
        pk_column = attacked.column_view(attacked.primary_key)
        value_column = attacked.column_view(self.attribute)
        target_count = round(self.alter_fraction * size)
        victims = rng.sample(range(size), min(target_count, size))
        updates = []
        for slot in victims:
            if rng.random() >= self.flip_probability:
                continue
            current = value_column[slot]
            replacement = domain.value_at(rng.randrange(domain.size - 1))
            if replacement == current:
                replacement = domain.value_at(domain.size - 1)
            updates.append((pk_column[slot], replacement))
        # All rng draws precede all writes; since every victim row is
        # distinct and the draws never read the table, batching the writes
        # leaves the output bit-identical to the per-cell loop.
        attacked.set_values(self.attribute, updates)
        return attacked


class TargetedValueAttack(Attack):
    """Re-assign every occurrence of specific values (semantic cleanup).

    A plausible "normal use" transformation: e.g. merging deprecated product
    codes.  Included to exercise detection under structured (non-uniform)
    alteration.
    """

    def __init__(self, attribute: str, merges: dict):
        if not merges:
            raise ValueError("provide at least one value merge")
        self.attribute = attribute
        self.merges = dict(merges)
        self.name = f"A3:merge({attribute}, {len(merges)} values)"

    def apply(self, table: Table, rng: random.Random) -> Table:
        attacked = table.clone(name=f"{table.name}_merged")
        domain = attacked.schema.attribute(self.attribute).domain
        if domain is not None:
            for target in self.merges.values():
                if target not in domain:
                    raise ValueError(
                        f"merge target {target!r} outside the domain of "
                        f"{self.attribute!r}"
                    )
        # Column snapshots (taken before any write) replace the full-row
        # materialization; only the two consulted cells are ever read.
        pk_column = attacked.column_view(attacked.primary_key)
        value_column = attacked.column_view(self.attribute)
        attacked.set_values(
            self.attribute,
            (
                (pk, self.merges[value])
                for pk, value in zip(pk_column, value_column)
                if value in self.merges
            ),
        )
        return attacked
