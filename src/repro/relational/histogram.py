"""Value-occurrence frequency histograms.

§2.1 defines ``f_A(a_j)`` — the occurrence frequency of value ``a_j`` in
attribute ``A``, normalised to 1.0 — which the paper uses twice:

* as the **frequency-domain embedding channel** (§4.2) that survives extreme
  vertical partitioning, and
* as the **distinguishing profile** that lets detection invert a bijective
  attribute re-mapping (§4.5).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from typing import Hashable

from .domain import CategoricalDomain
from .table import Table


def value_counts(table: Table, attribute: str) -> dict[Hashable, int]:
    """Occurrence count of every domain value of ``attribute``.

    Values declared in the domain but absent from the data are reported with
    count 0, so histograms over the same domain are always comparable
    position-by-position.
    """
    counts: Counter[Hashable] = Counter(table.column(attribute))
    declared = table.schema.attribute(attribute).domain
    if declared is not None:
        for value in declared:
            counts.setdefault(value, 0)
    return dict(counts)


def frequency_histogram(table: Table, attribute: str) -> dict[Hashable, float]:
    """``f_A``: normalised occurrence frequencies (sum to 1.0 when non-empty)."""
    counts = value_counts(table, attribute)
    total = sum(counts.values())
    if total == 0:
        return {value: 0.0 for value in counts}
    return {value: count / total for value, count in counts.items()}


def count_vector(table: Table, attribute: str) -> list[int]:
    """Counts in the canonical domain order ``(a_1, ..., a_nA)``.

    This fixed ordering is what makes the frequency channel decodable
    blindly: encoder and decoder agree on which histogram bin is "bin i".
    """
    counts = value_counts(table, attribute)
    domain = _domain_of(table, attribute)
    return [counts.get(value, 0) for value in domain]


def frequency_vector(table: Table, attribute: str) -> list[float]:
    """Normalised frequencies in canonical domain order."""
    counts = count_vector(table, attribute)
    total = sum(counts)
    if total == 0:
        return [0.0] * len(counts)
    return [count / total for count in counts]


def _domain_of(table: Table, attribute: str) -> CategoricalDomain:
    declared = table.schema.attribute(attribute).domain
    if declared is not None:
        return declared
    return CategoricalDomain.from_column(table.column(attribute))


def l1_distance(
    first: dict[Hashable, float], second: dict[Hashable, float]
) -> float:
    """L1 distance between two frequency histograms (missing keys = 0).

    Used by quality constraints to bound the distributional drift the
    watermark is allowed to introduce.
    """
    keys = set(first) | set(second)
    return sum(abs(first.get(k, 0.0) - second.get(k, 0.0)) for k in keys)


def sorted_frequency_profile(
    frequencies: dict[Hashable, float]
) -> list[tuple[Hashable, float]]:
    """Values sorted by descending frequency (ties by canonical value order).

    This is the "distinguishing property" of §4.5: a bijective re-mapping
    permutes value labels but cannot change the multiset of frequencies, so
    the sorted profile aligns original and re-mapped domains.
    """
    return sorted(
        frequencies.items(),
        key=lambda item: (-item[1], type(item[0]).__name__, item[0]),
    )


def empirical_distribution(
    values: Iterable[Hashable],
) -> list[tuple[Hashable, float]]:
    """(value, probability) pairs for sampling tuples "conforming to the
    overall data distribution" (§4.6's stealthiness requirement)."""
    counts = Counter(values)
    total = sum(counts.values())
    if total == 0:
        return []
    return [
        (value, count / total)
        for value, count in sorted(
            counts.items(), key=lambda item: (type(item[0]).__name__, item[0])
        )
    ]
