"""In-memory relational substrate.

Provides the typed, PK-indexed relation model the watermarking algorithms
operate on, together with the relational operations the adversary model
(§2.3 of the paper) is expressed in.
"""

from .csvio import (
    cell_parsers,
    dumps_csv,
    loads_csv,
    read_csv,
    schema_for_csv,
    write_csv,
)
from .domain import CategoricalDomain
from .errors import (
    DomainError,
    DuplicateKeyError,
    MissingKeyError,
    RelationalError,
    SchemaError,
    TypeMismatchError,
    UnknownAttributeError,
)
from .histogram import (
    count_vector,
    empirical_distribution,
    frequency_histogram,
    frequency_vector,
    l1_distance,
    sorted_frequency_profile,
    value_counts,
)
from .operations import (
    apply_to_column,
    drop_fraction,
    horizontal_sample,
    project,
    select,
    shuffle,
    sort_by,
    union,
)
from .schema import Attribute, Schema, infer_domains
from .serialization import (
    schema_from_dict,
    schema_from_json,
    schema_to_dict,
    schema_to_json,
)
from .table import ColumnCodes, Table, make_categorical_attribute, table_from_columns
from .types import AttributeType

__all__ = [
    "Attribute",
    "AttributeType",
    "CategoricalDomain",
    "DomainError",
    "DuplicateKeyError",
    "MissingKeyError",
    "RelationalError",
    "Schema",
    "SchemaError",
    "ColumnCodes",
    "Table",
    "TypeMismatchError",
    "UnknownAttributeError",
    "apply_to_column",
    "cell_parsers",
    "count_vector",
    "drop_fraction",
    "dumps_csv",
    "empirical_distribution",
    "frequency_histogram",
    "frequency_vector",
    "horizontal_sample",
    "infer_domains",
    "l1_distance",
    "loads_csv",
    "make_categorical_attribute",
    "project",
    "read_csv",
    "schema_for_csv",
    "schema_from_dict",
    "schema_from_json",
    "schema_to_dict",
    "schema_to_json",
    "select",
    "shuffle",
    "sort_by",
    "sorted_frequency_profile",
    "table_from_columns",
    "union",
    "value_counts",
    "write_csv",
]
