"""Relation schemas: named, typed attributes plus a primary key.

This mirrors the paper's data model (§2): a schema ``(K, A, B)`` where ``K``
is the primary key and the remaining attributes may be categorical (finite
value set), integer, real or string.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import Any

from .domain import CategoricalDomain
from .errors import (
    DomainError,
    SchemaError,
    TypeMismatchError,
    UnknownAttributeError,
)
from .types import AttributeType


@dataclass(frozen=True)
class Attribute:
    """A single relation attribute.

    Parameters
    ----------
    name:
        Attribute name, unique within a schema.
    atype:
        Declared :class:`AttributeType`.
    domain:
        Required for (and only for) ``CATEGORICAL`` attributes: the finite
        set of values the attribute may take.
    """

    name: str
    atype: AttributeType
    domain: CategoricalDomain | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.atype is AttributeType.CATEGORICAL and self.domain is None:
            raise SchemaError(
                f"categorical attribute {self.name!r} requires a domain"
            )
        if self.atype is not AttributeType.CATEGORICAL and self.domain is not None:
            raise SchemaError(
                f"non-categorical attribute {self.name!r} must not carry a domain"
            )

    @property
    def is_categorical(self) -> bool:
        return self.atype is AttributeType.CATEGORICAL

    def validate(self, value: Any) -> None:
        """Raise unless ``value`` is legal for this attribute."""
        domain = self.domain
        if domain is not None:
            # Categorical fast path (the write-heavy case: every embed and
            # attack write lands on a categorical cell): membership in the
            # finite domain subsumes the type check — any domain member is
            # hashable — so the happy path is a single hash lookup.
            try:
                if value in domain:
                    return
            except TypeError:  # unhashable, i.e. not a legal categorical
                raise TypeMismatchError(
                    value, self.atype.value, self.name
                ) from None
            raise DomainError(value, self.name)
        if not self.atype.accepts(value):
            raise TypeMismatchError(value, self.atype.value, self.name)

    def with_domain(self, domain: CategoricalDomain) -> "Attribute":
        """Return a copy of this attribute with a replacement domain."""
        if not self.is_categorical:
            raise SchemaError(
                f"cannot attach a domain to non-categorical {self.name!r}"
            )
        return Attribute(self.name, self.atype, domain)


class Schema:
    """An ordered collection of attributes with a designated primary key.

    The schema knows each attribute's position, so tables can store tuples
    as plain lists and still address cells by attribute name in O(1).
    """

    __slots__ = ("_attributes", "_positions", "_primary_key")

    def __init__(self, attributes: Iterable[Attribute], primary_key: str):
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("a schema needs at least one attribute")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        if primary_key not in names:
            raise SchemaError(
                f"primary key {primary_key!r} is not an attribute of the schema"
            )
        self._attributes = attrs
        self._positions = {a.name: i for i, a in enumerate(attrs)}
        self._primary_key = primary_key

    # -- lookups -------------------------------------------------------------
    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    @property
    def primary_key(self) -> str:
        return self._primary_key

    @property
    def arity(self) -> int:
        return len(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._positions

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return (
            self._attributes == other._attributes
            and self._primary_key == other._primary_key
        )

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{a.name}:{a.atype.value}" + ("*" if a.name == self._primary_key else "")
            for a in self._attributes
        )
        return f"Schema({cols})"

    def position(self, name: str) -> int:
        """Column index of attribute ``name`` within stored tuples."""
        try:
            return self._positions[name]
        except KeyError:
            raise UnknownAttributeError(name, self.names) from None

    def attribute(self, name: str) -> Attribute:
        return self._attributes[self.position(name)]

    def categorical_names(self) -> tuple[str, ...]:
        """Names of all categorical attributes, in schema order."""
        return tuple(a.name for a in self._attributes if a.is_categorical)

    # -- validation ------------------------------------------------------------
    def validate_row(self, row: tuple[Any, ...] | list[Any]) -> None:
        """Raise unless ``row`` has the right arity and every cell is legal."""
        if len(row) != len(self._attributes):
            raise SchemaError(
                f"row arity {len(row)} does not match schema arity "
                f"{len(self._attributes)}"
            )
        for attribute, value in zip(self._attributes, row):
            attribute.validate(value)

    # -- derived schemas ---------------------------------------------------------
    def project(self, names: Iterable[str], primary_key: str | None = None) -> "Schema":
        """Schema of a vertical partition keeping ``names``.

        ``primary_key`` designates the key of the partition; when omitted the
        original key is kept if it survives the projection, otherwise the
        first retained attribute is (arbitrarily but deterministically)
        promoted — exactly the situation the A5 attack creates, where "one of
        the remaining attributes can act as a primary key" (§3.3).
        """
        kept = tuple(names)
        for name in kept:
            if name not in self._positions:
                raise UnknownAttributeError(name, self.names)
        if not kept:
            raise SchemaError("projection must keep at least one attribute")
        if primary_key is None:
            primary_key = (
                self._primary_key if self._primary_key in kept else kept[0]
            )
        if primary_key not in kept:
            raise SchemaError(
                f"projection primary key {primary_key!r} not among kept attributes"
            )
        return Schema(
            (self.attribute(name) for name in kept), primary_key=primary_key
        )

    def replace_attribute(self, attribute: Attribute) -> "Schema":
        """Return a schema with the same layout but ``attribute`` swapped in."""
        if attribute.name not in self._positions:
            raise UnknownAttributeError(attribute.name, self.names)
        replaced = tuple(
            attribute if a.name == attribute.name else a for a in self._attributes
        )
        return Schema(replaced, primary_key=self._primary_key)

    def with_primary_key(self, name: str) -> "Schema":
        """Return the same schema re-keyed on ``name``.

        Used by multi-attribute embedding (§3.3), which treats one attribute
        of each pair as "a primary key place-holder".
        """
        return Schema(self._attributes, primary_key=name)


def infer_domains(schema: Schema, rows: Iterable[tuple]) -> Schema:
    """Return ``schema`` with every categorical domain widened to cover ``rows``.

    Convenience used by CSV import and by the blind detector when it only
    has the (possibly attacked) data: the observed distinct values of each
    categorical column become its domain.
    """
    rows = list(rows)
    out = schema
    for attribute in schema:
        if not attribute.is_categorical:
            continue
        position = schema.position(attribute.name)
        observed = {row[position] for row in rows}
        if attribute.domain is not None:
            observed |= set(attribute.domain.values)
        out = out.replace_attribute(
            attribute.with_domain(CategoricalDomain(observed))
        )
    return out
