"""Attribute type system for the relational substrate.

The paper's model (§2) is a schema ``(K, A, B)`` with a primary key ``K``
(not necessarily discrete) and categorical attributes drawn from finite value
sets.  We support the small set of scalar types needed to express that model
plus the numeric attributes used by the Agrawal–Kiernan baseline.
"""

from __future__ import annotations

import enum
from typing import Any


class AttributeType(enum.Enum):
    """Declared type of a relation attribute.

    ``CATEGORICAL`` attributes additionally carry a
    :class:`~repro.relational.domain.CategoricalDomain` describing their
    finite value set.
    """

    INTEGER = "integer"
    REAL = "real"
    STRING = "string"
    CATEGORICAL = "categorical"

    def accepts(self, value: Any) -> bool:
        """Return ``True`` when ``value`` is a legal instance of this type.

        ``bool`` is rejected for numeric types: a ``True`` slipping into a
        numeric column is almost always a bug, and Python's ``bool`` being an
        ``int`` subclass would otherwise hide it.
        """
        if self is AttributeType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is AttributeType.REAL:
            return (
                isinstance(value, (int, float)) and not isinstance(value, bool)
            )
        if self is AttributeType.STRING:
            return isinstance(value, str)
        if self is AttributeType.CATEGORICAL:
            # Domain membership is enforced separately by the schema; here we
            # only require hashability so the value can live in a domain.
            try:
                hash(value)
            except TypeError:
                return False
            return True
        raise AssertionError(f"unhandled type {self!r}")

    def parse(self, text: str) -> Any:
        """Parse ``text`` (e.g. a CSV field) into a value of this type."""
        if self is AttributeType.INTEGER:
            return int(text)
        if self is AttributeType.REAL:
            return float(text)
        return text
