"""Relational operations over :class:`~repro.relational.table.Table`.

These are the building blocks both of "normal use" of the data and of the
adversary's toolkit (§2.3): horizontal/vertical partitioning, re-sorting and
shuffling, unions, and selections.  Every operation returns a **new** table;
inputs are never mutated, which keeps attacked and original relations
cleanly separated in experiments.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable
from typing import Any, Hashable

from .errors import SchemaError
from .schema import Schema
from .table import Table


def select(
    table: Table,
    predicate: Callable[[tuple[Any, ...]], bool],
    name: str | None = None,
) -> Table:
    """Tuples of ``table`` satisfying ``predicate`` (σ)."""
    return Table(
        table.schema,
        (row for row in table if predicate(row)),
        name=name or f"{table.name}_select",
    )


def project(
    table: Table,
    attributes: Iterable[str],
    primary_key: str | None = None,
    name: str | None = None,
) -> Table:
    """Vertical partition (π) keeping ``attributes``.

    If the original primary key is projected away, duplicate tuples in the
    projection are dropped and re-keyed on ``primary_key`` (defaults to the
    first kept attribute) — matching §3.3's attack scenario where "one of
    the remaining attributes can act as a primary key".  Tuples whose new
    key value repeats are discarded (first occurrence wins): a relation
    cannot hold two tuples with one key.
    """
    kept = tuple(attributes)
    schema = table.schema.project(kept, primary_key=primary_key)
    positions = [table.schema.position(a) for a in kept]
    key_slot = schema.position(schema.primary_key)

    seen: set[Hashable] = set()
    rows: list[tuple[Any, ...]] = []
    for row in table:
        projected = tuple(row[p] for p in positions)
        key = projected[key_slot]
        if key in seen:
            continue
        seen.add(key)
        rows.append(projected)
    return Table(schema, rows, name=name or f"{table.name}_project")


def horizontal_sample(
    table: Table, fraction: float, rng: random.Random, name: str | None = None
) -> Table:
    """Uniform random subset keeping ``fraction`` of the tuples (attack A1).

    ``fraction`` is clamped to produce at least one tuple when the input is
    non-empty so downstream detection never sees an empty relation by
    accident; pass ``fraction=0`` explicitly to get an empty result.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rows = list(table)
    if fraction == 0.0 or not rows:
        return Table(table.schema, (), name=name or f"{table.name}_sample")
    count = max(1, round(fraction * len(rows)))
    chosen = rng.sample(rows, min(count, len(rows)))
    return Table(table.schema, chosen, name=name or f"{table.name}_sample")


def drop_fraction(
    table: Table, fraction: float, rng: random.Random, name: str | None = None
) -> Table:
    """Complement of :func:`horizontal_sample`: lose ``fraction`` of tuples."""
    return horizontal_sample(table, 1.0 - fraction, rng, name=name)


def shuffle(table: Table, rng: random.Random, name: str | None = None) -> Table:
    """Random physical re-ordering (attack A4 — subset re-sorting)."""
    rows = list(table)
    rng.shuffle(rows)
    return Table(table.schema, rows, name=name or f"{table.name}_shuffled")


def sort_by(
    table: Table, attribute: str, reverse: bool = False, name: str | None = None
) -> Table:
    """Deterministic re-sort on ``attribute`` (attack A4 variant)."""
    position = table.schema.position(attribute)
    rows = sorted(table, key=lambda row: _orderable(row[position]), reverse=reverse)
    return Table(table.schema, rows, name=name or f"{table.name}_sorted")


def _orderable(value: Any) -> tuple[str, Any]:
    return (type(value).__name__, value)


def union(first: Table, second: Table, name: str | None = None) -> Table:
    """Union of two key-disjoint relations over the same schema (attack A2).

    Key collisions raise: the adversary adding tuples (A2) must invent fresh
    keys, and a collision in an experiment indicates a generator bug.
    """
    if first.schema != second.schema:
        raise SchemaError("union requires identical schemas")
    merged = Table(first.schema, first, name=name or f"{first.name}_union")
    for row in second:
        merged.insert(row)
    return merged


def apply_to_column(
    table: Table,
    attribute: str,
    transform: Callable[[Any], Any],
    name: str | None = None,
) -> Table:
    """Map ``transform`` over one column, returning a new table.

    The schema must already admit the transformed values (for categorical
    attributes, re-map the domain first — see
    :meth:`CategoricalDomain.remapped`).
    """
    position = table.schema.position(attribute)
    rows = (
        tuple(
            transform(cell) if slot == position else cell
            for slot, cell in enumerate(row)
        )
        for row in table
    )
    return Table(table.schema, rows, name=name or f"{table.name}_mapped")
