"""PK-indexed in-memory relation.

:class:`Table` is the storage substrate every other subsystem operates on.
It is intentionally simple — a list of row-lists plus a hash index on the
primary key — because the watermarking algorithms only ever need

* sequential scans over all tuples (embedding / detection loops),
* O(1) cell updates addressed by primary key (the embedding writes
  ``T_j(A) <- a_t``), and
* cheap cloning (attacks must never mutate the watermarked original).

The table validates every inserted or updated cell against the schema, so a
buggy attack or encoder fails loudly instead of producing an out-of-domain
relation.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from typing import Any, Hashable

from .errors import DuplicateKeyError, MissingKeyError, SchemaError
from .schema import Attribute, Schema


class Table:
    """A mutable relation instance over a fixed :class:`Schema`."""

    __slots__ = ("_schema", "_rows", "_pk_index", "_pk_position", "name")

    def __init__(
        self,
        schema: Schema,
        rows: Iterable[Iterable[Any]] = (),
        name: str = "relation",
    ):
        self._schema = schema
        self._pk_position = schema.position(schema.primary_key)
        self._rows: list[list[Any]] = []
        self._pk_index: dict[Hashable, int] = {}
        self.name = name
        for row in rows:
            self.insert(row)

    # -- introspection ---------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def primary_key(self) -> str:
        return self._schema.primary_key

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        """Iterate tuples in current physical order."""
        return (tuple(row) for row in self._rows)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._pk_index

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {self._schema!r}, n={len(self)})"

    def __eq__(self, other: object) -> bool:
        """Order-insensitive equality: same schema and same set of tuples.

        Re-sorting (attack A4) must produce an "equal" relation; physical
        order is storage detail, not data content.
        """
        if not isinstance(other, Table):
            return NotImplemented
        if self._schema != other._schema or len(self) != len(other):
            return False
        return sorted(map(repr, self)) == sorted(map(repr, other))

    # -- reads -------------------------------------------------------------------
    def keys(self) -> Iterator[Hashable]:
        """Primary-key values in current physical order."""
        return (row[self._pk_position] for row in self._rows)

    def get(self, key: Hashable) -> tuple[Any, ...]:
        """Return the tuple whose primary key equals ``key``."""
        try:
            return tuple(self._rows[self._pk_index[key]])
        except KeyError:
            raise MissingKeyError(key) from None

    def value(self, key: Hashable, attribute: str) -> Any:
        """Return ``T_key(attribute)``."""
        position = self._schema.position(attribute)
        try:
            return self._rows[self._pk_index[key]][position]
        except KeyError:
            raise MissingKeyError(key) from None

    def column(self, attribute: str) -> list[Any]:
        """All values of ``attribute`` in current physical order."""
        position = self._schema.position(attribute)
        return [row[position] for row in self._rows]

    def rows_where(
        self, predicate: Callable[[tuple[Any, ...]], bool]
    ) -> Iterator[tuple[Any, ...]]:
        """Yield tuples satisfying ``predicate``."""
        for row in self._rows:
            frozen = tuple(row)
            if predicate(frozen):
                yield frozen

    # -- writes -------------------------------------------------------------------
    def insert(self, row: Iterable[Any]) -> None:
        """Append a tuple; rejects arity/type/domain violations and PK reuse."""
        materialised = list(row)
        self._schema.validate_row(materialised)
        key = materialised[self._pk_position]
        if key in self._pk_index:
            raise DuplicateKeyError(key)
        self._pk_index[key] = len(self._rows)
        self._rows.append(materialised)

    def set_value(self, key: Hashable, attribute: str, value: Any) -> Any:
        """Update one cell, returning the previous value.

        This is the single write primitive used by mark encoding
        (``T_j(A) <- a_t``) and by the rollback log's undo path.
        """
        position = self._schema.position(attribute)
        self._schema.attribute(attribute).validate(value)
        if position == self._pk_position:
            return self._set_key(key, value)
        try:
            row = self._rows[self._pk_index[key]]
        except KeyError:
            raise MissingKeyError(key) from None
        previous = row[position]
        row[position] = value
        return previous

    def _set_key(self, key: Hashable, new_key: Hashable) -> Hashable:
        if new_key == key:
            return key
        if new_key in self._pk_index:
            raise DuplicateKeyError(new_key)
        try:
            slot = self._pk_index.pop(key)
        except KeyError:
            raise MissingKeyError(key) from None
        self._rows[slot][self._pk_position] = new_key
        self._pk_index[new_key] = slot
        return key

    def delete(self, key: Hashable) -> tuple[Any, ...]:
        """Remove and return the tuple with primary key ``key``.

        Uses swap-with-last so deletion is O(1); physical order is not
        guaranteed to be stable across deletions (watermark detection must
        not — and does not — rely on physical order, per attack A4).
        """
        try:
            slot = self._pk_index.pop(key)
        except KeyError:
            raise MissingKeyError(key) from None
        removed = self._rows[slot]
        last = self._rows.pop()
        if slot < len(self._rows):
            self._rows[slot] = last
            self._pk_index[last[self._pk_position]] = slot
        return tuple(removed)

    def replace_rows(self, rows: Iterable[Iterable[Any]]) -> None:
        """Atomically replace the table contents (used by sort/shuffle ops)."""
        staged: list[list[Any]] = []
        index: dict[Hashable, int] = {}
        for row in rows:
            materialised = list(row)
            self._schema.validate_row(materialised)
            key = materialised[self._pk_position]
            if key in index:
                raise DuplicateKeyError(key)
            index[key] = len(staged)
            staged.append(materialised)
        self._rows = staged
        self._pk_index = index

    # -- copies ---------------------------------------------------------------------
    def clone(self, name: str | None = None) -> "Table":
        """Deep-enough copy: fresh row storage over the same (immutable) schema."""
        duplicate = Table(self._schema, name=name or self.name)
        duplicate._rows = [list(row) for row in self._rows]
        duplicate._pk_index = dict(self._pk_index)
        return duplicate

    def with_schema(self, schema: Schema, name: str | None = None) -> "Table":
        """Re-type this table's rows under a compatible replacement schema."""
        if schema.names != self._schema.names:
            raise SchemaError(
                "replacement schema must have identical attribute names/order"
            )
        return Table(schema, (tuple(row) for row in self._rows),
                     name=name or self.name)


def table_from_columns(
    schema: Schema, columns: dict[str, list[Any]], name: str = "relation"
) -> Table:
    """Build a :class:`Table` from parallel column lists keyed by name."""
    lengths = {len(values) for values in columns.values()}
    if len(lengths) > 1:
        raise SchemaError(f"ragged columns: lengths {sorted(lengths)}")
    missing = [n for n in schema.names if n not in columns]
    if missing:
        raise SchemaError(f"missing columns: {missing}")
    count = lengths.pop() if lengths else 0
    rows = (
        tuple(columns[n][i] for n in schema.names) for i in range(count)
    )
    return Table(schema, rows, name=name)


def make_categorical_attribute(name: str, values: Iterable[Hashable]) -> Attribute:
    """Shorthand for a categorical :class:`Attribute` over ``values``."""
    from .domain import CategoricalDomain
    from .types import AttributeType

    return Attribute(name, AttributeType.CATEGORICAL, CategoricalDomain(values))
