"""PK-indexed in-memory relation.

:class:`Table` is the storage substrate every other subsystem operates on.
It is intentionally simple — a list of row-lists plus a hash index on the
primary key — because the watermarking algorithms only ever need

* sequential scans over all tuples (embedding / detection loops),
* O(1) cell updates addressed by primary key (the embedding writes
  ``T_j(A) <- a_t``), and
* cheap cloning (attacks must never mutate the watermarked original).

The table validates every inserted or updated cell against the schema, so a
buggy attack or encoder fails loudly instead of producing an out-of-domain
relation.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from typing import Any, Hashable

from .errors import DuplicateKeyError, MissingKeyError, SchemaError
from .schema import Attribute, Schema

_numpy = None  # resolved lazily; the relational layer must import without it


def _require_numpy():
    """NumPy, imported on first use (the VECTOR backend's only dependency)."""
    global _numpy
    if _numpy is None:
        import numpy  # noqa: PLC0415 - deliberate lazy import

        _numpy = numpy
    return _numpy


class ColumnCodes:
    """A factorized column: dense ``int32`` codes plus the distinct values.

    ``codes[i]`` is the index of row ``i``'s value in ``uniques``, which is
    kept in *first physical encounter* order — the same distinct-value
    order the engine's batched scans use (``dict.fromkeys(column)``), so
    per-unique quantities line up across backends.  Both fields are
    read-only: the codes array is write-protected and ``uniques`` must not
    be mutated.  Instances support weak references, which is what lets
    :class:`~repro.crypto.engine.HashEngine` cache derived plan arrays per
    factorization without keeping dead tables alive.

    Like the engine's derived maps, factorization keys values by Python
    equality, so equal-comparing lookalikes (``1``/``True``) share a code.
    """

    __slots__ = ("codes", "uniques", "__weakref__")

    def __init__(self, codes, uniques: list[Any]):
        self.codes = codes
        self.uniques = uniques

    def __len__(self) -> int:
        return len(self.codes)


def _canonical_codes(np, raw, uniques: list[Any]) -> ColumnCodes:
    """Re-canonicalize a raw code array into first-encounter form.

    ``raw`` indexes into ``uniques`` but may use the codes in any order and
    may leave some unused (a batched overwrite can erase a value's last
    occurrence).  The result is exactly what a fresh row scan would
    factorize: uniques in first physical encounter order, no unused
    entries — so every codes consumer (plan arrays, histogram bincounts)
    sees the same factorization either way.
    """
    used, first_positions = np.unique(raw, return_index=True)
    order = np.argsort(first_positions, kind="stable")
    encounter = used[order]
    translate = np.empty(
        int(used[-1]) + 1 if len(used) else 0, dtype=np.int32
    )
    translate[encounter] = np.arange(len(encounter), dtype=np.int32)
    codes = translate[raw]
    codes.setflags(write=False)
    return ColumnCodes(codes, [uniques[i] for i in encounter.tolist()])


class Table:
    """A mutable relation instance over a fixed :class:`Schema`."""

    __slots__ = (
        "_schema", "_rows", "_pk_index", "_pk_position", "name",
        "_version", "_column_cache", "_owned",
        "_codes_cache", "_attr_writes", "_structural_version",
        "_view_hits", "_view_misses", "_codes_hits", "_codes_misses",
        "_pending", "__weakref__",
    )

    def __init__(
        self,
        schema: Schema,
        rows: Iterable[Iterable[Any]] = (),
        name: str = "relation",
    ):
        self._schema = schema
        self._pk_position = schema.position(schema.primary_key)
        self._rows: list[list[Any]] = []
        self._pk_index: dict[Hashable, int] = {}
        self.name = name
        self._version = 0
        self._column_cache: dict[str, tuple[int, list[Any]]] = {}
        self._codes_cache: dict[str, tuple[int, ColumnCodes]] = {}
        # Write tracking at cache granularity: cell writes invalidate only
        # the written attribute's cached views; structural changes (insert,
        # delete, replace_rows) invalidate everything.
        self._attr_writes: dict[str, int] = {}
        self._structural_version = 0
        # Copy-on-write state: ``None`` means every row list is exclusively
        # ours; a set holds the ids of rows re-acquired since the last
        # clone() made the storage shared (see _writable_row).
        self._owned: set[int] | None = None
        # Read-cache telemetry (cache_info): column-view and column-codes
        # requests answered from cache vs rebuilt.
        self._view_hits = 0
        self._view_misses = 0
        self._codes_hits = 0
        self._codes_misses = 0
        # Deferred columnar write (apply_codes): logically-applied cell
        # updates for ONE non-key attribute whose row materialization is
        # postponed until something actually reads those rows.  Shape:
        # (attribute, column position, row positions, codes, uniques).
        # The attribute's cached factorization already reflects the
        # update, so codes-only consumers (the vector detection kernels)
        # never trigger the flush — a sweep's attacked clones die without
        # ever paying the per-row write loop.
        self._pending: tuple[str, int, list[int], list[int], list[Any]] | None = None
        for row in rows:
            self.insert(row)

    # -- introspection ---------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def primary_key(self) -> str:
        return self._schema.primary_key

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        """Iterate tuples in current physical order."""
        self._flush_pending()
        return (tuple(row) for row in self._rows)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._pk_index

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {self._schema!r}, n={len(self)})"

    def __eq__(self, other: object) -> bool:
        """Order-insensitive equality: same schema and same set of tuples.

        Re-sorting (attack A4) must produce an "equal" relation; physical
        order is storage detail, not data content.
        """
        if not isinstance(other, Table):
            return NotImplemented
        if self._schema != other._schema or len(self) != len(other):
            return False
        return sorted(map(repr, self)) == sorted(map(repr, other))

    @property
    def version(self) -> int:
        """Monotonic write counter; bumps on any mutation.

        Lets read-side caches (column views, scan plans) validate cheaply
        instead of subscribing to change notifications.
        """
        return self._version

    def _cache_fresh(self, cached_version: int, attribute: str) -> bool:
        """Is a cache entry for ``attribute`` recorded at ``cached_version``
        still valid?

        Valid iff no structural mutation and no cell write *to this
        attribute* happened since — so marking one column does not throw
        away every other column's cached view/codes.
        """
        return (
            cached_version >= self._structural_version
            and cached_version >= self._attr_writes.get(attribute, 0)
        )

    def cache_info(self) -> dict[str, int]:
        """Read-cache telemetry: entries held and hit/miss counts.

        ``*_entries`` counts cached attributes (stale entries included —
        they are evicted lazily); hits/misses count :meth:`column_view` /
        :meth:`column_codes` requests since construction.  Surfaced in the
        bench JSON records so cache efficiency is tracked alongside
        throughput.
        """
        return {
            "view_entries": len(self._column_cache),
            "view_hits": self._view_hits,
            "view_misses": self._view_misses,
            "codes_entries": len(self._codes_cache),
            "codes_hits": self._codes_hits,
            "codes_misses": self._codes_misses,
        }

    # -- deferred columnar writes ------------------------------------------------
    def _flush_pending(self) -> None:
        """Materialize a deferred :meth:`apply_codes` batch into the rows.

        Runs before any row-shaped read or any mutation; a no-op almost
        always.  Does **not** bump :attr:`version` — the logical mutation
        (and its version bump) happened when the batch was staged.
        """
        pending = self._pending
        if pending is None:
            return
        self._pending = None
        _, position, positions, codes, uniques = pending
        rows = self._rows
        owned = self._owned
        if owned is None:
            for slot, code in zip(positions, codes):
                rows[slot][position] = uniques[code]
            return
        for slot, code in zip(positions, codes):
            row = rows[slot]
            if id(row) not in owned:
                row = row.copy()
                rows[slot] = row
                owned.add(id(row))
            row[position] = uniques[code]

    def _flush_if(self, attribute: str) -> None:
        """Flush only when the deferred batch covers ``attribute``."""
        pending = self._pending
        if pending is not None and pending[0] == attribute:
            self._flush_pending()

    # -- reads -------------------------------------------------------------------
    def keys(self) -> Iterator[Hashable]:
        """Primary-key values in current physical order."""
        return (row[self._pk_position] for row in self._rows)

    def get(self, key: Hashable) -> tuple[Any, ...]:
        """Return the tuple whose primary key equals ``key``."""
        self._flush_pending()
        try:
            return tuple(self._rows[self._pk_index[key]])
        except KeyError:
            raise MissingKeyError(key) from None

    def value(self, key: Hashable, attribute: str) -> Any:
        """Return ``T_key(attribute)``."""
        self._flush_if(attribute)
        position = self._schema.position(attribute)
        try:
            return self._rows[self._pk_index[key]][position]
        except KeyError:
            raise MissingKeyError(key) from None

    def column(self, attribute: str) -> list[Any]:
        """All values of ``attribute`` in current physical order.

        Returns a fresh list the caller may mutate; hot loops that only
        read should prefer :meth:`column_view`.
        """
        self._flush_if(attribute)
        position = self._schema.position(attribute)
        return [row[position] for row in self._rows]

    def column_view(self, attribute: str) -> list[Any]:
        """Cached read-only column of ``attribute`` (physical order).

        The view is shared between callers and invalidated lazily via
        :attr:`version`, so repeated scans of an unmodified relation —
        the embed/detect hot path — materialize each column once.
        **Callers must not mutate the returned list.**
        """
        cached = self._column_cache.get(attribute)
        if cached is not None and self._cache_fresh(cached[0], attribute):
            self._view_hits += 1
            return cached[1]
        self._view_misses += 1
        self._flush_if(attribute)
        position = self._schema.position(attribute)
        values = [row[position] for row in self._rows]
        self._column_cache[attribute] = (self._version, values)
        return values

    def column_codes(
        self, attribute: str, build: bool = True
    ) -> ColumnCodes | None:
        """Factorize ``attribute`` once into :class:`ColumnCodes`.

        The vector backend's entry point: embedding/detection kernels
        operate on the dense integer codes (NumPy gathers, ``bincount``
        tallies) and resolve hashes per *unique* value only.  The
        factorization is cached and invalidated exactly like
        :meth:`column_view` — by :attr:`version`, at attribute
        granularity — and :meth:`clone` inherits it copy-on-write, so an
        attack clone that never rewrites the key column re-detects on the
        base relation's codes without re-factorizing.  Requires NumPy.

        With ``build=False`` the method only consults the cache, returning
        ``None`` instead of factorizing — for opportunistic consumers that
        would rather take a plain scan than pay a cold factorization.
        """
        cached = self._codes_cache.get(attribute)
        if cached is not None and self._cache_fresh(cached[0], attribute):
            self._codes_hits += 1
            return cached[1]
        if not build:
            return None
        self._codes_misses += 1
        self._flush_if(attribute)
        np = _require_numpy()
        if attribute == self._schema.primary_key:
            # Primary keys are unique: every row is its own code and the
            # uniques *are* the column — no dict pass at all.
            uniques = self.column_view(attribute)
            codes = np.arange(len(uniques), dtype=np.int32)
        else:
            position = self._schema.position(attribute)
            index: dict[Any, int] = {}
            uniques = []
            lookup = index.get
            remember = uniques.append
            out: list[int] = []
            emit = out.append
            for row in self._rows:
                value = row[position]
                code = lookup(value)
                if code is None:
                    code = index[value] = len(uniques)
                    remember(value)
                emit(code)
            codes = np.asarray(out, dtype=np.int32)
        codes.setflags(write=False)
        entry = ColumnCodes(codes, uniques)
        self._codes_cache[attribute] = (self._version, entry)
        return entry

    def values_for(self, keys: Iterable[Hashable], attribute: str) -> list[Any]:
        """``T_key(attribute)`` for a batch of primary keys.

        The columnar counterpart of :meth:`value` — one schema lookup for
        the whole batch instead of one per cell.
        """
        self._flush_if(attribute)
        position = self._schema.position(attribute)
        rows = self._rows
        index = self._pk_index
        try:
            return [rows[index[key]][position] for key in keys]
        except KeyError as exc:
            raise MissingKeyError(exc.args[0]) from None

    def iter_cells(self, *attributes: str) -> Iterator[Any]:
        """Iterate just the named cells, skipping full-row materialization.

        Yields bare values for a single attribute and tuples of cells for
        several — the columnar alternative to ``for row in table`` for
        loops that touch two columns of a wide relation.
        """
        pending = self._pending
        if pending is not None and pending[0] in attributes:
            self._flush_pending()
        positions = tuple(self._schema.position(a) for a in attributes)
        if len(positions) == 1:
            position = positions[0]
            return (row[position] for row in self._rows)
        if len(positions) == 2:
            first, second = positions
            return ((row[first], row[second]) for row in self._rows)
        return (
            tuple(row[p] for p in positions) for row in self._rows
        )

    def rows_where(
        self, predicate: Callable[[tuple[Any, ...]], bool]
    ) -> Iterator[tuple[Any, ...]]:
        """Yield tuples satisfying ``predicate``."""
        self._flush_pending()
        for row in self._rows:
            frozen = tuple(row)
            if predicate(frozen):
                yield frozen

    @classmethod
    def from_trusted_rows(
        cls,
        schema: Schema,
        rows: Iterable[Iterable[Any]],
        name: str = "relation",
    ) -> "Table":
        """Adopt ``rows`` wholesale, skipping per-cell validation.

        The chunk-pipeline constructor: a streaming source re-windows rows
        that are schema-valid *by construction* — tuples of an existing
        validated :class:`Table`, CSV cells typed by parsers whose domains
        were just inference-widened over those very rows — and per-cell
        re-validation would dominate the chunk's whole processing cost.
        Primary-key uniqueness is still enforced (the index is built
        anyway); everything else is the caller's contract.
        """
        table = cls(schema, (), name=name)
        materialised = [list(row) for row in rows]
        pk_position = table._pk_position
        index = {
            row[pk_position]: slot
            for slot, row in enumerate(materialised)
        }
        if len(index) != len(materialised):
            seen: set[Hashable] = set()
            for row in materialised:
                key = row[pk_position]
                if key in seen:
                    raise DuplicateKeyError(key)
                seen.add(key)
        table._rows = materialised
        table._pk_index = index
        table._version = 1
        table._structural_version = 1
        return table

    # -- writes -------------------------------------------------------------------
    def insert(self, row: Iterable[Any]) -> None:
        """Append a tuple; rejects arity/type/domain violations and PK reuse."""
        self._flush_pending()
        materialised = list(row)
        self._schema.validate_row(materialised)
        key = materialised[self._pk_position]
        if key in self._pk_index:
            raise DuplicateKeyError(key)
        self._pk_index[key] = len(self._rows)
        self._rows.append(materialised)
        if self._owned is not None:
            self._owned.add(id(materialised))
        self._version += 1
        self._structural_version = self._version

    def set_value(self, key: Hashable, attribute: str, value: Any) -> Any:
        """Update one cell, returning the previous value.

        This is the single write primitive used by mark encoding
        (``T_j(A) <- a_t``) and by the rollback log's undo path.
        """
        self._flush_pending()
        position = self._schema.position(attribute)
        self._schema.attribute(attribute).validate(value)
        if position == self._pk_position:
            return self._set_key(key, value)
        try:
            slot = self._pk_index[key]
        except KeyError:
            raise MissingKeyError(key) from None
        row = self._writable_row(slot)
        previous = row[position]
        row[position] = value
        self._version += 1
        self._attr_writes[attribute] = self._version
        return previous

    def set_values(
        self, attribute: str, items: Iterable[tuple[Hashable, Any]]
    ) -> int:
        """Batched cell update: ``T_key(attribute) <- value`` for many keys.

        The columnar counterpart of :meth:`set_value` for write-heavy
        callers (attack trials and the vector embedding kernel rewrite
        thousands of cells per pass): one schema/validator resolution and
        one version bump for the whole batch, with per-cell validation and
        copy-on-write privatization identical to the scalar path.

        Unlike a loop of :meth:`set_value` calls, the batch is **atomic**:
        every value is validated and every key resolved *before* the first
        cell is touched, so a schema-violating, unknown-key or (for
        primary-key batches) duplicate-key batch is rejected without
        applying any write and without bumping :attr:`version`.  Duplicate
        keys within a non-key batch follow sequential semantics (last value
        wins).  Returns the number of cells written.
        """
        self._flush_pending()
        position = self._schema.position(attribute)
        # Materialize first: a lazy iterable that reads this table (e.g.
        # through column_view) must observe the pre-batch state, never a
        # half-written column cached at the final version.
        staged = list(items)
        if not staged:
            return 0
        if position == self._pk_position:
            return self._set_keys_batched(attribute, staged)
        meta = self._schema.attribute(attribute)
        index = self._pk_index
        slots: list[int] = []
        for key, value in staged:
            meta.validate(value)
            try:
                slots.append(index[key])
            except KeyError:
                raise MissingKeyError(key) from None
        rows = self._rows
        owned = self._owned
        for slot, (_, value) in zip(slots, staged):
            row = rows[slot]
            if owned is not None and id(row) not in owned:
                private = row.copy()
                rows[slot] = private
                owned.add(id(private))
                row = private
            row[position] = value
        self._version += 1
        self._attr_writes[attribute] = self._version
        return len(staged)

    def _set_keys_batched(
        self, attribute: str, staged: list[tuple[Hashable, Any]]
    ) -> int:
        """Atomic batched primary-key renames.

        The whole rename sequence is simulated on a copy of the index
        first (sequential semantics: rename chains like ``a -> b`` then
        ``b -> c`` are legal), so duplicate or missing keys reject the
        batch before any row is touched.
        """
        meta = self._schema.attribute(attribute)
        for _, new_key in staged:
            meta.validate(new_key)
        simulated = dict(self._pk_index)
        renames: list[tuple[int, Hashable]] = []
        for key, new_key in staged:
            if new_key == key:
                if key not in simulated:
                    raise MissingKeyError(key)
                continue
            if new_key in simulated:
                raise DuplicateKeyError(new_key)
            try:
                slot = simulated.pop(key)
            except KeyError:
                raise MissingKeyError(key) from None
            simulated[new_key] = slot
            renames.append((slot, new_key))
        if not renames:
            return len(staged)
        for slot, new_key in renames:
            self._writable_row(slot)[self._pk_position] = new_key
        self._pk_index = simulated
        self._version += 1
        self._attr_writes[attribute] = self._version
        return len(staged)

    def apply_codes(
        self,
        attribute: str,
        positions: Iterable[int],
        codes: Iterable[int],
        base: ColumnCodes,
        extra_uniques: Iterable[Any] = (),
    ) -> int:
        """Batched positional cell update in code space — the attack fast
        path.

        Writes ``uniques[codes[i]]`` into row ``positions[i]`` of
        ``attribute``, where ``uniques`` is ``base.uniques`` extended by
        ``extra_uniques``.  Like :meth:`set_values` the batch is atomic
        (everything validated before the first write) and costs a single
        version bump; unlike it, the row addressing is positional (no
        primary-key lookups) and the column's cached factorization is
        *maintained* instead of invalidated: the updated
        :class:`ColumnCodes` — re-canonicalized to first-encounter form,
        exactly what a fresh scan would factorize — is installed at the
        new version, so a following vector detection of the attacked
        column re-factorizes nothing.

        ``base`` must be this table's current fresh
        ``column_codes(attribute)`` (anything else would desynchronize
        codes and rows and is rejected).  Positions should be distinct;
        duplicates follow last-value-wins sequential semantics.  The
        primary key is not supported (renames need index maintenance, and
        code-level attacks never rewrite keys).

        The row materialization itself is *deferred*: the batch is staged
        (and the version bumped) immediately, but the per-row cell writes
        run lazily on the first row-shaped read.  Codes-only consumers —
        the vector detection kernels — never trigger them, which is what
        makes a code-level attack O(batch) instead of O(batch · row
        bookkeeping).
        """
        position = self._schema.position(attribute)
        if position == self._pk_position:
            raise SchemaError(
                "apply_codes does not support the primary-key column"
            )
        self._flush_pending()
        current = self._codes_cache.get(attribute)
        if (
            current is None
            or current[1] is not base
            or not self._cache_fresh(current[0], attribute)
        ):
            raise ValueError(
                f"base is not this table's current column_codes() "
                f"factorization of {attribute!r}"
            )
        positions = list(positions)
        codes = list(codes)
        if len(positions) != len(codes):
            raise ValueError("positions and codes must have equal length")
        if not positions:
            return 0
        uniques = base.uniques
        base_length = len(uniques)
        if extra_uniques:
            uniques = list(uniques) + list(extra_uniques)
        lowest, highest = min(codes), max(codes)
        if lowest < 0 or highest >= len(uniques):
            bad = lowest if lowest < 0 else highest
            raise IndexError(f"code {bad} outside [0, {len(uniques)})")
        if highest >= base_length:
            # Only appended values need validation: every code below
            # base_length names a value already present in the column,
            # which passed schema validation when it entered the table.
            meta = self._schema.attribute(attribute)
            for code in set(codes):
                if code >= base_length:
                    meta.validate(uniques[code])
        row_count = len(self._rows)
        lowest, highest = min(positions), max(positions)
        if lowest < 0 or highest >= row_count:
            bad = lowest if lowest < 0 else highest
            raise IndexError(
                f"row position {bad} outside [0, {row_count})"
            )
        self._pending = (attribute, position, positions, codes, uniques)
        self._version += 1
        self._attr_writes[attribute] = self._version
        np = _require_numpy()
        raw = base.codes.copy()
        raw[positions] = np.asarray(codes, dtype=np.int32)
        self._codes_cache[attribute] = (
            self._version, _canonical_codes(np, raw, uniques)
        )
        return len(positions)

    def append_rows(self, rows: Iterable[Iterable[Any]]) -> int:
        """Batched :meth:`insert`: append many tuples, one version bump.

        Validation and duplicate-key rejection are atomic — the whole
        batch is checked before the first row lands.  Cached column
        factorizations that are fresh at call time are *extended* instead
        of invalidated: appending cannot change an existing row's code,
        so the new factorization is the old one plus the appended values
        (first-encounter order preserved) — the A2 attack fast path
        re-detects the diluted relation without re-factorizing it.
        """
        self._flush_pending()
        staged = [list(row) for row in rows]
        if not staged:
            return 0
        for row in staged:
            self._schema.validate_row(row)
        pk_position = self._pk_position
        index = self._pk_index
        batch: set[Hashable] = set()
        for row in staged:
            key = row[pk_position]
            if key in index or key in batch:
                raise DuplicateKeyError(key)
            batch.add(key)
        # Capture fresh factorizations before the structural bump below
        # marks them stale.
        fresh = {
            attribute: entry[1]
            for attribute, entry in self._codes_cache.items()
            if self._cache_fresh(entry[0], attribute)
        }
        start = len(self._rows)
        for offset, row in enumerate(staged):
            index[row[pk_position]] = start + offset
        self._rows.extend(staged)
        if self._owned is not None:
            self._owned.update(id(row) for row in staged)
        self._version += 1
        self._structural_version = self._version
        if fresh:
            np = _require_numpy()
            for attribute, codes in fresh.items():
                attr_position = self._schema.position(attribute)
                appended = [row[attr_position] for row in staged]
                if attr_position == pk_position:
                    # Primary keys stay unique: the factorization remains
                    # the identity over the (extended) column.
                    uniques = codes.uniques + appended
                    extended = np.arange(len(uniques), dtype=np.int32)
                else:
                    uniques = list(codes.uniques)
                    lookup = {
                        value: slot for slot, value in enumerate(uniques)
                    }
                    out: list[int] = []
                    for value in appended:
                        slot = lookup.get(value)
                        if slot is None:
                            slot = lookup[value] = len(uniques)
                            uniques.append(value)
                        out.append(slot)
                    extended = np.concatenate(
                        [codes.codes, np.asarray(out, dtype=np.int32)]
                    )
                extended.setflags(write=False)
                self._codes_cache[attribute] = (
                    self._version, ColumnCodes(extended, uniques)
                )
        return len(staged)

    def _writable_row(self, slot: int) -> list[Any]:
        """The row at ``slot``, privatized for in-place mutation.

        After a :meth:`clone` the row lists are shared with the twin table;
        the first write to a shared row replaces it with a private copy.
        Rows this table created itself (inserts, earlier copies) are
        mutated directly.  Id-based ownership is sound because shared rows
        only ever enter ``_rows`` through ``clone()``, which resets the
        owned set on both sides.
        """
        row = self._rows[slot]
        owned = self._owned
        if owned is None or id(row) in owned:
            return row
        private = row.copy()
        self._rows[slot] = private
        owned.add(id(private))
        return private

    def _set_key(self, key: Hashable, new_key: Hashable) -> Hashable:
        if new_key == key:
            return key
        if new_key in self._pk_index:
            raise DuplicateKeyError(new_key)
        try:
            slot = self._pk_index.pop(key)
        except KeyError:
            raise MissingKeyError(key) from None
        self._writable_row(slot)[self._pk_position] = new_key
        self._pk_index[new_key] = slot
        self._version += 1
        self._attr_writes[self._schema.primary_key] = self._version
        return key

    def delete(self, key: Hashable) -> tuple[Any, ...]:
        """Remove and return the tuple with primary key ``key``.

        Uses swap-with-last so deletion is O(1); physical order is not
        guaranteed to be stable across deletions (watermark detection must
        not — and does not — rely on physical order, per attack A4).
        """
        self._flush_pending()
        try:
            slot = self._pk_index.pop(key)
        except KeyError:
            raise MissingKeyError(key) from None
        removed = self._rows[slot]
        last = self._rows.pop()
        if slot < len(self._rows):
            self._rows[slot] = last
            self._pk_index[last[self._pk_position]] = slot
        self._version += 1
        self._structural_version = self._version
        return tuple(removed)

    def replace_rows(self, rows: Iterable[Iterable[Any]]) -> None:
        """Atomically replace the table contents (used by sort/shuffle ops)."""
        self._pending = None  # superseded wholesale; nothing to keep
        staged: list[list[Any]] = []
        index: dict[Hashable, int] = {}
        for row in rows:
            materialised = list(row)
            self._schema.validate_row(materialised)
            key = materialised[self._pk_position]
            if key in index:
                raise DuplicateKeyError(key)
            index[key] = len(staged)
            staged.append(materialised)
        self._rows = staged
        self._pk_index = index
        self._owned = None  # every staged row is freshly materialised
        self._version += 1
        self._structural_version = self._version

    # -- copies ---------------------------------------------------------------------
    def clone(self, name: str | None = None) -> "Table":
        """Copy-on-write copy: safe to mutate on either side.

        Clone is on the embed and attack hot paths (every marking pass and
        every attack trial copies the relation), while typical passes then
        rewrite only ~``N/e`` rows — so the row lists are *shared* and
        privatized lazily by :meth:`_writable_row` on first write, making
        clone O(N) pointer copies instead of O(N·arity) cell copies.

        Read caches (column views, column codes) are inherited along with
        the rows: the clone starts with the same version counters and the
        same cache entries, which stay valid on each side until *that*
        side writes the attribute.  An attack clone that only rewrites the
        mark column therefore re-detects on the base relation's key-column
        codes — the factorize-once contract of the vector backend.
        """
        self._flush_pending()
        duplicate = Table(self._schema, name=name or self.name)
        duplicate._rows = self._rows.copy()
        duplicate._pk_index = self._pk_index.copy()
        # Both sides now share every row: reset ownership on both.
        self._owned = set()
        duplicate._owned = set()
        # Inherit caches in the parent's version space (the cached lists
        # and codes are shared read-only, like the rows).
        duplicate._version = self._version
        duplicate._structural_version = self._structural_version
        duplicate._attr_writes = dict(self._attr_writes)
        duplicate._column_cache = dict(self._column_cache)
        duplicate._codes_cache = dict(self._codes_cache)
        return duplicate

    def take(self, positions: Iterable[int], name: str | None = None) -> "Table":
        """Row subset by physical position, sharing storage copy-on-write.

        The relational fast path behind the A1 attacks: the selected row
        lists are *shared* with this table (privatized on first write on
        either side, exactly like :meth:`clone`) instead of re-validated
        and re-materialized tuple by tuple, and every fresh cached
        factorization comes along as a gather — re-canonicalized so the
        subset's codes are exactly what a fresh scan of it would produce.
        Output order follows ``positions``; out-of-range or duplicate-key
        positions raise before any state changes.
        """
        self._flush_pending()
        positions = list(positions)
        rows = self._rows
        row_count = len(rows)
        taken: list[list[Any]] = []
        for position in positions:
            if not 0 <= position < row_count:
                raise IndexError(
                    f"row position {position} outside [0, {row_count})"
                )
            taken.append(rows[position])
        pk_position = self._pk_position
        index: dict[Hashable, int] = {}
        for slot, row in enumerate(taken):
            key = row[pk_position]
            if key in index:
                raise DuplicateKeyError(key)
            index[key] = slot
        duplicate = Table(self._schema, name=name or f"{self.name}_take")
        duplicate._rows = taken
        duplicate._pk_index = index
        # Shared storage: every row of either side must now privatize
        # before mutating (the taken rows live in both tables).
        self._owned = set()
        duplicate._owned = set()
        if taken and self._codes_cache:
            np = _require_numpy()
            gather = np.asarray(positions, dtype=np.intp)
            for attribute, (cached_version, codes) in self._codes_cache.items():
                if not self._cache_fresh(cached_version, attribute):
                    continue
                duplicate._codes_cache[attribute] = (
                    duplicate._version,
                    _canonical_codes(np, codes.codes[gather], codes.uniques),
                )
        return duplicate

    def with_mapped_column(
        self,
        attribute: str,
        mapping: dict[Any, Any],
        schema: Schema | None = None,
        name: str | None = None,
    ) -> "Table":
        """Rewrite one column through a per-value mapping into a new table.

        The code-level A6 (re-mapping) fast path: the mapping is resolved
        and validated once per *distinct* value instead of per row, rows
        are copied without per-row schema validation (every other cell is
        already valid under an identical attribute layout), and the
        column's factorization carries over with only its uniques
        re-labelled — the codes array itself is unchanged, and untouched
        columns keep their factorization objects verbatim, so detection
        of the re-mapped relation stays warm.  ``schema`` (defaults to
        this table's) must have identical attribute names and order;
        a value missing from ``mapping`` raises ``KeyError`` exactly like
        a per-row ``mapping[value]`` scan would.
        """
        target_schema = schema or self._schema
        if target_schema.names != self._schema.names:
            raise SchemaError(
                "replacement schema must have identical attribute names/order"
            )
        position = target_schema.position(attribute)
        meta = target_schema.attribute(attribute)
        try:
            codes = self.column_codes(attribute)
        except ImportError:  # pragma: no cover - slim installs only
            codes = None
        if codes is not None:
            distinct: Iterable[Any] = codes.uniques
        else:
            distinct = dict.fromkeys(self.column_view(attribute))
        images = {value: mapping[value] for value in distinct}
        for value in images.values():
            meta.validate(value)
        self._flush_pending()
        mapped_rows: list[list[Any]] = []
        for row in self._rows:
            fresh = row.copy()
            fresh[position] = images[fresh[position]]
            mapped_rows.append(fresh)
        duplicate = Table(target_schema, name=name or f"{self.name}_mapped")
        duplicate._rows = mapped_rows
        if position == self._pk_position:
            index: dict[Hashable, int] = {}
            for slot, row in enumerate(mapped_rows):
                key = row[position]
                if key in index:
                    raise DuplicateKeyError(key)
                index[key] = slot
            duplicate._pk_index = index
        else:
            duplicate._pk_index = dict(self._pk_index)
        if codes is not None:
            mapped_uniques = [images[v] for v in codes.uniques]
            if len(set(mapped_uniques)) == len(mapped_uniques):
                duplicate._codes_cache[attribute] = (
                    duplicate._version,
                    ColumnCodes(codes.codes, mapped_uniques),
                )
            # A non-injective mapping merges values: the carried-over codes
            # would hold duplicate uniques (two codes for one value), which
            # breaks the distinct-by-equality invariant every consumer
            # assumes — leave the column cold and let a fresh scan
            # canonicalize it instead.
            for other, (cached_version, shared) in self._codes_cache.items():
                if other != attribute and self._cache_fresh(
                    cached_version, other
                ):
                    duplicate._codes_cache[other] = (
                        duplicate._version, shared
                    )
        return duplicate

    def with_schema(self, schema: Schema, name: str | None = None) -> "Table":
        """Re-type this table's rows under a compatible replacement schema."""
        if schema.names != self._schema.names:
            raise SchemaError(
                "replacement schema must have identical attribute names/order"
            )
        self._flush_pending()
        return Table(schema, (tuple(row) for row in self._rows),
                     name=name or self.name)


def table_from_columns(
    schema: Schema, columns: dict[str, list[Any]], name: str = "relation"
) -> Table:
    """Build a :class:`Table` from parallel column lists keyed by name."""
    lengths = {len(values) for values in columns.values()}
    if len(lengths) > 1:
        raise SchemaError(f"ragged columns: lengths {sorted(lengths)}")
    missing = [n for n in schema.names if n not in columns]
    if missing:
        raise SchemaError(f"missing columns: {missing}")
    count = lengths.pop() if lengths else 0
    rows = (
        tuple(columns[n][i] for n in schema.names) for i in range(count)
    )
    return Table(schema, rows, name=name)


def make_categorical_attribute(name: str, values: Iterable[Hashable]) -> Attribute:
    """Shorthand for a categorical :class:`Attribute` over ``values``."""
    from .domain import CategoricalDomain
    from .types import AttributeType

    return Attribute(name, AttributeType.CATEGORICAL, CategoricalDomain(values))
