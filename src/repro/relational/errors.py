"""Exceptions raised by the relational substrate.

The relational layer is deliberately strict: schema violations, duplicate
primary keys and unknown attributes raise immediately rather than silently
corrupting a relation that is about to be watermarked.
"""

from __future__ import annotations


class RelationalError(Exception):
    """Base class for all relational-substrate errors."""


class SchemaError(RelationalError):
    """A schema is malformed (duplicate names, missing primary key, ...)."""


class UnknownAttributeError(RelationalError):
    """An operation referenced an attribute not present in the schema."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = tuple(available)
        msg = f"unknown attribute {name!r}"
        if available:
            msg += f" (schema has: {', '.join(available)})"
        super().__init__(msg)


class DuplicateKeyError(RelationalError):
    """An insert would create a second tuple with an existing primary key."""

    def __init__(self, key):
        self.key = key
        super().__init__(f"duplicate primary key value: {key!r}")


class MissingKeyError(RelationalError):
    """A lookup referenced a primary key value not present in the table."""

    def __init__(self, key):
        self.key = key
        super().__init__(f"no tuple with primary key value: {key!r}")


class DomainError(RelationalError):
    """A value was outside the declared categorical domain of an attribute."""

    def __init__(self, value, attribute: str = ""):
        self.value = value
        self.attribute = attribute
        where = f" for attribute {attribute!r}" if attribute else ""
        super().__init__(f"value {value!r} is outside the categorical domain{where}")


class TypeMismatchError(RelationalError):
    """A value did not match the declared type of its attribute."""

    def __init__(self, value, expected: str, attribute: str = ""):
        self.value = value
        self.expected = expected
        self.attribute = attribute
        where = f" for attribute {attribute!r}" if attribute else ""
        super().__init__(
            f"value {value!r} does not match declared type {expected}{where}"
        )
