"""CSV import/export for relations.

Lets examples persist watermarked relations and re-load them for blind
detection in a separate process — the workflow a real rights-holder would
follow (mark, publish, later download the suspect copy and detect).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from .domain import CategoricalDomain
from .schema import Attribute, Schema, infer_domains
from .table import Table
from .types import AttributeType


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` with a header row of attribute names."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        _write(table, handle)


def dumps_csv(table: Table) -> str:
    """Render ``table`` as a CSV string (round-trips with :func:`loads_csv`)."""
    buffer = io.StringIO()
    _write(table, buffer)
    return buffer.getvalue()


def _write(table: Table, handle) -> None:
    writer = csv.writer(handle)
    writer.writerow(table.schema.names)
    for row in table:
        writer.writerow(row)


def read_csv(
    path: str | Path,
    schema: Schema,
    infer_categorical_domains: bool = True,
    name: str | None = None,
) -> Table:
    """Load ``path`` into a :class:`Table` under ``schema``.

    Cell text is parsed according to each attribute's declared type.  With
    ``infer_categorical_domains`` (the default), categorical domains are
    widened to include every observed value — the blind-detection situation,
    where only the suspect data defines the visible value set.
    """
    with open(path, newline="", encoding="utf-8") as handle:
        return _read(handle, schema, infer_categorical_domains,
                     name or Path(path).stem)


def loads_csv(
    text: str,
    schema: Schema,
    infer_categorical_domains: bool = True,
    name: str = "relation",
) -> Table:
    """Parse CSV ``text`` into a :class:`Table` (see :func:`read_csv`)."""
    return _read(io.StringIO(text), schema, infer_categorical_domains, name)


def check_header(header, schema: Schema) -> None:
    """Reject a CSV header row that does not spell out ``schema.names``."""
    if tuple(header) != schema.names:
        raise ValueError(
            f"CSV header {tuple(header)} does not match schema {schema.names}"
        )


def parse_row(row: list[str], parsers, arity: int, number: int) -> tuple:
    """Type one CSV record, rejecting arity mismatches loudly.

    ``zip`` would silently drop surplus cells (and silently shorten the
    tuple on missing ones, surfacing later as a confusing schema error),
    so a malformed record — a stray delimiter, a half-written line — is
    reported with its data-row ``number`` instead.
    """
    if len(row) != arity:
        raise ValueError(
            f"CSV row {number} has {len(row)} fields, schema has {arity}"
        )
    return tuple(parse(cell) for parse, cell in zip(parsers, row))


def _read(handle, schema: Schema, infer: bool, name: str) -> Table:
    reader = csv.reader(handle)
    header = next(reader, None)
    if header is None:
        return Table(schema, (), name=name)
    check_header(header, schema)
    parsers = cell_parsers(schema)
    arity = schema.arity
    typed_rows = [
        parse_row(row, parsers, arity, number)
        for number, row in enumerate(reader, start=1)
    ]
    effective = infer_domains(schema, typed_rows) if infer else schema
    return Table(effective, typed_rows, name=name)


def cell_parsers(schema: Schema) -> list:
    """Per-attribute cell parsers, in schema order.

    The shared typing layer of :func:`read_csv` and the chunked
    :class:`repro.stream.CSVChunkSource` — one parser list built per file,
    not per row.
    """
    return [_cell_parser(schema.attribute(column)) for column in schema.names]


def _cell_parser(attribute: Attribute):
    """Parser restoring a cell's original Python type from CSV text.

    CSV is untyped, so categorical cells (which may be ints, strings, ...)
    are coerced by matching their text against the declared domain; text
    with no domain match falls back to numeric sniffing.  This keeps
    ``write_csv``/``read_csv`` a faithful round trip — essential for blind
    detection, where a value's *identity* (hence its canonical domain
    index) must survive publication.
    """
    if attribute.atype is not AttributeType.CATEGORICAL:
        return attribute.atype.parse
    # First-wins on text collisions: a domain holding both 1 and "1"
    # renders identically, so the coercion is genuinely ambiguous — pin it
    # to the first value in canonical domain order (the same
    # first-encounter-wins rule the engine caches use) instead of leaving
    # it to dict-comprehension overwrite order.
    by_text: dict[str, object] = {}
    for value in (attribute.domain.values if attribute.domain else ()):
        by_text.setdefault(str(value), value)

    def parse(cell: str):
        if cell in by_text:
            return by_text[cell]
        return _sniff(cell)

    return parse


def _sniff(cell: str):
    """Best-effort type recovery for out-of-domain categorical text."""
    try:
        return int(cell)
    except ValueError:
        pass
    try:
        return float(cell)
    except ValueError:
        return cell


def schema_for_csv(
    names: list[str],
    types: list[AttributeType],
    primary_key: str,
    categorical_values: dict[str, list] | None = None,
) -> Schema:
    """Convenience constructor for CSV-backed schemas.

    ``categorical_values`` seeds domains for categorical columns; columns
    without a seed get a placeholder single-value domain that
    :func:`read_csv` will widen on load.
    """
    categorical_values = categorical_values or {}
    attributes = []
    for attr_name, atype in zip(names, types):
        if atype is AttributeType.CATEGORICAL:
            seed = categorical_values.get(attr_name, ["<placeholder>"])
            attributes.append(
                Attribute(attr_name, atype, CategoricalDomain(seed))
            )
        else:
            attributes.append(Attribute(attr_name, atype))
    return Schema(attributes, primary_key=primary_key)
