"""JSON (de)serialisation of schemas.

Blind detection workflows move relations around as CSV plus a schema
description; this module gives :class:`Schema` a stable JSON form so the
command-line tools (and any downstream user) can persist it alongside the
data and the escrowed mark record.
"""

from __future__ import annotations

import json
from typing import Any

from .domain import CategoricalDomain
from .errors import SchemaError
from .schema import Attribute, Schema
from .types import AttributeType


def attribute_to_dict(attribute: Attribute) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "name": attribute.name,
        "type": attribute.atype.value,
    }
    if attribute.domain is not None:
        payload["domain"] = list(attribute.domain.values)
    return payload


def attribute_from_dict(payload: dict[str, Any]) -> Attribute:
    try:
        atype = AttributeType(payload["type"])
        name = payload["name"]
    except (KeyError, ValueError) as exc:
        raise SchemaError(f"malformed attribute payload: {exc}") from exc
    domain = None
    if "domain" in payload:
        domain = CategoricalDomain(payload["domain"])
    return Attribute(name, atype, domain)


def schema_to_dict(schema: Schema) -> dict[str, Any]:
    """Schema as a plain JSON-compatible dict."""
    return {
        "primary_key": schema.primary_key,
        "attributes": [
            attribute_to_dict(attribute) for attribute in schema
        ],
    }


def schema_from_dict(payload: dict[str, Any]) -> Schema:
    """Inverse of :func:`schema_to_dict`."""
    try:
        attributes = [
            attribute_from_dict(item) for item in payload["attributes"]
        ]
        return Schema(attributes, primary_key=payload["primary_key"])
    except KeyError as exc:
        raise SchemaError(f"malformed schema payload: missing {exc}") from exc


def schema_to_json(schema: Schema) -> str:
    return json.dumps(schema_to_dict(schema), sort_keys=True)


def schema_from_json(text: str) -> Schema:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SchemaError(f"schema is not valid JSON: {exc}") from exc
    return schema_from_dict(payload)
