"""Finite, ordered categorical value domains.

The paper (§2.1) assumes the values of a categorical attribute ``A`` are
``{a_1, ..., a_nA}`` — *distinct* and *sortable* (e.g. by ASCII value).  The
embedding algorithm manipulates values through their index ``t`` in this
canonical ordering (``T_j(A) <- a_t``), so the ordering must be identical at
embedding and detection time.  :class:`CategoricalDomain` pins that ordering
down: values are kept in sorted order and mapped to dense indices.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any, Hashable

from .errors import DomainError, SchemaError


def _sort_key(value: Hashable) -> tuple[str, Any]:
    """Total order over mixed-type hashable values.

    Values of the same Python type compare natively (ints numerically,
    strings lexicographically — the paper's "by ASCII value"); different
    types are segregated by type name so the order is still total.
    """
    return (type(value).__name__, value)


class CategoricalDomain:
    """An immutable, canonically ordered finite set of categorical values.

    Parameters
    ----------
    values:
        The distinct values of the domain, in any order.  They are stored
        sorted (see :func:`_sort_key`) so that a domain reconstructed from
        the same value set — for instance by the blind detector scanning the
        suspect data — yields identical value/index associations.
    """

    __slots__ = ("_values", "_index")

    def __init__(self, values: Iterable[Hashable]):
        ordered = sorted(set(values), key=_sort_key)
        if not ordered:
            raise SchemaError("a categorical domain must contain at least one value")
        self._values: tuple[Hashable, ...] = tuple(ordered)
        self._index: dict[Hashable, int] = {
            value: position for position, value in enumerate(self._values)
        }

    # -- basic protocol ----------------------------------------------------
    @property
    def size(self) -> int:
        """``nA`` — the number of possible values of the attribute."""
        return len(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CategoricalDomain):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self._values[:4])
        suffix = ", ..." if self.size > 4 else ""
        return f"CategoricalDomain([{preview}{suffix}], size={self.size})"

    # -- index mapping used by the embedding channel ------------------------
    @property
    def values(self) -> tuple[Hashable, ...]:
        """The values in canonical (sorted) order: ``(a_1, ..., a_nA)``."""
        return self._values

    def index_of(self, value: Hashable) -> int:
        """Return ``t`` such that the value equals ``a_t`` (0-based)."""
        try:
            return self._index[value]
        except KeyError:
            raise DomainError(value) from None

    def value_at(self, index: int) -> Hashable:
        """Return ``a_index`` (0-based canonical index)."""
        if not 0 <= index < len(self._values):
            raise DomainError(index)
        return self._values[index]

    # -- derived domains -----------------------------------------------------
    def remapped(self, mapping: dict[Hashable, Hashable]) -> "CategoricalDomain":
        """Return the domain produced by applying a value ``mapping``.

        Used by the A6 (bijective attribute re-mapping) attack and by the
        recovery procedure of §4.5.  The mapping must cover every domain
        value and be injective, otherwise the result would not be a bijection.
        """
        missing = [v for v in self._values if v not in mapping]
        if missing:
            raise DomainError(missing[0], "remapping is not total")
        images = [mapping[v] for v in self._values]
        if len(set(images)) != len(images):
            raise SchemaError("remapping is not injective")
        return CategoricalDomain(images)

    @classmethod
    def from_column(cls, values: Iterable[Hashable]) -> "CategoricalDomain":
        """Build the domain observed in a data column (distinct values)."""
        return cls(values)
