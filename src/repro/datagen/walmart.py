"""Synthetic Wal-Mart-style sales data (the paper's experimental substrate).

The paper watermarked the proprietary Wal-Mart Sales Database hosted on an
NCR Teradata machine — 4 TB, with the ``ItemScan`` relation at 840 million
tuples — but ran experiments on random subsets of at most 141 000 tuples of
the schema::

    Visit_Nbr INTEGER PRIMARY KEY,
    Item_Nbr  INTEGER NOT NULL

``Item_Nbr`` is "a categorical attribute, uniquely identifying a finite set
of products".  We reproduce that shape synthetically: integer visit numbers
and a finite product catalogue whose popularity follows a Zipf law (retail
sales are heavily skewed toward bestsellers — the only statistical property
of the real data the algorithms are sensitive to).

:func:`generate_item_scan` is the paper-faithful two-column relation used by
the figure benches; :func:`generate_sales` is a richer multi-categorical
schema for the multi-attribute and vertical-partition experiments.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from ..relational import (
    Attribute,
    AttributeType,
    CategoricalDomain,
    Schema,
    Table,
)
from .distributions import CategoricalSampler


def item_catalogue(item_count: int) -> list[int]:
    """A finite product catalogue of ``Item_Nbr`` codes."""
    if item_count <= 0:
        raise ValueError(f"item count must be positive, got {item_count}")
    # Spread codes over a sparse range like real SKU numbering.
    return [10_000 + 7 * index for index in range(item_count)]


def item_scan_schema(items: list[int]) -> Schema:
    """The paper's ``ItemScan`` schema: ``(Visit_Nbr*, Item_Nbr)``."""
    return Schema(
        (
            Attribute("Visit_Nbr", AttributeType.INTEGER),
            Attribute(
                "Item_Nbr",
                AttributeType.CATEGORICAL,
                CategoricalDomain(items),
            ),
        ),
        primary_key="Visit_Nbr",
    )


def generate_item_scan(
    tuple_count: int,
    item_count: int = 500,
    zipf_exponent: float = 1.05,
    seed: int | str = 0,
) -> Table:
    """Generate a synthetic ``ItemScan`` relation.

    ``zipf_exponent`` ≈ 1 reproduces retail skew; raise it for heavier
    skew, lower toward 0 for the near-uniform pathological case.
    """
    if tuple_count < 0:
        raise ValueError(f"tuple count must be non-negative, got {tuple_count}")
    rng = random.Random(f"item-scan:{seed}")
    items = item_catalogue(item_count)
    sampler = CategoricalSampler.zipf(items, zipf_exponent, rng=rng)
    schema = item_scan_schema(items)
    visits = rng.sample(
        range(1_000_000, 1_000_000 + 20 * max(tuple_count, 1)), tuple_count
    )
    rows = (
        (visit, item)
        for visit, item in zip(visits, sampler.sample_many(tuple_count, rng))
    )
    return Table(schema, rows, name="ItemScan")


def iter_item_scan_rows(
    tuple_count: int,
    item_count: int = 500,
    zipf_exponent: float = 1.05,
    seed: int | str = 0,
) -> Iterator[tuple[int, int]]:
    """Lazy ``ItemScan`` row stream — O(1) memory however large ``n`` is.

    The out-of-core counterpart of :func:`generate_item_scan` (which must
    draw its visit numbers with a bulk ``rng.sample`` and therefore holds
    them all at once): visit numbers are drawn lazily from disjoint strata
    of width 20 — unique by construction, irregular like real visit
    numbering — and items from the same Zipf catalogue sampler.  The
    stream is deterministic per ``seed`` (its own ``item-scan-stream``
    label; it is *not* row-identical to :func:`generate_item_scan`, whose
    bulk sampling draws a different sequence) and restartable: two
    iterators built with equal arguments yield equal rows, which is what
    lets a :class:`repro.stream.SyntheticChunkSource` re-open and
    fast-forward it for checkpoint resume.
    """
    if tuple_count < 0:
        raise ValueError(f"tuple count must be non-negative, got {tuple_count}")
    rng = random.Random(f"item-scan-stream:{seed}")
    items = item_catalogue(item_count)
    sampler = CategoricalSampler.zipf(items, zipf_exponent, rng=rng)
    # Items are drawn in fixed blocks: ``rng.choices`` re-derives its
    # cumulative weights per call, so per-row draws would dominate a
    # million-row stream.  Memory stays O(block).
    block = 4096
    index = 0
    while index < tuple_count:
        drawn = sampler.sample_many(min(block, tuple_count - index), rng)
        for item in drawn:
            yield (1_000_000 + 20 * index + rng.randrange(20), item)
            index += 1


#: store/department layout for the richer schema
_STORE_COUNT = 40
_DEPARTMENTS = (
    "GROCERY", "DAIRY", "PRODUCE", "MEAT", "BAKERY", "PHARMACY",
    "ELECTRONICS", "APPAREL", "GARDEN", "AUTOMOTIVE", "TOYS", "SPORTING",
)


def sales_schema(items: list[int]) -> Schema:
    """A multi-categorical sales schema for §3.3-style experiments."""
    stores = [f"ST{number:03d}" for number in range(1, _STORE_COUNT + 1)]
    return Schema(
        (
            Attribute("Scan_Id", AttributeType.INTEGER),
            Attribute(
                "Item_Nbr",
                AttributeType.CATEGORICAL,
                CategoricalDomain(items),
            ),
            Attribute(
                "Store_Nbr",
                AttributeType.CATEGORICAL,
                CategoricalDomain(stores),
            ),
            Attribute(
                "Dept",
                AttributeType.CATEGORICAL,
                CategoricalDomain(_DEPARTMENTS),
            ),
            Attribute("Quantity", AttributeType.INTEGER),
        ),
        primary_key="Scan_Id",
    )


def iter_sales_rows(
    tuple_count: int,
    item_count: int = 300,
    zipf_exponent: float = 1.05,
    seed: int | str = 0,
) -> Iterator[tuple]:
    """Lazy sales row stream — row-identical to :func:`generate_sales`.

    Sales rows are generated sequentially anyway, so the lazy stream *is*
    the table builder's row source (same rng label, same draw order);
    :func:`generate_sales` just materializes it.  Deterministic and
    restartable per ``seed``, for the synthetic chunk sources.
    """
    if tuple_count < 0:
        raise ValueError(f"tuple count must be non-negative, got {tuple_count}")
    rng = random.Random(f"sales:{seed}")
    items = item_catalogue(item_count)
    schema = sales_schema(items)
    item_sampler = CategoricalSampler.zipf(items, zipf_exponent, rng=rng)
    store_domain = schema.attribute("Store_Nbr").domain
    dept_domain = schema.attribute("Dept").domain
    assert store_domain is not None and dept_domain is not None
    store_sampler = CategoricalSampler.zipf(
        list(store_domain.values), 0.6, rng=rng
    )
    dept_sampler = CategoricalSampler.zipf(
        list(dept_domain.values), 0.8, rng=rng
    )
    for scan_id in range(1, tuple_count + 1):
        yield (
            scan_id,
            item_sampler.sample(rng),
            store_sampler.sample(rng),
            dept_sampler.sample(rng),
            1 + min(rng.randrange(1, 7), rng.randrange(1, 7)),
        )


def generate_sales(
    tuple_count: int,
    item_count: int = 300,
    zipf_exponent: float = 1.05,
    seed: int | str = 0,
) -> Table:
    """Generate the richer sales relation (items, stores, departments)."""
    schema = sales_schema(item_catalogue(item_count))
    return Table(
        schema,
        iter_sales_rows(tuple_count, item_count, zipf_exponent, seed),
        name="Sales",
    )
