"""Synthetic data generators substituting the paper's proprietary corpus."""

from .airline import airline_schema, generate_bookings, iter_booking_rows
from .distributions import (
    CategoricalSampler,
    DistributionError,
    uniform_weights,
    zipf_weights,
)
from .walmart import (
    generate_item_scan,
    generate_sales,
    item_catalogue,
    item_scan_schema,
    iter_item_scan_rows,
    iter_sales_rows,
    sales_schema,
)

__all__ = [
    "CategoricalSampler",
    "DistributionError",
    "airline_schema",
    "generate_bookings",
    "generate_item_scan",
    "generate_sales",
    "item_catalogue",
    "item_scan_schema",
    "iter_booking_rows",
    "iter_item_scan_rows",
    "iter_sales_rows",
    "sales_schema",
    "uniform_weights",
    "zipf_weights",
]
