"""Synthetic data generators substituting the paper's proprietary corpus."""

from .airline import airline_schema, generate_bookings
from .distributions import (
    CategoricalSampler,
    DistributionError,
    uniform_weights,
    zipf_weights,
)
from .walmart import (
    generate_item_scan,
    generate_sales,
    item_catalogue,
    item_scan_schema,
    sales_schema,
)

__all__ = [
    "CategoricalSampler",
    "DistributionError",
    "airline_schema",
    "generate_bookings",
    "generate_item_scan",
    "generate_sales",
    "item_catalogue",
    "item_scan_schema",
    "sales_schema",
    "uniform_weights",
    "zipf_weights",
]
