"""Categorical value-distribution generators.

The embedding's behaviour — and especially §4.5 remapping recovery — depends
on the *shape* of the value-occurrence distribution.  Retail and travel data
are strongly skewed (a few bestsellers, a long tail), which Zipf models; the
uniform generator exists to reproduce the paper's negative observation that
uniform occurrence frequencies defeat frequency-based recovery.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import Hashable


class DistributionError(Exception):
    """Invalid distribution parameters."""


def zipf_weights(count: int, exponent: float = 1.0) -> list[float]:
    """Normalised Zipf weights: ``w_r ∝ 1/r^exponent`` for rank ``r``."""
    if count <= 0:
        raise DistributionError(f"count must be positive, got {count}")
    if exponent < 0:
        raise DistributionError(f"exponent must be >= 0, got {exponent}")
    raw = [1.0 / (rank ** exponent) for rank in range(1, count + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


def uniform_weights(count: int) -> list[float]:
    """Equal weights — the recovery-defeating worst case of §4.5."""
    if count <= 0:
        raise DistributionError(f"count must be positive, got {count}")
    return [1.0 / count] * count


class CategoricalSampler:
    """Weighted sampler over a fixed value list (reproducible via ``rng``)."""

    def __init__(self, values: Sequence[Hashable], weights: Sequence[float]):
        if len(values) != len(weights):
            raise DistributionError(
                f"{len(values)} values vs {len(weights)} weights"
            )
        if not values:
            raise DistributionError("need at least one value")
        if any(weight < 0 for weight in weights):
            raise DistributionError("weights must be non-negative")
        if sum(weights) <= 0:
            raise DistributionError("weights must not all be zero")
        self.values = list(values)
        self.weights = list(weights)

    def sample(self, rng: random.Random) -> Hashable:
        return rng.choices(self.values, weights=self.weights, k=1)[0]

    def sample_many(self, count: int, rng: random.Random) -> list[Hashable]:
        if count < 0:
            raise DistributionError(f"count must be non-negative, got {count}")
        return rng.choices(self.values, weights=self.weights, k=count)

    @classmethod
    def zipf(
        cls,
        values: Sequence[Hashable],
        exponent: float = 1.0,
        rng: random.Random | None = None,
    ) -> "CategoricalSampler":
        """Zipf sampler; with ``rng``, rank order is shuffled so popularity
        is decoupled from the canonical value ordering."""
        ordered = list(values)
        if rng is not None:
            rng.shuffle(ordered)
        return cls(ordered, zipf_weights(len(ordered), exponent))

    @classmethod
    def uniform(cls, values: Sequence[Hashable]) -> "CategoricalSampler":
        return cls(list(values), uniform_weights(len(values)))
