"""Synthetic airline-reservation data (the paper's B2B motivating scenario).

§1 motivates rights protection for "online B2B interactions (e.g. airline
reservation and scheduling portals) in which data is made available for
direct, interactive use", and §3.1's bandwidth example is departure cities.
This generator produces a bookings relation with several categorical
attributes (cities, airline, fare class) so examples can exercise
multi-attribute embedding, vertical partitioning and remapping attacks on a
second realistic domain.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from ..relational import (
    Attribute,
    AttributeType,
    CategoricalDomain,
    Schema,
    Table,
)
from .distributions import CategoricalSampler

_CITIES = (
    "ATL", "ORD", "DFW", "DEN", "LAX", "JFK", "SFO", "SEA", "MIA", "PHX",
    "IAH", "BOS", "MSP", "DTW", "PHL", "LGA", "CLT", "EWR", "SLC", "BWI",
    "SAN", "MDW", "TPA", "PDX", "STL", "MCI", "RDU", "AUS", "SJC", "SMF",
)

_AIRLINES = ("AA", "UA", "DL", "WN", "NW", "CO", "US", "TW")

_FARE_CLASSES = ("Y", "B", "M", "H", "Q", "V", "F", "J")


def airline_schema() -> Schema:
    """Bookings: ``(Ticket_Id*, Depart_City, Arrive_City, Airline, Fare_Class)``."""
    return Schema(
        (
            Attribute("Ticket_Id", AttributeType.INTEGER),
            Attribute(
                "Depart_City",
                AttributeType.CATEGORICAL,
                CategoricalDomain(_CITIES),
            ),
            Attribute(
                "Arrive_City",
                AttributeType.CATEGORICAL,
                CategoricalDomain(_CITIES),
            ),
            Attribute(
                "Airline",
                AttributeType.CATEGORICAL,
                CategoricalDomain(_AIRLINES),
            ),
            Attribute(
                "Fare_Class",
                AttributeType.CATEGORICAL,
                CategoricalDomain(_FARE_CLASSES),
            ),
        ),
        primary_key="Ticket_Id",
    )


def iter_booking_rows(
    tuple_count: int,
    seed: int | str = 0,
    hub_exponent: float = 0.9,
) -> Iterator[tuple]:
    """Lazy bookings row stream — row-identical to
    :func:`generate_bookings` (same rng label, same draw order), for the
    synthetic chunk sources.  Deterministic and restartable per ``seed``.
    """
    if tuple_count < 0:
        raise ValueError(f"tuple count must be non-negative, got {tuple_count}")
    rng = random.Random(f"bookings:{seed}")
    city_sampler = CategoricalSampler.zipf(list(_CITIES), hub_exponent, rng=rng)
    airline_sampler = CategoricalSampler.zipf(list(_AIRLINES), 0.7, rng=rng)
    fare_sampler = CategoricalSampler.zipf(list(_FARE_CLASSES), 1.2, rng=rng)

    for index in range(tuple_count):
        depart = city_sampler.sample(rng)
        arrive = city_sampler.sample(rng)
        while arrive == depart:
            arrive = city_sampler.sample(rng)
        yield (
            200_000 + index,
            depart,
            arrive,
            airline_sampler.sample(rng),
            fare_sampler.sample(rng),
        )


def generate_bookings(
    tuple_count: int,
    seed: int | str = 0,
    hub_exponent: float = 0.9,
) -> Table:
    """Generate a synthetic bookings relation.

    Hub-and-spoke traffic concentration gives cities a skewed (Zipf)
    occurrence profile — the distinguishing property §4.5 remapping
    recovery relies on.
    """
    return Table(
        airline_schema(),
        iter_booking_rows(tuple_count, seed, hub_exponent),
        name="Bookings",
    )
